"""Application-level benchmarks on the behavioral TCAM engine: the
paper's motivating workloads (router LPM, associative cache, packet
classification, genomics seed matching), with real throughput numbers.
"""

import random

from fecam.apps import (Packet, Rule, SeedIndex, TcamCache, TcamClassifier,
                        TcamRouter, int_to_ip, vote_alignment)
from fecam.bench import print_experiment
from fecam.designs import DesignKind
from fecam.functional import EnergyModel, TernaryCAM


def _fast_tcam(rows, width):
    model = EnergyModel(DesignKind.DG_1T5, width, e_1step_per_bit=0.8e-15,
                        e_2step_per_bit=1.3e-15, latency_1step=0.7e-9,
                        latency_2step=2.3e-9, write_energy_per_cell=0.41e-15)
    return TernaryCAM(rows=rows, width=width, design=DesignKind.DG_1T5,
                      energy_model=model)


def test_bench_engine_search(benchmark):
    rng = random.Random(7)
    tcam = _fast_tcam(1024, 64)
    for row in range(1024):
        word = "".join(rng.choice("01X") for _ in range(64))
        tcam.write(row, word)
    queries = ["".join(rng.choice("01") for _ in range(64))
               for _ in range(64)]

    def run():
        hits = 0
        for q in queries:
            hits += len(tcam.search(q).matches)
        return hits

    benchmark(run)


def test_bench_router_lookup(benchmark):
    rng = random.Random(11)
    router = TcamRouter(capacity=512)
    router.add_route("0.0.0.0/0", "default")
    for _ in range(255):
        net = rng.randrange(0, 1 << 32)
        length = rng.randrange(8, 29)
        router.add_route(f"{int_to_ip(net)}/{length}", f"hop{length}")
    addrs = [int_to_ip(rng.randrange(0, 1 << 32)) for _ in range(128)]
    router.lookup(addrs[0])  # build the TCAM outside the timed region

    def run():
        return [router.lookup(a) for a in addrs]

    hops = benchmark(run)
    assert all(h is not None for h in hops)  # default route catches all
    print_experiment("Router stats", ["routes", "searches"],
                     [[len(router), router.stats["searches"]]])


def test_bench_cache(benchmark):
    rng = random.Random(3)
    trace = [rng.randrange(0, 1 << 20) & ~0x3F for _ in range(512)]
    # Re-visit addresses to create locality.
    trace += trace[:256]

    def run():
        cache = TcamCache(lines=64, block_bits=6, address_bits=24)
        for addr in trace:
            cache.access(addr)
        return cache.hit_rate

    hit_rate = benchmark(run)
    assert 0.0 < hit_rate < 1.0


def test_bench_classifier(benchmark):
    cl = TcamClassifier()
    cl.add_rule(Rule(name="dns", dst_port_range=(53, 53), protocol=17))
    cl.add_rule(Rule(name="web", dst_port_range=(80, 443)))
    cl.add_rule(Rule(name="ephemeral", dst_port_range=(32768, 65535)))
    rng = random.Random(5)
    packets = [Packet(src_ip=rng.randrange(1 << 32),
                      dst_ip=rng.randrange(1 << 32),
                      src_port=rng.randrange(1 << 16),
                      dst_port=rng.randrange(1 << 16),
                      protocol=rng.choice((6, 17))) for _ in range(64)]
    cl.classify(packets[0])  # build outside the timed region

    def run():
        return [cl.classify(p) for p in packets]

    verdicts = benchmark(run)
    reference = [cl.classify_reference(p) for p in packets]
    assert verdicts == reference


def test_bench_genomics(benchmark):
    rng = random.Random(13)
    reference = "".join(rng.choice("ACGT") for _ in range(512))
    index = SeedIndex(reference, k=8)
    reads = []
    for _ in range(16):
        start = rng.randrange(0, 512 - 48)
        reads.append((reference[start:start + 48], start))

    def run():
        return [vote_alignment(read, index) for read, _ in reads]

    offsets = benchmark(run)
    correct = sum(1 for (read, start), off in zip(reads, offsets)
                  if off == start)
    assert correct >= 14  # near-perfect mapping on exact reads
