"""Durability overheads: WAL append cost, recovery time, reshard pause.

Three questions a production deployment asks of :mod:`fecam.durable`:

* **What does the WAL cost on the write path?**  The same single-insert
  stream is timed against a volatile :class:`CamStore` and against a
  :class:`DurableCamStore` per fsync policy.  The acceptance floor:
  ``fsync="interval"`` (the default — bounded loss window) must cost
  < 15% write throughput vs in-memory (full mode; ``--tiny`` sizes are
  noise-dominated and only sanity-check structure).  ``"always"`` pays
  a real fsync per op and is reported, not floored.
* **How long does recovery take?**  ``recover()`` is timed against
  journals of increasing length (baseline snapshot only, so every
  record replays) — recovery cost is linear in the replayed tail, and
  the replay rate is the number that sizes ``snapshot_every``.
* **What pause does a live reshard inflict?**  A service over a
  durable store runs 4 writer + 4 reader threads while the bank count
  is resharded back and forth; the write-locked pause (drain + swap,
  phase 3 only) is collected per cycle and reported as p50/p99, with
  zero failed requests required.

Emits JSON twice: the full report at
``benchmarks/results/durability.json`` (CI artifact) and — for full
runs — the machine-trackable ``BENCH_durability.json`` at the repo
root, rows of ``{metric, value, unit, config}``.

Run directly (``python benchmarks/bench_durability.py [--tiny]``) or
via pytest (``pytest benchmarks/bench_durability.py``).
"""

import argparse
import random
import shutil
import tempfile
import threading
import time

import _emit

from fecam.designs import DesignKind
from fecam.durable import (DurabilityConfig, DurableCamStore, recover,
                           reshard)
from fecam.functional import EnergyModel
from fecam.service import SearchService
from fecam.store import CamStore, StoreConfig

FULL = dict(mode="full", width=64, rows=4096, banks=8, n_writes=2000,
            repeats=3, recovery_lengths=(250, 1000, 4000),
            reshard_rows=1024, reshard_cycles=12, reshard_writers=4,
            reshard_readers=4, interval_ceiling_pct=15.0)
TINY = dict(mode="tiny", width=32, rows=256, banks=4, n_writes=200,
            repeats=2, recovery_lengths=(50, 200),
            reshard_rows=256, reshard_cycles=2, reshard_writers=4,
            reshard_readers=4, interval_ceiling_pct=None)

KEYSPACE = [f"k{i}" for i in range(32)]


def _fast_model(width):
    """Fixed figures of merit: this benchmark times persistence, not
    SPICE."""
    return EnergyModel(DesignKind.DG_1T5, width, e_1step_per_bit=0.8e-15,
                       e_2step_per_bit=1.3e-15, latency_1step=0.7e-9,
                       latency_2step=2.3e-9, write_energy_per_cell=0.41e-15)


def _config(sizes, rows=None, banks=None):
    return StoreConfig(width=sizes["width"],
                       rows=sizes["rows"] if rows is None else rows,
                       banks=sizes["banks"] if banks is None else banks,
                       energy_model=_fast_model(sizes["width"]))


def _words(sizes, n, seed=42):
    rng = random.Random(seed)
    return ["".join(rng.choice("01X") for _ in range(sizes["width"]))
            for _ in range(n)]


# -- WAL append overhead -------------------------------------------------------

def _time_inserts(store, words):
    t0 = time.perf_counter()
    for i, word in enumerate(words):
        store.insert(word, key=i)
    return time.perf_counter() - t0


def _measure_wal(sizes):
    words = _words(sizes, sizes["n_writes"])
    t_memory = min(_time_inserts(CamStore(_config(sizes)), words)
                   for _ in range(sizes["repeats"]))
    row = {"write_qps_memory": len(words) / t_memory}
    for policy in ("off", "interval", "always"):
        best = None
        for _ in range(sizes["repeats"]):
            directory = tempfile.mkdtemp(prefix="fecam-bench-wal-")
            try:
                store = DurableCamStore(
                    _config(sizes),
                    durability=DurabilityConfig(directory=directory,
                                                fsync=policy))
                elapsed = _time_inserts(store, words)
                store.close()
            finally:
                shutil.rmtree(directory, ignore_errors=True)
            best = elapsed if best is None else min(best, elapsed)
        row[f"write_qps_fsync_{policy}"] = len(words) / best
        row[f"wal_overhead_{policy}_pct"] = 100.0 * (best / t_memory - 1.0)
    return row


# -- recovery time vs log length -----------------------------------------------

def _measure_recovery(sizes):
    rows = []
    for length in sizes["recovery_lengths"]:
        directory = tempfile.mkdtemp(prefix="fecam-bench-rec-")
        try:
            store = DurableCamStore(
                _config(sizes),
                durability=DurabilityConfig(directory=directory,
                                            fsync="off",
                                            compact_on_snapshot=False))
            for i, word in enumerate(_words(sizes, length, seed=7)):
                store.insert(word, key=i)
            store.close()
            t0 = time.perf_counter()
            recovered = recover(directory, fsync="off")
            elapsed = time.perf_counter() - t0
            assert recovered.recovered_records == length
            assert len(recovered.entries()) == length
            recovered.close()
        finally:
            shutil.rmtree(directory, ignore_errors=True)
        rows.append({"log_records": length, "recovery_s": elapsed,
                     "replay_records_per_s": length / elapsed})
    return rows


# -- reshard pause under live traffic ------------------------------------------

def _percentile(values, p):
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(p * len(ordered)))]


def _measure_reshard(sizes):
    directory = tempfile.mkdtemp(prefix="fecam-bench-reshard-")
    pauses, drained, fails = [], [], []
    try:
        store = DurableCamStore(
            _config(sizes, rows=sizes["reshard_rows"], banks=4),
            durability=DurabilityConfig(directory=directory, fsync="off"))
        for i, word in enumerate(_words(sizes, 16, seed=3)):
            store.insert(word, key=KEYSPACE[i % len(KEYSPACE)])
        stop = threading.Event()

        def writer(wid):
            rng = random.Random(500 + wid)
            try:
                while not stop.is_set():
                    key = rng.choice(KEYSPACE)
                    word = "".join(rng.choice("01X")
                                   for _ in range(sizes["width"]))

                    def txn(st):
                        if key in st:
                            if rng.random() < 0.3:
                                st.delete(key)
                            else:
                                st.update(key, word)
                        else:
                            st.insert(word, key=key)

                    service.write(txn)
                    # Bounded churn: a saturating writer stream would
                    # starve the freeze phase behind the
                    # writer-preferring lock and measure lock fairness,
                    # not reshard cost.
                    time.sleep(0.0005)
            except Exception as exc:  # noqa: BLE001 - zero-failure gate
                fails.append(("writer", wid, repr(exc)))

        def reader(rid):
            rng = random.Random(900 + rid)
            try:
                while not stop.is_set():
                    probe = "".join(rng.choice("01")
                                    for _ in range(sizes["width"]))
                    service.search(probe)
            except Exception as exc:  # noqa: BLE001
                fails.append(("reader", rid, repr(exc)))

        with SearchService(store, max_batch=32) as service:
            threads = [threading.Thread(target=writer, args=(w,))
                       for w in range(sizes["reshard_writers"])]
            threads += [threading.Thread(target=reader, args=(r,))
                        for r in range(sizes["reshard_readers"])]
            for t in threads:
                t.start()
            try:
                for cycle in range(sizes["reshard_cycles"]):
                    banks = 16 if cycle % 2 == 0 else 4
                    report = reshard(service, banks=banks)
                    pauses.append(report.pause_s)
                    drained.append(report.drained_ops)
            finally:
                stop.set()
                for t in threads:
                    t.join()
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    return {
        "reshard_cycles": len(pauses),
        "reshard_pause_p50_s": _percentile(pauses, 0.50),
        "reshard_pause_p99_s": _percentile(pauses, 0.99),
        "reshard_pause_max_s": max(pauses),
        "reshard_drained_ops_mean": sum(drained) / len(drained),
        "reshard_failed_requests": len(fails),
        "reshard_failures": fails,
    }


# -- emission ------------------------------------------------------------------

def _bench_rows(wal_row, recovery_rows, reshard_row, sizes):
    """Flatten to the repo-root ``{metric, value, unit, config}`` schema
    shared by every BENCH_*.json."""
    base = {"width_bits": sizes["width"], "rows": sizes["rows"],
            "banks": sizes["banks"], "mode": sizes["mode"]}
    wal_units = {
        "write_qps_memory": "op/s", "write_qps_fsync_off": "op/s",
        "write_qps_fsync_interval": "op/s",
        "write_qps_fsync_always": "op/s",
        "wal_overhead_off_pct": "%", "wal_overhead_interval_pct": "%",
        "wal_overhead_always_pct": "%",
    }
    rows = _emit.rows_from(wal_row, wal_units,
                           dict(base, n_writes=sizes["n_writes"]))
    for rec in recovery_rows:
        rows += _emit.rows_from(
            rec, {"recovery_s": "s", "replay_records_per_s": "record/s"},
            dict(base, log_records=rec["log_records"]))
    reshard_units = {
        "reshard_pause_p50_s": "s", "reshard_pause_p99_s": "s",
        "reshard_pause_max_s": "s", "reshard_drained_ops_mean": "op",
        "reshard_failed_requests": "request",
    }
    rows += _emit.rows_from(
        reshard_row, reshard_units,
        dict(base, rows=sizes["reshard_rows"],
             cycles=reshard_row["reshard_cycles"],
             threads=sizes["reshard_writers"] + sizes["reshard_readers"]))
    return rows


def run(sizes, json_path=None):
    wal_row = _measure_wal(sizes)
    recovery_rows = _measure_recovery(sizes)
    reshard_row = _measure_reshard(sizes)
    default_paths = json_path is None
    if json_path is None:
        json_path = _emit.results_path("durability")
    payload = {"benchmark": "durability",
               "config": {key: sizes[key] for key in
                          ("mode", "width", "rows", "banks", "n_writes",
                           "repeats", "recovery_lengths", "reshard_rows",
                           "reshard_cycles")},
               "results": {"wal": wal_row, "recovery": recovery_rows,
                           "reshard": reshard_row}}
    # The repo-root trajectory file only ever holds full-size numbers:
    # a --tiny smoke (or an --out redirect) must not clobber it.
    root_path = (_emit.repo_bench_path("durability")
                 if sizes["mode"] == "full" and default_paths else None)
    paths = _emit.emit(payload,
                       _bench_rows(wal_row, recovery_rows, reshard_row,
                                   sizes),
                       results_file=json_path, root_file=root_path)
    return wal_row, recovery_rows, reshard_row, paths


def print_report(wal_row, recovery_rows, reshard_row):
    from fecam.bench import print_experiment
    print_experiment(
        "WAL write overhead vs in-memory (single-insert stream)",
        ["policy", "qps", "overhead %"],
        [["memory", wal_row["write_qps_memory"], 0.0]] +
        [[policy, wal_row[f"write_qps_fsync_{policy}"],
          wal_row[f"wal_overhead_{policy}_pct"]]
         for policy in ("off", "interval", "always")])
    print_experiment(
        "Recovery time vs log length (baseline snapshot + full replay)",
        ["records", "seconds", "records/s"],
        [[rec["log_records"], rec["recovery_s"],
          rec["replay_records_per_s"]] for rec in recovery_rows])
    print_experiment(
        "Live reshard pause (write-locked drain + swap, phase 3)",
        ["cycles", "p50 ms", "p99 ms", "max ms", "drained", "failed"],
        [[reshard_row["reshard_cycles"],
          reshard_row["reshard_pause_p50_s"] * 1e3,
          reshard_row["reshard_pause_p99_s"] * 1e3,
          reshard_row["reshard_pause_max_s"] * 1e3,
          reshard_row["reshard_drained_ops_mean"],
          reshard_row["reshard_failed_requests"]]])


def check_floors(wal_row, reshard_row, sizes):
    assert reshard_row["reshard_failed_requests"] == 0, (
        "live reshard failed requests: "
        f"{reshard_row['reshard_failures']}")
    ceiling = sizes["interval_ceiling_pct"]
    if ceiling is not None:
        overhead = wal_row["wal_overhead_interval_pct"]
        assert overhead < ceiling, (
            f"WAL fsync=interval costs {overhead:.1f}% write throughput "
            f"vs in-memory (acceptance ceiling {ceiling}%)")


def test_bench_durability():
    wal_row, recovery_rows, reshard_row, paths = run(FULL)
    print_report(wal_row, recovery_rows, reshard_row)
    print("JSON written to " + ", ".join(paths))
    check_floors(wal_row, reshard_row, FULL)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tiny", action="store_true",
                        help="CI smoke mode: small sizes, no overhead "
                             "ceiling (wall-clock noise dominates)")
    parser.add_argument("--out", default=None, help="JSON output path")
    args = parser.parse_args()
    chosen = TINY if args.tiny else FULL
    wal, recovery, reshard_result, out_paths = run(chosen, args.out)
    print_report(wal, recovery, reshard_result)
    print("JSON written to " + ", ".join(out_paths))
    check_floors(wal, reshard_result, chosen)
