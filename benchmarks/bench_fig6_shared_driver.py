"""Paper Fig. 6: the shared HV-driver mat.

Checks the co-optimization claim: only the DG designs (whose LVT write
and BG read levels coincide at 2.0 V) support sharing; sharing halves the
driver count/area and doubles utilization.
"""

from fecam.bench import fig6_shared_driver, print_experiment


def test_fig6_shared_driver(benchmark):
    rows = benchmark.pedantic(fig6_shared_driver, rounds=1, iterations=1)
    print_experiment(
        "Fig. 6 shared-driver mat (4 subarrays of 64x64)",
        ["design", "sharing", "drv_unshared", "drv_shared",
         "area_unshared_um2", "area_shared_um2", "util_shared"],
        [[r["design"], r["sharing_supported"], r["drivers_unshared"],
          r["drivers_shared"], r["area_unshared_um2"],
          r["area_shared_um2"], r["utilization_shared"]] for r in rows])
    by = {r["design"]: r for r in rows}
    for d in ("2DG-FeFET", "1.5T1DG-Fe"):
        assert by[d]["sharing_supported"]
        assert by[d]["drivers_shared"] * 2 == by[d]["drivers_unshared"]
    for d in ("2SG-FeFET", "1.5T1SG-Fe"):
        assert not by[d]["sharing_supported"]
        assert by[d]["drivers_shared"] == by[d]["drivers_unshared"]
    # HV drivers for +/-4 V SG writes are bigger than the 2 V DG ones.
    assert (by["2SG-FeFET"]["area_unshared_um2"] / by["2SG-FeFET"]["drivers_unshared"]
            > by["2DG-FeFET"]["area_unshared_um2"] / by["2DG-FeFET"]["drivers_unshared"])
