"""Shared benchmark configuration."""
