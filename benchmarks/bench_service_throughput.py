"""Serving-tier throughput: micro-batched service vs per-request locking.

The service's reason to exist is coalescing: the fused arena kernel is
~two orders of magnitude faster per query when queries arrive in large
batches, but concurrent callers naturally produce a stream of *single*
requests.  This benchmark quantifies what the micro-batcher recovers:

* ``naive``       — the pre-service architecture: N threads sharing
  one store behind one mutex, each request a locked single-query
  ``search()`` (what any thread-safe wrapper without batching does);
* ``service``     — the same N threads, each submitting its request
  stream through a :class:`~fecam.service.SearchService` and awaiting
  the futures; the dispatcher drains the queue into fused
  ``search_batch`` calls;
* ``closed_loop`` — the strictest apples-to-apples variant: each
  service thread keeps exactly one request in flight (informational;
  coalescing is then capped at the thread count, so the win is the
  per-batch amortization of ~16-query batches);
* ``direct_batch`` — one caller handing the whole query list to
  ``search_batch`` in one call: the coalescing upper bound.

The acceptance floor: at 16 threads the micro-batched service must
serve >= 5x the naive per-request-locking throughput (full mode;
``--tiny`` smoke keeps a >= 1x sanity floor since wall-clock noise
dominates at small sizes).  All timings are best-of-``repeats`` with a
warmup pass, and the service results are spot-checked bit-identical to
the naive path.

Emits JSON twice: the full report at
``benchmarks/results/service_throughput.json`` (CI artifact) and — for
full runs — the machine-trackable ``BENCH_service.json`` at the repo
root, rows of ``{metric, value, unit, config}``.

Run directly (``python benchmarks/bench_service_throughput.py
[--tiny]``) or via pytest (``pytest
benchmarks/bench_service_throughput.py``).
"""

import argparse
import random
import threading
import time

import _emit

from fecam.designs import DesignKind
from fecam.functional import EnergyModel
from fecam.service import SearchService
from fecam.store import CamStore, StoreConfig

FILL = 0.5

FULL = dict(mode="full", banks=8, rows=4096, width=64, threads=16,
            requests_per_thread=250, max_batch=256, max_wait=2e-3,
            repeats=3, floor=5.0, direct_ratio_floor=1 / 3)
TINY = dict(mode="tiny", banks=4, rows=256, width=32, threads=8,
            requests_per_thread=40, max_batch=64, max_wait=2e-3,
            repeats=3, floor=1.0, direct_ratio_floor=None)


def _fast_model(width):
    """Fixed figures of merit: this benchmark times serving, not SPICE."""
    return EnergyModel(DesignKind.DG_1T5, width, e_1step_per_bit=0.8e-15,
                       e_2step_per_bit=1.3e-15, latency_1step=0.7e-9,
                       latency_2step=2.3e-9, write_energy_per_cell=0.41e-15)


def _build_store(sizes):
    rng = random.Random(42)
    width = sizes["width"]
    store = CamStore(StoreConfig(
        width=width, rows=sizes["rows"], banks=sizes["banks"],
        backend="fabric", energy_model=_fast_model(width)))
    n_words = int(sizes["rows"] * FILL)
    words = ["".join(rng.choice("01X") for _ in range(width))
             for _ in range(n_words)]
    store.insert_many(words, keys=list(range(n_words)))
    return store


def _thread_queries(sizes):
    """One disjoint random query list per thread (no cross-thread dupes:
    per-request caching must not flatter either strategy)."""
    rng = random.Random(20230726)
    width = sizes["width"]
    return [["".join(rng.choice("01") for _ in range(width))
             for _ in range(sizes["requests_per_thread"])]
            for _ in range(sizes["threads"])]


def _run_threads(worker, per_thread_args):
    """Start one thread per arg, wait for all; returns wall seconds."""
    threads = [threading.Thread(target=worker, args=args)
               for args in per_thread_args]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - t0


def _best_seconds(run, repeats, *, warmup=1):
    """Best-of-N of a self-timing ``run()`` (which *returns* elapsed
    seconds), after ``warmup`` untimed passes — the flake armor for
    wall-clock ratios on loaded CI runners.  Unlike the fabric
    benchmark's ``_best_of`` (which times ``fn`` itself), the callable
    here owns its own clock because thread start/join belongs inside
    the measurement."""
    for _ in range(warmup):
        run()
    best = float("inf")
    for _ in range(repeats):
        best = min(best, run())
    return best


def _measure(sizes):
    thread_queries = _thread_queries(sizes)
    n_requests = sizes["threads"] * sizes["requests_per_thread"]
    all_queries = [q for queries in thread_queries for q in queries]

    # Twin stores so planes/energy state of one strategy cannot leak
    # into the other's timing.
    naive_store = _build_store(sizes)
    service_store = _build_store(sizes)
    direct_store = _build_store(sizes)

    # -- naive: one mutex, one locked single-query search per request --
    table_lock = threading.Lock()
    naive_results = {}

    def naive_worker(idx, queries):
        results = []
        for query in queries:
            with table_lock:
                results.append(naive_store.search(query, use_cache=False))
        naive_results[idx] = results

    t_naive = _best_seconds(
        lambda: _run_threads(naive_worker,
                             list(enumerate(thread_queries))),
        sizes["repeats"])

    # -- service: same threads, micro-batched through the dispatcher --
    # use_cache=False everywhere: the naive and direct legs bypass the
    # query cache, so the service must too for an apples-to-apples
    # ratio (the workload is unique random queries — all cache misses).
    service = SearchService(service_store, max_batch=sizes["max_batch"],
                            max_wait=sizes["max_wait"],
                            max_queue=max(4 * n_requests, 1024),
                            use_cache=False)
    service_results = {}

    def service_worker(idx, queries):
        service_results[idx] = service.search_many(queries)

    t_service = _best_seconds(
        lambda: _run_threads(service_worker,
                             list(enumerate(thread_queries))),
        sizes["repeats"])
    stats = service.stats
    service.close()

    # -- closed loop: one in-flight request per thread (informational) --
    closed_store = _build_store(sizes)
    closed_service = SearchService(closed_store, max_batch=sizes["max_batch"],
                                   max_queue=max(4 * n_requests, 1024),
                                   use_cache=False)

    def closed_loop_worker(idx, queries):
        for query in queries:
            closed_service.search(query)

    t_closed = _best_seconds(
        lambda: _run_threads(closed_loop_worker,
                             list(enumerate(thread_queries))),
        sizes["repeats"])
    closed_stats = closed_service.stats
    closed_service.close()

    # -- direct batch: the single-caller coalescing upper bound --
    t_direct = _best_seconds(
        lambda: _timed(lambda: direct_store.search_batch(
            all_queries, use_cache=False)),
        sizes["repeats"])

    # Spot-check: the served results are bit-identical to the locked
    # per-request path (same matches, same energy, same latency).
    for idx in naive_results:
        for lhs, rhs in zip(naive_results[idx], service_results[idx]):
            assert lhs.match_keys == rhs.result.match_keys
            assert lhs.energy == rhs.result.energy
            assert lhs.latency == rhs.result.latency

    return {
        "banks": sizes["banks"], "rows": sizes["rows"],
        "width_bits": sizes["width"], "threads": sizes["threads"],
        "requests": n_requests,
        "naive_qps": n_requests / t_naive,
        "service_qps": n_requests / t_service,
        "closed_loop_qps": n_requests / t_closed,
        "direct_batch_qps": n_requests / t_direct,
        "coalescing_speedup": t_naive / t_service,
        "service_direct_ratio": t_direct / t_service,
        "closed_loop_speedup": t_naive / t_closed,
        "closed_loop_mean_batch": closed_stats.mean_batch_size,
        "mean_batch_size": stats.mean_batch_size,
        "coalesced_ratio": stats.coalesced_ratio,
        "p50_latency_s": stats.p50_latency,
        "p99_latency_s": stats.p99_latency,
        "max_queue_depth": stats.max_queue_depth,
        "bit_identical": True,
    }


def _timed(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _bench_rows(row, sizes):
    """Flatten to the repo-root ``{metric, value, unit, config}`` schema
    shared by every BENCH_*.json."""
    units = {
        "naive_qps": "query/s", "service_qps": "query/s",
        "closed_loop_qps": "query/s", "direct_batch_qps": "query/s",
        "coalescing_speedup": "x", "closed_loop_speedup": "x",
        "service_direct_ratio": "ratio",
        "closed_loop_mean_batch": "query/batch",
        "mean_batch_size": "query/batch", "coalesced_ratio": "ratio",
        "p50_latency_s": "s", "p99_latency_s": "s",
    }
    config = {"banks": row["banks"], "rows": row["rows"],
              "width_bits": row["width_bits"],
              "threads": row["threads"], "requests": row["requests"],
              "fill": FILL, "max_batch": sizes["max_batch"],
              "max_wait_s": sizes["max_wait"], "mode": sizes["mode"]}
    return _emit.rows_from(row, units, config)


def run(sizes, json_path=None):
    row = _measure(sizes)
    default_paths = json_path is None
    if json_path is None:
        json_path = _emit.results_path("service_throughput")
    payload = {"benchmark": "service_throughput",
               "config": {key: sizes[key] for key in
                          ("mode", "banks", "rows", "width", "threads",
                           "requests_per_thread", "max_batch",
                           "max_wait")},
               "results": [row]}
    # The repo-root trajectory file only ever holds full-size numbers:
    # a --tiny smoke (or an --out redirect) must not clobber it.
    root_path = (_emit.repo_bench_path("service")
                 if sizes["mode"] == "full" and default_paths else None)
    paths = _emit.emit(payload, _bench_rows(row, sizes),
                       results_file=json_path, root_file=root_path)
    return row, paths


def print_report(row):
    from fecam.bench import print_experiment
    print_experiment(
        "Service throughput (naive locking vs micro-batched service)",
        ["threads", "naive qps", "service qps", "closed-loop",
         "direct qps", "speedup", "svc/direct", "mean batch", "p99 ms"],
        [[row["threads"], row["naive_qps"], row["service_qps"],
          row["closed_loop_qps"], row["direct_batch_qps"],
          row["coalescing_speedup"], row["service_direct_ratio"],
          row["mean_batch_size"], row["p99_latency_s"] * 1e3]])


def check_floors(row, sizes):
    assert row["bit_identical"]
    assert row["coalescing_speedup"] >= sizes["floor"], (
        f"micro-batched service is only {row['coalescing_speedup']:.1f}x "
        f"the per-request locking baseline at {row['threads']} threads "
        f"(acceptance floor {sizes['floor']}x)")
    # Coalescing must actually happen, not just win on noise.
    assert row["mean_batch_size"] > 1.0
    assert row["coalesced_ratio"] > 0.5
    if sizes["direct_ratio_floor"] is not None:
        assert row["service_direct_ratio"] >= sizes["direct_ratio_floor"], (
            f"service serves only {row['service_direct_ratio']:.2f} of "
            f"the direct-batch upper bound at {row['threads']} threads "
            f"(acceptance floor {sizes['direct_ratio_floor']:.2f})")


def test_bench_service_throughput():
    row, paths = run(FULL)
    print_report(row)
    print("JSON written to " + ", ".join(paths))
    check_floors(row, FULL)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tiny", action="store_true",
                        help="CI smoke mode: small store, few threads, "
                             ">= 1x sanity floor")
    parser.add_argument("--out", default=None, help="JSON output path")
    args = parser.parse_args()
    chosen = TINY if args.tiny else FULL
    result_row, out_paths = run(chosen, args.out)
    print_report(result_row)
    print("JSON written to " + ", ".join(out_paths))
    check_floors(result_row, chosen)
