"""Metrics-fidelity benchmark: per-tier evaluation cost + tier agreement.

Measures, for every FeFET design, how long one cold ``evaluate()`` takes
on each fidelity tier (paper / analytical / spice), how fast warm
registry hits are served, and the analytical tier's relative error
against the SPICE ground truth for the headline figures (total latency,
average energy, EDP).  Emits JSON
(``benchmarks/results/metrics_fidelity.json``) for the bench trajectory.

Run directly (``python benchmarks/bench_metrics_fidelity.py``;
``--tiny`` shrinks to one design/word length for CI smoke), or via
pytest (``pytest benchmarks/bench_metrics_fidelity.py``).
"""

import argparse
import json
import os
import time

from fecam.designs import DesignKind
from fecam.metrics import (ANALYTICAL_ENERGY_FACTOR,
                           ANALYTICAL_LATENCY_FACTOR, DesignPoint,
                           clear_registry, evaluate)

FULL = dict(designs=DesignKind.fefet_designs(), word_lengths=(16, 64))
TINY = dict(designs=(DesignKind.DG_1T5,), word_lengths=(16,))


def _timed_evaluate(point, fidelity):
    start = time.perf_counter()
    fom = evaluate(point, fidelity)
    return fom, time.perf_counter() - start


def _relative_error(approx, exact):
    return abs(approx - exact) / exact


def run_benchmark(tiny=False):
    sizes = TINY if tiny else FULL
    clear_registry()
    report = {"mode": "tiny" if tiny else "full", "points": []}
    for design in sizes["designs"]:
        for n in sizes["word_lengths"]:
            point = DesignPoint(design=design, word_length=n)
            entry = {"design": str(design), "word_length": n,
                     "tiers": {}, "analytical_vs_spice": {}}
            foms = {}
            for fidelity in ("paper", "analytical", "spice"):
                fom, cold = _timed_evaluate(point, fidelity)
                _, warm = _timed_evaluate(point, fidelity)  # registry hit
                foms[fidelity] = fom
                entry["tiers"][fidelity] = {
                    "cold_ms": round(cold * 1e3, 3),
                    "warm_us": round(warm * 1e6, 2),
                    "latency_total_ps": fom.as_row()["latency_total_ps"],
                    "energy_avg_fj": fom.as_row()["energy_avg_fj"],
                }
            quick, truth = foms["analytical"], foms["spice"]
            entry["analytical_vs_spice"] = {
                "latency_total": round(_relative_error(
                    quick.latency_total, truth.latency_total), 4),
                "energy_avg": round(_relative_error(
                    quick.search_energy_avg, truth.search_energy_avg), 4),
                "edp": round(_relative_error(quick.edp, truth.edp), 4),
                "latency_ratio": round(
                    quick.latency_total / truth.latency_total, 4),
                "energy_ratio": round(
                    quick.search_energy_avg / truth.search_energy_avg, 4),
            }
            speedup = (entry["tiers"]["spice"]["cold_ms"]
                       / max(entry["tiers"]["analytical"]["cold_ms"], 1e-6))
            entry["analytical_speedup_over_spice"] = round(speedup, 1)
            report["points"].append(entry)
            print(f"{entry['design']:>11} N={n:<4} "
                  f"spice {entry['tiers']['spice']['cold_ms']:>8.1f} ms | "
                  f"analytical {entry['tiers']['analytical']['cold_ms']:>7.3f} ms "
                  f"(x{speedup:,.0f}) | "
                  f"err lat {entry['analytical_vs_spice']['latency_total']:.2f} "
                  f"energy {entry['analytical_vs_spice']['energy_avg']:.2f}")
    _check(report)
    return report


def _check(report):
    """Sanity gates: cheap tiers are cheap, agreement stays stated.

    Agreement is gated on the analytical/SPICE *ratio* (both sides, the
    shared ``fecam.metrics.ANALYTICAL_*_FACTOR`` bounds the tier-1 tests
    pin) — a relative-error bound would saturate near 1.0 for gross
    underestimates and never fire.  The wall-clock gates are deliberately
    loose (an order of magnitude over typical) so shared-runner
    contention cannot fail the CI smoke step; they only catch a cheap
    tier accidentally routing through the transient simulator.
    """
    for entry in report["points"]:
        tiers = entry["tiers"]
        # Cheap tiers run ~0.2-1 ms; a SPICE run is >=90 ms even tiny.
        assert tiers["paper"]["cold_ms"] < 50.0, entry
        assert tiers["analytical"]["cold_ms"] < 50.0, entry
        assert tiers["spice"]["warm_us"] < 1e4, entry  # registry hit
        agree = entry["analytical_vs_spice"]
        assert (1.0 / ANALYTICAL_LATENCY_FACTOR < agree["latency_ratio"]
                < ANALYTICAL_LATENCY_FACTOR), entry
        assert (1.0 / ANALYTICAL_ENERGY_FACTOR < agree["energy_ratio"]
                < ANALYTICAL_ENERGY_FACTOR), entry


def write_report(report, path=None):
    if path is None:
        path = os.path.join(os.path.dirname(__file__), "results",
                            "metrics_fidelity.json")
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    print(f"wrote {path}")


def test_metrics_fidelity_smoke():
    """Pytest entry: every tier evaluates and agrees (tiny grid)."""
    report = run_benchmark(tiny=True)
    assert len(report["points"]) == 1
    assert report["points"][0]["tiers"]["spice"]["latency_total_ps"] > 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tiny", action="store_true",
                        help="CI smoke mode: one design, one word length")
    parser.add_argument("--out", default=None, help="JSON output path")
    args = parser.parse_args()
    write_report(run_benchmark(tiny=args.tiny), args.out)
