"""Ablation (Sec. III-B3): early-termination energy saving vs miss rate.

The paper assumes a pessimistic 90 % step-1 miss rate and reports the
average search energy; this bench sweeps the miss rate and verifies the
saving grows monotonically, hitting the paper's operating point.
"""

from fecam.bench import ablation_early_termination, print_experiment


def test_ablation_early_termination(benchmark):
    rows = benchmark.pedantic(ablation_early_termination, rounds=1,
                              iterations=1)
    print_experiment(
        "Early-termination energy vs step-1 miss rate",
        ["design", "miss_rate", "E_with_fj", "E_without_fj", "saving_%"],
        [[r["design"], r["step1_miss_rate"],
          r["energy_with_early_term_fj"], r["energy_without_fj"],
          r["saving_pct"]] for r in rows])
    for design in ("1.5T1SG-Fe", "1.5T1DG-Fe"):
        series = [r for r in rows if r["design"] == design]
        savings = [r["saving_pct"] for r in series]
        assert all(b >= a - 1e-9 for a, b in zip(savings, savings[1:]))
        at90 = next(r for r in series if r["step1_miss_rate"] == 0.9)
        assert at90["saving_pct"] > 15.0  # material saving at the paper's point
