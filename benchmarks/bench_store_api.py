"""Store-API throughput: every application workload on both backends.

Runs all five `fecam.apps` workloads (router LPM, packet classifier,
associative cache, genomics seed index, Hamming nearest-neighbor)
through the unified :class:`~fecam.store.CamStore` front door, once on
the single-array backend and once on a sharded fabric backend with
query caching, and reports queries/sec plus store telemetry for each
combination.  Emits JSON twice: the full report at
``benchmarks/results/store_api.json`` (CI artifact), and the
machine-trackable ``BENCH_store.json`` at the repo root — rows of
``{metric, value, unit, config}`` for the perf trajectory.

Run directly (``python benchmarks/bench_store_api.py``; ``--tiny``
shrinks every workload for CI smoke), or via pytest
(``pytest benchmarks/bench_store_api.py``).
"""

import argparse
import random
import time
from dataclasses import replace

import _emit

from fecam.apps import (HammingSearcher, Packet, Rule, SeedIndex,
                        TcamCache, TcamClassifier, TcamRouter, int_to_ip)
from fecam.designs import DesignKind
from fecam.functional import EnergyModel
from fecam.store import StoreConfig

FULL = dict(routes=512, lookups=2000, rules=24, packets=1500,
            cache_lines=64, accesses=1500, reference_len=4096,
            seed_lookups=1000, hamming_rows=48, hamming_queries=150)
TINY = dict(routes=16, lookups=40, rules=4, packets=30, cache_lines=8,
            accesses=40, reference_len=128, seed_lookups=20,
            hamming_rows=8, hamming_queries=6)

FABRIC_BANKS = 8
CACHE_SIZE = 512


def _fast_model(width):
    """Fixed FoM numbers: benchmarks time search, not SPICE."""
    return EnergyModel(DesignKind.DG_1T5, width, e_1step_per_bit=0.8e-15,
                       e_2step_per_bit=1.3e-15, latency_1step=0.7e-9,
                       latency_2step=2.3e-9,
                       write_energy_per_cell=0.41e-15)


def _configs():
    return {
        "array": StoreConfig(),
        "fabric": StoreConfig(banks=FABRIC_BANKS, cache_size=CACHE_SIZE),
    }


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _store_summary(stats):
    return {"backend": stats.backend, "banks": stats.banks,
            "searches": stats.searches,
            "array_searches": stats.array_searches,
            "cache_hit_rate": round(stats.cache_hit_rate, 4),
            "energy_j": stats.energy_total}


def bench_router(config, sizes, rng):
    config = replace(config, energy_model=_fast_model(32))
    router = TcamRouter(capacity=sizes["routes"] + 1, store_config=config)
    router.add_route("0.0.0.0/0", "default")
    for i in range(sizes["routes"] - 1):
        net = rng.randrange(0, 1 << 32)
        router.add_route(f"{int_to_ip(net)}/{rng.randrange(8, 29)}",
                         f"hop{i}")
    # Hot-set traffic so the fabric config's query cache has work to do.
    hot = [int_to_ip(rng.randrange(0, 1 << 32)) for _ in
           range(max(sizes["lookups"] // 10, 1))]
    addrs = [rng.choice(hot) for _ in range(sizes["lookups"])]
    router.lookup(addrs[0])  # build the store outside the timed region
    hops, elapsed = _timed(lambda: router.lookup_batch(addrs))
    assert all(h is not None for h in hops)
    return len(addrs) / elapsed, router.store_stats


def bench_classifier(config, sizes, rng):
    config = replace(config, energy_model=_fast_model(104))
    cl = TcamClassifier(store_config=config)
    cl.add_rule(Rule(name="catch-all"))
    for i in range(sizes["rules"] - 1):
        lo = rng.randrange(0, 1 << 15)
        cl.add_rule(Rule(
            name=f"r{i}",
            src_prefix=(rng.randrange(1 << 32), rng.randrange(8, 25)),
            dst_port_range=(lo, lo + rng.randrange(1, 512)),
            protocol=rng.choice((None, 6, 17))))
    packets = [Packet(src_ip=rng.randrange(1 << 32),
                      dst_ip=rng.randrange(1 << 32),
                      src_port=rng.randrange(1 << 16),
                      dst_port=rng.randrange(1 << 16),
                      protocol=rng.choice((6, 17)))
               for _ in range(sizes["packets"])]
    cl.classify(packets[0])
    names, elapsed = _timed(lambda: cl.classify_batch(packets))
    assert all(n is not None for n in names)  # catch-all matches
    return len(packets) / elapsed, cl.store_stats


def bench_cache(config, sizes, rng):
    config = replace(config, energy_model=_fast_model(18))
    cache = TcamCache(lines=sizes["cache_lines"], block_bits=6,
                      address_bits=24, store_config=config)
    trace = [rng.randrange(0, 1 << 18) & ~0x3F
             for _ in range(sizes["accesses"] // 2)]
    trace += [rng.choice(trace) for _ in range(sizes["accesses"] // 2)]

    def run():
        for addr in trace:
            cache.access(addr)
        return cache.hit_rate

    hit_rate, elapsed = _timed(run)
    assert 0.0 < hit_rate < 1.0
    return len(trace) / elapsed, cache.store_stats


def bench_genomics(config, sizes, rng):
    config = replace(config, energy_model=_fast_model(20))
    ref = "".join(rng.choice("ACGT") for _ in range(sizes["reference_len"]))
    index = SeedIndex(ref, k=10, store_config=config)
    starts = [rng.randrange(0, len(ref) - 10)
              for _ in range(sizes["seed_lookups"])]
    seeds = [ref[s:s + 10] for s in starts]
    index.lookup(seeds[0])
    hits, elapsed = _timed(lambda: index.lookup_batch(seeds))
    assert all(hit_list for hit_list in hits)  # every seed is in ref
    return len(seeds) / elapsed, index.store_stats


def bench_hamming(config, sizes, rng):
    config = replace(config, energy_model=_fast_model(12))
    searcher = HammingSearcher(rows=sizes["hamming_rows"], width=12,
                               store_config=config)
    for row in range(sizes["hamming_rows"]):
        searcher.store(row, "".join(rng.choice("01X") for _ in range(12)))
    queries = ["".join(rng.choice("01") for _ in range(12))
               for _ in range(sizes["hamming_queries"])]

    def run():
        return [searcher.nearest(q, max_distance=2) for q in queries]

    _, elapsed = _timed(run)
    return len(queries) / elapsed, searcher.cam_store.stats


WORKLOADS = [
    ("router", bench_router),
    ("classifier", bench_classifier),
    ("cache", bench_cache),
    ("genomics", bench_genomics),
    ("hamming", bench_hamming),
]


def run_benchmark(tiny=False):
    sizes = TINY if tiny else FULL
    report = {"mode": "tiny" if tiny else "full",
              "fabric_banks": FABRIC_BANKS, "cache_size": CACHE_SIZE,
              "workloads": {}}
    for workload, fn in WORKLOADS:
        entry = {}
        for label, config in _configs().items():
            rng = random.Random(7)  # identical traffic per backend
            qps, stats = fn(config, sizes, rng)
            entry[label] = {"queries_per_sec": round(qps, 1),
                            "store": _store_summary(stats)}
        entry["fabric_vs_array"] = round(
            entry["fabric"]["queries_per_sec"]
            / entry["array"]["queries_per_sec"], 3)
        report["workloads"][workload] = entry
        print(f"{workload:>11}: array {entry['array']['queries_per_sec']:>12.1f} q/s"
              f" | fabric {entry['fabric']['queries_per_sec']:>12.1f} q/s"
              f" (x{entry['fabric_vs_array']:.2f}, hit rate "
              f"{entry['fabric']['store']['cache_hit_rate']:.2f})")
    return report


def _bench_rows(report):
    """Flatten the report to the repo-root ``{metric, value, unit,
    config}`` schema shared by every BENCH_*.json."""
    rows = []
    for workload, entry in report["workloads"].items():
        for backend in ("array", "fabric"):
            config = {"workload": workload, "backend": backend,
                      "banks": entry[backend]["store"]["banks"],
                      "mode": report["mode"]}
            rows.append({"metric": "queries_per_sec",
                         "value": entry[backend]["queries_per_sec"],
                         "unit": "query/s", "config": config})
            rows.append({"metric": "cache_hit_rate",
                         "value": entry[backend]["store"]["cache_hit_rate"],
                         "unit": "ratio", "config": config})
            rows.append({"metric": "store_energy",
                         "value": entry[backend]["store"]["energy_j"],
                         "unit": "J", "config": config})
        rows.append({"metric": "fabric_vs_array",
                     "value": entry["fabric_vs_array"], "unit": "x",
                     "config": {"workload": workload,
                                "mode": report["mode"]}})
    return rows


def write_report(report, path=None):
    if path is None:
        path = _emit.results_path("store_api")
    # The repo-root trajectory file only ever holds full-size numbers:
    # a --tiny smoke must not clobber it.
    root_path = (_emit.repo_bench_path("store")
                 if report["mode"] == "full" else None)
    paths = _emit.emit(report, _bench_rows(report), results_file=path,
                       root_file=root_path, sort_keys=True)
    for written in paths:
        print(f"wrote {written}")


def test_store_api_smoke():
    """Pytest entry: every workload runs on both backends (tiny sizes)."""
    report = run_benchmark(tiny=True)
    for workload, entry in report["workloads"].items():
        assert entry["array"]["queries_per_sec"] > 0
        assert entry["fabric"]["store"]["banks"] == FABRIC_BANKS


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tiny", action="store_true",
                        help="CI smoke mode: tiny workloads")
    parser.add_argument("--out", default=None, help="JSON output path")
    args = parser.parse_args()
    write_report(run_benchmark(tiny=args.tiny), args.out)
