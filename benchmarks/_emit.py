"""Shared JSON emitter for the benchmark suite.

Every benchmark writes the same two artifacts and previously hand-rolled
both: a full report under ``benchmarks/results/<name>.json`` (the CI
artifact) and — for full-size default-path runs — a machine-trackable
``BENCH_<short>.json`` at the repo root holding rows of
``{metric, value, unit, config}`` for the perf trajectory.  This module
owns the paths, the row schema, and the writes; each benchmark keeps
only its own gating (mode, ``--out`` redirects) and its metric→unit
tables.
"""

import json
import os

__all__ = ["REPO_ROOT", "RESULTS_DIR", "results_path", "repo_bench_path",
           "rows_from", "emit"]

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")


def results_path(name):
    """Default CI-artifact path: ``benchmarks/results/<name>.json``."""
    return os.path.join(RESULTS_DIR, f"{name}.json")


def repo_bench_path(short_name):
    """Repo-root trajectory path: ``BENCH_<short_name>.json``."""
    return os.path.join(REPO_ROOT, f"BENCH_{short_name}.json")


def rows_from(row, units, config):
    """Flatten one result-row dict to ``{metric, value, unit, config}``
    rows — one per entry of the ``units`` metric→unit table."""
    return [{"metric": metric, "value": row[metric], "unit": unit,
             "config": config} for metric, unit in units.items()]


def emit(payload, bench_rows, *, results_file, root_file=None,
         sort_keys=False):
    """Write the results payload and (optionally) the repo-root rows.

    ``root_file=None`` skips the trajectory file — callers pass it only
    for full-size default-path runs, so a ``--tiny`` smoke or an
    ``--out`` redirect never clobbers the tracked numbers.  Returns the
    list of paths written.
    """
    os.makedirs(os.path.dirname(results_file), exist_ok=True)
    with open(results_file, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=sort_keys)
    paths = [results_file]
    if root_file is not None:
        with open(root_file, "w") as handle:
            json.dump(bench_rows, handle, indent=2)
        paths.append(root_file)
    return paths
