"""Ablation (Eq. 1 / Sec. V-C): divider margins of the frozen sizing.

Verifies both 1.5T1Fe designs keep positive mismatch and match margins
around the TML threshold — the condition behind every truth table.
"""

from fecam.bench import ablation_divider_margins, print_experiment


def test_ablation_divider_margins(benchmark):
    rows = benchmark.pedantic(ablation_divider_margins, rounds=1,
                              iterations=1)
    print_experiment(
        "1.5T1Fe divider margins (DC equilibria vs TML threshold)",
        ["design", "tml_vth", "mismatch_margin_v", "match_margin_v", "ok"],
        [[r["design"], r["tml_vth"], r["mismatch_margin_v"],
          r["match_margin_v"], r["functional"]] for r in rows])
    for r in rows:
        assert r["functional"]
        assert r["mismatch_margin_v"] > 0.08
        assert r["match_margin_v"] > 0.08
