"""Reliability ablation: the paper's endurance/retention claims.

Sec. I: the thick-FE ±4 V SG write limits endurance; the ±2 V DG write
"improves the endurance to the 1e10 level" [18].  Retention: the 1.5T1Fe
'X' (MVT) level is the retention-limited state.
"""

from fecam.bench import print_experiment
from fecam.designs import DesignKind
from fecam.devices import reliability_report


def run():
    return [reliability_report(d, writes_per_second=10.0)
            for d in DesignKind.fefet_designs()]


def test_reliability(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_experiment(
        "Endurance / retention by design (10 writes/s duty)",
        ["design", "Vw", "cycles_to_fail", "lifetime_yr",
         "MW_loss@1e6", "VT_drift_LVT_10y", "VT_drift_X_10y"],
        [[r["design"], r["write_voltage"], r["cycles_to_failure"],
          r["lifetime_years_at_rate"], r["mw_loss_at_1e6_cycles"],
          r["retention_vth_drift_lvt_v"], r["retention_vth_drift_x_v"]]
         for r in rows])
    by = {r["design"]: r for r in rows}
    # The paper's claim: DG endurance reaches the 1e10 level; SG is
    # orders of magnitude below.
    assert by["1.5T1DG-Fe"]["cycles_to_failure"] >= 0.99e10
    assert by["2DG-FeFET"]["cycles_to_failure"] >= 0.99e10
    assert by["2SG-FeFET"]["cycles_to_failure"] < 1e7
    # The MVT state is the retention-limited one.
    dg = by["1.5T1DG-Fe"]
    assert dg["retention_vth_drift_x_v"] > 0
