"""Paper Fig. 4: 1.5T1DG-Fe two-step search transients.

Regenerates the SeLa/SeLb, ML and SA-output waveforms for the match,
step-1 miss, and step-2 miss cases, and checks their qualitative shape:
step-1 miss discharges during step 1 (and terminates early), step-2 miss
during step 2, and the match keeps ML above the sense threshold (with the
small transition dip visible in the paper's match curve).
"""

import numpy as np

from fecam.bench import fig4_transient_waveforms, print_experiment


def test_fig4_transient(benchmark):
    traces = benchmark.pedantic(fig4_transient_waveforms, rounds=1,
                                iterations=1)
    rows = []
    for scenario, tr in traces.items():
        ml = np.asarray(tr["ml"])
        rows.append([scenario, tr["steps_run"], tr["latency_ps"],
                     float(ml.min()), tr["matched"], tr["expected"]])
    print_experiment(
        "Fig. 4 transient summary (1.5T1DG-Fe, 64-bit word)",
        ["scenario", "steps", "latency_ps", "ml_min_v", "matched", "expected"],
        rows)

    s1, s2, mt = traces["step1_miss"], traces["step2_miss"], traces["match"]
    assert s1["steps_run"] == 1 and not s1["matched"]  # early termination
    assert s2["steps_run"] == 2 and not s2["matched"]
    assert mt["matched"] and mt["expected"]
    assert s1["latency_ps"] < s2["latency_ps"]
    # Match-case ML never crosses the SA threshold (0.4 V), but may dip.
    assert min(mt["ml"]) > 0.4
    # SeLb stays grounded in the early-terminated search (paper Fig. 7 note).
    assert max(s1["selb"]) < 0.1
    assert max(s2["selb"]) > 1.5
