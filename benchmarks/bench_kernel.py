"""Match-kernel throughput: compiled backend vs the NumPy fused kernel.

The fused two-step kernel (:func:`fecam.fabric.batch.
fused_count_matches`) is the floor under every serving number; PR 9
gives it a compiled backend (:mod:`fecam.kernels`).  This benchmark
measures the kernel *alone* — no service, no locks, no result
assembly — over a bank-count sweep, pitting the compiled kernel
against the NumPy backend's own best strategy on identical inputs.

Methodology notes:

* Timings interleave the two backends inside one best-of-``repeats``
  loop (numpy pass, compiled pass, repeat) so scheduler noise on a
  loaded runner hits both equally — the ratio is far more stable than
  the absolute numbers.
* Every configuration is spot-checked bit-identical (counts and match
  lists) between the backends before any timing is trusted.
* If the compiled backend cannot be built (no C compiler), the
  benchmark still emits the NumPy numbers with ``compiled_qps: null``
  and skips the ratio floor — mirroring the registry's graceful
  fallback.

The acceptance floor: at 16 banks (full mode) the compiled kernel must
clear >= 3x the NumPy fused kernel.  ``--tiny`` is the CI smoke: small
arena, >= 1x sanity floor.

Emits JSON twice: the full report at
``benchmarks/results/kernel_throughput.json`` and — for full runs —
the machine-trackable ``BENCH_kernel.json`` at the repo root.

Run directly (``python benchmarks/bench_kernel.py [--tiny]``) or via
pytest (``pytest benchmarks/bench_kernel.py``).
"""

import argparse
import random
import time

import numpy as np

import _emit

from fecam import kernels
from fecam.fabric.batch import fused_count_matches, pack_queries
from fecam.functional import pack_words
from fecam.planes import TernaryPlanes

#: Stored-word symbol distribution: mostly specified bits with a tail
#: of wildcards — the rule-table shape the paper's step-1 stats assume.
P_SYMBOLS = (0.45, 0.45, 0.10)

FULL = dict(mode="full", bank_counts=(1, 4, 16), rows_per_bank=512,
            width=64, n_queries=256, repeats=40, floor_banks=16,
            floor=3.0)
TINY = dict(mode="tiny", bank_counts=(1, 4), rows_per_bank=64,
            width=32, n_queries=64, repeats=20, floor_banks=4,
            floor=1.0)


def _build_planes(n_banks, rows_per_bank, width, seed=7):
    rng = np.random.default_rng(seed)
    rows = n_banks * rows_per_bank
    planes = TernaryPlanes(rows=rows, width=width)
    words = ["".join(rng.choice(list("01X"), size=width, p=P_SYMBOLS))
             for _ in range(rows)]
    value, care = pack_words(words, width)
    planes.set_rows(np.arange(rows), value, care)
    return planes


def _queries(n_queries, width, seed=11):
    rng = random.Random(seed)
    return pack_queries(["".join(rng.choice("01") for _ in range(width))
                         for _ in range(n_queries)], width)


def _assert_identical(a, b):
    np.testing.assert_array_equal(a.step1_eliminated, b.step1_eliminated)
    np.testing.assert_array_equal(a.step2_misses, b.step2_misses)
    np.testing.assert_array_equal(a.full_matches, b.full_matches)
    assert list(a.match_q) == list(b.match_q)
    assert list(a.match_rows) == list(b.match_rows)


def _timed(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _measure_config(sizes, n_banks, compiled_available):
    planes = _build_planes(n_banks, sizes["rows_per_bank"],
                           sizes["width"])
    q_values = _queries(sizes["n_queries"], sizes["width"])
    n_queries = sizes["n_queries"]

    def run_numpy():
        return fused_count_matches(planes, q_values, n_banks=n_banks,
                                   reuse_buffers=True)

    def run_compiled():
        return fused_count_matches(planes, q_values, n_banks=n_banks,
                                   kernel="compiled", reuse_buffers=True)

    # Bit-identity gate (also the warmup: builds derived planes, the
    # step-1 index, and the compiled library before any timing).
    kernels.set_backend("numpy")
    try:
        reference = run_numpy()
        numpy_strategy = reference.kernel
        if compiled_available:
            _assert_identical(reference, run_compiled())
    finally:
        kernels.set_backend(None)

    best_numpy = best_compiled = float("inf")
    for _ in range(sizes["repeats"]):
        kernels.set_backend("numpy")
        try:
            best_numpy = min(best_numpy, _timed(run_numpy))
        finally:
            kernels.set_backend(None)
        if compiled_available:
            best_compiled = min(best_compiled, _timed(run_compiled))

    numpy_qps = n_queries / best_numpy
    compiled_qps = (n_queries / best_compiled
                    if compiled_available else None)
    return {
        "banks": n_banks, "rows": n_banks * sizes["rows_per_bank"],
        "width_bits": sizes["width"], "queries": n_queries,
        "numpy_strategy": numpy_strategy,
        "numpy_qps": numpy_qps,
        "compiled_qps": compiled_qps,
        "speedup": (compiled_qps / numpy_qps
                    if compiled_qps is not None else None),
        "bit_identical": bool(compiled_available),
    }


def _measure(sizes):
    compiled_available = kernels.compiled_available()
    return [_measure_config(sizes, n_banks, compiled_available)
            for n_banks in sizes["bank_counts"]], compiled_available


def _bench_rows(rows, sizes):
    units = {"numpy_qps": "query/s", "compiled_qps": "query/s",
             "speedup": "x"}
    out = []
    for row in rows:
        config = {"banks": row["banks"], "rows": row["rows"],
                  "width_bits": row["width_bits"],
                  "queries": row["queries"],
                  "numpy_strategy": row["numpy_strategy"],
                  "p_symbols": list(P_SYMBOLS),
                  "repeats": sizes["repeats"], "mode": sizes["mode"]}
        out.extend(_emit.rows_from(row, units, config))
    return out


def run(sizes, json_path=None):
    rows, compiled_available = _measure(sizes)
    default_paths = json_path is None
    if json_path is None:
        json_path = _emit.results_path("kernel_throughput")
    payload = {"benchmark": "kernel_throughput",
               "config": {key: sizes[key] for key in
                          ("mode", "bank_counts", "rows_per_bank",
                           "width", "n_queries", "repeats")},
               "compiled_available": compiled_available,
               "results": rows}
    root_path = (_emit.repo_bench_path("kernel")
                 if sizes["mode"] == "full" and default_paths else None)
    paths = _emit.emit(payload, _bench_rows(rows, sizes),
                       results_file=json_path, root_file=root_path)
    return rows, compiled_available, paths


def print_report(rows):
    from fecam.bench import print_experiment
    print_experiment(
        "Match-kernel throughput (NumPy fused vs compiled backend)",
        ["banks", "rows", "queries", "numpy strategy", "numpy qps",
         "compiled qps", "speedup"],
        [[row["banks"], row["rows"], row["queries"],
          row["numpy_strategy"], row["numpy_qps"],
          row["compiled_qps"], row["speedup"]] for row in rows])


def check_floors(rows, sizes, compiled_available):
    for row in rows:
        assert row["numpy_qps"] > 0
    if not compiled_available:
        print("compiled kernel unavailable: ratio floor skipped "
              "(graceful-fallback path exercised instead)")
        return
    gated = [row for row in rows if row["banks"] == sizes["floor_banks"]]
    assert gated, f"no row at the gated bank count {sizes['floor_banks']}"
    for row in gated:
        assert row["bit_identical"]
        assert row["speedup"] >= sizes["floor"], (
            f"compiled kernel is only {row['speedup']:.2f}x the NumPy "
            f"fused kernel at {row['banks']} banks (acceptance floor "
            f"{sizes['floor']}x)")


def test_bench_kernel():
    rows, compiled_available, paths = run(FULL)
    print_report(rows)
    print("JSON written to " + ", ".join(paths))
    check_floors(rows, FULL, compiled_available)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tiny", action="store_true",
                        help="CI smoke mode: small arena, >= 1x sanity "
                             "floor")
    parser.add_argument("--out", default=None, help="JSON output path")
    args = parser.parse_args()
    chosen = TINY if args.tiny else FULL
    result_rows, available, out_paths = run(chosen, args.out)
    print_report(result_rows)
    print("JSON written to " + ", ".join(out_paths))
    check_floors(result_rows, chosen, available)
