"""Paper Tab. I: 2DG-FeFET TCAM cell operation table.

Programs every ternary state and searches both query bits through full
SPICE transients, asserting the truth table the paper specifies.
"""

from fecam.bench import print_experiment, table1_operations


def test_table1_2dg_operations(benchmark):
    rows = benchmark.pedantic(table1_operations, rounds=1, iterations=1)
    print_experiment("Tab. I — 2DG-FeFET cell operations (SPICE-verified)",
                     ["stored", "search", "expected", "measured", "correct"],
                     [[r["stored"], r["search"], r["expected_match"],
                       r["measured_match"], r["correct"]] for r in rows])
    assert all(r["correct"] for r in rows)
    # 'X' matches both query values (the ternary don't-care).
    x_rows = [r for r in rows if r["stored"] == "X"]
    assert all(r["measured_match"] for r in x_rows)
