"""Paper Fig. 1(c)/(d): SG FG-read and DG BG-read I-V characteristics.

Regenerates both curves and checks the headline device metrics: memory
windows (1.8 V / 2.7 V), the ~1e4-level ON/OFF ratio at the shared 2.0 V,
and the BG-read subthreshold-slope degradation.
"""

from fecam.bench import fig1_iv_curves, print_experiment


def test_fig1_device_iv(benchmark):
    data = benchmark.pedantic(fig1_iv_curves, rounds=1, iterations=1)
    sg, dg = data["sg_fg_read"], data["dg_bg_read"]
    print_experiment(
        "Fig. 1 device metrics (paper vs measured)",
        ["metric", "paper", "measured"],
        [
            ["SG FG-read MW (V)", sg["paper_mw_v"], sg["mw_v"]],
            ["DG BG-read MW (V)", dg["paper_mw_v"], dg["mw_v"]],
            ["SG tFE (nm)", 10, sg["t_fe_nm"]],
            ["DG tFE (nm)", 5, dg["t_fe_nm"]],
            ["SG write voltage (V)", 4.0, sg["write_v"]],
            ["DG write voltage (V)", 2.0, dg["write_v"]],
            ["DG ON/OFF @ 2V", dg["paper_on_off_at_2v"], dg["on_off_at_2v"]],
            ["DG SS(FG) (mV/dec)", "~65", dg["ss_fg_mv_dec"]],
            ["DG SS(BG) (mV/dec)", "~190 (3x)", dg["ss_bg_mv_dec"]],
        ])
    # Shape assertions (the reproduction criteria).
    assert abs(sg["mw_v"] - 1.8) < 0.05
    assert abs(dg["mw_v"] - 2.7) < 0.05
    assert 1e3 < dg["on_off_at_2v"] < 1e7
    assert dg["ss_bg_mv_dec"] > 2.5 * dg["ss_fg_mv_dec"]
    # LVT conducts orders of magnitude above HVT at the read points.
    import numpy as np
    i_lvt = np.interp(2.0, dg["v"], dg["i_lvt"])
    i_hvt = np.interp(2.0, dg["v"], dg["i_hvt"])
    assert i_lvt / i_hvt > 1e3
