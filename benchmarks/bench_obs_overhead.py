"""Observability overhead: what does watching the service cost?

The `fecam.obs` design promise is that telemetry is pull-based and
sampling-gated, so the serving hot path pays ~nothing when obs is off
and a bounded, amortized cost when it is fully on.  This benchmark
holds the service stack to that promise by serving the identical
workload three ways:

* ``off``     — ``SearchService`` with no obs at all: the baseline
  (one ``None`` check per request);
* ``metrics`` — an :class:`~fecam.obs.Observability` bound to the
  service with every adapter hook registered and the latency histogram
  fed per batch, but no tracer: the always-on production configuration;
* ``traced``  — metrics plus a 1-in-N sampled tracer writing JSON-lines
  traces and a slow-query log: the debugging configuration.

Acceptance floors (full mode): ``metrics`` costs < 1% of baseline
throughput, ``traced`` costs < 5%.

Methodology — sub-percent floors on shared, frequency-throttled hosts
cannot survive naive wall-clock comparison (identical runs differ by
10%+ at every timescale), so the measurement is built to cancel noise
structurally:

* **deterministic units**: one unit is a fresh service over a *shared*
  store, created stopped (``start=False``), loaded with exactly
  ``unit_batch`` requests, then started and drained — so every unit
  performs bit-identical work (same single full batch, same spans
  sampled).  Concurrent submission would let thread scheduling decide
  batch composition, swinging real work by tens of percent;
* **adjacent pairs**: each timed sample is a (baseline unit,
  config unit) pair run back-to-back, so both sides share the same
  CPU-frequency window; the per-pair *ratio* is immune to drift slower
  than ~two units (tens of ms);
* **median of many pairs**: the per-config overhead is the median
  ratio over ``cycles`` pairs — robust to the throttling outliers that
  poison both means and minima;
* **self-calibration**: a ``control`` config (baseline vs baseline)
  measures the methodology's residual bias each run, and the reported
  overheads are normalized by it.

Emits JSON twice: the full report at
``benchmarks/results/obs_overhead.json`` (CI artifact) and — for full
runs — the machine-trackable ``BENCH_obs.json`` at the repo root, rows
of ``{metric, value, unit, config}``.

Run directly (``python benchmarks/bench_obs_overhead.py [--tiny]``) or
via pytest (``pytest benchmarks/bench_obs_overhead.py``).
"""

import argparse
import gc
import io
import json
import random
import statistics
import time

import _emit
import bench_service_throughput as svc

from fecam.obs import (EveryN, JsonLinesSink, Observability, SlowQueryLog,
                       Tracer)
from fecam.service import SearchService

FULL = dict(mode="full", banks=8, rows=8192, width=64, unit_batch=1024,
            cycles=150, max_wait=2e-3, sample_every=1024,
            slow_threshold=0.25, metrics_ceiling=0.01,
            traced_ceiling=0.05)
TINY = dict(mode="tiny", banks=4, rows=256, width=32, unit_batch=64,
            cycles=12, max_wait=2e-3, sample_every=64,
            slow_threshold=0.25, metrics_ceiling=0.5, traced_ceiling=0.5)

STAGES = ("queue", "coalesce", "lock_wait", "kernel", "freeze")

WARMUP_CYCLES = 3


def _unit_queries(sizes):
    rng = random.Random(20230807)
    width = sizes["width"]
    return ["".join(rng.choice("01") for _ in range(width))
            for _ in range(sizes["unit_batch"])]


def _run_unit(store, sizes, unit_queries, obs=None):
    """One deterministic unit of work; returns its wall seconds.

    The service starts stopped, accepts the whole unit, then the
    dispatcher drains it as one full batch — identical work every time,
    for every config.  Binding/unbinding the obs adapters happens
    outside the clock (that is snapshot plumbing, not hot path).
    """
    service = SearchService(store, max_batch=sizes["unit_batch"],
                            max_wait=sizes["max_wait"],
                            max_queue=4 * sizes["unit_batch"],
                            start=False, obs=obs)
    unbind = obs.bind_service(service) if obs is not None else None
    # GC off inside the clock: the binding/unbinding churn between
    # units would otherwise shift collection phase *into* some configs'
    # timed windows and not others', biasing the pair ratios.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    t0 = time.perf_counter()
    futures = service.submit_many(unit_queries)
    service.start()
    for future in futures:
        future.result()
    elapsed = time.perf_counter() - t0
    if gc_was_enabled:
        gc.enable()
    service.close()
    if unbind is not None:
        unbind()
    return elapsed


def _measure_pairs(store, sizes, configs):
    """Median (config unit)/(baseline unit) ratio per config, from
    ``cycles`` adjacent pairs each, plus the median baseline seconds."""
    unit_queries = _unit_queries(sizes)
    for _ in range(WARMUP_CYCLES):
        _run_unit(store, sizes, unit_queries)
        for _name, obs in configs:
            _run_unit(store, sizes, unit_queries, obs)
    ratios = {name: [] for name, _obs in configs}
    baseline_times = []
    for cycle in range(sizes["cycles"]):
        for name, obs in configs:
            # Alternate which side of the pair runs first so any
            # systematic first-vs-second position effect (cache state
            # left by the previous unit's teardown) cancels in the
            # median instead of needing a perfect control estimate.
            if cycle % 2 == 0:
                t_base = _run_unit(store, sizes, unit_queries)
                t_cfg = _run_unit(store, sizes, unit_queries, obs)
            else:
                t_cfg = _run_unit(store, sizes, unit_queries, obs)
                t_base = _run_unit(store, sizes, unit_queries)
            baseline_times.append(t_base)
            ratios[name].append(t_cfg / t_base)
    medians = {name: statistics.median(series)
               for name, series in ratios.items()}
    return medians, statistics.median(baseline_times)


def _check_traces(trace_text, sizes):
    """Validate the traced run's JSON-lines output: every trace's stage
    durations must sum to within tolerance of its reported e2e latency
    (the per-request profile the autotuner consumes)."""
    lines = [json.loads(line) for line in trace_text.splitlines()]
    assert lines, "traced run emitted no traces"
    covered = []
    for row in lines:
        stage_sum = sum(span["duration_s"] for span in row["spans"]
                        if span["name"] in STAGES)
        assert stage_sum <= row["duration_s"] * 1.05 + 1e-6, (
            f"stage sum {stage_sum} exceeds e2e {row['duration_s']}")
        covered.append(stage_sum / row["duration_s"]
                       if row["duration_s"] > 0 else 1.0)
    return len(lines), sum(covered) / len(covered)


def _measure(sizes):
    metrics_obs = Observability()
    trace_buf = io.StringIO()
    slow_buf = io.StringIO()
    traced_obs = Observability(
        tracer=Tracer(EveryN(sizes["sample_every"]),
                      JsonLinesSink(trace_buf)),
        slow_log=SlowQueryLog(sizes["slow_threshold"],
                              JsonLinesSink(slow_buf)))

    # One shared store for every unit: the hot-path delta under test
    # lives entirely in the service layer, and separate stores would
    # re-introduce per-instance memory-layout luck.
    store = svc._build_store(sizes)
    configs = [("control", None), ("metrics", metrics_obs),
               ("traced", traced_obs)]
    medians, t_unit = _measure_pairs(store, sizes, configs)

    metrics_text = metrics_obs.prometheus_text()
    assert "fecam_service_served_total" in metrics_text
    metrics_obs.close()

    traces_emitted, stage_coverage = _check_traces(trace_buf.getvalue(),
                                                   sizes)
    traced_obs.close()

    control = medians["control"]
    off_qps = sizes["unit_batch"] / t_unit
    return {
        "banks": sizes["banks"], "rows": sizes["rows"],
        "width_bits": sizes["width"], "unit_batch": sizes["unit_batch"],
        "cycles": sizes["cycles"],
        "off_qps": off_qps,
        "metrics_qps": off_qps / medians["metrics"] * control,
        "traced_qps": off_qps / medians["traced"] * control,
        "metrics_overhead": medians["metrics"] / control - 1.0,
        "traced_overhead": medians["traced"] / control - 1.0,
        "control_bias": control - 1.0,
        "traces_emitted": traces_emitted,
        "trace_stage_coverage": stage_coverage,
    }


def _bench_rows(row, sizes):
    units = {
        "off_qps": "query/s", "metrics_qps": "query/s",
        "traced_qps": "query/s", "metrics_overhead": "ratio",
        "traced_overhead": "ratio", "control_bias": "ratio",
        "traces_emitted": "trace", "trace_stage_coverage": "ratio",
    }
    config = {"banks": row["banks"], "rows": row["rows"],
              "width_bits": row["width_bits"],
              "unit_batch": sizes["unit_batch"],
              "cycles": sizes["cycles"],
              "max_wait_s": sizes["max_wait"],
              "sample_every": sizes["sample_every"],
              "mode": sizes["mode"]}
    return _emit.rows_from(row, units, config)


def run(sizes, json_path=None):
    row = _measure(sizes)
    default_paths = json_path is None
    if json_path is None:
        json_path = _emit.results_path("obs_overhead")
    payload = {"benchmark": "obs_overhead",
               "config": {key: sizes[key] for key in
                          ("mode", "banks", "rows", "width", "unit_batch",
                           "cycles", "max_wait", "sample_every")},
               "results": [row]}
    # The repo-root trajectory file only ever holds full-size numbers:
    # a --tiny smoke (or an --out redirect) must not clobber it.
    root_path = (_emit.repo_bench_path("obs")
                 if sizes["mode"] == "full" and default_paths else None)
    paths = _emit.emit(payload, _bench_rows(row, sizes),
                       results_file=json_path, root_file=root_path)
    return row, paths


def print_report(row):
    from fecam.bench import print_experiment
    print_experiment(
        "Observability overhead (off vs metrics vs sampled tracing)",
        ["batch", "off qps", "metrics qps", "traced qps",
         "metrics ovh %", "traced ovh %", "control %", "traces",
         "stage cover"],
        [[row["unit_batch"], row["off_qps"], row["metrics_qps"],
          row["traced_qps"], row["metrics_overhead"] * 100,
          row["traced_overhead"] * 100, row["control_bias"] * 100,
          row["traces_emitted"], row["trace_stage_coverage"]]])


def check_floors(row, sizes):
    assert row["metrics_overhead"] <= sizes["metrics_ceiling"], (
        f"metrics-only observability costs "
        f"{row['metrics_overhead'] * 100:.2f}% of baseline throughput "
        f"(ceiling {sizes['metrics_ceiling'] * 100:.0f}%)")
    assert row["traced_overhead"] <= sizes["traced_ceiling"], (
        f"sampled tracing costs {row['traced_overhead'] * 100:.2f}% of "
        f"baseline throughput "
        f"(ceiling {sizes['traced_ceiling'] * 100:.0f}%)")
    assert row["traces_emitted"] >= 1
    # Every stage of every trace fits inside its request's e2e span,
    # and on average the stages explain most of the latency.
    assert 0.0 < row["trace_stage_coverage"] <= 1.05


def test_bench_obs_overhead():
    row, paths = run(FULL)
    print_report(row)
    print("JSON written to " + ", ".join(paths))
    check_floors(row, FULL)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tiny", action="store_true",
                        help="CI smoke mode: small store, lenient "
                             "overhead ceilings")
    parser.add_argument("--out", default=None, help="JSON output path")
    args = parser.parse_args()
    chosen = TINY if args.tiny else FULL
    result_row, out_paths = run(chosen, args.out)
    print_report(result_row)
    print("JSON written to " + ", ".join(out_paths))
    check_floors(result_row, chosen)
