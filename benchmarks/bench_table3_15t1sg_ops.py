"""Paper Tab. III: 1.5T1SG-Fe TCAM cell operation table.

Same verification for the SG adaptation (merged BL/SeL, Vw=4 V,
Vm=3.2 V, VSeL=0.8 V).
"""

from fecam.bench import print_experiment, table3_operations


def test_table3_15t1sg_operations(benchmark):
    rows = benchmark.pedantic(table3_operations, rounds=1, iterations=1)
    print_experiment("Tab. III — 1.5T1SG-Fe cell operations (SPICE-verified)",
                     ["stored", "search", "expected", "measured", "correct"],
                     [[r["stored"], r["search"], r["expected_match"],
                       r["measured_match"], r["correct"]] for r in rows])
    assert all(r["correct"] for r in rows)
    v = rows[0]
    assert v["vw"] == 4.0 and v["vm"] == 3.2 and v["vsel"] == 0.8
