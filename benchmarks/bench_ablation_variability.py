"""Ablation: Monte-Carlo variability of the 1.5T1Fe divider (DESIGN.md
S12, motivated by the DG-FeFET variability analysis the paper cites).

Sweeps the FE domain count (grain size) and reports functional yield —
the multi-level MVT state is the variation-limited one, which is why the
paper's co-optimized margins matter.
"""

from fecam.bench import print_experiment
from fecam.designs import DesignKind
from fecam.devices import VariationParams, divider_yield


def run():
    rows = []
    for design in (DesignKind.SG_1T5, DesignKind.DG_1T5):
        for n_domains in (20, 80, 320):
            r = divider_yield(design, samples=120,
                              params=VariationParams(n_domains=n_domains))
            rows.append([str(design), n_domains, r.yield_fraction,
                         r.margin_percentile(0.05)])
    return rows


def test_ablation_variability(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_experiment(
        "Divider functional yield vs FE domain count (120 MC samples)",
        ["design", "n_domains", "yield", "p05_worst_margin_v"], rows)
    # Yield improves monotonically with domain count for each design.
    for design in ("1.5T1SG-Fe", "1.5T1DG-Fe"):
        series = [r[2] for r in rows if r[0] == design]
        assert series[0] <= series[1] <= series[2] + 0.05
        assert series[-1] > 0.5  # fine-grained films mostly functional
