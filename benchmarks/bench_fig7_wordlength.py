"""Paper Fig. 7: word-length impact on search latency and energy.

Sweeps 16/32/64/128-bit words for the four FeFET designs and checks the
paper's shape claims: latency grows with word length for every design,
the 2DG design is slowest with the steepest growth, the 1.5T1Fe designs
are flattest, and the energy-per-bit *trends* diverge (2FeFET amortizes
its SA; the 1.5T1Fe divider term grows).
"""

from fecam.bench import fig7_wordlength_sweep, print_experiment

WORD_LENGTHS = (16, 32, 64, 128)


def test_fig7_wordlength(benchmark):
    sweep = benchmark.pedantic(fig7_wordlength_sweep,
                               args=(WORD_LENGTHS,), rounds=1, iterations=1)
    rows = []
    for design, series in sweep.items():
        for n, point in series.items():
            rows.append([design, n, point["latency_1step_ps"],
                         point["latency_ps"], point["energy_avg_fj_per_bit"]])
    print_experiment("Fig. 7 word-length sweep",
                     ["design", "word_bits", "latency_1step_ps",
                      "latency_total_ps", "energy_fj_per_bit"],
                     rows)

    # Latency claims are stated on the per-evaluation (1-step) basis: our
    # two-step totals carry fixed window overhead the paper's faster
    # devices do not (see EXPERIMENTS.md).
    lat = {d: [series[n]["latency_1step_ps"] for n in WORD_LENGTHS]
           for d, series in sweep.items()}
    # (a) latency grows with word length for every design
    for d, seq in lat.items():
        assert all(b >= a * 0.98 for a, b in zip(seq, seq[1:])), d
    # (b) the paper's per-evaluation ordering holds at every word length:
    # both 1.5T1Fe designs beat both 2FeFET designs, and 2SG beats 2DG
    # (the SG/DG 1.5T pair runs within a few percent of each other).
    for i in range(len(WORD_LENGTHS)):
        slowest_1t5 = max(lat["1.5T1SG-Fe"][i], lat["1.5T1DG-Fe"][i])
        assert slowest_1t5 < lat["2SG-FeFET"][i] < lat["2DG-FeFET"][i]
        assert lat["1.5T1SG-Fe"][i] < lat["1.5T1DG-Fe"][i] * 1.25
    # (c) the 1.5T designs' absolute latency growth is the flattest
    growth = {d: v[-1] - v[0] for d, v in lat.items()}
    assert growth["1.5T1SG-Fe"] < growth["2SG-FeFET"]
    assert growth["1.5T1DG-Fe"] < growth["2DG-FeFET"]
    # (d) energy/bit falls with N for 2FeFET (SA amortization) and rises
    # for the 1.5T1Fe designs (divider static term).
    e = {d: [series[n]["energy_avg_fj_per_bit"] for n in WORD_LENGTHS]
         for d, series in sweep.items()}
    assert e["2SG-FeFET"][-1] < e["2SG-FeFET"][0]
    assert e["1.5T1SG-Fe"][-1] > e["1.5T1SG-Fe"][0]
    assert e["1.5T1DG-Fe"][-1] > e["1.5T1DG-Fe"][0]
