"""Fabric throughput: sequential vs. batched vs. cached search.

Measures queries/sec and per-query energy on fabrics of 1, 4, and 16
banks (1024 rows x 64 bits each), for three serving strategies:

* ``sequential`` — a Python loop of per-bank ``TernaryCAM.search()``
  calls, the baseline every fabric result is bit-identical to;
* ``batched``    — ``TcamFabric.search_batch`` through the vectorized
  two-step kernel;
* ``cached``     — the same batch against a warm LRU query cache with a
  Zipf-ish repeated-query trace.

Emits JSON (``benchmarks/results/fabric_throughput.json`` by default)
for the bench trajectory, and asserts the tentpole acceptance criterion:
on the 16-bank fabric, batched search is >= 20x sequential while
returning bit-identical matches and energy.

Run directly (``python benchmarks/bench_fabric_throughput.py``) or via
pytest (``pytest benchmarks/bench_fabric_throughput.py``).
"""

import json
import os
import random
import time

from fecam.designs import DesignKind
from fecam.fabric import TcamFabric
from fecam.functional import EnergyModel

ROWS_PER_BANK = 1024
WIDTH = 64
FILL = 0.75
N_QUERIES = 1000
UNIQUE_HOT_QUERIES = 100  # cached scenario draws from this hot set
BANK_COUNTS = (1, 4, 16)
SPEEDUP_FLOOR = 20.0  # acceptance criterion, checked at 16 banks


def _fast_model():
    """Fixed FoM numbers: benchmarks time search, not SPICE."""
    return EnergyModel(DesignKind.DG_1T5, WIDTH, e_1step_per_bit=0.8e-15,
                       e_2step_per_bit=1.3e-15, latency_1step=0.7e-9,
                       latency_2step=2.3e-9, write_energy_per_cell=0.41e-15)


def _build_fabric(banks, rng, cache_size=0):
    fabric = TcamFabric(banks=banks, rows_per_bank=ROWS_PER_BANK,
                        width=WIDTH, energy_model=_fast_model(),
                        cache_size=cache_size)
    n_words = int(banks * ROWS_PER_BANK * FILL)
    words = ["".join(rng.choice("01X") for _ in range(WIDTH))
             for _ in range(n_words)]
    fabric.insert_many(words, keys=list(range(n_words)),
                       banks=[i % banks for i in range(n_words)])
    return fabric


def _best_of(fn, repeats=3):
    """Min-of-N wall time (standard noise suppression); returns
    (best_seconds, result_of_last_run)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _measure(banks):
    """One configuration; returns the result row dict."""
    rng = random.Random(20230710 + banks)
    queries = ["".join(rng.choice("01") for _ in range(WIDTH))
               for _ in range(N_QUERIES)]
    hot = ["".join(rng.choice("01") for _ in range(WIDTH))
           for _ in range(UNIQUE_HOT_QUERIES)]
    hot_trace = [rng.choice(hot) for _ in range(N_QUERIES)]

    # Identical twin fabrics so energy accounting can be compared 1:1.
    seq_fabric = _build_fabric(banks, random.Random(42))
    bat_fabric = _build_fabric(banks, random.Random(42))
    cache_fabric = _build_fabric(banks, random.Random(42),
                                 cache_size=4 * UNIQUE_HOT_QUERIES)

    def run_sequential():
        return [[bank.cam.search(q) for bank in seq_fabric.banks]
                for q in queries]

    t_seq, seq_results = _best_of(run_sequential)
    t_batch, bat_results = _best_of(
        lambda: bat_fabric.search_batch(queries, use_cache=False))
    cache_fabric.search_batch(hot_trace[:200], use_cache=True)  # warm
    t_cached, _ = _best_of(
        lambda: cache_fabric.search_batch(hot_trace, use_cache=True))

    # Bit-identical matches and energy accounting vs. the loop.
    for per_bank, merged in zip(seq_results, bat_results):
        loop_rows = [(b, r) for b, stats in enumerate(per_bank)
                     for r in stats.matches]
        fabric_rows = sorted((e.bank, e.row) for e in merged.matches)
        assert sorted(loop_rows) == fabric_rows
        loop_energy = 0.0
        for stats in per_bank:
            loop_energy += stats.energy
        assert loop_energy == merged.energy
    for bank_seq, bank_bat in zip(seq_fabric.banks, bat_fabric.banks):
        assert bank_seq.cam.energy_spent == bank_bat.cam.energy_spent

    total_energy = sum(r.energy for r in bat_results)
    return {
        "banks": banks,
        "rows_per_bank": ROWS_PER_BANK,
        "width_bits": WIDTH,
        "occupancy": bat_fabric.occupancy,
        "queries": N_QUERIES,
        "sequential_qps": N_QUERIES / t_seq,
        "batched_qps": N_QUERIES / t_batch,
        "cached_qps": N_QUERIES / t_cached,
        "batch_speedup": t_seq / t_batch,
        "cache_speedup": t_seq / t_cached,
        "cache_hit_rate": cache_fabric.stats.cache_hit_rate,
        "energy_per_query_j": total_energy / N_QUERIES,
        "bit_identical": True,
    }


def run(json_path=None):
    rows = [_measure(banks) for banks in BANK_COUNTS]
    if json_path is None:
        json_path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                 "results", "fabric_throughput.json")
    os.makedirs(os.path.dirname(json_path), exist_ok=True)
    payload = {"benchmark": "fabric_throughput",
               "config": {"rows_per_bank": ROWS_PER_BANK,
                          "width_bits": WIDTH, "fill": FILL,
                          "queries": N_QUERIES},
               "results": rows}
    with open(json_path, "w") as handle:
        json.dump(payload, handle, indent=2)
    return rows, json_path


def print_report(rows):
    from fecam.bench import print_experiment
    print_experiment(
        "Fabric throughput (sequential vs batched vs cached)",
        ["banks", "seq qps", "batch qps", "cached qps", "speedup",
         "cache hit", "J/query"],
        [[r["banks"], r["sequential_qps"], r["batched_qps"],
          r["cached_qps"], r["batch_speedup"], r["cache_hit_rate"],
          r["energy_per_query_j"]] for r in rows])


def test_bench_fabric_throughput():
    rows, json_path = run()
    print_report(rows)
    print(f"JSON written to {json_path}")
    headline = next(r for r in rows if r["banks"] == max(BANK_COUNTS))
    assert headline["bit_identical"]
    assert headline["batch_speedup"] >= SPEEDUP_FLOOR, (
        f"batched search is only {headline['batch_speedup']:.1f}x the "
        f"sequential loop (acceptance floor {SPEEDUP_FLOOR}x)")
    # The cache should beat even the batched path on a hot-set trace.
    assert headline["cached_qps"] > headline["batched_qps"]


if __name__ == "__main__":
    test_bench_fabric_throughput()
