"""Fabric throughput: serving strategies and batch-kernel generations.

Measures two things on fabrics of 1, 4, and 16 banks (1024 rows x 64
bits each, ``--tiny`` shrinks everything for CI smoke):

**Serving strategies** (queries/sec and per-query energy):

* ``sequential`` — a Python loop of per-bank ``TernaryCAM.search()``
  calls, the baseline every fabric result is bit-identical to;
* ``batched``    — ``TcamFabric.search_batch`` through the fused
  arena kernel;
* ``cached``     — the same batch against a warm LRU query cache with a
  Zipf-ish repeated-query trace.

**Kernel generations** (the planes-refactor acceptance criterion): the
fused arena kernel on warm derived planes vs. the pre-planes per-bank
kernel it replaced (one dense count kernel per bank, recompressing its
step planes on every call).  On the headline fabric the fused kernel
must be >= KERNEL_FLOOR x the per-bank loop while returning identical
counts and matches (>= 2x at 16 banks full-size; >= 1x in ``--tiny``
smoke, where wall-clock noise dominates).

Emits JSON twice: the full report at
``benchmarks/results/fabric_throughput.json`` (CI artifact), and the
machine-trackable ``BENCH_fabric.json`` at the repo root — rows of
``{metric, value, unit, config}`` for the perf trajectory.

Run directly (``python benchmarks/bench_fabric_throughput.py
[--tiny]``) or via pytest (``pytest
benchmarks/bench_fabric_throughput.py``).
"""

import argparse
import random
import time

import _emit

from fecam.designs import DesignKind
from fecam.fabric import TcamFabric, batch_count_matches, fused_count_matches
from fecam.fabric.batch import pack_queries
from fecam.functional import EnergyModel

WIDTH = 64
FILL = 0.75
UNIQUE_HOT_FRACTION = 10  # cached trace draws from queries/10 hot queries

FULL = dict(mode="full", bank_counts=(1, 4, 16), rows_per_bank=1024,
            queries=1000, batch_floor=20.0, kernel_floor=2.0, repeats=3,
            warmup=1)
TINY = dict(mode="tiny", bank_counts=(4,), rows_per_bank=128,
            queries=200, batch_floor=2.0, kernel_floor=1.0, repeats=3,
            warmup=1)


def _fast_model():
    """Fixed FoM numbers: benchmarks time search, not SPICE."""
    return EnergyModel(DesignKind.DG_1T5, WIDTH, e_1step_per_bit=0.8e-15,
                       e_2step_per_bit=1.3e-15, latency_1step=0.7e-9,
                       latency_2step=2.3e-9, write_energy_per_cell=0.41e-15)


def _build_fabric(banks, rows_per_bank, rng, cache_size=0):
    fabric = TcamFabric(banks=banks, rows_per_bank=rows_per_bank,
                        width=WIDTH, energy_model=_fast_model(),
                        cache_size=cache_size)
    n_words = int(banks * rows_per_bank * FILL)
    words = ["".join(rng.choice("01X") for _ in range(WIDTH))
             for _ in range(n_words)]
    fabric.insert_many(words, keys=list(range(n_words)),
                       banks=[i % banks for i in range(n_words)])
    return fabric


def _best_of(fn, repeats, *, warmup=0):
    """Min-of-N wall time after ``warmup`` untimed passes; returns
    (best_seconds, result_of_last_run).

    Warmup + best-of is the flake armor for the wall-clock speedup
    floors: the first pass pays one-time costs (page faults, allocator
    growth, branch history) that a loaded CI runner amplifies, and the
    minimum of the timed passes discards scheduler preemption spikes.
    """
    for _ in range(warmup):
        fn()
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _measure_kernels(fabric, q_matrix, repeats, warmup):
    """Fused arena kernel (warm planes) vs the pre-planes per-bank loop
    (dense, recompressing every call); asserts identical counts."""
    banks = fabric.num_banks
    rows_per_bank = fabric.rows_per_bank

    def per_bank():
        return [batch_count_matches(bank.cam, q_matrix, kernel="dense",
                                    reuse_cache=False)
                for bank in fabric.banks]

    def fused():
        return fused_count_matches(fabric.arena, q_matrix, n_banks=banks,
                                   rows_per_bank=rows_per_bank)

    fused()  # warm the derived planes and the candidate index
    t_per_bank, per_bank_counts = _best_of(per_bank, repeats,
                                           warmup=warmup)
    t_fused, fused_counts = _best_of(fused, repeats, warmup=warmup)

    for b, counts in enumerate(per_bank_counts):
        assert int(fused_counts.rows_searched[b]) == counts.rows_searched
        assert (fused_counts.step1_eliminated[b]
                == counts.step1_eliminated).all()
        assert (fused_counts.step2_misses[b] == counts.step2_misses).all()
        assert (fused_counts.full_matches[b] == counts.full_matches).all()
    loop_pairs = sorted(
        (q, b * rows_per_bank + r) for b, counts in enumerate(per_bank_counts)
        for q, r in zip(counts.match_q, counts.match_rows))
    assert sorted(zip(fused_counts.match_q,
                      fused_counts.match_rows)) == loop_pairs
    return {
        "per_bank_kernel_ms": t_per_bank * 1e3,
        "fused_kernel_ms": t_fused * 1e3,
        "fused_kernel_speedup": t_per_bank / t_fused,
        "fused_kernel_kind": fused_counts.kernel,
    }


def _measure(banks, sizes):
    """One configuration; returns the result row dict."""
    rows_per_bank = sizes["rows_per_bank"]
    n_queries = sizes["queries"]
    repeats = sizes["repeats"]
    warmup = sizes.get("warmup", 0)
    rng = random.Random(20230710 + banks)
    queries = ["".join(rng.choice("01") for _ in range(WIDTH))
               for _ in range(n_queries)]
    hot = ["".join(rng.choice("01") for _ in range(WIDTH))
           for _ in range(max(n_queries // UNIQUE_HOT_FRACTION, 1))]
    hot_trace = [rng.choice(hot) for _ in range(n_queries)]

    # Identical twin fabrics so energy accounting can be compared 1:1.
    seq_fabric = _build_fabric(banks, rows_per_bank, random.Random(42))
    bat_fabric = _build_fabric(banks, rows_per_bank, random.Random(42))
    cache_fabric = _build_fabric(banks, rows_per_bank, random.Random(42),
                                 cache_size=4 * len(hot))

    def run_sequential():
        return [[bank.cam.search(q) for bank in seq_fabric.banks]
                for q in queries]

    # Warmup counts must stay equal between the seq/bat twins: the
    # energy-accounting assertions below compare their banks 1:1.
    t_seq, seq_results = _best_of(run_sequential, repeats, warmup=warmup)
    t_batch, bat_results = _best_of(
        lambda: bat_fabric.search_batch(queries, use_cache=False),
        repeats, warmup=warmup)
    cache_fabric.search_batch(hot_trace[:n_queries // 5],
                              use_cache=True)  # warm
    t_cached, _ = _best_of(
        lambda: cache_fabric.search_batch(hot_trace, use_cache=True),
        repeats, warmup=warmup)

    # Bit-identical matches and energy accounting vs. the loop.
    for per_bank, merged in zip(seq_results, bat_results):
        loop_rows = [(b, r) for b, stats in enumerate(per_bank)
                     for r in stats.matches]
        fabric_rows = sorted((e.bank, e.row) for e in merged.matches)
        assert sorted(loop_rows) == fabric_rows
        loop_energy = 0.0
        for stats in per_bank:
            loop_energy += stats.energy
        assert loop_energy == merged.energy
    for bank_seq, bank_bat in zip(seq_fabric.banks, bat_fabric.banks):
        assert bank_seq.cam.energy_spent == bank_bat.cam.energy_spent

    q_matrix = pack_queries(queries, WIDTH)
    kernels = _measure_kernels(bat_fabric, q_matrix, repeats, warmup)

    total_energy = sum(r.energy for r in bat_results)
    row = {
        "banks": banks,
        "rows_per_bank": rows_per_bank,
        "width_bits": WIDTH,
        "occupancy": bat_fabric.occupancy,
        "queries": n_queries,
        "sequential_qps": n_queries / t_seq,
        "batched_qps": n_queries / t_batch,
        "cached_qps": n_queries / t_cached,
        "batch_speedup": t_seq / t_batch,
        "cache_speedup": t_seq / t_cached,
        "cache_hit_rate": cache_fabric.stats.cache_hit_rate,
        "energy_per_query_j": total_energy / n_queries,
        "bit_identical": True,
    }
    row.update(kernels)
    return row


def _bench_rows(rows, sizes):
    """Flatten results to the repo-root ``{metric, value, unit, config}``
    schema shared by every BENCH_*.json."""
    units = {
        "sequential_qps": "query/s", "batched_qps": "query/s",
        "cached_qps": "query/s", "batch_speedup": "x",
        "cache_speedup": "x", "cache_hit_rate": "ratio",
        "energy_per_query_j": "J", "per_bank_kernel_ms": "ms",
        "fused_kernel_ms": "ms", "fused_kernel_speedup": "x",
    }
    out = []
    for row in rows:
        config = {"banks": row["banks"],
                  "rows_per_bank": row["rows_per_bank"],
                  "width_bits": row["width_bits"],
                  "queries": row["queries"], "fill": FILL,
                  "mode": sizes["mode"]}
        out.extend(_emit.rows_from(row, units, config))
    return out


def run(sizes, json_path=None):
    rows = [_measure(banks, sizes) for banks in sizes["bank_counts"]]
    default_paths = json_path is None
    if json_path is None:
        json_path = _emit.results_path("fabric_throughput")
    payload = {"benchmark": "fabric_throughput",
               "config": {"rows_per_bank": sizes["rows_per_bank"],
                          "width_bits": WIDTH, "fill": FILL,
                          "queries": sizes["queries"],
                          "mode": sizes["mode"]},
               "results": rows}
    # The repo-root trajectory file only ever holds full-size numbers:
    # a --tiny smoke (or an --out redirect) must not clobber it.
    root_path = (_emit.repo_bench_path("fabric")
                 if sizes["mode"] == "full" and default_paths else None)
    paths = _emit.emit(payload, _bench_rows(rows, sizes),
                       results_file=json_path, root_file=root_path)
    return rows, paths


def print_report(rows):
    from fecam.bench import print_experiment
    print_experiment(
        "Fabric throughput (sequential vs batched vs cached)",
        ["banks", "seq qps", "batch qps", "cached qps", "speedup",
         "cache hit", "J/query"],
        [[r["banks"], r["sequential_qps"], r["batched_qps"],
          r["cached_qps"], r["batch_speedup"], r["cache_hit_rate"],
          r["energy_per_query_j"]] for r in rows])
    print_experiment(
        "Batch kernel: fused arena (warm planes) vs per-bank loop",
        ["banks", "per-bank ms", "fused ms", "speedup", "kind"],
        [[r["banks"], r["per_bank_kernel_ms"], r["fused_kernel_ms"],
          r["fused_kernel_speedup"], r["fused_kernel_kind"]]
         for r in rows])


def check_floors(rows, sizes):
    headline = next(r for r in rows
                    if r["banks"] == max(sizes["bank_counts"]))
    assert headline["bit_identical"]
    assert headline["batch_speedup"] >= sizes["batch_floor"], (
        f"batched search is only {headline['batch_speedup']:.1f}x the "
        f"sequential loop (acceptance floor {sizes['batch_floor']}x)")
    assert headline["fused_kernel_speedup"] >= sizes["kernel_floor"], (
        f"fused arena kernel is only "
        f"{headline['fused_kernel_speedup']:.2f}x the per-bank kernel "
        f"it replaced (acceptance floor {sizes['kernel_floor']}x)")
    # The cache should beat even the batched path on a hot-set trace.
    assert headline["cached_qps"] > headline["batched_qps"]


def test_bench_fabric_throughput():
    rows, paths = run(FULL)
    print_report(rows)
    print("JSON written to " + ", ".join(paths))
    check_floors(rows, FULL)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tiny", action="store_true",
                        help="CI smoke mode: small fabric, same floors "
                             "logic with a >= 1x kernel floor")
    parser.add_argument("--out", default=None, help="JSON output path")
    args = parser.parse_args()
    sizes = TINY if args.tiny else FULL
    result_rows, out_paths = run(sizes, args.out)
    print_report(result_rows)
    print("JSON written to " + ", ".join(out_paths))
    check_floors(result_rows, sizes)
