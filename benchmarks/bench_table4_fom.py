"""Paper Tab. IV: the headline figure-of-merit comparison.

Evaluates all five designs on a 64x64 array and prints every FoM next to
the paper's reported value.  Asserts the *claims* the paper draws from
the table rather than absolute numbers (our substrate is a from-scratch
compact-model simulator, not the authors' PDK):

* write energy ladder: E(2SG) ~ 2x E(2DG) ~ 2x E(1.5T1DG); 1.5T1SG ~ 2DG;
* write voltage halves for DG flavours;
* all FeFET cells are smaller than the 16T CMOS cell; 2SG is smallest;
  DG variants pay the P-well penalty;
* both 1.5T1Fe designs beat both 2FeFET designs in search latency;
  the DG variant of each pair is slower than its SG sibling.
"""

import pytest

from fecam.bench import print_experiment, ratio, table4_fom


def test_table4_fom(benchmark):
    data = benchmark.pedantic(table4_fom, rounds=1, iterations=1)
    rows = []
    for entry in data:
        p, m = entry["paper"], entry["measured"]
        rows.append([entry["design"],
                     m["write_voltage"],
                     p["cell_area_um2"], m["cell_area_um2"],
                     p["write_energy_fj"], m["write_energy_fj"],
                     p["latency_total_ps"], m["latency_total_ps"],
                     p["energy_avg_fj"], m["energy_avg_fj"]])
    print_experiment(
        "Tab. IV FoM (paper vs measured, 64x64 array)",
        ["design", "write_v", "area_p", "area_m", "wE_p", "wE_m",
         "lat_p", "lat_m", "sE_p", "sE_m"], rows)

    by = {e["design"]: e["measured"] for e in data}
    paper = {e["design"]: e["paper"] for e in data}

    # Cell areas reproduce the paper's accounting.
    for d in by:
        assert by[d]["cell_area_um2"] == pytest.approx(
            paper[d]["cell_area_um2"], rel=0.02), d
    # Write-energy ladder (exact 4:2:2:1 ratios).
    we = {d: by[d]["write_energy_fj"] for d in by if by[d]["write_energy_fj"]}
    assert we["2SG-FeFET"] == pytest.approx(2 * we["2DG-FeFET"], rel=0.01)
    assert we["2SG-FeFET"] == pytest.approx(2 * we["1.5T1SG-Fe"], rel=0.01)
    assert we["2SG-FeFET"] == pytest.approx(4 * we["1.5T1DG-Fe"], rel=0.01)
    # Latency ordering claims (per evaluation).  The SG/DG 1.5T variants
    # land within a few percent of each other in our calibration, so that
    # pair is asserted with a small tolerance.
    lat1 = {d: by[d]["latency_1step_ps"] for d in by}
    assert lat1["1.5T1SG-Fe"] < lat1["1.5T1DG-Fe"] * 1.10
    assert lat1["1.5T1SG-Fe"] < lat1["2SG-FeFET"] < lat1["2DG-FeFET"]
    assert lat1["1.5T1DG-Fe"] < lat1["2SG-FeFET"]
    # Search energy: DG flavours cost more than their SG siblings (well
    # caps at the 2 V select level), as in the paper's table.
    se = {d: by[d]["energy_avg_fj"] for d in by}
    assert se["2DG-FeFET"] > se["2SG-FeFET"]
    assert se["1.5T1DG-Fe"] > se["1.5T1SG-Fe"]
