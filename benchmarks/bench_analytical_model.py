"""Cross-check: the closed-form Eva-CAM-style estimator vs the SPICE
tier, plus banked-macro scaling (capacity sweep at constant word)."""

from fecam.arch import TcamMacro, estimate_search, evaluate_array
from fecam.bench import print_experiment
from fecam.designs import DesignKind


def run():
    rows = []
    for d in DesignKind.fefet_designs():
        spice = evaluate_array(d, word_length=64)
        quick = estimate_search(d, 64)
        rows.append([str(d), spice.latency_1step * 1e12,
                     quick.latency_per_eval * 1e12,
                     spice.search_energy_avg * 1e15,
                     quick.energy_per_bit * 1e15])
    return rows


def test_analytical_vs_spice(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_experiment(
        "Analytical estimator vs SPICE tier (64-bit words)",
        ["design", "spice_lat_ps", "quick_lat_ps", "spice_E_fj", "quick_E_fj"],
        rows)
    for design, l_spice, l_quick, e_spice, e_quick in rows:
        assert 1 / 3 < l_quick / l_spice < 3, design
        assert 1 / 4 < e_quick / e_spice < 4, design


def test_macro_scaling(benchmark):
    def run_macro():
        return [TcamMacro.for_capacity(DesignKind.DG_1T5, entries=n,
                                       word=64).summary()
                for n in (256, 1024, 4096)]

    summaries = benchmark.pedantic(run_macro, rounds=1, iterations=1)
    print_experiment(
        "1.5T1DG-Fe banked macro scaling",
        ["entries", "banks", "area_mm2", "search_pj", "latency_ns"],
        [[s["capacity_entries"], s["banks"], s["area_mm2"],
          s["search_energy_pj"], s["search_latency_ns"]] for s in summaries])
    areas = [s["area_mm2"] for s in summaries]
    assert areas[0] < areas[1] < areas[2]
