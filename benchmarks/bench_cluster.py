"""Cluster scale-out: multi-process serving vs the single-process tier.

The cluster's reason to exist is CPU parallelism: one Python process
tops out at one core's worth of fused-kernel searches, while N worker
processes over the shared arena each burn their own core.  This
benchmark sweeps the worker count on the identical unique-query
workload the service benchmark uses:

* ``service`` — the single-process baseline: N threads each handing
  their burst to :class:`~fecam.service.SearchService.search_many`
  (micro-batched, fused kernel, one process);
* ``cluster-W`` — the same threads and bursts through
  :class:`~fecam.cluster.ClusterService.search_many`, scattered by
  consistent hash across W worker processes reading the shared arena.

The acceptance floor is parallelism-aware, because multi-process
serving cannot beat one process without cores to run on: on hosts with
>= 4 CPUs the 4-worker cluster must serve >= 2.5x the single-process
service; on smaller hosts (1-2 CPU CI runners) the sweep is recorded
with a sanity floor — the cluster must stay within 4x of the
single-process throughput (IPC tax bounded, no pathological collapse)
— and the CPU count rides in every config row so trajectory tooling
can segment by host shape.

Bit-identity is spot-checked outside the timed region: the scattered
results must equal a single-process ``search_batch`` over a twin store
— same matches, same energy, same latency.

Emits JSON twice: ``benchmarks/results/cluster_throughput.json`` (CI
artifact) and — full mode, default paths — the repo-root
``BENCH_cluster.json`` trajectory rows.

Run directly (``python benchmarks/bench_cluster.py [--tiny]``) or via
pytest (``pytest benchmarks/bench_cluster.py``).
"""

import argparse
import os
import random
import threading
import time

import _emit

from fecam.cluster import ClusterService
from fecam.designs import DesignKind
from fecam.functional import EnergyModel
from fecam.service import SearchService
from fecam.store import CamStore, StoreConfig

FILL = 0.5

FULL = dict(mode="full", banks=8, rows=4096, width=64, threads=16,
            requests_per_thread=250, max_batch=256, repeats=3,
            workers_sweep=(1, 2, 4, 8), floor_workers=4,
            parallel_floor=2.5, sanity_floor=0.25)
TINY = dict(mode="tiny", banks=4, rows=256, width=32, threads=8,
            requests_per_thread=40, max_batch=64, repeats=2,
            workers_sweep=(1, 2), floor_workers=2,
            parallel_floor=None, sanity_floor=0.05)


def _fast_model(width):
    """Fixed figures of merit: this benchmark times serving, not SPICE."""
    return EnergyModel(DesignKind.DG_1T5, width, e_1step_per_bit=0.8e-15,
                       e_2step_per_bit=1.3e-15, latency_1step=0.7e-9,
                       latency_2step=2.3e-9, write_energy_per_cell=0.41e-15)


def _config(sizes):
    return StoreConfig(width=sizes["width"], rows=sizes["rows"],
                       banks=sizes["banks"], backend="fabric",
                       energy_model=_fast_model(sizes["width"]))


def _fill_words(sizes):
    rng = random.Random(42)
    width = sizes["width"]
    n_words = int(sizes["rows"] * FILL)
    return ["".join(rng.choice("01X") for _ in range(width))
            for _ in range(n_words)]


def _thread_queries(sizes):
    """One disjoint random query list per thread (unique queries: the
    cache-proof workload both tiers serve at full cost)."""
    rng = random.Random(20230726)
    width = sizes["width"]
    return [["".join(rng.choice("01") for _ in range(width))
             for _ in range(sizes["requests_per_thread"])]
            for _ in range(sizes["threads"])]


def _run_threads(worker, per_thread_args):
    threads = [threading.Thread(target=worker, args=args)
               for args in per_thread_args]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - t0


def _best_seconds(run, repeats, *, warmup=1):
    """Best-of-N of a self-timing ``run()`` after untimed warmups."""
    for _ in range(warmup):
        run()
    best = float("inf")
    for _ in range(repeats):
        best = min(best, run())
    return best


def _measure(sizes):
    words = _fill_words(sizes)
    keys = list(range(len(words)))
    thread_queries = _thread_queries(sizes)
    n_requests = sizes["threads"] * sizes["requests_per_thread"]

    # -- single-process baseline: SearchService.search_many ------------
    service_store = CamStore(_config(sizes))
    service_store.insert_many(words, keys=keys)
    service = SearchService(service_store, max_batch=sizes["max_batch"],
                            max_queue=max(4 * n_requests, 1024),
                            use_cache=False)

    def service_worker(queries):
        service.search_many(queries)

    t_service = _best_seconds(
        lambda: _run_threads(service_worker,
                             [(q,) for q in thread_queries]),
        sizes["repeats"])
    service.close()
    service_qps = n_requests / t_service

    # Bit-identity oracle: a twin store served in one fused batch.
    oracle_store = CamStore(_config(sizes))
    oracle_store.insert_many(words, keys=keys)
    probes = thread_queries[0][:32]
    oracle = oracle_store.search_batch(probes, use_cache=False)

    # -- cluster sweep --------------------------------------------------
    sweep = []
    for workers in sizes["workers_sweep"]:
        cluster = ClusterService(config=_config(sizes), workers=workers,
                                 max_batch=sizes["max_batch"])
        cluster.insert_many(words, keys=keys)

        def cluster_worker(queries):
            cluster.search_many(queries)

        t_cluster = _best_seconds(
            lambda: _run_threads(cluster_worker,
                                 [(q,) for q in thread_queries]),
            sizes["repeats"])

        # Spot-check outside the timed region: scattered results are
        # bit-identical to the single-process fused batch.
        served = cluster.search_many(probes)
        bit_identical = all(
            lhs.result.match_keys == rhs.match_keys
            and lhs.result.energy == rhs.energy
            and lhs.result.latency == rhs.latency
            for lhs, rhs in zip(served, oracle))

        telemetry = cluster.worker_stats()
        cluster.close()
        sweep.append({
            "workers": workers,
            "cluster_qps": n_requests / t_cluster,
            "speedup_vs_service": t_service / t_cluster,
            "bit_identical": bit_identical,
            "alive_workers": sum(1 for t in telemetry if t["alive"]),
        })

    return {
        "banks": sizes["banks"], "rows": sizes["rows"],
        "width_bits": sizes["width"], "threads": sizes["threads"],
        "requests": n_requests, "cpus": os.cpu_count() or 1,
        "service_qps": service_qps,
        "sweep": sweep,
    }


def _bench_rows(row, sizes):
    """Repo-root ``{metric, value, unit, config}`` rows: the baseline
    plus one qps/speedup pair per sweep point."""
    config = {"banks": row["banks"], "rows": row["rows"],
              "width_bits": row["width_bits"], "threads": row["threads"],
              "requests": row["requests"], "fill": FILL,
              "max_batch": sizes["max_batch"], "cpus": row["cpus"],
              "mode": sizes["mode"]}
    rows = [{"metric": "service_qps", "value": row["service_qps"],
             "unit": "query/s", "config": config}]
    for point in row["sweep"]:
        point_config = dict(config, workers=point["workers"])
        rows.append({"metric": "cluster_qps",
                     "value": point["cluster_qps"], "unit": "query/s",
                     "config": point_config})
        rows.append({"metric": "cluster_speedup_vs_service",
                     "value": point["speedup_vs_service"], "unit": "x",
                     "config": point_config})
    return rows


def run(sizes, json_path=None):
    row = _measure(sizes)
    default_paths = json_path is None
    if json_path is None:
        json_path = _emit.results_path("cluster_throughput")
    payload = {"benchmark": "cluster_throughput",
               "config": {key: sizes[key] for key in
                          ("mode", "banks", "rows", "width", "threads",
                           "requests_per_thread", "max_batch",
                           "workers_sweep")},
               "cpus": row["cpus"],
               "results": [row]}
    root_path = (_emit.repo_bench_path("cluster")
                 if sizes["mode"] == "full" and default_paths else None)
    paths = _emit.emit(payload, _bench_rows(row, sizes),
                       results_file=json_path, root_file=root_path)
    return row, paths


def print_report(row):
    from fecam.bench import print_experiment
    print_experiment(
        f"Cluster scale-out ({row['cpus']} CPUs; single-process "
        f"service = {row['service_qps']:.0f} q/s)",
        ["workers", "cluster qps", "speedup vs service", "bit-identical"],
        [[point["workers"], point["cluster_qps"],
          point["speedup_vs_service"], point["bit_identical"]]
         for point in row["sweep"]])


def check_floors(row, sizes):
    assert all(point["bit_identical"] for point in row["sweep"])
    by_workers = {point["workers"]: point for point in row["sweep"]}
    gate = by_workers[sizes["floor_workers"]]
    if sizes["parallel_floor"] is not None and row["cpus"] >= 4:
        assert gate["speedup_vs_service"] >= sizes["parallel_floor"], (
            f"{gate['workers']}-worker cluster serves only "
            f"{gate['speedup_vs_service']:.2f}x the single-process "
            f"service on a {row['cpus']}-CPU host (acceptance floor "
            f"{sizes['parallel_floor']}x)")
    else:
        # Too few cores for process parallelism to pay: hold the IPC
        # tax bounded instead, and record the honest numbers.
        assert gate["speedup_vs_service"] >= sizes["sanity_floor"], (
            f"{gate['workers']}-worker cluster collapsed to "
            f"{gate['speedup_vs_service']:.2f}x the single-process "
            f"service (sanity floor {sizes['sanity_floor']}x)")


def test_bench_cluster():
    row, paths = run(FULL)
    print_report(row)
    print("JSON written to " + ", ".join(paths))
    check_floors(row, FULL)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tiny", action="store_true",
                        help="CI smoke mode: small store, 1-2 workers, "
                             "sanity floor only")
    parser.add_argument("--out", default=None, help="JSON output path")
    args = parser.parse_args()
    chosen = TINY if args.tiny else FULL
    result_row, out_paths = run(chosen, args.out)
    print_report(result_row)
    print("JSON written to " + ", ".join(out_paths))
    check_floors(result_row, chosen)
