"""Paper Tab. II: 1.5T1DG-Fe TCAM cell operation table.

Full-SPICE verification of the proposed cell's write/search truth table,
including the Tab. II voltage set (Vw=2 V, Vm=1.6 V, VSeL=2 V, Vb=0.25 V).
"""

from fecam.bench import print_experiment, table2_operations


def test_table2_15t1dg_operations(benchmark):
    rows = benchmark.pedantic(table2_operations, rounds=1, iterations=1)
    print_experiment("Tab. II — 1.5T1DG-Fe cell operations (SPICE-verified)",
                     ["stored", "search", "expected", "measured", "correct"],
                     [[r["stored"], r["search"], r["expected_match"],
                       r["measured_match"], r["correct"]] for r in rows])
    assert all(r["correct"] for r in rows)
    v = rows[0]
    assert v["vw"] == 2.0 and v["vm"] == 1.6
    assert v["vsel"] == 2.0 and v["vb"] == 0.25
