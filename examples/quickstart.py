#!/usr/bin/env python3
"""Quickstart: the three tiers of the library in one script.

1. Behavioral tier — store/search ternary words at application speed.
2. Circuit tier — SPICE-simulate one 1.5T1DG-Fe word search end to end.
3. Architecture tier — the paper's Table IV figure-of-merit row.

Run:  python examples/quickstart.py
"""

from fecam import DesignKind
from fecam.arch import evaluate_array
from fecam.cam import simulate_word_search
from fecam.functional import TernaryCAM
from fecam.units import FJ, PS

print("=" * 70)
print("1. Behavioral ternary CAM (numpy bit-parallel engine)")
print("=" * 70)
tcam = TernaryCAM(rows=8, width=16, design=DesignKind.DG_1T5)
tcam.write(0, "1010XXXX01010101")   # wildcards = don't-care bits
tcam.write(1, "1111000011110000")
tcam.write(2, "X" * 16)             # matches everything
stats = tcam.search("1010111101010101")
print(f"query matched rows: {stats.matches}")
print(f"rows eliminated in search step 1: {stats.step1_eliminated}")
print(f"search energy (early-termination aware): {stats.energy / FJ:.2f} fJ")
print(f"worst-case latency: {stats.latency / PS:.0f} ps")

print()
print("=" * 70)
print("2. Circuit tier: SPICE transient of one 64-bit 1.5T1DG-Fe search")
print("=" * 70)
result = simulate_word_search(DesignKind.DG_1T5, n_bits=64,
                              scenario="step2_miss")
print(f"stored : {result.stored[:32]}...")
print(f"query  : {result.query[:32]}...")
print(f"search steps run: {result.steps_run} (two-step search, Tab. II)")
print(f"match-line minimum: {result.ml_min:.3f} V")
print(f"SA decision correct: {result.functionally_correct}")
print(f"latency (precharge release -> SA): {result.latency / PS:.0f} ps")
for group, energy in sorted(result.energy_by_group.items()):
    print(f"  energy[{group:>13s}] = {energy / FJ:7.2f} fJ")

print()
print("=" * 70)
print("3. Architecture tier: paper Tab. IV row for the proposed design")
print("=" * 70)
fom = evaluate_array(DesignKind.DG_1T5, rows=64, word_length=64)
for key, value in fom.as_row().items():
    print(f"  {key:>18s}: {value}")
