#!/usr/bin/env python3
"""The associative-store API in five minutes.

One `CamStore` front door serves every workload; the backing layout —
one array or a sharded, cached multi-bank fabric — is a `StoreConfig`
edit that never changes answers (property-tested bit-identical).

Run:  python examples/store_quickstart.py
"""

from fecam import CamStore, StoreConfig
from fecam.apps import SeedIndex, TcamRouter
from fecam.units import FJ

print("=" * 70)
print("1. CamStore on the single-array backend")
print("=" * 70)
store = CamStore(StoreConfig(width=16, rows=64))
store.insert("1010XXXX01010101", key="rule-a", payload={"action": "allow"})
store.insert("1111000011110000", key="rule-b")
store.insert("X" * 16, key="catch-all", priority=1e9)  # worst priority
print(store)

result = store.search("1010111101010101")
print(f"matches (priority order): {result.match_keys}")
print(f"best match payload: {result.best.payload}")
print(f"search energy: {result.energy / FJ:.2f} fJ, "
      f"latency {result.latency * 1e9:.2f} ns")

print()
print("=" * 70)
print("2. Scaling is a config edit: 8 banks + query cache")
print("=" * 70)
big = CamStore(StoreConfig(width=16, rows=512, banks=8, cache_size=256))
big.insert_many([f"{i:010b}XXXXXX" for i in range(256)],
                keys=[f"prefix-{i}" for i in range(256)])
print(big)

queries = [f"{i % 32:010b}101010" for i in range(1000)]  # hot set
results = big.search_batch(queries)
stats = big.stats
print(f"answered {stats.searches} queries; only {stats.array_searches} "
      f"fired the arrays (cache hit rate {stats.cache_hit_rate:.0%})")
print(f"total array energy: {stats.energy_total / FJ:.0f} fJ")

print()
print("=" * 70)
print("3. Apps take the same config — fabric-backed router + genomics")
print("=" * 70)
router = TcamRouter(capacity=64,
                    store_config=StoreConfig(banks=4, cache_size=64))
router.add_route("0.0.0.0/0", "default")
router.add_route("10.0.0.0/8", "core")
router.add_route("10.1.0.0/16", "edge")
print(f"lookup_batch: "
      f"{router.lookup_batch(['10.1.2.3', '10.9.9.9', '8.8.8.8'])}")
print(f"router store: searches={router.store_stats.searches} on "
      f"{router.store_stats.banks} banks")

index = SeedIndex("ACGTACGTNNGTACGTACGT", k=4,
                  store_config=StoreConfig(banks=2))
hits = index.lookup_batch(["TACG", "ACGT"])
print(f"seed hits: {[[h.position for h in hit_list] for hit_list in hits]}")
print(f"genomics store backend: {index.store_stats.backend}")
