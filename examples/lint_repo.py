"""Lint the fecam tree with its own invariant linter — library API.

The CLI (``python -m fecam.analysis lint src/fecam``) is the everyday
front door; this example drives the same machinery through the library
API, which is what you want when embedding the linter in another tool
(a pre-commit hook, a CI annotator, a dashboard):

1. :func:`fecam.analysis.run_lint` walks the given paths, parses every
   module once, runs the two-pass rule pipeline (all ``collect`` hooks
   before any ``check``), and returns a :class:`LintResult`;
2. :func:`fecam.analysis.load_baseline` / ``apply_baseline`` subtract
   previously-accepted violations, so only *new* regressions fail;
3. the reporters render the surviving violations for humans (flake8
   style) or machines (JSON).

The shipped baseline is empty — the tree lints clean — so this script
doubles as a CI gate: it exits non-zero the moment any rule fires.

Run from the repository root:

    PYTHONPATH=src python examples/lint_repo.py
"""

import sys
from pathlib import Path

from fecam.analysis import (all_rules, apply_baseline, load_baseline,
                            render_text, run_lint)

REPO_ROOT = Path(__file__).resolve().parent.parent


def main() -> int:
    # The rule catalogue is data, not configuration: every registered
    # rule announces its code and one-line contract.
    print("registered rules:")
    for rule in all_rules():
        print(f"  {rule.code}  {rule.description}")
    print()

    result = run_lint([REPO_ROOT / "src" / "fecam"], root=REPO_ROOT)

    # Subtract the accepted baseline (shipped empty — kept here to show
    # the full embedding pattern; a real tool would let operators
    # accept a violation by re-running with --write-baseline).
    baseline = load_baseline(REPO_ROOT / "analysis-baseline.json")
    result = apply_baseline(result, baseline)

    print(render_text(result))
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
