"""Durability walkthrough: write -> crash -> recover -> reshard.

A :class:`DurableCamStore` journals every mutation to a write-ahead log
and checkpoints the planes arena to generation-keyed snapshots, so the
table survives the process.  This demo:

1. builds a durable routing table and kills it mid-write with an
   injected :class:`CrashPoint` (the software stand-in for a power cut);
2. ``recover()``\\ s the directory — newest valid snapshot plus WAL tail,
   torn bytes truncated — and shows the surviving entries;
3. grows the recovered store from 4 to 16 banks *while serving*, via
   the three-phase online reshard, and prints the write-locked pause.

Run:  PYTHONPATH=src python examples/durable_store.py
"""

import random
import shutil
import tempfile

from fecam import SearchService
from fecam.durable import (CrashPoint, DurabilityConfig, DurableCamStore,
                           recover, reshard)
from fecam.errors import SimulatedCrash
from fecam.store import StoreConfig

WIDTH = 32
ROWS = 512


def random_word(rng: random.Random) -> str:
    return "".join(rng.choice("01X") for _ in range(WIDTH))


def main() -> None:
    directory = tempfile.mkdtemp(prefix="fecam-durable-demo-")
    rng = random.Random(2023)
    config = StoreConfig(width=WIDTH, rows=ROWS, banks=4,
                         fidelity="analytical")

    # -- 1. write, then die mid-append ------------------------------------
    # The crash point tears the 21st WAL frame in half: ops 1-20 are
    # durable, op 21 applied in memory but never fully reached disk.
    crash = CrashPoint("wal.append.torn", after=20)
    store = DurableCamStore(
        config, crash_point=crash,
        durability=DurabilityConfig(directory=directory, fsync="interval"))
    try:
        for i in range(100):
            store.insert(random_word(rng), key=f"rule-{i}")
    except SimulatedCrash as exc:
        print(f"process died: {exc}")
    print(f"at death: generation={store.generation}, "
          f"entries={len(store.entries())} (in memory, now lost)")

    # -- 2. recover: snapshot + WAL tail ----------------------------------
    recovered = recover(directory)
    print(f"recovered: generation={recovered.generation}, "
          f"entries={len(recovered.entries())}, "
          f"replayed {recovered.recovered_records} WAL records")
    assert len(recovered.entries()) == 20  # the torn 21st op is gone
    # Probe with a word covered by a surviving entry (X matches either).
    target = recovered.entries()[0]
    probe = target.word.replace("X", "1")
    best = recovered.search_first(probe)
    print(f"probe {probe} -> {best.key if best else 'no match'}")

    # -- 3. reshard 4 -> 16 banks under live traffic ----------------------
    with SearchService(recovered, max_batch=64) as service:
        for i in range(200):  # some live writes before the reshard
            service.insert(random_word(rng), key=f"live-{i}")
        report = reshard(service, banks=16)
        print(f"resharded {report.old_banks} -> {report.new_banks} banks: "
              f"{report.entries} entries carried, "
              f"{report.drained_ops} concurrent ops drained, "
              f"write-locked pause {report.pause_s * 1e3:.2f} ms")
        served = service.search("0" * WIDTH)
        print(f"post-reshard search at generation {served.generation}: "
              f"{len(served.result.matches)} matches")
    recovered.close()

    # The reshard is itself journaled: a second recovery comes back at
    # the new geometry.
    final = recover(directory)
    print(f"recovered again: {final.config.banks} banks, "
          f"{len(final.entries())} entries")
    final.close()
    shutil.rmtree(directory)


if __name__ == "__main__":
    main()
