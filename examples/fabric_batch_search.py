#!/usr/bin/env python3
"""The fabric tier: sharded banks, batched queries, cached results.

Builds a 4-bank fabric of calibrated 1.5T1DG-Fe arrays, bulk-loads a
rule table, then serves a 1000-query batch three ways — a sequential
per-bank loop, the vectorized batch kernel, and a warm query cache —
printing throughput, energy, and early-termination telemetry.

Run:  python examples/fabric_batch_search.py
"""

import random
import time

from fecam import DesignKind
from fecam.fabric import TcamFabric
from fecam.functional import EnergyModel
from fecam.units import FJ

BANKS, ROWS, WIDTH = 4, 1024, 64

# Fixed FoM numbers (paper Tab. IV ballpark) keep the demo SPICE-free.
model = EnergyModel(DesignKind.DG_1T5, WIDTH, e_1step_per_bit=0.8e-15,
                    e_2step_per_bit=1.3e-15, latency_1step=0.7e-9,
                    latency_2step=2.3e-9, write_energy_per_cell=0.41e-15)

rng = random.Random(2023)
fabric = TcamFabric(banks=BANKS, rows_per_bank=ROWS, width=WIDTH,
                    design=DesignKind.DG_1T5, energy_model=model,
                    cache_size=512)

print("=" * 70)
print(f"1. Bulk-load {BANKS * ROWS * 3 // 4} ternary rules across "
      f"{BANKS} banks (vectorized pack)")
print("=" * 70)
words = ["".join(rng.choice("01X") for _ in range(WIDTH))
         for _ in range(BANKS * ROWS * 3 // 4)]
t0 = time.perf_counter()
fabric.insert_many(words, keys=list(range(len(words))),
                   banks=[i % BANKS for i in range(len(words))])
print(f"loaded {fabric.occupancy} entries in "
      f"{(time.perf_counter() - t0) * 1e3:.1f} ms -> {fabric}")

print()
print("=" * 70)
print("2. Serve 1000 queries: loop vs batch vs cache")
print("=" * 70)
queries = ["".join(rng.choice("01") for _ in range(WIDTH))
           for _ in range(1000)]

t0 = time.perf_counter()
for q in queries:
    fabric.search(q, use_cache=False)
t_loop = time.perf_counter() - t0

t0 = time.perf_counter()
results = fabric.search_batch(queries, use_cache=False)
t_batch = time.perf_counter() - t0

hot = [rng.choice(queries[:50]) for _ in range(1000)]
fabric.search_batch(hot[:100])  # warm the cache
t0 = time.perf_counter()
fabric.search_batch(hot)
t_cache = time.perf_counter() - t0

print(f"sequential loop : {1000 / t_loop:10.0f} queries/s")
print(f"vectorized batch: {1000 / t_batch:10.0f} queries/s "
      f"({t_loop / t_batch:.1f}x)")
print(f"warm query cache: {1000 / t_cache:10.0f} queries/s "
      f"({t_loop / t_cache:.1f}x)")
per_query = sum(r.energy for r in results) / len(results)
print(f"energy per broadcast query: {per_query / FJ / 1e3:.1f} pJ "
      f"({fabric.occupancy} rows x {WIDTH} bits fired per query)")

print()
print("=" * 70)
print("3. Fabric telemetry (cross-bank early termination at work)")
print("=" * 70)
stats = fabric.stats
print(f"queries answered: {stats.searches} "
      f"(array searches: {stats.array_searches}, "
      f"cache hit rate: {stats.cache_hit_rate:.2f})")
print(f"total search energy: {stats.energy_total * 1e9:.2f} nJ; "
      f"worst-bank latency: {stats.worst_latency * 1e9:.2f} ns")
for bank in stats.per_bank:
    print(f"  bank {bank.bank_id}: {bank.occupancy:4d} rows, "
          f"step-1 miss rate {bank.step1_miss_rate:.3f} "
          f"(the paper's ~90% early-termination statistic)")
