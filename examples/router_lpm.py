#!/usr/bin/env python3
"""Longest-prefix-match IP routing on a FeFET TCAM (paper Sec. I
motivation: network routers).

Builds a small ISP-style forwarding table, routes a packet trace through
the TCAM, verifies every decision against a software reference, and
reports the energy the DG-FeFET TCAM spent.

Run:  python examples/router_lpm.py
"""

import random

from fecam import DesignKind, StoreConfig
from fecam.apps import TcamRouter, int_to_ip
from fecam.units import FJ

router = TcamRouter(capacity=64,
                    store_config=StoreConfig(design=DesignKind.DG_1T5))
router.add_route("0.0.0.0/0", "upstream")          # default
router.add_route("10.0.0.0/8", "corp-core")
router.add_route("10.20.0.0/16", "corp-east")
router.add_route("10.20.30.0/24", "lab-switch")
router.add_route("192.168.0.0/16", "home-lan")
router.add_route("192.168.7.0/24", "iot-vlan")

print(f"routing table: {len(router)} prefixes\n")

probes = ["10.20.30.44", "10.20.99.1", "10.9.9.9",
          "192.168.7.7", "192.168.1.1", "8.8.8.8"]
for address in probes:
    hop = router.lookup(address)
    reference = router.lookup_reference(address)
    status = "ok" if hop == reference else "MISMATCH"
    print(f"  {address:>15s} -> {hop:<12s} [{status}]")

# A randomized traffic burst, checked against the reference implementation.
rng = random.Random(2023)
errors = 0
for _ in range(2000):
    address = int_to_ip(rng.randrange(0, 1 << 32))
    if router.lookup(address) != router.lookup_reference(address):
        errors += 1
stats = router.stats
print(f"\nrandom burst: 2000 lookups, {errors} reference mismatches")
print(f"TCAM searches issued: {stats['searches']:.0f}")
print(f"energy spent in the TCAM: {stats['energy_j'] / FJ:.0f} fJ "
      f"({stats['energy_j'] / FJ / max(stats['searches'], 1):.1f} fJ/lookup)")
