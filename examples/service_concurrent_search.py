"""Concurrent serving demo: many callers, one fused batch pipeline.

Sixteen threads and a handful of asyncio coroutines hammer one
``SearchService`` while a writer keeps mutating the table through the
service's write API.  Every result carries the write-generation it was
computed at, so readers can tell exactly which table snapshot answered
them — no torn reads, no locks in caller code.

Run:  PYTHONPATH=src python examples/service_concurrent_search.py
"""

import asyncio
import random
import threading

from fecam import CamStore, SearchService, StoreConfig

WIDTH = 32
ROWS = 512
THREADS = 16
LOOKUPS_PER_THREAD = 200


def build_store() -> CamStore:
    rng = random.Random(2023)
    store = CamStore(StoreConfig(width=WIDTH, rows=ROWS, banks=4,
                                 fidelity="analytical"))
    words = ["".join(rng.choice("01X") for _ in range(WIDTH))
             for _ in range(ROWS // 2)]
    store.insert_many(words, keys=[f"rule-{i}" for i in range(len(words))])
    return store


def main() -> None:
    store = build_store()
    rng = random.Random(7)
    queries = ["".join(rng.choice("01") for _ in range(WIDTH))
               for _ in range(LOOKUPS_PER_THREAD)]

    with SearchService(store, max_batch=128, max_wait=2e-3) as service:
        generations = set()

        def reader(seed: int) -> None:
            local = random.Random(seed)
            for _ in range(LOOKUPS_PER_THREAD):
                served = service.search(local.choice(queries))
                generations.add(served.generation)

        def writer() -> None:
            for i in range(20):
                word = "".join(random.Random(i).choice("01X")
                               for _ in range(WIDTH))
                service.insert(word, key=f"live-{i}")

        threads = [threading.Thread(target=reader, args=(seed,))
                   for seed in range(THREADS)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        async def async_burst() -> int:
            served = await service.asearch_many(queries[:64])
            return len({s.generation for s in served})

        async_generations = asyncio.run(async_burst())

        stats = service.stats
        print("requests served     :", stats.served)
        print("dispatch batches    :", stats.batches)
        print(f"mean batch size     : {stats.mean_batch_size:.1f}")
        print(f"coalesced ratio     : {stats.coalesced_ratio:.2f}")
        print(f"p50 / p99 latency   : {stats.p50_latency * 1e3:.2f} / "
              f"{stats.p99_latency * 1e3:.2f} ms")
        print("writes while serving:", stats.writes)
        print("generations observed:", len(generations),
              "(threads),", async_generations, "(asyncio burst)")
        print("final generation    :", stats.generation)

    assert stats.served == THREADS * LOOKUPS_PER_THREAD + 64
    assert stats.writes == 20
    # Micro-batching must actually coalesce under 16 concurrent threads.
    assert stats.mean_batch_size > 1.0


if __name__ == "__main__":
    main()
