#!/usr/bin/env python3
"""Device-level tour: the Fig. 1 measurements, a hysteresis loop, and a
real electrical write through the circuit simulator.

Run:  python examples/device_playground.py
"""

import numpy as np

from fecam import DesignKind
from fecam.cam import WriteController
from fecam.devices import FerroParams, FerroelectricLayer, make_fefet
from fecam.spice import (Circuit, Pulse, Resistor, TransientOptions,
                         VoltageSource, transient)
from fecam.units import FJ

print("=" * 70)
print("DG-FeFET BG-read I-V (paper Fig. 1d)")
print("=" * 70)
lvt = make_fefet(DesignKind.DG_1T5, "L", "fg", "d", "s", "bg", initial_s=1.0)
hvt = make_fefet(DesignKind.DG_1T5, "H", "fg", "d", "s", "bg", initial_s=0.0)
print(f"  MW(BG) = {lvt.params.mw_bg:.2f} V   (paper: 2.7 V)")
print(f"  SS(FG) = {lvt.params.subthreshold_swing_fg * 1e3:.0f} mV/dec, "
      f"SS(BG) = {lvt.params.subthreshold_swing_bg * 1e3:.0f} mV/dec")
print(f"  {'VBG':>5s} {'I(LVT)':>12s} {'I(HVT)':>12s}")
for v_bg in np.linspace(-1, 4, 11):
    i_l = lvt.channel_current(0.0, 0.8, 0.0, v_bg)
    i_h = hvt.channel_current(0.0, 0.8, 0.0, v_bg)
    print(f"  {v_bg:5.1f} {i_l:12.3e} {i_h:12.3e}")

print()
print("=" * 70)
print("Ferroelectric hysteresis loop (KAI kinetics, 5 nm layer)")
print("=" * 70)
layer = FerroelectricLayer(FerroParams(t_fe=5e-9), s=0.0)
fields, polarizations = layer.sweep_loop(e_peak=5e8, period=200e-9,
                                         points_per_branch=40)
p_at_zero = [p for e, p in zip(fields, polarizations) if abs(e) < 2e7]
print(f"  remanent polarization spread at E=0: "
      f"{(max(p_at_zero) - min(p_at_zero)) * 100:.1f} uC/cm^2 "
      f"(2Pr = {2 * layer.params.ps * 100:.1f})")
print(f"  apparent coercive field for a 10 ns pulse: "
      f"{layer.effective_coercive_field(10e-9) / 1e8:.2f} x 1e8 V/m")

print()
print("=" * 70)
print("Electrical write: +2 V pulse on the FG through the MNA engine")
print("=" * 70)
fefet = make_fefet(DesignKind.DG_1T5, "W", "fg", "d", "s", "bg", initial_s=0.0)
ckt = Circuit("write-demo")
ckt.add(VoltageSource("VBL", "fg", "0", Pulse(0.0, 2.0, delay=1e-9,
                                              rise=0.5e-9, fall=0.5e-9,
                                              width=10e-9)))
ckt.add(Resistor("RD", "d", "0", 100.0))
ckt.add(Resistor("RS", "s", "0", 100.0))
ckt.add(VoltageSource("VBG", "bg", "0", 0.0))
ckt.add(fefet)
result = transient(ckt, 13e-9, options=TransientOptions(dt=0.05e-9))
print(f"  domain fraction after the pulse: s = {fefet.s:.3f} (HVT -> LVT)")
print(f"  energy drawn from the bit line: {result.energy('VBL') / FJ:.2f} fJ"
      f"  (2*Pr*A*Vw = {2 * 0.102 * 1e-15 * 2.0 / FJ:.2f} fJ)")

print()
print("Three-step write with MVT program-verify (paper Sec. III-B3):")
wc = WriteController(DesignKind.DG_1T5)
for symbol in "01X":
    f = make_fefet(DesignKind.DG_1T5, "P", "a", "b", "c", "d", initial_s=1.0)
    pulses = wc.write_fefet(f, symbol)
    print(f"  write '{symbol}': s = {f.s:.3f}, state = {f.state(0.74)}, "
          f"verify pulses = {pulses}, "
          f"E = {wc.write_energy_per_cell(symbol) / FJ:.2f} fJ")
