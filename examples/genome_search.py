#!/usr/bin/env python3
"""Seed-and-vote DNA read mapping on a TCAM (paper Sec. I motivation:
bioinformatics, citing the in-memory read-mapping accelerator [2]).

Indexes a synthetic reference genome in a TCAM (one k-mer per row,
ambiguous 'N' bases stored as don't-cares), then maps reads — including
reads with sequencing errors — by plurality vote over their seed hits.

Run:  python examples/genome_search.py
"""

import random

from fecam.apps import SeedIndex, vote_alignment
from fecam.units import FJ

rng = random.Random(1234)
reference = "".join(rng.choice("ACGT") for _ in range(2000))
# Sprinkle a few ambiguous bases — the ternary capability at work.
ref_list = list(reference)
for pos in rng.sample(range(2000), 12):
    ref_list[pos] = "N"
reference = "".join(ref_list)

K = 10
index = SeedIndex(reference, k=K)
print(f"indexed {len(reference) - K + 1} {K}-mers "
      f"({reference.count('N')} ambiguous bases stored as don't-cares)\n")

correct = total = 0
for _ in range(25):
    start = rng.randrange(0, 2000 - 60)
    read = list(reference[start:start + 60].replace("N", "A"))
    # one random sequencing error per read
    err = rng.randrange(60)
    read[err] = rng.choice([b for b in "ACGT" if b != read[err]])
    mapped = vote_alignment("".join(read), index)
    total += 1
    if mapped == start:
        correct += 1

print(f"mapped {correct}/{total} error-injected reads to the exact offset")
print(f"TCAM energy spent: {index.energy_spent / FJ:.0f} fJ")
assert correct >= total - 2, "seed-and-vote should tolerate single errors"
