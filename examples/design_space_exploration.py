#!/usr/bin/env python3
"""Design-space exploration of the 1.5T1Fe divider (paper Sec. V-C).

Four studies a cell designer would run with this library:

1. sweep TN/TP sizing and the MVT target, ranking candidates by their
   worst-case SL_bar margin (paper Eq. 1 co-optimization);
2. Monte-Carlo the chosen point under device variability (the concern
   behind the DG-FeFET multi-level-cell literature the paper cites);
3. sweep the architecture grid (design x word length) on the metrics
   API's analytical tier — the whole Fig. 7-style grid in microseconds,
   no transient simulation;
4. compare the banked-macro cost of deploying each design at a router
   scale (4K entries x 64 bits).

Run:  python examples/design_space_exploration.py
"""

from fecam import DesignKind
from fecam.arch import TcamMacro
from fecam.cam import divider_margins, explore_sizing
from fecam.devices import VariationParams, divider_yield
from fecam.metrics import sweep

print("=" * 72)
print("1. Sizing exploration (1.5T1DG-Fe): top candidates by worst margin")
print("=" * 72)
candidates = explore_sizing(DesignKind.DG_1T5,
                            tn_lengths=(240e-9, 480e-9),
                            tp_lengths=(240e-9, 480e-9),
                            tml_vths=(0.30, 0.35, 0.40),
                            s_x_values=(0.70, 0.74, 0.78))
print(f"{'rank':>4} {'mis_margin':>11} {'mat_margin':>11}  functional")
for rank, margin in enumerate(candidates[:8], 1):
    print(f"{rank:>4} {margin.mismatch_margin:>11.3f} "
          f"{margin.match_margin:>11.3f}  {margin.functional}")

print()
print("frozen defaults:")
for design in (DesignKind.DG_1T5, DesignKind.SG_1T5):
    m = divider_margins(design)
    print(f"  {design}: mismatch +{m.mismatch_margin:.3f} V, "
          f"match +{m.match_margin:.3f} V")

print()
print("=" * 72)
print("2. Monte-Carlo yield under device variability (120 samples)")
print("=" * 72)
for n_domains in (20, 80, 320):
    r = divider_yield(DesignKind.DG_1T5, samples=120,
                      params=VariationParams(n_domains=n_domains))
    print(f"  FE domains/device = {n_domains:>4}: functional yield "
          f"{100 * r.yield_fraction:5.1f} %, "
          f"5th-pct worst margin {r.margin_percentile(0.05):+.3f} V")
print("  -> the intermediate MVT ('X') state dominates the spread; "
      "finer-grained films recover yield")

print()
print("=" * 72)
print("3. Architecture grid on the analytical metrics tier (no SPICE)")
print("=" * 72)
table = sweep(designs=DesignKind.fefet_designs(),
              word_lengths=(16, 32, 64, 128), fidelity="analytical")
print(f"{'design':>12} {'N':>4} {'area um^2':>10} {'ps/search':>10} "
      f"{'fJ/bit':>7} {'EDP fJ*ns':>10}")
for i in range(len(table["design"])):
    print(f"{table['design'][i]:>12} {table['word_length'][i]:>4} "
          f"{table['cell_area_um2'][i]:>10.3f} "
          f"{table['latency_total_ps'][i]:>10.1f} "
          f"{table['energy_avg_fj'][i]:>7.3f} "
          f"{table['edp_fj_ns'][i]:>10.3f}")

print()
print("=" * 72)
print("4. Router-scale macro (4096 entries x 64 bits)")
print("=" * 72)
header = f"{'design':>12} {'banks':>5} {'area mm^2':>10} {'pJ/search':>10} {'ns':>6}"
print(header)
for design in (DesignKind.SG_2FEFET, DesignKind.DG_2FEFET,
               DesignKind.SG_1T5, DesignKind.DG_1T5):
    s = TcamMacro.for_capacity(design, entries=4096, word=64).summary()
    print(f"{s['design']:>12} {s['banks']:>5} {s['area_mm2']:>10.4f} "
          f"{s['search_energy_pj']:>10.1f} {s['search_latency_ns']:>6.2f}")
