"""Observability demo: metrics, sampled traces, and a /metrics scrape.

One ``SearchService`` serves a batch of lookups with the full
``fecam.obs`` stack attached:

* every stats silo (service, store, fabric banks, engine cams) mirrored
  into one :class:`~fecam.obs.MetricsRegistry` and scraped over HTTP as
  Prometheus text exposition;
* a 1-in-8 sampled tracer writing per-request stage timelines (queue
  wait, coalesce wait, lock wait, kernel, result freeze) as JSON lines;
* a slow-query log catching requests over a latency threshold.

The script finishes by checking the traces the way the overhead
benchmark does: every sampled request's stage durations must sum to
within tolerance of its end-to-end latency.

Run:  PYTHONPATH=src python examples/observe_service.py
"""

import io
import json
import random
import urllib.request

from fecam import CamStore, SearchService, StoreConfig
from fecam.obs import (EveryN, JsonLinesSink, Observability, SlowQueryLog,
                       Tracer, lint_prometheus)

WIDTH = 32
ROWS = 1024
LOOKUPS = 512
SAMPLE_EVERY = 8
STAGES = ("queue", "coalesce", "lock_wait", "kernel", "freeze")


def build_store() -> CamStore:
    rng = random.Random(2023)
    store = CamStore(StoreConfig(width=WIDTH, rows=ROWS, banks=4,
                                 fidelity="analytical"))
    words = ["".join(rng.choice("01X") for _ in range(WIDTH))
             for _ in range(ROWS // 2)]
    store.insert_many(words, keys=[f"rule-{i}" for i in range(len(words))])
    return store


def main() -> None:
    rng = random.Random(7)
    queries = ["".join(rng.choice("01") for _ in range(WIDTH))
               for _ in range(LOOKUPS)]

    trace_buf = io.StringIO()
    obs = Observability(
        tracer=Tracer(EveryN(SAMPLE_EVERY), JsonLinesSink(trace_buf)),
        slow_log=SlowQueryLog(0.25, JsonLinesSink(io.StringIO())))

    with obs, SearchService(build_store(), max_batch=128,
                            max_wait=2e-3, obs=obs) as service:
        obs.bind_service(service)
        service.search_many(queries)

        # -- scrape the live /metrics endpoint like Prometheus would --
        server = obs.start_http()
        with urllib.request.urlopen(server.url, timeout=10) as resp:
            exposition = resp.read().decode()
        problems = lint_prometheus(exposition)
        assert not problems, problems

        print(f"scraped {server.url}: "
              f"{len(exposition.splitlines())} exposition lines, "
              f"lint clean")
        for needle in ("fecam_service_served_total",
                       "fecam_store_searches_total",
                       'fecam_fabric_bank_searches_total{bank="0"}',
                       'fecam_cam_searches_total{bank="0"}'):
            line = next(l for l in exposition.splitlines()
                        if l.startswith(needle))
            print(f"  {line}")

    # -- replay the sampled traces: stages must explain the latency --
    traces = [json.loads(line)
              for line in trace_buf.getvalue().splitlines()]
    assert traces, "sampling 1-in-%d produced no traces" % SAMPLE_EVERY
    print(f"\n{len(traces)} traces sampled (1 in {SAMPLE_EVERY} of "
          f"{LOOKUPS} requests)")
    for trace in traces:
        by_stage = {span["name"]: span["duration_s"]
                    for span in trace["spans"]}
        stage_sum = sum(by_stage.get(name, 0.0) for name in STAGES)
        assert stage_sum <= trace["duration_s"] * 1.05 + 1e-6, (
            f"trace {trace['trace_id']}: stages sum to {stage_sum}, "
            f"e2e is {trace['duration_s']}")

    sample = traces[len(traces) // 2]
    print(f"trace #{sample['trace_id']} "
          f"(batch of {sample['attrs']['batch_size']}, "
          f"e2e {sample['duration_s'] * 1e6:.0f}us):")
    for span in sample["spans"]:
        if span["name"] in STAGES:
            print(f"  {span['name']:>9}: "
                  f"{span['duration_s'] * 1e6:8.1f}us "
                  f"(+{span['start_s'] * 1e6:.1f}us)")
    print("every trace's stages fit inside its end-to-end span")


if __name__ == "__main__":
    main()
