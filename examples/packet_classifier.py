#!/usr/bin/env python3
"""Packet classification with TCAM range expansion (paper Sec. I
motivation: data-centric network functions).

Shows the classic port-range -> ternary-prefix expansion, then classifies
a packet mix and cross-checks every verdict against the software
reference.

Run:  python examples/packet_classifier.py
"""

import random

from fecam.apps import Packet, Rule, TcamClassifier, ip_to_int, range_to_prefixes

print("Range -> ternary expansion for dst ports 1024-65535 (16-bit):")
for prefix in range_to_prefixes(1024, 65535, 16):
    print(f"   {prefix}")

classifier = TcamClassifier()
classifier.add_rule(Rule(name="block-telnet", dst_port_range=(23, 23)))
classifier.add_rule(Rule(name="dns", dst_port_range=(53, 53), protocol=17))
classifier.add_rule(Rule(name="web", dst_port_range=(80, 443)))
classifier.add_rule(Rule(name="corp-only",
                         src_prefix=(ip_to_int("10.0.0.0"), 8)))
classifier.add_rule(Rule(name="ephemeral", dst_port_range=(32768, 65535)))
print(f"\n5 rules expand into {classifier.rows_used} TCAM rows")

rng = random.Random(99)
counts = {}
mismatches = 0
for _ in range(1000):
    packet = Packet(src_ip=rng.randrange(1 << 32),
                    dst_ip=rng.randrange(1 << 32),
                    src_port=rng.randrange(1 << 16),
                    dst_port=rng.choice((23, 53, 80, 443, 8080, 40000,
                                         rng.randrange(1 << 16))),
                    protocol=rng.choice((6, 17)))
    verdict = classifier.classify(packet)
    if verdict != classifier.classify_reference(packet):
        mismatches += 1
    counts[verdict] = counts.get(verdict, 0) + 1

print("\nverdict distribution over 1000 random packets:")
for verdict, count in sorted(counts.items(), key=lambda kv: -kv[1]):
    print(f"   {str(verdict):>14s}: {count}")
print(f"\nreference mismatches: {mismatches} (must be 0)")
