"""Scale-out demo: one writer, worker processes serving from shared memory.

Builds a :class:`~fecam.cluster.ClusterService` — a shared-memory arena
with N reader worker processes behind a consistent-hash front end —
loads a rule table, serves bursts while mutating live, SIGKILLs a
worker to show transparent respawn, and prints the per-worker
telemetry the front end aggregates.

The ``__main__`` guard is load-bearing: under the ``spawn`` start
method every worker re-imports this module, and an unguarded body
would fork-bomb.

Run:  PYTHONPATH=src python examples/cluster_search.py
"""

import os
import random
import signal

from fecam import StoreConfig
from fecam.cluster import ClusterService

WIDTH = 32
ROWS = 1024
WORKERS = 4
BURSTS = 20
BURST_SIZE = 64


def main() -> None:
    rng = random.Random(2023)
    config = StoreConfig(width=WIDTH, rows=ROWS, banks=4,
                         fidelity="analytical")
    words = ["".join(rng.choice("01X") for _ in range(WIDTH))
             for _ in range(ROWS // 2)]

    with ClusterService(config=config, workers=WORKERS) as service:
        service.insert_many(words,
                            keys=[f"rule-{i}" for i in range(len(words))])

        generations = set()
        hits = 0
        for burst in range(BURSTS):
            queries = ["".join(rng.choice("01") for _ in range(WIDTH))
                       for _ in range(BURST_SIZE)]
            for served in service.search_many(queries):
                generations.add(served.generation)
                hits += len(served.match_keys)
            # Mutate live: each write publishes one seqlock window and
            # bumps the generation every worker reports back.
            service.insert("".join(rng.choice("01X") for _ in range(WIDTH)),
                           key=f"live-{burst}")

        # Kill a worker mid-flight: the front end respawns it and
        # retries the stranded queries — callers never notice.
        victim = service.worker_stats()[0]
        os.kill(victim["pid"], signal.SIGKILL)
        survivors = service.search_many(
            ["".join(rng.choice("01") for _ in range(WIDTH))
             for _ in range(BURST_SIZE)])
        generations.update(s.generation for s in survivors)

        stats = service.stats
        telemetry = service.worker_stats()
        print(f"workers             : {len(telemetry)} "
              f"({service.backend.start_method} start)")
        print("requests served     :", stats.served)
        print("writes while serving:", stats.writes)
        print("generations observed:", len(generations))
        print("total matches       :", hits)
        for t in sorted(telemetry, key=lambda t: t["worker_id"]):
            print(f"  worker {t['worker_id']}: pid {t['pid']}, "
                  f"{t['searches']} searches, gen {t['generation']}, "
                  f"restarts {t['restarts']}")

    assert stats.served == (BURSTS + 1) * BURST_SIZE
    assert stats.writes == BURSTS + 1  # the bulk load plus one per burst
    # Every worker ends at the final published generation, and exactly
    # one of them was respawned after the SIGKILL.
    assert all(t["generation"] == BURSTS + 1 for t in telemetry)
    assert sum(t["restarts"] for t in telemetry) == 1


if __name__ == "__main__":
    main()
