"""Distribution shim: the library's import name is :mod:`fecam`.

The distribution is named ``repro`` per the reproduction harness contract;
this module re-exports the full :mod:`fecam` API so both spellings work::

    import repro
    import fecam

    assert repro.DesignKind is fecam.DesignKind
"""

from fecam import *  # noqa: F401,F403
from fecam import (DesignKind, __version__, apps, arch, bench, cam, devices,
                   functional, spice)

__all__ = ["DesignKind", "spice", "devices", "cam", "arch", "functional",
           "apps", "bench", "__version__"]
