/* fecam compiled match kernel.
 *
 * The two-step ternary match over the valid-compacted, bit-compressed
 * derived planes (see fecam/planes.py):
 *
 *   step 1 (even cell positions):  (qe & ce) == ve
 *   step 2 (odd  cell positions):  (qo & co) == vo
 *
 * All inputs are the exact arrays the NumPy kernel consumes —
 * (M, C) uint32 row-major planes, (Q, C) uint32 packed queries — and
 * all outputs are integer counts, so results are bit-identical to the
 * NumPy evaluation by construction (the hypothesis suites enforce it).
 *
 * Evaluation is branchless per row (both steps always computed, the
 * counts segmented afterwards): slower on paper than early-exit for
 * wildcard-light tables, but it auto-vectorizes, which wins by an
 * order of magnitude in practice.  The early-termination *energy*
 * story is arithmetic over the counts downstream, not a property of
 * how software evaluates them.
 *
 * Banks are contiguous row segments of the compacted planes
 * (seg_starts has n_banks + 1 entries, bank b owning rows
 * [seg_starts[b], seg_starts[b+1])) — exactly the segment structure
 * the NumPy kernel recovers with reduceat/bincount.
 *
 * The omp pragmas are active only when built with -fopenmp; without
 * it they are ignored and the kernel runs single-threaded.
 */

#include <stdint.h>

#define FECAM_API __attribute__((visibility("default")))

/* Bumped whenever an exported signature changes; the Python side
 * refuses a library whose ABI does not match. */
#define FECAM_KERNEL_ABI 3

FECAM_API int64_t fecam_kernel_abi(void) { return FECAM_KERNEL_ABI; }

FECAM_API int64_t fecam_kernel_openmp(void) {
#ifdef _OPENMP
    return 1;
#else
    return 0;
#endif
}

/* Software pext(x, 0x5555...): identical masked-shift compaction to
 * fecam.planes.compress_even, so compressed queries are bit-identical
 * to the NumPy path's. */
static inline uint32_t pext_even(uint64_t x) {
    x &= 0x5555555555555555ULL;
    x = (x | (x >> 1))  & 0x3333333333333333ULL;
    x = (x | (x >> 2))  & 0x0F0F0F0F0F0F0F0FULL;
    x = (x | (x >> 4))  & 0x00FF00FF00FF00FFULL;
    x = (x | (x >> 8))  & 0x0000FFFF0000FFFFULL;
    x = (x | (x >> 16)) & 0x00000000FFFFFFFFULL;
    return (uint32_t)x;
}

/* Compress n packed uint64 query chunks into their even- and odd-bit
 * uint32 halves (n = Q * n_chunks; layout is irrelevant elementwise). */
FECAM_API void fecam_compress_queries(const uint64_t *q, int64_t n,
                                      uint32_t *qe, uint32_t *qo) {
    for (int64_t i = 0; i < n; i++) {
        qe[i] = pext_even(q[i]);
        qo[i] = pext_even(q[i] >> 1);
    }
}

static inline int64_t row_eq(const uint32_t *q, const uint32_t *c,
                             const uint32_t *v, int64_t n_chunks) {
    uint32_t miss = 0;
    for (int64_t k = 0; k < n_chunks; k++)
        miss |= (q[k] & c[k]) ^ v[k];
    return miss == 0;
}

/* Per-(bank, query) step-1 eliminations, step-2 misses, and full
 * matches.  Outputs are (n_banks, n_q) int64 row-major; every cell is
 * written, so callers may pass uninitialized buffers. */
FECAM_API void fecam_count_matches(
    const uint32_t *ce, const uint32_t *ve,
    const uint32_t *co, const uint32_t *vo,       /* (M, C) row-major */
    const uint32_t *qe, const uint32_t *qo,       /* (Q, C) row-major */
    const int64_t *seg_starts,                    /* (n_banks + 1,)   */
    int64_t n_banks, int64_t n_q, int64_t n_chunks,
    int64_t *step1, int64_t *step2, int64_t *full, /* (n_banks, n_q)  */
    int64_t *per_query                             /* (n_q,) totals   */)
{
    if (n_chunks == 1) {
        /* Common case (width <= 64): one compressed chunk per row. */
#pragma omp parallel for schedule(static)
        for (int64_t q = 0; q < n_q; q++) {
            const uint32_t qe_q = qe[q];
            const uint32_t qo_q = qo[q];
            int64_t q_total = 0;
            for (int64_t b = 0; b < n_banks; b++) {
                const int64_t lo = seg_starts[b];
                const int64_t hi = seg_starts[b + 1];
                int64_t surv = 0;
                int64_t hits = 0;
                for (int64_t m = lo; m < hi; m++) {
                    const int64_t s1 = (qe_q & ce[m]) == ve[m];
                    const int64_t s2 = (qo_q & co[m]) == vo[m];
                    surv += s1;
                    hits += s1 & s2;
                }
                step1[b * n_q + q] = (hi - lo) - surv;
                step2[b * n_q + q] = surv - hits;
                full[b * n_q + q] = hits;
                q_total += hits;
            }
            per_query[q] = q_total;
        }
        return;
    }
#pragma omp parallel for schedule(static)
    for (int64_t q = 0; q < n_q; q++) {
        const uint32_t *qe_q = qe + q * n_chunks;
        const uint32_t *qo_q = qo + q * n_chunks;
        int64_t q_total = 0;
        for (int64_t b = 0; b < n_banks; b++) {
            const int64_t lo = seg_starts[b];
            const int64_t hi = seg_starts[b + 1];
            int64_t surv = 0;
            int64_t hits = 0;
            for (int64_t m = lo; m < hi; m++) {
                const uint32_t *crow = ce + m * n_chunks;
                const uint32_t *vrow = ve + m * n_chunks;
                const int64_t s1 = row_eq(qe_q, crow, vrow, n_chunks);
                surv += s1;
                if (s1)
                    hits += row_eq(qo_q, co + m * n_chunks,
                                   vo + m * n_chunks, n_chunks);
            }
            step1[b * n_q + q] = (hi - lo) - surv;
            step2[b * n_q + q] = surv - hits;
            full[b * n_q + q] = hits;
            q_total += hits;
        }
        per_query[q] = q_total;
    }
}

/* Candidate-index ("sparse") variant of the count pass, mirroring the
 * NumPy kernel's "table" strategy: the 256-entry step-1 index maps a
 * query's low compressed even byte to the short ascending list of rows
 * consistent with it; every other row is a guaranteed step-1 miss by
 * index construction.  ce0_at/ve0_at are the candidates' chunk-0
 * planes pre-gathered in index order (sequential reads), indices maps
 * positions back to compacted-plane rows for the remaining chunks,
 * step 2, and bank attribution.  For typical care densities this
 * touches a few percent of the Q x M pairs.
 *
 * bank_of has M entries when n_banks > 1; with one bank it may be a
 * dummy (it is never read). */
FECAM_API void fecam_count_matches_sparse(
    const uint32_t *ce, const uint32_t *ve,
    const uint32_t *co, const uint32_t *vo,       /* (M, C) row-major */
    const uint32_t *qe, const uint32_t *qo,       /* (Q, C) row-major */
    const int64_t *indptr,                        /* (257,)           */
    const int64_t *indices,                       /* (K,) rows, asc.  */
    const uint32_t *ce0_at, const uint32_t *ve0_at, /* (K,) gathered  */
    const int64_t *bank_of,                       /* (M,) or dummy    */
    const int64_t *seg_counts,                    /* (n_banks,)       */
    int64_t n_banks, int64_t n_q, int64_t n_chunks,
    int64_t *step1, int64_t *step2, int64_t *full, /* (n_banks, n_q)  */
    int64_t *per_query                             /* (n_q,) totals   */)
{
#pragma omp parallel
    {
        /* Non-candidates are step-1 misses: start every bank at its
         * row count (decremented per survivor below) and zero the
         * rest.  Done row-major up front — per-query column writes
         * would touch a fresh cache line per (bank, query) cell. */
#pragma omp for schedule(static)
        for (int64_t b = 0; b < n_banks; b++) {
            int64_t *r1 = step1 + b * n_q;
            int64_t *r2 = step2 + b * n_q;
            int64_t *rf = full + b * n_q;
            const int64_t rows_b = seg_counts[b];
            for (int64_t q = 0; q < n_q; q++) {
                r1[q] = rows_b;
                r2[q] = 0;
                rf[q] = 0;
            }
        }
#pragma omp for schedule(static)
    for (int64_t q = 0; q < n_q; q++) {
        const uint32_t *qe_q = qe + q * n_chunks;
        const uint32_t *qo_q = qo + q * n_chunks;
        const uint32_t qe0 = qe_q[0];
        const int64_t xi = qe0 & 0xFF;
        const int64_t start = indptr[xi];
        const int64_t end = indptr[xi + 1];
        /* First a pure chunk-0 survivor count over the bucket — a
         * branch-free compare-sum the compiler vectorizes.  Most
         * queries have zero survivors (the paper's step-1 miss rate),
         * so the expensive per-survivor processing below rarely runs
         * and the common case stays a straight SIMD reduction. */
        int64_t n0 = 0;
        for (int64_t pos = start; pos < end; pos++)
            n0 += (int64_t)((qe0 & ce0_at[pos]) == ve0_at[pos]);
        per_query[q] = 0;
        if (n0 == 0)
            continue;
        int64_t q_total = 0;
        for (int64_t pos = start; pos < end; pos++) {
            if ((qe0 & ce0_at[pos]) != ve0_at[pos])
                continue;   /* chunk-0 step-1 miss */
            const int64_t m = indices[pos];
            if (n_chunks > 1
                && !row_eq(qe_q + 1, ce + m * n_chunks + 1,
                           ve + m * n_chunks + 1, n_chunks - 1))
                continue;   /* later-chunk step-1 miss */
            const int64_t b = (n_banks > 1) ? bank_of[m] : 0;
            step1[b * n_q + q]--;
            if (row_eq(qo_q, co + m * n_chunks,
                       vo + m * n_chunks, n_chunks)) {
                full[b * n_q + q]++;
                q_total++;
            } else {
                step2[b * n_q + q]++;
            }
        }
        per_query[q] = q_total;
    }
    }  /* omp parallel */
}

/* Second pass: emit the matching (query, arena row) pairs, grouped by
 * query with arena rows ascending — the NumPy kernel's (and a priority
 * encoder's) order.  offsets is the (n_q + 1,) exclusive prefix sum of
 * per-query match totals from fecam_count_matches; only queries that
 * actually matched are rescanned, so the pass costs O(matching
 * queries x rows), a vanishing share of typical workloads. */
FECAM_API void fecam_fill_matches(
    const uint32_t *ce, const uint32_t *ve,
    const uint32_t *co, const uint32_t *vo,       /* (M, C) row-major */
    const uint32_t *qe, const uint32_t *qo,       /* (Q, C) row-major */
    const int64_t *valid_rows,                    /* (M,) arena rows  */
    int64_t n_rows, int64_t n_q, int64_t n_chunks,
    const int64_t *offsets,                       /* (n_q + 1,)       */
    int64_t *match_q, int64_t *match_rows         /* (offsets[n_q],)  */)
{
#pragma omp parallel for schedule(dynamic, 64)
    for (int64_t q = 0; q < n_q; q++) {
        int64_t slot = offsets[q];
        const int64_t end = offsets[q + 1];
        if (slot == end)
            continue;
        const uint32_t *qe_q = qe + q * n_chunks;
        const uint32_t *qo_q = qo + q * n_chunks;
        for (int64_t m = 0; m < n_rows && slot < end; m++) {
            if (row_eq(qe_q, ce + m * n_chunks,
                       ve + m * n_chunks, n_chunks)
                && row_eq(qo_q, co + m * n_chunks,
                          vo + m * n_chunks, n_chunks)) {
                match_q[slot] = q;
                match_rows[slot] = valid_rows[m];
                slot++;
            }
        }
    }
}

/* Candidate-index variant of the fill pass.  Index lists ascend within
 * each bucket, so walking one emits rows in the same ascending order
 * as the full scan. */
FECAM_API void fecam_fill_matches_sparse(
    const uint32_t *ce, const uint32_t *ve,
    const uint32_t *co, const uint32_t *vo,       /* (M, C) row-major */
    const uint32_t *qe, const uint32_t *qo,       /* (Q, C) row-major */
    const int64_t *indptr,                        /* (257,)           */
    const int64_t *indices,                       /* (K,) rows, asc.  */
    const uint32_t *ce0_at, const uint32_t *ve0_at, /* (K,) gathered  */
    const int64_t *valid_rows,                    /* (M,) arena rows  */
    int64_t n_q, int64_t n_chunks,
    const int64_t *offsets,                       /* (n_q + 1,)       */
    int64_t *match_q, int64_t *match_rows         /* (offsets[n_q],)  */)
{
#pragma omp parallel for schedule(dynamic, 64)
    for (int64_t q = 0; q < n_q; q++) {
        int64_t slot = offsets[q];
        const int64_t end = offsets[q + 1];
        if (slot == end)
            continue;
        const uint32_t *qe_q = qe + q * n_chunks;
        const uint32_t *qo_q = qo + q * n_chunks;
        const uint32_t qe0 = qe_q[0];
        const int64_t xi = qe0 & 0xFF;
        const int64_t bucket_end = indptr[xi + 1];
        for (int64_t pos = indptr[xi];
             pos < bucket_end && slot < end; pos++) {
            if ((qe0 & ce0_at[pos]) != ve0_at[pos])
                continue;
            const int64_t m = indices[pos];
            if (n_chunks > 1
                && !row_eq(qe_q + 1, ce + m * n_chunks + 1,
                           ve + m * n_chunks + 1, n_chunks - 1))
                continue;
            if (row_eq(qo_q, co + m * n_chunks,
                       vo + m * n_chunks, n_chunks)) {
                match_q[slot] = q;
                match_rows[slot] = valid_rows[m];
                slot++;
            }
        }
    }
}
