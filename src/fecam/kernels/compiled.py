"""ctypes bindings for the compiled two-step match kernel.

:class:`CompiledKernel` drives the shared library built by
:mod:`fecam.kernels.build`.  The bindings are deliberately raw: every
array crosses the boundary as a bare data pointer (``c_void_p``)
because NumPy's ``ndpointer`` validation costs microseconds *per
argument per call* — more than the kernel itself on cached workloads.
Safety comes from checking dtype and contiguity **once per derived
generation** instead: pointers for the (memoized) derived planes and
step-1 index are validated and cached on those objects, so a
steady-state serve loop re-validates nothing.

ctypes releases the GIL for the duration of each call, so other
service threads make progress while the kernel scans.

The kernel is two-pass, mirroring the C side:

1. the count pass fills the (B, Q) ``step1``/``step2``/``full`` count
   matrices plus per-query match totals;
2. the fill pass re-scans only the queries that matched, sized exactly
   by the totals, and emits (query, arena row) pairs in the NumPy
   kernel's order — grouped by query, rows ascending.

Counts are integers, query compression is the identical masked-shift
pext, and the match order is deterministic, so results are
bit-identical to the NumPy backend (the hypothesis suites in
``tests/kernels/`` enforce this on every run).
"""

from __future__ import annotations

import ctypes
from typing import List, Optional, Tuple

import numpy as np

from ..analysis.markers import hot_path
from ..errors import TernaryValueError
from .build import load_library

__all__ = ["CompiledKernel"]

_PTR = ctypes.c_void_p
_I64 = ctypes.c_int64

_EXEMPT = ("ctypes shim: every per-row loop runs in compiled code, "
           "Python-level hygiene heuristics do not apply")

#: Attribute the pointer caches live under on DerivedPlanes/Step1Index.
_PTR_CACHE = "_compiled_kernel_ptrs"


def _require(arr: np.ndarray, dtype: type, what: str) -> np.ndarray:
    """One-time layout validation for arrays whose pointers get cached."""
    if arr.dtype != np.dtype(dtype) or not arr.flags.c_contiguous:
        arr = np.ascontiguousarray(arr, dtype=dtype)
    if not arr.flags.c_contiguous:  # pragma: no cover - defensive
        raise TernaryValueError(f"{what} plane is not contiguous")
    return arr


class CompiledKernel:
    """Callable facade over the compiled kernel library."""

    name = "compiled"

    def __init__(self) -> None:
        lib = load_library()
        compress = lib.fecam_compress_queries
        compress.restype = None
        compress.argtypes = [_PTR, _I64, _PTR, _PTR]
        count = lib.fecam_count_matches
        count.restype = None
        count.argtypes = [_PTR] * 7 + [_I64] * 3 + [_PTR] * 4
        count_sp = lib.fecam_count_matches_sparse
        count_sp.restype = None
        count_sp.argtypes = [_PTR] * 12 + [_I64] * 3 + [_PTR] * 4
        fill = lib.fecam_fill_matches
        fill.restype = None
        fill.argtypes = [_PTR] * 7 + [_I64] * 3 + [_PTR] * 3
        fill_sp = lib.fecam_fill_matches_sparse
        fill_sp.restype = None
        fill_sp.argtypes = [_PTR] * 11 + [_I64] * 2 + [_PTR] * 3
        omp = lib.fecam_kernel_openmp
        omp.restype = _I64
        omp.argtypes = []
        self._lib = lib  # keeps the dlopen handle alive
        self._compress = compress
        self._count = count
        self._count_sparse = count_sp
        self._fill = fill
        self._fill_sparse = fill_sp
        #: Whether the library was built with OpenMP (informational).
        self.openmp = bool(omp())

    # -- pointer caches ----------------------------------------------------

    def _derived_ptrs(self, derived) -> tuple:
        """(ce, ve, co, vo, valid_rows) pointers for one derived
        generation, validated once and cached on the object (whose
        lifetime owns the arrays the pointers reference)."""
        cached = derived.__dict__.get(_PTR_CACHE)
        if cached is None:
            ce = _require(derived.ce32, np.uint32, "ce32")
            ve = _require(derived.ve32, np.uint32, "ve32")
            co = _require(derived.co32, np.uint32, "co32")
            vo = _require(derived.vo32, np.uint32, "vo32")
            valid = _require(derived.valid_rows, np.int64, "valid_rows")
            cached = ((ce, ve, co, vo, valid),
                      ce.ctypes.data, ve.ctypes.data, co.ctypes.data,
                      vo.ctypes.data, valid.ctypes.data)
            derived.__dict__[_PTR_CACHE] = cached
        return cached

    def _index_ptrs(self, index) -> tuple:
        """(indptr, indices, ce0_at, ve0_at) pointers for one step-1
        index, cached the same way."""
        cached = index.__dict__.get(_PTR_CACHE)
        if cached is None:
            indptr = _require(index.indptr, np.int64, "indptr")
            indices = _require(index.indices, np.int64, "indices")
            ce0 = _require(index.ce0_at, np.uint32, "ce0_at")
            ve0 = _require(index.ve0_at, np.uint32, "ve0_at")
            cached = ((indptr, indices, ce0, ve0),
                      indptr.ctypes.data, indices.ctypes.data,
                      ce0.ctypes.data, ve0.ctypes.data)
            index.__dict__[_PTR_CACHE] = cached
        return cached

    # -- kernel entry points -----------------------------------------------

    @hot_path(exempt=_EXEMPT)
    def compress_queries(self, q_values: np.ndarray
                         ) -> Tuple[np.ndarray, np.ndarray]:
        """Compress packed uint64 queries into (Q, C) uint32 even/odd
        halves — the C twin of :func:`fecam.planes.compress_even`."""
        q = np.ascontiguousarray(q_values, dtype=np.uint64)
        qe = np.empty(q.shape, dtype=np.uint32)
        qo = np.empty(q.shape, dtype=np.uint32)
        self._compress(q.ctypes.data, q.size,
                       qe.ctypes.data, qo.ctypes.data)
        return qe, qo

    @hot_path(exempt=_EXEMPT)
    def fused(self, derived, index, bank_of: Optional[np.ndarray],
              seg_counts: np.ndarray, qe: np.ndarray, qo: np.ndarray,
              step1: np.ndarray, step2: np.ndarray, full: np.ndarray
              ) -> Tuple[List[int], List[int]]:
        """Count + collect in one call; returns (match_q, match_rows).

        Fills the (B, Q) count matrices in place and emits the matching
        (query, arena row) pairs in the NumPy kernel's order.  Uses the
        sparse candidate-index variant when ``index`` is given, the
        dense branchless scan otherwise.
        """
        _keep, ce_p, ve_p, co_p, vo_p, valid_p = self._derived_ptrs(derived)
        n_banks, n_q = step1.shape
        n_chunks = derived.ce32.shape[1]
        n_rows = derived.rows_searched
        qe_p, qo_p = qe.ctypes.data, qo.ctypes.data
        # offsets[1:] doubles as the per-query totals buffer; one
        # in-place cumsum turns it into the exclusive prefix the fill
        # pass wants.
        offsets = np.zeros(n_q + 1, dtype=np.int64)
        per_query_p = offsets.ctypes.data + 8
        if index is not None:
            _ikeep, indptr_p, indices_p, ce0_p, ve0_p = \
                self._index_ptrs(index)
            bank_p = (bank_of.ctypes.data if n_banks > 1
                      else offsets.ctypes.data)  # dummy; never read
            seg64 = np.ascontiguousarray(seg_counts, dtype=np.int64)
            self._count_sparse(ce_p, ve_p, co_p, vo_p, qe_p, qo_p,
                               indptr_p, indices_p, ce0_p, ve0_p,
                               bank_p, seg64.ctypes.data,
                               n_banks, n_q, n_chunks,
                               step1.ctypes.data, step2.ctypes.data,
                               full.ctypes.data, per_query_p)
        else:
            seg_starts = np.zeros(n_banks + 1, dtype=np.int64)
            np.cumsum(seg_counts, out=seg_starts[1:])
            self._count(ce_p, ve_p, co_p, vo_p, qe_p, qo_p,
                        seg_starts.ctypes.data, n_banks, n_q, n_chunks,
                        step1.ctypes.data, step2.ctypes.data,
                        full.ctypes.data, per_query_p)
        np.cumsum(offsets[1:], out=offsets[1:])
        total = int(offsets[n_q])
        if total == 0:
            return [], []
        match_q = np.empty(total, dtype=np.int64)
        match_rows = np.empty(total, dtype=np.int64)
        if index is not None:
            self._fill_sparse(ce_p, ve_p, co_p, vo_p, qe_p, qo_p,
                              indptr_p, indices_p, ce0_p, ve0_p,
                              valid_p, n_q, n_chunks,
                              offsets.ctypes.data, match_q.ctypes.data,
                              match_rows.ctypes.data)
        else:
            self._fill(ce_p, ve_p, co_p, vo_p, qe_p, qo_p, valid_p,
                       n_rows, n_q, n_chunks,
                       offsets.ctypes.data, match_q.ctypes.data,
                       match_rows.ctypes.data)
        return match_q.tolist(), match_rows.tolist()
