"""On-demand C build of the compiled match kernel.

The compiled backend is a single C translation unit
(``_kernel.c``, shipped with the package) built into a shared library
by whatever C compiler the host has — no Python build dependency, no
wheel story, no import-time cost for users who never select it.  The
build is content-addressed: the library lands in a cache directory
under a name keyed by the source hash, so it compiles exactly once per
source revision and every later import is one ``dlopen``.

Resolution order for the cache directory:

1. ``FECAM_KERNEL_CACHE`` (explicit override — CI uses this to persist
   the artifact across runs);
2. ``_build/`` next to this module (keeps artifacts inside the
   package tree when it is writable — the common dev checkout case);
3. a per-user directory under the system temp dir.

Every failure mode (no compiler, compile error, unloadable library,
ABI mismatch) raises :class:`~fecam.errors.KernelUnavailableError`
with the underlying reason; the registry turns that into a graceful
fallback to the NumPy kernel.
"""

from __future__ import annotations

import ctypes
import getpass
import hashlib
import os
import shutil
import subprocess
import tempfile

from typing import List, Optional

from ..errors import KernelUnavailableError

__all__ = ["source_path", "cache_dir", "build_library", "load_library"]

#: ABI the Python bindings speak; must match _kernel.c's FECAM_KERNEL_ABI.
KERNEL_ABI = 3

_BASE_FLAGS = ["-O3", "-fPIC", "-shared"]
#: Tried in order until one compiles: OpenMP + native tuning first,
#: then progressively plainer flag sets for conservative toolchains.
_FLAG_LADDER = [["-fopenmp", "-march=native"], ["-fopenmp"],
                ["-march=native"], []]


def source_path() -> str:
    """Path of the shipped C source."""
    return os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "_kernel.c")


def find_compiler() -> Optional[str]:
    """The C compiler to use, or None (``FECAM_CC`` overrides)."""
    override = os.environ.get("FECAM_CC")
    if override:
        return shutil.which(override) or override
    for candidate in ("cc", "gcc", "clang"):
        found = shutil.which(candidate)
        if found:
            return found
    return None


def cache_dir() -> str:
    """The directory compiled libraries land in (created on demand)."""
    override = os.environ.get("FECAM_KERNEL_CACHE")
    if override:
        os.makedirs(override, exist_ok=True)
        return override
    local = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                         "_build")
    try:
        os.makedirs(local, exist_ok=True)
        probe = os.path.join(local, ".write-probe")
        with open(probe, "w"):
            pass
        os.remove(probe)
        return local
    except OSError:
        pass  # read-only install: fall through to the temp dir
    try:
        user = getpass.getuser()
    except OSError:  # pragma: no cover - no passwd entry
        user = "anon"
    fallback = os.path.join(tempfile.gettempdir(),
                            f"fecam-kernels-{user}")
    os.makedirs(fallback, exist_ok=True)
    return fallback


def _read_source() -> str:
    try:
        with open(source_path()) as handle:
            return handle.read()
    except OSError as exc:
        raise KernelUnavailableError(
            f"kernel source missing: {exc}") from exc


def _library_path(source: str) -> str:
    digest = hashlib.sha256(
        f"abi{KERNEL_ABI}\n{source}".encode()).hexdigest()[:16]
    return os.path.join(cache_dir(), f"fecam_kernel_{digest}.so")


def build_library(*, verbose: bool = False) -> str:
    """Compile (or reuse) the kernel library; returns its path."""
    source = _read_source()
    lib_path = _library_path(source)
    if os.path.exists(lib_path):
        return lib_path
    compiler = find_compiler()
    if compiler is None:
        raise KernelUnavailableError(
            "no C compiler found (set FECAM_CC, or install cc/gcc/clang)")
    errors: List[str] = []
    for extra in _FLAG_LADDER:
        # Build to a temp name, then atomically publish: concurrent
        # processes racing the first build each succeed and os.replace
        # makes one winner visible.
        tmp_path = lib_path + f".tmp{os.getpid()}"
        cmd = ([compiler] + _BASE_FLAGS + extra
               + ["-o", tmp_path, source_path()])
        try:
            proc = subprocess.run(cmd, capture_output=True, text=True,
                                  timeout=120)
        except (OSError, subprocess.TimeoutExpired) as exc:
            errors.append(f"{' '.join(extra) or '(base flags)'}: {exc}")
            continue
        if proc.returncode == 0:
            os.replace(tmp_path, lib_path)
            if verbose:  # pragma: no cover - debug aid
                print(f"[fecam.kernels] built {lib_path} via {cmd}")
            return lib_path
        errors.append(f"{' '.join(extra) or '(base flags)'}: "
                      f"{proc.stderr.strip()[:500]}")
        try:
            os.remove(tmp_path)
        except OSError:
            pass
    raise KernelUnavailableError(
        "kernel compilation failed with every flag set:\n  "
        + "\n  ".join(errors))


def load_library() -> ctypes.CDLL:
    """Build if needed, ``dlopen``, and ABI-check the kernel library."""
    lib_path = build_library()
    try:
        lib = ctypes.CDLL(lib_path)
    except OSError as exc:
        raise KernelUnavailableError(
            f"compiled kernel failed to load: {exc}") from exc
    try:
        abi_fn = lib.fecam_kernel_abi
    except AttributeError as exc:
        raise KernelUnavailableError(
            "compiled kernel exports no ABI probe") from exc
    abi_fn.restype = ctypes.c_int64
    abi_fn.argtypes = []
    abi = int(abi_fn())
    if abi != KERNEL_ABI:
        raise KernelUnavailableError(
            f"compiled kernel speaks ABI {abi}, bindings expect "
            f"{KERNEL_ABI} (stale cache? delete {lib_path})")
    return lib
