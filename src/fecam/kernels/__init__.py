"""fecam.kernels — the pluggable compiled hot path for the match kernel.

The fused two-step match kernel (:func:`fecam.fabric.batch.
fused_count_matches`) has two interchangeable backends:

* ``numpy`` — the existing vectorized NumPy evaluation (candidate-index
  and dense strategies); always available.
* ``compiled`` — a C kernel built on demand by the host's C compiler
  (:mod:`fecam.kernels.build`) and driven through ctypes
  (:mod:`fecam.kernels.compiled`); bit-identical counts and match
  order, several times faster, releases the GIL while scanning.

Selection is lazy and process-wide.  ``FECAM_KERNEL`` picks the policy:

==============  ================================================
``auto``        (default) compiled when it can be built, silent
                fallback to numpy otherwise
``compiled``    compiled preferred; falls back to numpy with a
                one-time warning if unavailable
``numpy``       never touch the compiler
==============  ================================================

Per-call forcing is stricter: ``fused_count_matches(...,
kernel="compiled")`` raises :class:`~fecam.errors.
KernelUnavailableError` rather than silently falling back, because a
caller that names the backend wants *that* backend (benchmarks, the
bit-identity suites).

Build failures are cached: one failed compile marks the backend
unavailable for the process instead of re-invoking the compiler on
every batch.  Tests reset the cached resolution with
:func:`reset_backend`.
"""

from __future__ import annotations

import os
import threading
import warnings
from typing import List, Optional, TYPE_CHECKING

from ..errors import KernelUnavailableError, TernaryValueError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .compiled import CompiledKernel

__all__ = ["BACKENDS", "KernelUnavailableError", "active_kernel",
           "backend_name", "compiled_kernel", "compiled_available",
           "reset_backend", "set_backend"]

#: Recognized FECAM_KERNEL / set_backend() values.
BACKENDS = ("auto", "numpy", "compiled")

_lock = threading.Lock()
_forced: Optional[str] = None          # set_backend() override
_kernel: Optional["CompiledKernel"] = None
_failure: Optional[KernelUnavailableError] = None
_attempted = False
_warned = False


def _policy() -> str:
    """The selection policy: forced override, else env, else auto."""
    if _forced is not None:
        return _forced
    env = os.environ.get("FECAM_KERNEL", "auto").strip().lower()
    if env not in BACKENDS:
        warnings.warn(
            f"FECAM_KERNEL={env!r} not recognized (expected one of "
            f"{'/'.join(BACKENDS)}); using 'auto'", RuntimeWarning,
            stacklevel=3)
        return "auto"
    return env


def _load_compiled() -> Optional["CompiledKernel"]:
    """Build/load the compiled kernel once; cache success or failure."""
    global _kernel, _failure, _attempted
    with _lock:
        if not _attempted:
            _attempted = True
            try:
                from .compiled import CompiledKernel
                _kernel = CompiledKernel()
            except KernelUnavailableError as exc:
                _failure = exc
            except Exception as exc:  # defensive: broken toolchain etc.
                _failure = KernelUnavailableError(
                    f"compiled kernel initialization failed: {exc!r}")
        return _kernel


def compiled_kernel() -> "CompiledKernel":
    """The compiled kernel, building it on first use.

    Raises :class:`KernelUnavailableError` when it cannot be provided
    (no compiler, compile failure, ABI mismatch) — including when the
    failure was cached by an earlier attempt.
    """
    kernel = _load_compiled()
    if kernel is None:
        assert _failure is not None
        raise _failure
    return kernel


def compiled_available() -> bool:
    """Whether the compiled backend can be (or has been) loaded."""
    return _load_compiled() is not None


def active_kernel() -> Optional["CompiledKernel"]:
    """The compiled kernel if the active policy selects it, else None.

    This is the hot-path query: the fused kernel calls it once per
    batch.  After the first resolution it is a couple of attribute
    reads.
    """
    policy = _policy()
    if policy == "numpy":
        return None
    kernel = _load_compiled()
    if kernel is None and policy == "compiled":
        global _warned
        if not _warned:
            _warned = True
            warnings.warn(
                f"FECAM_KERNEL=compiled but the compiled kernel is "
                f"unavailable ({_failure}); falling back to the NumPy "
                f"backend", RuntimeWarning, stacklevel=3)
    return kernel


def backend_name() -> str:
    """The backend the active policy resolves to (telemetry label)."""
    return "compiled" if active_kernel() is not None else "numpy"


def set_backend(name: Optional[str]) -> None:
    """Force the backend policy for this process (tests, benchmarks).

    ``name`` is one of :data:`BACKENDS`, or None to return control to
    the ``FECAM_KERNEL`` environment variable.  Forcing ``compiled``
    here keeps the graceful-fallback semantics; per-call
    ``kernel="compiled"`` is the strict form.
    """
    global _forced
    if name is not None and name not in BACKENDS:
        raise TernaryValueError(
            f"kernel backend must be one of {BACKENDS}, got {name!r}")
    _forced = name


def reset_backend() -> None:
    """Drop every cached resolution (tests re-resolve from scratch).

    Clears the forced override, the loaded kernel, any cached build
    failure, and the one-time fallback warning latch.  The next
    :func:`active_kernel` call re-reads ``FECAM_KERNEL`` and re-attempts
    the build.
    """
    global _forced, _kernel, _failure, _attempted, _warned
    with _lock:
        _forced = None
        _kernel = None
        _failure = None
        _attempted = False
        _warned = False
