"""SI unit helpers and physical constants.

All fecam internals work in unscaled SI units (volts, amperes, seconds,
farads, meters).  These helpers exist so that calibration tables and tests
can be written in the units the paper uses (nanometers, picoseconds,
femtojoules) without sprinkling powers of ten through the code.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Scale factors: multiply a number in the named unit to get SI.
# ---------------------------------------------------------------------------

TERA = 1e12
GIGA = 1e9
MEGA = 1e6
KILO = 1e3
MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12
FEMTO = 1e-15
ATTO = 1e-18

# Length
NM = NANO
UM = MICRO

# Time
PS = PICO
NS = NANO
US = MICRO

# Capacitance / energy / charge
FF = FEMTO
PF = PICO
FJ = FEMTO
AJ = ATTO
FC = FEMTO

# ---------------------------------------------------------------------------
# Physical constants (SI)
# ---------------------------------------------------------------------------

Q_ELECTRON = 1.602176634e-19  # C
K_BOLTZMANN = 1.380649e-23  # J/K
EPS_0 = 8.8541878128e-12  # F/m
EPS_SIO2 = 3.9 * EPS_0
EPS_HFO2 = 25.0 * EPS_0  # ferroelectric HfO2 relative permittivity ~ 25-30
ROOM_TEMPERATURE = 300.0  # K


def thermal_voltage(temperature: float = ROOM_TEMPERATURE) -> float:
    """Return kT/q in volts at the given temperature in kelvin."""
    return K_BOLTZMANN * temperature / Q_ELECTRON


def to_unit(value_si: float, unit: float) -> float:
    """Convert an SI value to the given unit scale (e.g. ``to_unit(t, PS)``)."""
    return value_si / unit


def from_unit(value: float, unit: float) -> float:
    """Convert a value in the given unit scale to SI."""
    return value * unit


def format_si(value: float, unit_symbol: str, digits: int = 3) -> str:
    """Format an SI value with an engineering prefix, e.g. ``1.23 fJ``.

    Chooses the prefix that puts the mantissa in [1, 1000).  Zero and
    non-finite values are printed without a prefix.
    """
    prefixes = [
        (1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k"), (1.0, ""),
        (1e-3, "m"), (1e-6, "u"), (1e-9, "n"), (1e-12, "p"),
        (1e-15, "f"), (1e-18, "a"),
    ]
    if value == 0 or value != value or value in (float("inf"), float("-inf")):
        return f"{value:.{digits}g} {unit_symbol}"
    magnitude = abs(value)
    for scale, prefix in prefixes:
        if magnitude >= scale:
            return f"{value / scale:.{digits}g} {prefix}{unit_symbol}"
    scale, prefix = prefixes[-1]
    return f"{value / scale:.{digits}g} {prefix}{unit_symbol}"
