"""Online resharding: change bank count under live traffic.

Growing (or shrinking) a store's bank fan-out normally means rebuilding
the backend — seconds of downtime at scale.  :func:`reshard` does it
with a bounded pause instead, in three phases:

1. **Freeze** (read lock): copy the live entry list and arm a *tap* on
   the durable store's journal, so every write that lands after the
   freeze is captured as a resolved record.  Readers keep serving.
2. **Build** (no lock): construct the new-geometry backend and bulk-load
   the frozen entries in sequence order — the deterministic placement
   replay depends on.  Traffic (reads *and* writes) flows untouched.
3. **Commit** (write lock): drain the tapped records into the new
   backend, record the final placements, swap the backend under
   ``service.write()``, and append one ``reshard`` WAL record carrying
   the new config plus every ``(key, word, priority, payload, seq,
   bank, row)`` placement — replay restores the exact layout without
   re-running any allocator.  The pause is phase 3 alone.

:func:`reshard_inline` is the stop-the-world variant for a bare
:class:`DurableCamStore` with no service in front (tools, recovery
scripts); the caller owns write exclusivity.
"""

from __future__ import annotations

import time

from dataclasses import dataclass, replace as dc_replace
from typing import Any, List, Optional, Tuple

from ..errors import DurabilityError, OperationError
from ..store.backend import SearchBackend, make_backend
from ..store.config import StoreConfig
from . import crash as _crash
from .snapshot import placements_of
from .store import DurableCamStore

__all__ = ["ReshardReport", "reshard", "reshard_inline"]


@dataclass(frozen=True)
class ReshardReport:
    """What one reshard did and what it cost."""

    old_banks: int
    new_banks: int
    entries: int          # entries carried over (at freeze time)
    drained_ops: int      # writes tapped during the build and drained
    build_s: float        # phase 2 (no lock held)
    pause_s: float        # phase 3 (write lock held — the user-visible pause)
    total_s: float


def _new_config(config: StoreConfig, banks: int,
                rows: Optional[int]) -> StoreConfig:
    if banks < 1:
        raise OperationError("a store needs at least one bank")
    # backend="auto" so a reshard to one bank legally resolves to the
    # array backend (an explicit backend="array" forbids banks > 1 and
    # an explicit "fabric" would pin one bank to fabric overhead).
    return dc_replace(config, banks=banks,
                      rows=config.rows if rows is None else rows,
                      backend="auto").resolved()


def _apply_to_backend(backend: SearchBackend, op: Tuple[Any, ...]) -> None:
    """Apply one tapped (resolved) record to the under-construction
    backend — the drain step of the commit phase."""
    kind = op[0]
    if kind == "insert":
        _, word, key, priority, payload, seq = op
        backend.insert(word, key, priority, payload, seq)
    elif kind == "insert_many":
        _, words, keys, priorities, payloads, seqs = op
        backend.insert_many(words, keys, priorities, payloads, seqs)
    elif kind == "delete":
        backend.delete(op[1])
    elif kind == "update":
        _, key, word, payload = op
        backend.update(key, word, payload)
    else:  # pragma: no cover - the single-flight guard excludes reshard
        raise DurabilityError(
            f"cannot drain WAL record kind {kind!r} into a reshard")


def _build_backend(config: StoreConfig, frozen) -> SearchBackend:
    """Phase 2: a new-geometry backend loaded with the frozen entries.

    Entries go in ascending seq through the backend's own bulk path, so
    placement is the same deterministic function of (seq, geometry) a
    fresh store would compute.
    """
    backend = make_backend(config)
    entries = sorted(frozen, key=lambda m: m.seq)
    if entries:
        backend.insert_many(
            [m.word for m in entries], [m.key for m in entries],
            [m.priority for m in entries], [m.payload for m in entries],
            [m.seq for m in entries])
    return backend


def _resanitize(service: Any) -> None:
    """Re-wrap the swapped-in backend's planes for the sanitizer.

    ``maybe_sanitize_service`` instrumented the planes the service was
    *constructed* with; after a backend swap the new arena would run
    unchecked.  No-op unless the sanitizer is active on this service.
    """
    monitor = getattr(service._rw, "_monitor", None)
    if monitor is None:
        return
    from ..analysis.sanitize import _discover_planes, instrument_planes
    for label, planes in _discover_planes(service.store.backend):
        instrument_planes(planes, monitor, label=label,
                          active=lambda: not service._closed)


def reshard(service: Any, *, banks: int,
            rows: Optional[int] = None,
            crash_point: Optional[_crash.CrashPoint] = None
            ) -> ReshardReport:
    """Change a served store's bank count under live traffic.

    ``service`` is a :class:`~fecam.service.SearchService` over a
    :class:`DurableCamStore`.  Searches are never blocked by the build;
    writes landing during the build are journaled normally *and* tapped,
    then drained into the new backend inside the commit transaction.
    The write-locked pause covers only the drain, the placement record,
    and the swap.
    """
    store = service.store
    if not isinstance(store, DurableCamStore):
        raise DurabilityError(
            "online reshard needs a DurableCamStore (the drain rides "
            "the WAL's resolved records)")
    if crash_point is None:
        crash_point = store.crash_point
    if not store._reshard_guard.acquire(blocking=False):
        raise DurabilityError("a reshard is already in flight")
    t_start = time.perf_counter()
    tap: List[Tuple[int, Any]] = []
    try:
        def freeze(st):
            config = _new_config(st.config, banks, rows)
            frozen = st.backend.entries()
            # Arm the tap while the read lock excludes writers: no op
            # can slip between the freeze and the first tapped record.
            st._taps.append(tap)
            return st.config.banks, config, frozen

        old_banks, new_config, frozen = service.read(freeze)
        try:
            t_build = time.perf_counter()
            new_backend = _build_backend(new_config, frozen)
            _crash.fire(crash_point, "reshard.build")
            build_s = time.perf_counter() - t_build

            def commit(st):
                t_pause = time.perf_counter()
                # Count before draining: the reshard record logged
                # below lands in the still-armed tap too, and must not
                # inflate the drain tally.
                drained = len(tap)
                for _generation, op in tap[:drained]:
                    _apply_to_backend(new_backend, op)
                placements = placements_of(new_backend)
                _crash.fire(crash_point, "reshard.commit")
                st.config = new_config
                st.backend = new_backend
                st._wrote()
                st._log(("reshard", new_config, placements))
                _resanitize(service)
                return drained, time.perf_counter() - t_pause

            drained_ops, pause_s = service.write(commit)
        finally:
            store._taps.remove(tap)
        _crash.fire(crash_point, "reshard.after")
    finally:
        store._reshard_guard.release()
    return ReshardReport(
        old_banks=old_banks,
        new_banks=new_config.banks, entries=len(frozen),
        drained_ops=drained_ops, build_s=build_s, pause_s=pause_s,
        total_s=time.perf_counter() - t_start)


def reshard_inline(store: DurableCamStore, *, banks: int,
                   rows: Optional[int] = None,
                   crash_point: Optional[_crash.CrashPoint] = None
                   ) -> ReshardReport:
    """Stop-the-world reshard of an unserved durable store.

    The caller owns exclusivity (no concurrent readers or writers);
    with no traffic to protect there is nothing to tap, so the whole
    operation is one build-and-swap.
    """
    if not isinstance(store, DurableCamStore):
        raise DurabilityError("reshard_inline needs a DurableCamStore")
    if crash_point is None:
        crash_point = store.crash_point
    if not store._reshard_guard.acquire(blocking=False):
        raise DurabilityError("a reshard is already in flight")
    t_start = time.perf_counter()
    try:
        old_banks = store.config.banks
        new_config = _new_config(store.config, banks, rows)
        frozen = store.backend.entries()
        t_build = time.perf_counter()
        new_backend = _build_backend(new_config, frozen)
        _crash.fire(crash_point, "reshard.build")
        build_s = time.perf_counter() - t_build
        t_pause = time.perf_counter()
        placements = placements_of(new_backend)
        _crash.fire(crash_point, "reshard.commit")
        store.config = new_config
        store.backend = new_backend
        store._wrote()
        store._log(("reshard", new_config, placements))
        pause_s = time.perf_counter() - t_pause
        _crash.fire(crash_point, "reshard.after")
    finally:
        store._reshard_guard.release()
    return ReshardReport(
        old_banks=old_banks, new_banks=new_config.banks,
        entries=len(frozen), drained_ops=0, build_s=build_s,
        pause_s=pause_s, total_s=time.perf_counter() - t_start)
