"""Binary framing for WAL segments and snapshot files.

One frame is ``header + payload``: a fixed little-endian header
(CRC-32 of the payload, payload length, write generation) followed by
the pickled payload.  Files open with an 8-byte magic tagging the kind
and format version.  Decoding is paranoid by construction — a frame is
accepted only when its full length is present *and* its CRC matches —
so a torn tail (the expected shape of a crash) is detected, never
misread, and :func:`scan_frames` reports exactly how many bytes of a
file are intact so recovery can truncate the rest.
"""

from __future__ import annotations

import pickle
import struct
import zlib

from typing import Any, List, Tuple

from ..errors import DurabilityError

__all__ = ["WAL_MAGIC", "SNAP_MAGIC", "encode_frame", "scan_frames",
           "read_single_frame"]

#: 8-byte file preambles; the trailing digit is the format version.
WAL_MAGIC = b"FECAMW1\n"
SNAP_MAGIC = b"FECAMS1\n"

#: crc32(payload), len(payload), generation — little-endian, fixed.
_HEADER = struct.Struct("<IIQ")


def encode_frame(generation: int, payload_obj: Any) -> bytes:
    """One self-verifying frame for ``payload_obj`` at ``generation``."""
    payload = pickle.dumps(payload_obj, protocol=pickle.HIGHEST_PROTOCOL)
    header = _HEADER.pack(zlib.crc32(payload), len(payload), generation)
    return header + payload


def scan_frames(data: bytes, *, magic: bytes,
                path: str = "<bytes>") -> Tuple[List[Tuple[int, Any]], int, bool]:
    """Decode every intact frame of a file image.

    Returns ``(frames, valid_bytes, torn)``: the decoded
    ``(generation, payload)`` pairs, how many leading bytes of ``data``
    they (plus the magic) occupy, and whether trailing bytes past that
    point exist (a torn tail).  A file without its magic is corrupt
    outright — that is a :class:`DurabilityError`, not a torn tail,
    because no crash can tear the first write of a segment *and* leave
    later bytes behind.
    """
    if len(data) < len(magic):
        # A crash can leave a segment with a partial (or empty) magic:
        # nothing intact, everything torn.
        return [], 0, len(data) > 0
    if data[:len(magic)] != magic:
        raise DurabilityError(
            f"{path}: bad magic {data[:len(magic)]!r} "
            f"(expected {magic!r})")
    frames: List[Tuple[int, Any]] = []
    offset = len(magic)
    while True:
        header_end = offset + _HEADER.size
        if header_end > len(data):
            break  # torn inside a header
        crc, length, generation = _HEADER.unpack(
            data[offset:header_end])
        payload_end = header_end + length
        if payload_end > len(data):
            break  # torn inside a payload
        payload = data[header_end:payload_end]
        if zlib.crc32(payload) != crc:
            break  # flipped or short-written bytes: stop at the tear
        frames.append((generation, pickle.loads(payload)))
        offset = payload_end
    return frames, offset, offset < len(data)


def read_single_frame(data: bytes, *, magic: bytes,
                      path: str = "<bytes>") -> Tuple[int, Any]:
    """Decode a file that must hold exactly one intact frame (snapshots).

    Unlike WAL tails, a snapshot is atomic-renamed into place, so *any*
    damage — missing magic, torn frame, trailing junk — makes the whole
    file invalid and raises :class:`DurabilityError` (recovery then
    falls back to an older snapshot).
    """
    frames, _valid, torn = scan_frames(data, magic=magic, path=path)
    if torn or len(frames) != 1:
        raise DurabilityError(
            f"{path}: expected exactly one intact frame, found "
            f"{len(frames)}{' plus a torn tail' if torn else ''}")
    return frames[0]
