"""Generation-keyed arena snapshots.

A snapshot is one frame (see :mod:`fecam.durable.records`) holding the
store's full state at a write generation: a metadata dict (generation,
next sequence number, the resolved :class:`StoreConfig`, and every
entry's placement) plus the backend's contiguous
:class:`~fecam.planes.TernaryPlanes` buffers copied wholesale.  Restore
is the mirror image — load the planes in one shot, rebuild the
allocators and key maps around them — so it costs one bulk copy, not
one insert per entry.

Snapshots are written to a temp file, fsynced, and atomically renamed
to ``snap-<generation:016d>.snap``; the directory entry is fsynced too,
so a crash leaves either the complete new snapshot or none.  Corrupt
snapshots (CRC/magic/length damage) are detected at load and recovery
falls back to the next older candidate.
"""

from __future__ import annotations

import os

from typing import Any, Dict, List, Optional, Tuple

from ..errors import DurabilityError
from . import crash as _crash
from .records import SNAP_MAGIC, encode_frame, read_single_frame

__all__ = ["write_snapshot", "load_snapshot", "snapshot_candidates",
           "snapshot_path"]

#: (key, word, priority, payload, seq, bank, row) rows — the exact
#: placement record the restore classmethods and the reshard WAL record
#: share.
Placement = Tuple[Any, str, float, Any, int, int, int]


def snapshot_path(directory: str, generation: int) -> str:
    return os.path.join(directory, f"snap-{generation:016d}.snap")


def _backend_planes(backend: Any):
    """The backend's contiguous planes (array bank or fabric arena)."""
    fabric = getattr(backend, "fabric", None)
    if fabric is not None:
        return fabric.arena
    return backend.cam.planes


def placements_of(backend: Any) -> List[Placement]:
    """Every live entry's full placement row, priority order."""
    return [(m.key, m.word, m.priority, m.payload, m.seq, m.bank, m.row)
            for m in backend.entries()]


def write_snapshot(directory: str, *, generation: int, seq: int,
                   config: Any, backend: Any,
                   crash_point: Optional[_crash.CrashPoint] = None) -> str:
    """Serialize one store state; returns the final snapshot path.

    The caller owns consistency: the store must not mutate while the
    buffers are copied (the durable store takes this under the read
    lock, so snapshots ride alongside searches but never alongside a
    writer).
    """
    cp = crash_point
    _crash.fire(cp, "snapshot.before")
    planes = _backend_planes(backend)
    meta: Dict[str, Any] = {
        "generation": generation,
        "seq": seq,
        "config": config,
        "backend": backend.name,
        "entries": placements_of(backend),
    }
    payload = (meta, planes.value.copy(), planes.care.copy(),
               planes.valid.copy())
    frame = SNAP_MAGIC + encode_frame(generation, payload)
    final = snapshot_path(directory, generation)
    if cp is not None and cp.check("snapshot.torn"):
        # Model a non-atomic writer dying mid-file: half a frame lands
        # at the *final* name, which load_snapshot must reject and
        # recovery must fall back from.
        with open(final, "wb") as fh:
            fh.write(frame[:max(1, len(frame) // 2)])
            fh.flush()
        cp.crash("snapshot.torn")
    tmp = final + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(frame)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, final)
    _fsync_directory(directory)
    _crash.fire(cp, "snapshot.after")
    return final


def _fsync_directory(directory: str) -> None:
    # Make the rename itself durable (POSIX: the directory entry is
    # separate state from the file contents).
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def snapshot_candidates(directory: str) -> List[str]:
    """Existing snapshot paths, newest generation first."""
    names = sorted((name for name in os.listdir(directory)
                    if name.startswith("snap-")
                    and name.endswith(".snap")), reverse=True)
    return [os.path.join(directory, name) for name in names]


def load_snapshot(path: str) -> Tuple[Dict[str, Any], Tuple[Any, Any, Any]]:
    """Decode one snapshot; raises :class:`DurabilityError` on damage.

    Returns ``(meta, (value, care, valid))``.
    """
    with open(path, "rb") as fh:
        data = fh.read()
    try:
        generation, payload = read_single_frame(
            data, magic=SNAP_MAGIC, path=path)
        meta, value, care, valid = payload
    except DurabilityError:
        raise
    except Exception as exc:
        raise DurabilityError(f"{path}: undecodable snapshot "
                              f"payload ({exc!r})") from exc
    if meta.get("generation") != generation:
        raise DurabilityError(
            f"{path}: frame generation {generation} disagrees with "
            f"metadata {meta.get('generation')}")
    return meta, (value, care, valid)
