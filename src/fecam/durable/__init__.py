"""fecam.durable — persistence and live reconfiguration for stores.

The volatile tiers (:mod:`fecam.store`, :mod:`fecam.service`) already
tag every served result with a write generation; this package makes the
generation sequence durable.  A :class:`DurableCamStore` appends one
CRC-framed record per mutation to a segmented write-ahead log
(:class:`WriteAheadLog`), periodically serializes the whole arena as a
generation-keyed snapshot, and :func:`recover` rebuilds a bit-identical
store from snapshot + WAL tail after any crash — including torn tails,
corrupt snapshots (older fallbacks), and crashes injected mid-reshard
(:class:`CrashPoint` names every site the layer consults).

:func:`reshard` changes the bank fan-out of a *served* store under live
traffic: background build, write drain through the WAL's resolved
records, one write-locked swap.
"""

from .crash import CRASH_SITES, CrashPoint
from .reshard import ReshardReport, reshard, reshard_inline
from .snapshot import (load_snapshot, snapshot_candidates,
                       write_snapshot)
from .store import DurabilityConfig, DurableCamStore, apply_op, recover
from .wal import FSYNC_POLICIES, WriteAheadLog

__all__ = [
    "CRASH_SITES",
    "CrashPoint",
    "DurabilityConfig",
    "DurableCamStore",
    "FSYNC_POLICIES",
    "ReshardReport",
    "WriteAheadLog",
    "apply_op",
    "load_snapshot",
    "recover",
    "reshard",
    "reshard_inline",
    "snapshot_candidates",
    "write_snapshot",
]
