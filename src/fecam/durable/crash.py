"""Deterministic fault injection for the durability layer.

A :class:`CrashPoint` arms exactly one *site* — a named instant inside
the WAL append, snapshot, or reshard path — and models the process
dying there: the hook raises :class:`~fecam.errors.SimulatedCrash`, and
whatever bytes already reached the filesystem are the surviving state
the recovery tests must rebuild from.  Sites fire at most once (a real
process dies once), and ``after=N`` skips the first N hits so a test
can crash on the (N+1)-th append rather than the first.
"""

from __future__ import annotations

from ..errors import SimulatedCrash

__all__ = ["CrashPoint", "CRASH_SITES"]

#: Every site the durability layer consults, in code order.
CRASH_SITES = (
    "wal.append.before",   # op applied in memory, nothing logged yet
    "wal.append.torn",     # half the frame reaches the file (torn write)
    "wal.append.after",    # frame fully flushed
    "snapshot.before",     # nothing written
    "snapshot.torn",       # half a snapshot file survives (corrupt)
    "snapshot.after",      # snapshot durable, WAL not yet compacted
    "reshard.build",       # mid background build, old backend still live
    "reshard.commit",      # new backend built, reshard record not logged
    "reshard.after",       # swap complete and logged
    # Seqlock publication sites consulted by fecam.cluster's writer:
    "cluster.publish.before",  # nothing applied, seq still even
    "cluster.publish.mid",     # seq odd, mutation half-applied (torn)
    "cluster.publish.after",   # seq even again, generation published
)


class CrashPoint:
    """One armed crash site.

    >>> cp = CrashPoint("wal.append.after", after=2)
    >>> cp.fire("snapshot.before")  # other sites never fire
    >>> cp.fire("wal.append.after")  # hit 1 of the skip budget
    >>> cp.fire("wal.append.after")  # hit 2
    >>> cp.fire("wal.append.after")
    Traceback (most recent call last):
        ...
    fecam.errors.SimulatedCrash: simulated crash at 'wal.append.after' (hit 3)
    """

    def __init__(self, site: str, *, after: int = 0):
        if site not in CRASH_SITES:
            raise ValueError(f"unknown crash site {site!r}; "
                             f"one of {CRASH_SITES}")
        if after < 0:
            raise ValueError("after must be non-negative")
        self.site = site
        self.after = after
        self.hits = 0
        self.fired = False

    def check(self, site: str) -> bool:
        """Count a hit; ``True`` when the crash is due *now*.

        The torn-write path uses this directly: a due hit first writes
        the partial frame, then raises via :meth:`crash`.
        """
        if self.fired or site != self.site:
            return False
        self.hits += 1
        if self.hits > self.after:
            self.fired = True
            return True
        return False

    def crash(self, site: str) -> None:
        """Raise the simulated crash (the due :meth:`check` follow-up)."""
        raise SimulatedCrash(
            f"simulated crash at {site!r} (hit {self.hits})")

    def fire(self, site: str) -> None:
        """Count a hit and crash if due — the common one-call form."""
        if self.check(site):
            self.crash(site)

    def __repr__(self) -> str:  # pragma: no cover
        state = "fired" if self.fired else f"{self.hits}/{self.after} hits"
        return f"<CrashPoint {self.site} ({state})>"


def fire(crash_point, site: str) -> None:
    """``crash_point.fire(site)`` tolerating ``None`` (the common gate)."""
    if crash_point is not None:
        crash_point.fire(site)
