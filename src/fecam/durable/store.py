"""`DurableCamStore` — a :class:`CamStore` with a WAL and snapshots.

Every mutating operation first applies in memory (through the plain
store path, so served results are bit-identical to a volatile store),
then appends exactly one resolved record to the write-ahead log tagged
with the post-op write generation.  Records are *resolved*: auto keys,
default priorities, and sequence numbers are already assigned, so
replay is pure mechanism — no allocator decisions happen twice.

Snapshots (:meth:`DurableCamStore.snapshot`) serialize the backend's
contiguous plane buffers plus the key/priority map under the read lock;
:func:`recover` loads the newest valid snapshot and replays the WAL
tail to the last intact generation, truncating a torn tail on the way.
The fault-injection suite proves recovery bit-identical to a serial
replay of the surviving record prefix for every crash site.
"""

from __future__ import annotations

import os
import threading
import time

from dataclasses import dataclass
from typing import Any, Hashable, List, Optional, Sequence, Tuple

from ..analysis.markers import requires_lock
from ..errors import DurabilityError
from ..obs.trace import active as trace_active, stage as trace_stage
from ..store import CamStore
from ..store.array import ArrayBackend
from ..store.config import StoreConfig
from ..store.fabric import FabricBackend
from ..store.result import Match
from .crash import CrashPoint
from .snapshot import (load_snapshot, snapshot_candidates, write_snapshot)
from .wal import FSYNC_POLICIES, WriteAheadLog, list_segments

__all__ = ["DurabilityConfig", "DurableCamStore", "apply_op", "recover"]


@dataclass(frozen=True)
class DurabilityConfig:
    """Knobs of the persistence layer (all orthogonal to StoreConfig).

    ``snapshot_every`` auto-snapshots after that many logged operations
    (0 disables; explicit :meth:`DurableCamStore.snapshot` calls always
    work).  ``compact_on_snapshot`` deletes WAL segments fully covered
    by the new snapshot — fault tests turn it off so the whole journal
    stays available as the replay reference.
    """

    directory: str
    fsync: str = "interval"             # one of wal.FSYNC_POLICIES
    fsync_interval_s: float = 0.05
    segment_bytes: int = 1 << 22
    snapshot_every: int = 0
    compact_on_snapshot: bool = True

    def __post_init__(self) -> None:
        if self.fsync not in FSYNC_POLICIES:
            raise DurabilityError(
                f"fsync must be one of {FSYNC_POLICIES}, "
                f"got {self.fsync!r}")
        if self.snapshot_every < 0:
            raise DurabilityError("snapshot_every must be non-negative")


def _restored_backend(config: StoreConfig, placements,
                      planes_state=None):
    """Build a backend at recorded placements (see the classmethods)."""
    config = config.resolved()
    cls = (ArrayBackend if config.backend_kind == "array"
           else FabricBackend)
    if planes_state is None:
        return cls.from_placements(config, placements)
    return cls.from_snapshot(config, planes_state, placements)


class DurableCamStore(CamStore):
    """A store whose every mutation survives a crash.

    >>> import tempfile
    >>> from fecam.store import StoreConfig
    >>> d = tempfile.mkdtemp()
    >>> store = DurableCamStore(StoreConfig(width=8, rows=4,
    ...                                     fidelity="analytical"),
    ...                         durability=DurabilityConfig(directory=d))
    >>> _ = store.insert("1010XXXX", key="rule-a")
    >>> store.close()
    >>> recovered = recover(d)
    >>> recovered.search_first("10101111").key
    'rule-a'
    """

    def __init__(self, config: Optional[StoreConfig] = None, *,
                 durability: DurabilityConfig,
                 backend=None, crash_point: Optional[CrashPoint] = None,
                 _recovered: Optional[Tuple[int, int, int]] = None,
                 **overrides):
        super().__init__(config, backend=backend, **overrides)
        self.durability = durability
        self.crash_point = crash_point
        if _recovered is None and os.path.isdir(durability.directory) \
                and list_segments(durability.directory):
            raise DurabilityError(
                f"{durability.directory} already holds a WAL; "
                "recover() it instead of constructing a fresh store")
        self.wal = WriteAheadLog(
            durability.directory, fsync=durability.fsync,
            fsync_interval_s=durability.fsync_interval_s,
            segment_bytes=durability.segment_bytes,
            crash_point=crash_point)
        # Live reshard drains concurrent writes through these taps (a
        # tap is a plain list; appends happen under the write lock).
        self._taps: List[List[Tuple[int, Any]]] = []
        self._reshard_guard = threading.Lock()
        self._ops_since_snapshot = 0
        self._recovered_records = 0
        self.snapshots_taken = 0
        self.on_snapshot = None  # optional tap: fn(seconds)
        if _recovered is None:
            self._snapshot_generation = -1
            # Baseline snapshot: recovery always has a floor to stand
            # on, even before the first mutation.
            self.snapshot()
        else:
            snap_gen, generation, seq = _recovered
            self._snapshot_generation = snap_gen
            self._generation = generation
            self._seq = seq

    # -- journaled mutation -------------------------------------------------------

    def _log(self, op: Tuple[Any, ...]) -> None:
        """Append one resolved record at the post-op generation."""
        if trace_active():
            with trace_stage("wal_append"):
                self.wal.append(self._generation, op)
        else:
            # The contextmanager alone costs ~2us; the untraced write
            # path skips it entirely.
            self.wal.append(self._generation, op)
        for tap in self._taps:
            tap.append((self._generation, op))
        self._ops_since_snapshot += 1
        every = self.durability.snapshot_every
        if every and self._ops_since_snapshot >= every:
            self.snapshot()

    @requires_lock("write")
    def insert(self, word: str, key: Optional[Hashable] = None, *,
               priority: Optional[float] = None,
               payload: Any = None) -> Match:
        match = super().insert(word, key=key, priority=priority,
                               payload=payload)
        self._log(("insert", match.word, match.key, match.priority,
                   match.payload, match.seq))
        return match

    @requires_lock("write")
    def insert_many(self, words: Sequence[str],
                    keys: Optional[Sequence[Hashable]] = None, *,
                    priorities: Optional[Sequence[float]] = None,
                    payloads: Optional[Sequence[Any]] = None
                    ) -> List[Match]:
        matches = super().insert_many(words, keys=keys,
                                      priorities=priorities,
                                      payloads=payloads)
        if matches:
            self._log(("insert_many",
                       [m.word for m in matches],
                       [m.key for m in matches],
                       [m.priority for m in matches],
                       [m.payload for m in matches],
                       [m.seq for m in matches]))
        return matches

    @requires_lock("write")
    def delete(self, key: Hashable) -> Match:
        match = super().delete(key)
        self._log(("delete", match.key))
        return match

    @requires_lock("write")
    def update(self, key: Hashable, word: str, *,
               payload: Any = None) -> Match:
        match = super().update(key, word, payload=payload)
        self._log(("update", key, match.word, payload))
        return match

    # -- snapshots ----------------------------------------------------------------

    @requires_lock("read")
    def snapshot(self) -> str:
        """Serialize the current state; returns the snapshot path.

        Runs under the read lock: snapshots ride alongside search
        dispatches, but never alongside a writer (the buffers are
        copied while no mutation is in flight).
        """
        start = time.perf_counter()
        with trace_stage("snapshot"):
            path = write_snapshot(
                self.durability.directory, generation=self._generation,
                seq=self._seq, config=self.config, backend=self.backend,
                crash_point=self.crash_point)
        elapsed = time.perf_counter() - start
        self._snapshot_generation = self._generation
        self._ops_since_snapshot = 0
        self.snapshots_taken += 1
        if self.durability.compact_on_snapshot:
            self.wal.compact(self._generation)
        if self.on_snapshot is not None:
            self.on_snapshot(elapsed)
        return path

    @property
    def snapshot_generation(self) -> int:
        """Generation of the newest snapshot this store wrote."""
        return self._snapshot_generation

    @property
    def recovered_records(self) -> int:
        """WAL records replayed when this store was recovered (0 for a
        freshly constructed store)."""
        return self._recovered_records

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Flush and close the WAL (the store stays readable)."""
        self.wal.close()

    def __enter__(self) -> "DurableCamStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"<DurableCamStore backend={self.backend.name} "
                f"{self.capacity}x{self.width} "
                f"gen={self._generation} "
                f"wal={self.durability.directory!r} "
                f"fsync={self.durability.fsync}>")


def apply_op(store: CamStore, op: Tuple[Any, ...]) -> None:
    """Replay one resolved WAL record against a store, backend-level.

    Used by :func:`recover` and by the conformance tests' reference
    replay.  Ops apply beneath the journaling layer (no re-logging),
    advance the write generation by exactly one, and keep the sequence
    counter ahead of every recorded seq — exactly what the live
    mutators did when the record was written.
    """
    kind = op[0]
    if kind == "insert":
        _, word, key, priority, payload, seq = op
        store.backend.insert(word, key, priority, payload, seq)
        store._seq = max(store._seq, seq + 1)
    elif kind == "insert_many":
        _, words, keys, priorities, payloads, seqs = op
        store.backend.insert_many(words, keys, priorities, payloads,
                                  seqs)
        store._seq = max(store._seq, max(seqs) + 1)
    elif kind == "delete":
        store.backend.delete(op[1])
    elif kind == "update":
        _, key, word, payload = op
        store.backend.update(key, word, payload)
    elif kind == "reshard":
        _, config, placements = op
        store.config = config
        store.backend = _restored_backend(config, placements)
        store._seq = max(store._seq,
                         1 + max((p[4] for p in placements), default=-1))
    else:
        raise DurabilityError(f"unknown WAL record kind {kind!r}")
    store._wrote()


def recover(directory: str, *,
            crash_point: Optional[CrashPoint] = None,
            **durability_overrides) -> DurableCamStore:
    """Rebuild a :class:`DurableCamStore` from its directory.

    Repairs the WAL's torn tail (the expected crash shape), loads the
    newest snapshot that decodes cleanly (older candidates are
    fallbacks for a snapshot torn mid-write), then replays every WAL
    record past the snapshot's generation in lockstep — any gap or
    desynchronization raises :class:`DurabilityError` rather than
    silently serving wrong content.
    """
    durability = DurabilityConfig(directory=directory,
                                  **durability_overrides)
    wal = WriteAheadLog(directory, fsync=durability.fsync,
                        fsync_interval_s=durability.fsync_interval_s,
                        segment_bytes=durability.segment_bytes)
    records = wal.scan(repair=True)
    wal.close()
    meta = None
    planes_state = None
    errors: List[str] = []
    for path in snapshot_candidates(directory):
        try:
            meta, planes_state = load_snapshot(path)
            break
        except DurabilityError as exc:
            errors.append(str(exc))
    if meta is None:
        detail = ("; ".join(errors) if errors
                  else "no snapshot files present")
        raise DurabilityError(
            f"{directory}: no valid snapshot to recover from ({detail})")
    backend = _restored_backend(meta["config"], meta["entries"],
                                planes_state)
    snap_gen = meta["generation"]
    store = DurableCamStore(
        backend=backend, durability=durability, crash_point=crash_point,
        _recovered=(snap_gen, snap_gen, meta["seq"]))
    replayed = 0
    for generation, op in records:
        if generation <= snap_gen:
            continue  # already folded into the snapshot
        if generation != store._generation + 1:
            raise DurabilityError(
                f"{directory}: WAL resumes at generation {generation} "
                f"but the store stands at {store._generation} — "
                "records are missing")
        apply_op(store, op)
        if store._generation != generation:
            raise DurabilityError(
                f"{directory}: replaying generation {generation} moved "
                f"the store to {store._generation} — replay "
                "desynchronized")
        replayed += 1
    store._recovered_records = replayed
    return store
