"""Write-ahead log: segmented, CRC-framed, generation-keyed.

One :class:`WriteAheadLog` owns the ``wal-*.log`` files of a durability
directory.  Every mutating store operation appends exactly one frame
(see :mod:`fecam.durable.records`) tagged with the store's *post-op*
write generation, so the log is a dense generation sequence — recovery
can verify replay stays in lockstep, and a gap that is not a torn tail
is corruption, not data.

Durability policy is explicit (:attr:`fsync`):

* ``"always"`` — fsync after every append (strongest, slowest);
* ``"interval"`` — flush every append, fsync at most every
  ``fsync_interval_s`` seconds (bounded loss window, near-memory
  throughput — the default);
* ``"off"`` — flush only, never fsync (test/throughput mode; the OS
  decides when bytes are durable).

Segments rotate at ``segment_bytes`` and are named by the generation of
their first record (``wal-<gen:016d>.log``), so compaction after a
snapshot is whole-file deletion and recovery orders segments by name.

Append handles open lazily in append mode: recovery may truncate a torn
tail from the newest segment, and an eagerly-opened handle positioned
past the truncated end would write a sparse gap the scanner reads as a
tear.
"""

from __future__ import annotations

import os
import time

from typing import Any, Callable, List, Optional, Tuple

from ..errors import DurabilityError
from . import crash as _crash
from .records import WAL_MAGIC, encode_frame, scan_frames

__all__ = ["WriteAheadLog", "FSYNC_POLICIES"]

FSYNC_POLICIES = ("always", "interval", "off")


def _segment_path(directory: str, first_generation: int) -> str:
    return os.path.join(directory, f"wal-{first_generation:016d}.log")


def _segment_first_generation(name: str) -> int:
    return int(name[len("wal-"):-len(".log")])


def list_segments(directory: str) -> List[str]:
    """Absolute segment paths, generation order (== name order)."""
    names = sorted(name for name in os.listdir(directory)
                   if name.startswith("wal-") and name.endswith(".log"))
    return [os.path.join(directory, name) for name in names]


class WriteAheadLog:
    """The append/scan/compact surface over one directory of segments.

    ``on_append(seconds, nbytes)`` and ``on_fsync(seconds)`` are
    optional telemetry taps (the obs adapter feeds histograms through
    them); they run inline on the append path, so keep them cheap.
    """

    def __init__(self, directory: str, *, fsync: str = "interval",
                 fsync_interval_s: float = 0.05,
                 segment_bytes: int = 1 << 22,
                 crash_point: Optional[_crash.CrashPoint] = None):
        if fsync not in FSYNC_POLICIES:
            raise DurabilityError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}")
        if fsync_interval_s < 0:
            raise DurabilityError("fsync_interval_s must be non-negative")
        if segment_bytes < 1:
            raise DurabilityError("segment_bytes must be positive")
        self.directory = directory
        self.fsync = fsync
        self.fsync_interval_s = fsync_interval_s
        self.segment_bytes = segment_bytes
        self.crash_point = crash_point
        os.makedirs(directory, exist_ok=True)
        self._handle = None          # lazily-opened current segment
        self._handle_path: Optional[str] = None
        self._handle_bytes = 0
        self._last_fsync = time.monotonic()
        self._unsynced = False
        # Telemetry: counters plus optional per-event callbacks.
        self.appended_records = 0
        self.appended_bytes = 0
        self.fsyncs = 0
        self.rotations = 0
        self.on_append: Optional[Callable[[float, int], None]] = None
        self.on_fsync: Optional[Callable[[float], None]] = None

    # -- append path -------------------------------------------------------------

    def _open_for(self, generation: int):
        """The handle appends go to, opening/rotating lazily."""
        if self._handle is not None \
                and self._handle_bytes >= self.segment_bytes:
            self._rotate()
        if self._handle is None:
            segments = list_segments(self.directory)
            if segments:
                path = segments[-1]
                size = os.path.getsize(path)
                if size >= self.segment_bytes:
                    path = _segment_path(self.directory, generation)
                    size = 0
            else:
                path = _segment_path(self.directory, generation)
                size = 0
            # "ab" positions at the *current* end even if recovery just
            # truncated the file — never past it (no sparse gaps).
            self._handle = open(path, "ab")
            self._handle_path = path
            self._handle_bytes = size
        return self._handle

    def _rotate(self) -> None:
        handle, self._handle = self._handle, None
        self._handle_path = None
        self._handle_bytes = 0
        if handle is not None:
            if self._unsynced and self.fsync != "off":
                os.fsync(handle.fileno())
                self._unsynced = False
            handle.close()
            self.rotations += 1

    def append(self, generation: int, op: Any) -> None:
        """Log one operation at its post-op generation.

        Flush-to-OS always happens (a simulated crash preserves flushed
        bytes); fsync follows the configured policy.
        """
        cp = self.crash_point
        if cp is not None:
            cp.fire("wal.append.before")
        frame = encode_frame(generation, op)
        # The timing pair costs real time on a several-microsecond hot
        # path — only pay it when a telemetry tap is listening.
        on_append = self.on_append
        start = time.perf_counter() if on_append is not None else 0.0
        handle = self._open_for(generation)
        if self._handle_bytes == 0:
            # New segment: magic plus first frame in one write, so the
            # only torn states a crash can leave are a partial preamble
            # (repair deletes the record-less segment) or a partial
            # frame (repair truncates it).
            frame = WAL_MAGIC + frame
        if cp is not None and cp.check("wal.append.torn"):
            handle.write(frame[:max(1, len(frame) // 2)])
            handle.flush()
            cp.crash("wal.append.torn")
        handle.write(frame)
        handle.flush()
        self._handle_bytes += len(frame)
        self._unsynced = True
        self.appended_records += 1
        self.appended_bytes += len(frame)
        if on_append is not None:
            on_append(time.perf_counter() - start, len(frame))
        self._maybe_fsync(handle)
        if cp is not None:
            cp.fire("wal.append.after")

    def _maybe_fsync(self, handle) -> None:
        if self.fsync == "off":
            return
        now = time.monotonic()
        if self.fsync == "interval" \
                and now - self._last_fsync < self.fsync_interval_s:
            return
        start = time.perf_counter()
        os.fsync(handle.fileno())
        self._last_fsync = now
        self._unsynced = False
        self.fsyncs += 1
        if self.on_fsync is not None:
            self.on_fsync(time.perf_counter() - start)

    def sync(self) -> None:
        """Force an fsync of the open segment (checkpoint barrier)."""
        if self._handle is not None and self._unsynced:
            start = time.perf_counter()
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._last_fsync = time.monotonic()
            self._unsynced = False
            self.fsyncs += 1
            if self.on_fsync is not None:
                self.on_fsync(time.perf_counter() - start)

    def close(self) -> None:
        if self._handle is not None:
            self.sync() if self.fsync != "off" else self._handle.flush()
            self._handle.close()
            self._handle = None
            self._handle_path = None

    # -- scan / repair / compact --------------------------------------------------

    def scan(self, *, repair: bool = False) -> List[Tuple[int, Any]]:
        """Decode every intact record, oldest first.

        Enforces the dense-generation invariant across segment
        boundaries.  A torn tail on the *newest* segment is the
        expected crash shape: scanning stops there, and with
        ``repair=True`` the damaged bytes are truncated away (a
        record-less segment is deleted outright) so subsequent appends
        extend a clean file.  Damage anywhere else — mid-log tears,
        generation gaps, overlapping segments — raises
        :class:`DurabilityError`.
        """
        if self._handle is not None:
            self._handle.flush()
        records: List[Tuple[int, Any]] = []
        segments = list_segments(self.directory)
        for index, path in enumerate(segments):
            last = index == len(segments) - 1
            with open(path, "rb") as fh:
                data = fh.read()
            frames, valid_bytes, torn = scan_frames(
                data, magic=WAL_MAGIC, path=path)
            if torn and not last:
                raise DurabilityError(
                    f"{path}: torn frame followed by newer segments — "
                    "mid-log corruption, not a crash tail")
            name_gen = _segment_first_generation(os.path.basename(path))
            if frames and frames[0][0] != name_gen:
                raise DurabilityError(
                    f"{path}: first record generation {frames[0][0]} "
                    f"does not match the segment name")
            for generation, op in frames:
                if records and generation != records[-1][0] + 1:
                    raise DurabilityError(
                        f"{path}: generation {generation} follows "
                        f"{records[-1][0]} — the log must be dense")
                records.append((generation, op))
            if torn and repair:
                self._truncate_tail(path, valid_bytes, bool(frames))
        return records

    def _truncate_tail(self, path: str, valid_bytes: int,
                       has_records: bool) -> None:
        # Never truncate through an open append handle — drop it first
        # so the next append reopens at the repaired end.
        if self._handle is not None and self._handle_path == path:
            self._handle.close()
            self._handle = None
            self._handle_path = None
        if not has_records:
            os.unlink(path)  # nothing intact: the segment never existed
            return
        with open(path, "r+b") as fh:
            fh.truncate(valid_bytes)
            fh.flush()
            os.fsync(fh.fileno())

    def compact(self, up_to_generation: int) -> int:
        """Delete whole segments made redundant by a snapshot.

        A segment may go once the *next* segment starts at or before
        ``up_to_generation + 1`` (every record it holds is covered by
        the snapshot).  The newest segment always stays — it is the
        open append target.  Returns the number of segments deleted.
        """
        segments = list_segments(self.directory)
        deleted = 0
        for path, successor in zip(segments, segments[1:]):
            next_gen = _segment_first_generation(
                os.path.basename(successor))
            if next_gen <= up_to_generation + 1:
                if self._handle is not None and self._handle_path == path:
                    self._handle.close()  # pragma: no cover - defensive
                    self._handle = None
                    self._handle_path = None
                os.unlink(path)
                deleted += 1
            else:
                break
        return deleted

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<WriteAheadLog {self.directory!r} fsync={self.fsync} "
                f"records={self.appended_records} "
                f"bytes={self.appended_bytes}>")
