"""TCAM cell circuit builders for all five designs.

Each builder adds the cell's devices to a :class:`fecam.spice.Circuit`
against caller-supplied line nodes, so the same builders serve single-cell
testbenches, reduced word models (with device multipliers), and full small
arrays (paper Fig. 5c/d).

Wiring of the proposed 1.5T1Fe 2-cell pair (paper Fig. 5a, Tab. II):

* FeFET1/FeFET2: FG = BL1/BL2, BG = SeLa/SeLb (DG; grounded body for SG,
  where BL and SeL are one merged line, Fig. 5d), drain = the shared
  SL column, source = the pair's internal ``SL_bar`` node.
* TN: NMOS ``SL_bar -> gnd``, gate = Wr/SL  (search '0': both at VDD,
  divider of Eq. 2).
* TP: PMOS ``VDD -> SL_bar``, gate = Wr/SL  (search '1': both at 0,
  divider of Eq. 3).
* TML: small NMOS ``ML -> gnd``, gate = SL_bar — the only ML load.

The 2FeFET cell (Fig. 3) parallels two FeFETs from ML to ground; queries
drive the BG (DG, Tab. I) or the FG (SG).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..designs import DesignKind
from ..devices import (cell_sizing, make_fefet, nmos, operating_voltages,
                       pmos)
from ..devices.fefet import FeFet, state_to_s
from ..errors import NetlistError, OperationError
from ..spice import Circuit
from .states import normalize_word

__all__ = ["OneFeFetPairCell", "TwoFeFetCell", "Cmos16TCompareCell",
           "symbol_to_fractions_2fefet"]


def symbol_to_fractions_2fefet(symbol: str) -> Tuple[float, float]:
    """Map a ternary symbol to the (FeFET_A, FeFET_B) domain fractions of a
    2FeFET cell (paper Tab. I): complementary LVT/HVT for data bits, both
    HVT for the don't-care state."""
    table = {"0": (0.0, 1.0), "1": (1.0, 0.0), "X": (0.0, 0.0)}
    try:
        return table[symbol]
    except KeyError:
        raise OperationError(f"invalid ternary symbol {symbol!r}") from None


@dataclass
class OneFeFetPairCell:
    """A programmed 1.5T1Fe 2-cell pair in a circuit.

    Holds handles to the two FeFETs (for state programming and
    inspection) and the internal SL_bar node name.
    """

    design: DesignKind
    prefix: str
    fe1: FeFet
    fe2: FeFet
    slbar: str

    @classmethod
    def build(cls, ckt: Circuit, design: DesignKind, prefix: str, *,
              ml: str, sl: str, wrsl: str, bl1: str, bl2: str,
              sela: str = "0", selb: str = "0", vdd: str,
              multiplier: float = 1.0) -> "OneFeFetPairCell":
        """Add the pair's five devices to ``ckt``.

        For the SG variant pass the merged BL/SeL line as ``bl1``/``bl2``
        and leave ``sela``/``selb`` grounded (they are ignored by the
        SG-FeFET model).
        """
        if not design.is_one_fefet:
            raise NetlistError(f"{design} is not a 1.5T1Fe design")
        sz = cell_sizing(design)
        slbar = f"{prefix}.slbar"
        bg1 = sela if design.is_double_gate else "0"
        bg2 = selb if design.is_double_gate else "0"
        fe1 = make_fefet(design, f"{prefix}.FE1", bl1, sl, slbar, bg1,
                         multiplier=multiplier)
        fe2 = make_fefet(design, f"{prefix}.FE2", bl2, sl, slbar, bg2,
                         multiplier=multiplier)
        ckt.add(fe1)
        ckt.add(fe2)
        if sz.tn_split_sw_l > 0:
            # Split TN: small switch (gate = Wr/SL) + static-gated resistor
            # device, so the Wr/SL edge couples only the switch's tiny
            # gate-drain capacitance into SL_bar (see CellSizing docs).
            mid = f"{prefix}.tnmid"
            ckt.add(nmos(f"{prefix}.TNSW", slbar, wrsl, mid,
                         w=sz.tn_w, l=sz.tn_split_sw_l, vth=0.35,
                         multiplier=multiplier))
            ckt.add(nmos(f"{prefix}.TNR", mid, vdd, "0",
                         w=sz.tn_w, l=sz.tn_l - sz.tn_split_sw_l,
                         vth=sz.tn_vth, multiplier=multiplier))
        else:
            ckt.add(nmos(f"{prefix}.TN", slbar, wrsl, "0",
                         w=sz.tn_w, l=sz.tn_l, vth=sz.tn_vth,
                         multiplier=multiplier))
        ckt.add(pmos(f"{prefix}.TP", slbar, wrsl, vdd,
                     w=sz.tp_w, l=sz.tp_l, vth=sz.tp_vth,
                     multiplier=multiplier))
        ckt.add(nmos(f"{prefix}.TML", ml, slbar, "0",
                     w=sz.tml_w, l=sz.tml_l, vth=sz.tml_vth,
                     multiplier=multiplier))
        return cls(design=design, prefix=prefix, fe1=fe1, fe2=fe2, slbar=slbar)

    def program(self, symbols: str) -> None:
        """Instantly set the pair's two ternary states (e.g. ``"0X"``).

        Electrical (pulse-driven) writes go through
        :class:`fecam.cam.ops.WriteController`; this direct programming is
        for search testbenches.
        """
        symbols = normalize_word(symbols)
        if len(symbols) != 2:
            raise OperationError("a 2-cell pair stores exactly 2 symbols")
        s_x = cell_sizing(self.design).s_x
        self.fe1.set_fraction(state_to_s(_symbol_state(symbols[0]), s_x))
        self.fe2.set_fraction(state_to_s(_symbol_state(symbols[1]), s_x))

    def stored_symbols(self) -> str:
        s_x = cell_sizing(self.design).s_x
        return (_state_symbol(self.fe1.state(s_x))
                + _state_symbol(self.fe2.state(s_x)))


def _symbol_state(symbol: str) -> str:
    return {"0": "HVT", "1": "LVT", "X": "MVT"}[symbol]


def _state_symbol(state: str) -> str:
    return {"HVT": "0", "LVT": "1", "MVT": "X"}[state]


@dataclass
class TwoFeFetCell:
    """A programmed 2FeFET cell (the widely adopted NV-TCAM baseline)."""

    design: DesignKind
    prefix: str
    fe_a: FeFet
    fe_b: FeFet

    @classmethod
    def build(cls, ckt: Circuit, design: DesignKind, prefix: str, *,
              ml: str, line_a: str, line_b: str,
              write_a: Optional[str] = None, write_b: Optional[str] = None,
              multiplier: float = 1.0) -> "TwoFeFetCell":
        """Add the two FeFETs between ML and ground.

        ``line_a``/``line_b`` are the search lines: BGs for the DG flavour
        (Tab. I, separate write BLs on the FGs), FGs for the SG flavour
        (merged BL/SL, Fig. 3b — ``write_*`` ignored).
        """
        if design not in (DesignKind.SG_2FEFET, DesignKind.DG_2FEFET):
            raise NetlistError(f"{design} is not a 2FeFET design")
        if design.is_double_gate:
            fg_a = write_a if write_a is not None else f"{prefix}.bla"
            fg_b = write_b if write_b is not None else f"{prefix}.blb"
            fe_a = make_fefet(design, f"{prefix}.FEA", fg_a, ml, "0", line_a,
                              multiplier=multiplier)
            fe_b = make_fefet(design, f"{prefix}.FEB", fg_b, ml, "0", line_b,
                              multiplier=multiplier)
        else:
            fe_a = make_fefet(design, f"{prefix}.FEA", line_a, ml, "0", "0",
                              multiplier=multiplier)
            fe_b = make_fefet(design, f"{prefix}.FEB", line_b, ml, "0", "0",
                              multiplier=multiplier)
        ckt.add(fe_a)
        ckt.add(fe_b)
        return cls(design=design, prefix=prefix, fe_a=fe_a, fe_b=fe_b)

    def program(self, symbol: str) -> None:
        sa, sb = symbol_to_fractions_2fefet(normalize_word(symbol))
        self.fe_a.set_fraction(sa)
        self.fe_b.set_fraction(sb)

    def stored_symbol(self) -> str:
        key = (round(self.fe_a.s), round(self.fe_b.s))
        return {(0, 1): "0", (1, 0): "1", (0, 0): "X"}.get(key, "?")


@dataclass
class Cmos16TCompareCell:
    """Compare path of the 16T CMOS NOR-type TCAM cell.

    The 12 SRAM transistors only store the bit; the search behaviour is
    the two series-NMOS pulldown pairs.  Stored values arrive as node
    voltages (ideal SRAM nodes), matching how [25]'s cell evaluates.
    """

    design: DesignKind
    prefix: str
    stored_d: str
    stored_dbar: str

    @classmethod
    def build(cls, ckt: Circuit, prefix: str, *, ml: str, sl: str,
              slbar: str, stored_d: str, stored_dbar: str,
              multiplier: float = 1.0) -> "Cmos16TCompareCell":
        mid_a = f"{prefix}.na"
        mid_b = f"{prefix}.nb"
        # Branch A: mismatch when query=1 (SL high) and stored_dbar high.
        ckt.add(nmos(f"{prefix}.M1", ml, sl, mid_a, w=40e-9,
                     multiplier=multiplier))
        ckt.add(nmos(f"{prefix}.M2", mid_a, stored_dbar, "0", w=40e-9,
                     multiplier=multiplier))
        # Branch B: mismatch when query=0 (SLbar high) and stored_d high.
        ckt.add(nmos(f"{prefix}.M3", ml, slbar, mid_b, w=40e-9,
                     multiplier=multiplier))
        ckt.add(nmos(f"{prefix}.M4", mid_b, stored_d, "0", w=40e-9,
                     multiplier=multiplier))
        return cls(design=DesignKind.CMOS_16T, prefix=prefix,
                   stored_d=stored_d, stored_dbar=stored_dbar)
