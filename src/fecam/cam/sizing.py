"""Divider design-space exploration for the 1.5T1Fe cell (paper Eq. 1-3).

The paper stresses that "the resistance values of TN, TP, and DG-FeFET
must be carefully selected".  This module makes that selection a library
operation: it solves the SL_bar DC equilibria for all six store x search
cases, reports the margins against the TML threshold, and can sweep
TN/TP/TML/s_x candidates — the co-optimization that produced the frozen
defaults in :func:`fecam.devices.calibration.cell_sizing`.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterable, List, Optional, Sequence

from ..designs import DesignKind
from ..devices import (VDD, CellSizing, cell_sizing, make_fefet, nmos,
                       operating_voltages, pmos)
from ..errors import OperationError

__all__ = ["DividerLevels", "DividerMargins", "slbar_level",
           "divider_margins", "explore_sizing"]


def _search_bias(design: DesignKind, search_bit: str):
    """(v_fg, v_bg) seen by the *selected* FeFET for a query bit."""
    volts = operating_voltages(design)
    if design.is_double_gate:
        v_fg = volts.vb if search_bit == "0" else 0.0
        v_bg = volts.vsel
    else:
        v_fg = volts.vsel
        v_bg = 0.0
    return v_fg, v_bg


def _unselected_leak(design: DesignKind, drain_level: float) -> float:
    """Worst-case pair-mate leak current: an unselected LVT device."""
    volts = operating_voltages(design)
    v_fg = volts.vb if design.is_double_gate else 0.0
    fef = make_fefet(design, "LK", "f", "d", "s", "b", initial_s=1.0)
    return fef.channel_current(v_fg, drain_level, 0.0, 0.0)


def slbar_level(design: DesignKind, stored_s: float, search_bit: str, *,
                sizing: Optional[CellSizing] = None,
                include_pair_leak: bool = True) -> float:
    """DC equilibrium of SL_bar for one store/search combination.

    Solves the current balance of the Eq. 2 divider (search '0':
    FeFET from SL=VDD into SL_bar, TN to ground) or the Eq. 3 divider
    (search '1': TP from VDD, FeFET to SL=0) by bisection.
    """
    if search_bit not in ("0", "1"):
        raise OperationError("search bit must be '0' or '1'")
    sz = sizing or cell_sizing(design)
    v_fg, v_bg = _search_bias(design, search_bit)
    fef = make_fefet(design, "F", "f", "d", "s", "b", initial_s=stored_s)
    lo, hi = 0.0, VDD
    if search_bit == "0":
        tn = nmos("TN", "a", "g", "b", w=sz.tn_w, l=sz.tn_l, vth=sz.tn_vth)
        leak = (_unselected_leak(design, VDD) if include_pair_leak else 0.0)
        for _ in range(60):
            v = 0.5 * (lo + hi)
            i_in = fef.channel_current(v_fg, VDD, v, v_bg) + leak
            i_out = tn.channel_current(v, VDD, 0.0, 0.0)
            if i_in > i_out:
                lo = v
            else:
                hi = v
    else:
        tp = pmos("TP", "a", "g", "b", w=sz.tp_w, l=sz.tp_l, vth=sz.tp_vth)
        leak = (_unselected_leak(design, 0.4) if include_pair_leak else 0.0)
        for _ in range(60):
            v = 0.5 * (lo + hi)
            i_in = -tp.channel_current(v, 0.0, VDD, VDD)
            i_out = fef.channel_current(v_fg, v, 0.0, v_bg) + leak
            if i_in > i_out:
                lo = v
            else:
                hi = v
    return 0.5 * (lo + hi)


@dataclass(frozen=True)
class DividerLevels:
    """SL_bar equilibria for the six store x search cases."""

    v_store1_search0: float  # mismatch — must exceed the TML threshold
    v_store0_search1: float  # mismatch
    v_store0_search0: float  # match — must stay below
    v_store1_search1: float  # match
    v_storeX_search0: float  # don't-care — must stay below
    v_storeX_search1: float  # don't-care


@dataclass(frozen=True)
class DividerMargins:
    """Margins of the levels against the TML threshold (volts)."""

    design: DesignKind
    levels: DividerLevels
    tml_vth: float
    mismatch_margin: float  # min mismatch level - threshold
    match_margin: float  # threshold - max match/don't-care level

    @property
    def functional(self) -> bool:
        return self.mismatch_margin > 0 and self.match_margin > 0


def divider_margins(design: DesignKind, *,
                    sizing: Optional[CellSizing] = None) -> DividerMargins:
    """Compute all six SL_bar levels and the resulting margins."""
    if not design.is_one_fefet:
        raise OperationError(f"{design} has no 1.5T1Fe divider")
    sz = sizing or cell_sizing(design)
    lv = DividerLevels(
        v_store1_search0=slbar_level(design, 1.0, "0", sizing=sz),
        v_store0_search1=slbar_level(design, 0.0, "1", sizing=sz),
        v_store0_search0=slbar_level(design, 0.0, "0", sizing=sz),
        v_store1_search1=slbar_level(design, 1.0, "1", sizing=sz),
        v_storeX_search0=slbar_level(design, sz.s_x, "0", sizing=sz),
        v_storeX_search1=slbar_level(design, sz.s_x, "1", sizing=sz),
    )
    mismatch = min(lv.v_store1_search0, lv.v_store0_search1) - sz.tml_vth
    match = sz.tml_vth - max(lv.v_store0_search0, lv.v_store1_search1,
                             lv.v_storeX_search0, lv.v_storeX_search1)
    return DividerMargins(design=design, levels=lv, tml_vth=sz.tml_vth,
                          mismatch_margin=mismatch, match_margin=match)


def explore_sizing(design: DesignKind, *,
                   tn_lengths: Sequence[float] = (240e-9, 480e-9, 720e-9),
                   tp_lengths: Sequence[float] = (240e-9, 480e-9),
                   tml_vths: Sequence[float] = (0.30, 0.35, 0.40),
                   s_x_values: Sequence[float] = (0.66, 0.70, 0.74, 0.78),
                   ) -> List[DividerMargins]:
    """Sweep candidate sizings; returns margins sorted best-first.

    This is the Sec. V-C style design-space exploration that selected the
    frozen defaults; the ablation bench regenerates it.
    """
    base = cell_sizing(design)
    results: List[DividerMargins] = []
    for tn_l, tp_l, tml_vth, s_x in product(tn_lengths, tp_lengths,
                                            tml_vths, s_x_values):
        candidate = CellSizing(
            tn_w=base.tn_w, tn_l=tn_l, tn_vth=base.tn_vth,
            tn_split_sw_l=base.tn_split_sw_l,
            tp_w=base.tp_w, tp_l=tp_l, tp_vth=base.tp_vth,
            tml_w=base.tml_w, tml_l=base.tml_l, tml_vth=tml_vth, s_x=s_x)
        results.append(divider_margins(design, sizing=candidate))
    results.sort(key=lambda m: min(m.mismatch_margin, m.match_margin),
                 reverse=True)
    return results
