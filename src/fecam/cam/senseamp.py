"""Match-line periphery: precharge, keeper, and sense amplifier.

The sense amplifier is a two-inverter buffer on the ML (output high =
match, as in paper Fig. 4c), powered from a dedicated supply so SA energy
is separately measurable.  The ML precharge PMOS and a weak always-on
keeper also get dedicated supplies; the keeper rides out the aggregate
subthreshold leak of matching TML transistors without fighting a real
mismatch discharge (mismatch current is ~10x the keeper current).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..devices import VDD, nmos, pmos
from ..spice import Circuit, Pulse, VoltageSource

__all__ = ["MlPeriphery", "add_ml_periphery", "SA_THRESHOLD_FRACTION"]

#: ML level (fraction of VDD) at which the SA decision flips.
SA_THRESHOLD_FRACTION = 0.5


@dataclass
class MlPeriphery:
    """Node handles of the ML's precharge/keeper/SA circuitry."""

    ml: str
    sa_out: str
    sa_mid: str
    precharge_until: float

    @property
    def sa_threshold(self) -> float:
        return SA_THRESHOLD_FRACTION * VDD


def add_ml_periphery(ckt: Circuit, ml: str, *, precharge_until: float,
                     prefix: str = "mlp", vdd: float = VDD,
                     with_keeper: bool = True) -> MlPeriphery:
    """Attach precharge PMOS, keeper, and SA to a match line.

    ``precharge_until`` is when the precharge clock releases the ML
    (search evaluation starts).  Sources created (for energy accounting):
    ``VPC.<prefix>`` precharge rail, ``VPCCLK.<prefix>`` precharge clock,
    ``VKEEP.<prefix>`` keeper rail, ``VSA.<prefix>`` SA rail.
    """
    pc_rail = f"{prefix}.pc_rail"
    pc_clk = f"{prefix}.pc_clk"
    ckt.add(VoltageSource(f"VPC.{prefix}", pc_rail, "0", vdd))
    # Precharge clock: low (PMOS on) until precharge_until, then high.
    ckt.add(VoltageSource(f"VPCCLK.{prefix}", pc_clk, "0",
                          Pulse(0.0, vdd, delay=precharge_until,
                                rise=20e-12, width=1.0)))
    ckt.add(pmos(f"{prefix}.MPC", ml, pc_clk, pc_rail, w=320e-9))

    if with_keeper:
        keep_rail = f"{prefix}.keep_rail"
        ckt.add(VoltageSource(f"VKEEP.{prefix}", keep_rail, "0", vdd))
        # Weak always-on keeper: W/L = 20n/200n.
        ckt.add(pmos(f"{prefix}.MKEEP", ml, "0", keep_rail,
                     w=20e-9, l=200e-9))

    sa_rail = f"{prefix}.sa_rail"
    sa_mid = f"{prefix}.sa_mid"
    sa_out = f"{prefix}.sa_out"
    ckt.add(VoltageSource(f"VSA.{prefix}", sa_rail, "0", vdd))
    # Inverter 1: ml -> sa_mid.
    ckt.add(pmos(f"{prefix}.SAP1", sa_mid, ml, sa_rail, w=80e-9))
    ckt.add(nmos(f"{prefix}.SAN1", sa_mid, ml, "0", w=40e-9))
    # Inverter 2: sa_mid -> sa_out (match => ML high => out high).
    ckt.add(pmos(f"{prefix}.SAP2", sa_out, sa_mid, sa_rail, w=80e-9))
    ckt.add(nmos(f"{prefix}.SAN2", sa_out, sa_mid, "0", w=40e-9))
    return MlPeriphery(ml=ml, sa_out=sa_out, sa_mid=sa_mid,
                       precharge_until=precharge_until)
