"""Full small-array netlists (paper Fig. 5c/d) and an array test harness.

The word model in :mod:`fecam.cam.word` merges equivalent cells for speed;
this module builds the *unreduced* M x N array — every cell, every shared
line — and runs whole-array searches, returning one match result per row.
It exists to validate the reduced model (tests compare both) and to run
the exact 2 x 4 arrays drawn in the paper's Fig. 5(c)/(d).

Only the FeFET designs are supported at array level (the CMOS baseline
enters the evaluation through published numbers plus the word model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch.geometry import cell_geometry
from ..arch.wire import WIRE_14NM
from ..designs import DesignKind
from ..devices import VDD, operating_voltages
from ..errors import OperationError
from ..spice import (Capacitor, Circuit, DC, TransientOptions, VoltageSource,
                     step_sequence, transient)
from .cells import OneFeFetPairCell, TwoFeFetCell
from .senseamp import SA_THRESHOLD_FRACTION, add_ml_periphery
from .states import normalize_query, normalize_word, ternary_match
from .word import WordTimings, _line_level_for_query, _schedule

__all__ = ["ArraySearchResult", "TcamArrayCircuit"]


@dataclass
class ArraySearchResult:
    """Whole-array search outcome."""

    design: DesignKind
    query: str
    matches: List[bool]  # per row
    expected: List[bool]
    energy_total: float
    t_end: float

    @property
    def match_address(self) -> Optional[int]:
        """Lowest matching row (priority-encoder semantics), or None."""
        for i, m in enumerate(self.matches):
            if m:
                return i
        return None

    @property
    def functionally_correct(self) -> bool:
        return self.matches == self.expected


class TcamArrayCircuit:
    """An M x N TCAM array built cell-by-cell.

    Usage::

        arr = TcamArrayCircuit(DesignKind.DG_1T5, rows=2, cols=4)
        arr.program(0, "10X1")
        arr.program(1, "0110")
        result = arr.search("1011")
        assert result.matches == [True, False]

    Every search builds fresh source waveforms and runs one transient over
    the full array, honoring the two-step early-termination schedule
    (step 2 is skipped only if *all* rows miss in step 1, since the array
    shares the SeL/query sequencing).
    """

    def __init__(self, design: DesignKind, rows: int, cols: int, *,
                 timings: Optional[WordTimings] = None):
        if not design.is_fefet:
            raise OperationError("array netlists support FeFET designs only")
        if rows < 1 or cols < 2 or cols % 2:
            raise OperationError("need rows >= 1 and an even cols >= 2")
        self.design = design
        self.rows = rows
        self.cols = cols
        self.timings = (timings or WordTimings()).for_design(design, max(cols, 8))
        self.volts = operating_voltages(design)
        self._stored: List[Optional[str]] = [None] * rows

    # -- content -----------------------------------------------------------------

    def program(self, row: int, word: str) -> None:
        word = normalize_word(word)
        if len(word) != self.cols:
            raise OperationError(f"word must have {self.cols} symbols")
        self._stored[row] = word

    def stored(self, row: int) -> Optional[str]:
        return self._stored[row]

    # -- search ------------------------------------------------------------------

    def search(self, query: str) -> ArraySearchResult:
        query = normalize_query(query)
        if len(query) != self.cols:
            raise OperationError(f"query must have {self.cols} bits")
        if any(w is None for w in self._stored):
            raise OperationError("all rows must be programmed before search")
        expected = [ternary_match(w, query) for w in self._stored]

        two_step = self.design.uses_two_step_search
        if two_step:
            # Early termination is an array-level decision: step 2 runs
            # unless every row already missed in step 1.
            def misses_in_step1(w):
                return any(s != "X" and s != q
                           for s, q in zip(w[0::2], query[0::2]))
            steps = 1 if all(misses_in_step1(w) for w in self._stored) else 2
        else:
            steps = 1

        ckt, peripheries, t_end, t_release = self._build(query, steps)
        result = transient(ckt, t_end,
                           options=TransientOptions(dt=self.timings.dt))
        threshold = SA_THRESHOLD_FRACTION * VDD
        matches = [result.final(p.sa_out) > threshold for p in peripheries]
        return ArraySearchResult(design=self.design, query=query,
                                 matches=matches, expected=expected,
                                 energy_total=result.total_energy(),
                                 t_end=t_end)

    # -- construction ------------------------------------------------------------

    def _build(self, query: str, steps: int):
        t = self.timings
        volts = self.volts
        two_step = self.design.uses_two_step_search
        t_query = 0.1e-9
        t_release = t.t_settle
        t1 = t_release + t.t_step
        t_reconfig = t1 + t.t_gap
        t_end = t_reconfig + t.t_step if (two_step and steps == 2) else t1

        ckt = Circuit(f"array-{self.design.value}-{self.rows}x{self.cols}")
        geo = cell_geometry(self.design)
        c_col = WIRE_14NM.capacitance(geo.height * self.rows)
        c_row = WIRE_14NM.capacitance(geo.width * self.cols)

        if self.design.is_one_fefet:
            self._build_1t5(ckt, query, steps, t_query, t1, t_reconfig,
                            c_col, c_row)
        else:
            self._build_2fefet(ckt, query, t_query, c_col)

        peripheries = []
        for r in range(self.rows):
            ml = f"ml{r}"
            ckt.add(Capacitor(f"CML{r}", ml, "0",
                              WIRE_14NM.capacitance(geo.width * self.cols)))
            peripheries.append(add_ml_periphery(ckt, ml,
                                                precharge_until=t_release,
                                                prefix=f"mlp{r}"))
        return ckt, peripheries, t_end, t_release

    def _build_1t5(self, ckt, query, steps, t_query, t1, t_reconfig,
                   c_col, c_row):
        volts = self.volts
        t = self.timings
        ckt.add(VoltageSource("VDDC", "vddc", "0", VDD))
        if self.design.is_double_gate:
            sela_levels = [(0.0, 0.0), (t_query, volts.vsel)]
            selb_levels = [(0.0, 0.0)]
            if steps == 2:
                sela_levels.append((t1, 0.0))
                selb_levels.append((t_reconfig, volts.vsel))
            ckt.add(VoltageSource("VSELA", "sela", "0",
                                  _schedule(sela_levels, t.t_trans)))
            ckt.add(VoltageSource("VSELB", "selb", "0",
                                  _schedule(selb_levels, t.t_trans)))
            ckt.add(Capacitor("CSELA", "sela", "0", c_row * self.rows))
            ckt.add(Capacitor("CSELB", "selb", "0", c_row * self.rows))
            sela, selb = "sela", "selb"
        else:
            sela, selb = "0", "0"

        for p in range(self.cols // 2):
            q1, q2 = query[2 * p], query[2 * p + 1]
            l1 = _line_level_for_query(q1, volts.vdd)
            l2 = _line_level_for_query(q2, volts.vdd)
            sl_levels = [(0.0, 0.0), (t_query, l1)]
            wr_levels = [(0.0, volts.vdd), (t_query, l1)]
            if steps == 2:
                sl_levels += [(t1, 0.0), (t_reconfig, l2)]
                wr_levels += [(t1, volts.vdd), (t_reconfig, l2)]
            sl = f"sl.p{p}"
            wrsl = f"wrsl.p{p}"
            ckt.add(VoltageSource(f"VSL.p{p}", sl, "0",
                                  _schedule(sl_levels, t.t_trans_lines)))
            ckt.add(VoltageSource(f"VWRSL.p{p}", wrsl, "0",
                                  _schedule(wr_levels, t.t_trans_lines)))
            ckt.add(Capacitor(f"CSL.p{p}", sl, "0", 2 * c_col))

            if self.design.is_double_gate:
                bl1_levels = [(0.0, 0.0),
                              (t_query, volts.vb if q1 == "0" else 0.0)]
                bl2_levels = [(0.0, 0.0)]
                if steps == 2:
                    bl1_levels.append((t1, 0.0))
                    bl2_levels.append((t_reconfig,
                                       volts.vb if q2 == "0" else 0.0))
            else:
                bl1_levels = [(0.0, 0.0), (t_query, volts.vsel)]
                bl2_levels = [(0.0, 0.0)]
                if steps == 2:
                    bl1_levels.append((t1, 0.0))
                    bl2_levels.append((t_reconfig, volts.vsel))
            bl1 = f"bl1.p{p}"
            bl2 = f"bl2.p{p}"
            ckt.add(VoltageSource(f"VBL1.p{p}", bl1, "0",
                                  _schedule(bl1_levels, t.t_trans)))
            ckt.add(VoltageSource(f"VBL2.p{p}", bl2, "0",
                                  _schedule(bl2_levels, t.t_trans)))
            ckt.add(Capacitor(f"CBL1.p{p}", bl1, "0", c_col))
            ckt.add(Capacitor(f"CBL2.p{p}", bl2, "0", c_col))

            for r in range(self.rows):
                pair = OneFeFetPairCell.build(
                    ckt, self.design, f"cell.r{r}p{p}", ml=f"ml{r}",
                    sl=sl, wrsl=wrsl, bl1=bl1, bl2=bl2,
                    sela=sela, selb=selb, vdd="vddc")
                pair.program(self._stored[r][2 * p:2 * p + 2])

    def _build_2fefet(self, ckt, query, t_query, c_col):
        volts = self.volts
        t = self.timings
        for c in range(self.cols):
            q = query[c]
            va = volts.vsel if q == "0" else 0.0
            vb = volts.vsel if q == "1" else 0.0
            la, lb = f"la.c{c}", f"lb.c{c}"
            ckt.add(VoltageSource(f"VSLA.c{c}", la, "0",
                                  _schedule([(0.0, 0.0), (t_query, va)],
                                            t.t_trans)))
            ckt.add(VoltageSource(f"VSLB.c{c}", lb, "0",
                                  _schedule([(0.0, 0.0), (t_query, vb)],
                                            t.t_trans)))
            ckt.add(Capacitor(f"CLA.c{c}", la, "0", c_col))
            ckt.add(Capacitor(f"CLB.c{c}", lb, "0", c_col))
            for r in range(self.rows):
                cell = TwoFeFetCell.build(ckt, self.design, f"cell.r{r}c{c}",
                                          ml=f"ml{r}", line_a=la, line_b=lb)
                cell.program(self._stored[r][c])
