"""Write and search operation controllers.

**Three-step write** (paper Sec. III-B3): the 1.5T1Fe cell stores three VT
levels, so a word write proceeds as (1) erase every cell to HVT with -Vw,
(2) program the '1' cells to LVT with +Vw, (3) program the 'X' cells to
MVT with the intermediate Vm.  Step 3 uses program-and-verify pulses — the
standard NVM practice — to land on the co-optimized MVT fraction
``cell_sizing(design).s_x`` regardless of KAI-parameter drift.

**Write energy** follows the polarization-switching charge: a full-swing
write moves ``2*Pr*A`` of charge through the write voltage, giving the
Table IV ladder (1.63 / 0.81 / 0.82 / 0.41 fJ): 2FeFET cells write two
devices, 1.5T1Fe cells write one, and DG devices write at half the
voltage.

**Search** at the behavioral level applies the two-step early-termination
policy and reports which step resolved each word — the statistics that
drive the paper's 90 %-step-1-miss average energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..designs import DesignKind
from ..devices import cell_sizing, fefet_params_for, operating_voltages
from ..devices.fefet import FeFet
from ..errors import OperationError
from .states import (first_mismatch_step, normalize_query, normalize_word,
                     ternary_match)

__all__ = ["WriteController", "WriteReport", "SearchPolicy", "SearchOutcome",
           "two_step_search_outcome"]


@dataclass
class WriteReport:
    """Energy and step bookkeeping for one word write."""

    design: DesignKind
    word: str
    steps: int
    energy_total: float
    energy_per_cell: float
    verify_pulses: int = 0
    energy_by_step: Dict[str, float] = field(default_factory=dict)


class WriteController:
    """Programs FeFETs per the paper's write tables (I, II, III)."""

    #: Verify-pulse granularity for MVT programming.
    VERIFY_PULSE = 1e-9
    MAX_VERIFY_PULSES = 80
    S_X_TOLERANCE = 0.03

    def __init__(self, design: DesignKind):
        if not design.is_fefet:
            raise OperationError("the CMOS TCAM is written through SRAM ports")
        self.design = design
        self.volts = operating_voltages(design)
        self.params = fefet_params_for(design)
        self.s_x = (cell_sizing(design).s_x if design.is_one_fefet else 0.5)

    # -- energy model ------------------------------------------------------------

    def switching_energy(self, voltage: float, delta_s: float = 1.0, *,
                         include_linear: bool = False) -> float:
        """Energy to move ``delta_s`` of the domain population at a write
        voltage: Q * V with Q = 2*Pr*A*delta_s.

        The paper's Tab. IV write-energy ladder corresponds to this
        polarization-switching component (which is why the 2SG : 2DG :
        1.5T1SG : 1.5T1DG ratio is exactly 4 : 2 : 2 : 1); pass
        ``include_linear=True`` to add the background-capacitance CV^2
        term, which a driver also supplies but largely recovers on the
        pulse's falling edge.
        """
        ferro = self.params.ferro
        q_pol = 2.0 * ferro.ps * ferro.area * abs(delta_s)
        energy = q_pol * abs(voltage)
        if include_linear:
            energy += ferro.c_static * voltage * voltage
        return energy

    def write_energy_per_cell(self, symbol: str = None) -> float:
        """Average write energy per cell (paper Tab. IV convention:
        half '0' / half '1' stored, full-swing writes)."""
        n_fe = self.design.fefets_per_cell
        if symbol is None:
            return n_fe * self.switching_energy(self.volts.vw)
        symbol = normalize_word(symbol)
        if symbol == "X" and self.design.is_one_fefet:
            # Erase to HVT at Vw, then partial-program at Vm.
            return (self.switching_energy(self.volts.vw)
                    + self.switching_energy(self.volts.vm, self.s_x))
        return n_fe * self.switching_energy(self.volts.vw)

    # -- field helpers -------------------------------------------------------------

    def _field(self, voltage: float) -> float:
        p = self.params
        return p.kappa_fe * voltage / p.ferro.t_fe

    def _pulse(self, fefet: FeFet, voltage: float, width: float) -> None:
        fefet.layer.advance(self._field(voltage), width)

    # -- three-step write ------------------------------------------------------------

    def erase(self, fefet: FeFet) -> None:
        """Step 1: -Vw pulse drives the device to HVT."""
        self._pulse(fefet, -self.volts.vw, self.volts.t_write)

    def program_one(self, fefet: FeFet) -> None:
        """Step 2: +Vw pulse drives the device to LVT."""
        self._pulse(fefet, +self.volts.vw, self.volts.t_write)

    def program_x(self, fefet: FeFet) -> int:
        """Step 3: Vm program-and-verify until s reaches the MVT target.

        Returns the number of verify pulses used.  Raises if the target is
        unreachable (a calibration regression).
        """
        target = self.s_x
        pulses = 0
        while fefet.layer.s < target - self.S_X_TOLERANCE:
            self._pulse(fefet, +self.volts.vm, self.VERIFY_PULSE)
            pulses += 1
            if pulses > self.MAX_VERIFY_PULSES:
                raise OperationError(
                    f"MVT program-verify did not converge toward s={target} "
                    f"(stuck at {fefet.layer.s:.3f})")
        return pulses

    def write_fefet(self, fefet: FeFet, symbol: str) -> int:
        """Full write sequence for one device; returns verify pulses."""
        self.erase(fefet)
        if symbol == "1":
            self.program_one(fefet)
            return 0
        if symbol == "X":
            return self.program_x(fefet)
        return 0

    def write_pair(self, fe1: FeFet, fe2: FeFet, symbols: str) -> WriteReport:
        """Write a 1.5T1Fe 2-cell pair ('0'/'1'/'X' per cell)."""
        if not self.design.is_one_fefet:
            raise OperationError("write_pair applies to 1.5T1Fe designs")
        symbols = normalize_word(symbols)
        if len(symbols) != 2:
            raise OperationError("a pair stores exactly two symbols")
        verify = self.write_fefet(fe1, symbols[0])
        verify += self.write_fefet(fe2, symbols[1])
        energy = sum(self.write_energy_per_cell(c) for c in symbols)
        return WriteReport(design=self.design, word=symbols,
                           steps=3 if "X" in symbols else 2,
                           energy_total=energy, energy_per_cell=energy / 2,
                           verify_pulses=verify)

    def write_2fefet_cell(self, fe_a: FeFet, fe_b: FeFet,
                          symbol: str) -> WriteReport:
        """Write a 2FeFET cell (complementary states, Tab. I)."""
        if self.design.is_one_fefet:
            raise OperationError("write_2fefet_cell applies to 2FeFET designs")
        symbol = normalize_word(symbol)
        self.erase(fe_a)
        self.erase(fe_b)
        if symbol == "0":
            self.program_one(fe_b)
        elif symbol == "1":
            self.program_one(fe_a)
        # 'X' leaves both HVT.
        energy = self.write_energy_per_cell(symbol)
        return WriteReport(design=self.design, word=symbol, steps=2,
                           energy_total=energy, energy_per_cell=energy)


# ---------------------------------------------------------------------------
# Two-step search policy (behavioral)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SearchPolicy:
    """Early-termination policy knobs."""

    early_termination: bool = True


@dataclass
class SearchOutcome:
    """Per-word outcome of a (behavioral) two-step search."""

    matched: bool
    steps_run: int
    resolved_in_step: int  # 0 = matched (both steps ran), 1 or 2 = miss step


def two_step_search_outcome(stored: str, query: str,
                            policy: SearchPolicy = SearchPolicy()) -> SearchOutcome:
    """Apply the paper's two-step early-termination search to one word."""
    stored = normalize_word(stored)
    query = normalize_query(query)
    step = first_mismatch_step(stored, query)
    if step == 0:
        return SearchOutcome(matched=True, steps_run=2, resolved_in_step=0)
    if step == 1:
        steps = 1 if policy.early_termination else 2
        return SearchOutcome(matched=False, steps_run=steps, resolved_in_step=1)
    return SearchOutcome(matched=False, steps_run=2, resolved_in_step=2)
