"""TCAM cells, word/array circuits, and operation controllers (the paper's
core contribution plus its 2FeFET and CMOS baselines)."""

from .cells import (Cmos16TCompareCell, OneFeFetPairCell, TwoFeFetCell,
                    symbol_to_fractions_2fefet)
from .senseamp import SA_THRESHOLD_FRACTION, MlPeriphery, add_ml_periphery
from .states import (TERNARY_SYMBOLS, first_mismatch_step, mismatch_positions,
                     normalize_query, normalize_word, ternary_match,
                     to_ternary, wildcard_expand)
from .word import (SCENARIOS_SINGLE_STEP, SCENARIOS_TWO_STEP, WordSearchResult,
                   WordTimings, scenario_content, simulate_word_search)
from .ops import (SearchOutcome, SearchPolicy, WriteController, WriteReport,
                  two_step_search_outcome)
from .sizing import (DividerLevels, DividerMargins, divider_margins,
                     explore_sizing, slbar_level)
from .array import ArraySearchResult, TcamArrayCircuit

__all__ = [
    "TERNARY_SYMBOLS", "normalize_word", "normalize_query", "ternary_match",
    "mismatch_positions", "first_mismatch_step", "to_ternary",
    "wildcard_expand",
    "OneFeFetPairCell", "TwoFeFetCell", "Cmos16TCompareCell",
    "symbol_to_fractions_2fefet",
    "MlPeriphery", "add_ml_periphery", "SA_THRESHOLD_FRACTION",
    "WordTimings", "WordSearchResult", "simulate_word_search",
    "scenario_content", "SCENARIOS_TWO_STEP", "SCENARIOS_SINGLE_STEP",
    "WriteController", "WriteReport", "SearchPolicy", "SearchOutcome",
    "two_step_search_outcome",
    "DividerLevels", "DividerMargins", "divider_margins", "explore_sizing",
    "slbar_level",
    "ArraySearchResult", "TcamArrayCircuit",
]
