"""Ternary data types and the functional match reference.

Everything that stores or searches TCAM content speaks these types:
symbols '0', '1', 'X' (don't care) for stored cells, '0'/'1' for search
queries.  ``ternary_match`` is the executable specification every circuit
and behavioral implementation is tested against.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple, Union

from ..errors import TernaryValueError

__all__ = ["TERNARY_SYMBOLS", "normalize_word", "normalize_query",
           "ternary_match", "mismatch_positions", "to_ternary",
           "wildcard_expand", "first_mismatch_step"]

TERNARY_SYMBOLS = ("0", "1", "X")


def _normalize_symbol(symbol: Union[str, int], allow_x: bool) -> str:
    if isinstance(symbol, int):
        if symbol in (0, 1):
            return str(symbol)
        raise TernaryValueError(f"invalid bit {symbol!r}")
    s = str(symbol).upper()
    if s in ("0", "1"):
        return s
    if s in ("X", "*", "?") and allow_x:
        return "X"
    raise TernaryValueError(
        f"invalid {'ternary' if allow_x else 'binary'} symbol {symbol!r}")


def normalize_word(word: Union[str, Sequence]) -> str:
    """Normalize a stored ternary word to a canonical '01X' string.

    Accepts strings (``'01X'``, with ``*``/``?`` as X aliases) or sequences
    of symbols/ints.
    """
    if isinstance(word, str):
        items: Iterable = word
    else:
        items = word
    symbols = [_normalize_symbol(s, allow_x=True) for s in items]
    if not symbols:
        raise TernaryValueError("empty ternary word")
    return "".join(symbols)


def normalize_query(query: Union[str, Sequence]) -> str:
    """Normalize a binary search query to a canonical '01' string."""
    if isinstance(query, str):
        items: Iterable = query
    else:
        items = query
    symbols = [_normalize_symbol(s, allow_x=False) for s in items]
    if not symbols:
        raise TernaryValueError("empty query")
    return "".join(symbols)


def ternary_match(stored: str, query: str) -> bool:
    """Functional TCAM match: 'X' matches anything, else bits must agree.

    This is the specification all circuit-level simulations are verified
    against (stored/query must already be normalized, same length).
    """
    if len(stored) != len(query):
        raise TernaryValueError(
            f"length mismatch: stored {len(stored)} vs query {len(query)}")
    return all(s == "X" or s == q for s, q in zip(stored, query))


def mismatch_positions(stored: str, query: str) -> List[int]:
    """Indices where the stored word conflicts with the query."""
    if len(stored) != len(query):
        raise TernaryValueError(
            f"length mismatch: stored {len(stored)} vs query {len(query)}")
    return [i for i, (s, q) in enumerate(zip(stored, query))
            if s != "X" and s != q]


def first_mismatch_step(stored: str, query: str) -> int:
    """Which search step detects the first mismatch in a 1.5T1Fe word.

    The 2-cell pair searches even positions (cell1) in step 1 and odd
    positions (cell2) in step 2 (paper Sec. III-B3).  Returns 1 or 2, or
    0 when the word matches.
    """
    positions = mismatch_positions(stored, query)
    if not positions:
        return 0
    if any(p % 2 == 0 for p in positions):
        return 1
    return 2


def to_ternary(value: int, width: int, dont_care_low: int = 0) -> str:
    """Encode an integer as a ternary word, optionally wildcarding the
    ``dont_care_low`` least-significant bits (prefix-match encoding)."""
    if value < 0 or value >= (1 << width):
        raise TernaryValueError(f"{value} does not fit in {width} bits")
    if not 0 <= dont_care_low <= width:
        raise TernaryValueError("dont_care_low out of range")
    bits = format(value, f"0{width}b")
    if dont_care_low == 0:
        return bits
    return bits[:width - dont_care_low] + "X" * dont_care_low


def wildcard_expand(stored: str) -> List[str]:
    """All binary words a ternary word matches (exponential in X count)."""
    stored = normalize_word(stored)
    x_count = stored.count("X")
    if x_count > 20:
        raise TernaryValueError("too many wildcards to expand")
    results: List[str] = []
    for k in range(1 << x_count):
        word = []
        xi = 0
        for s in stored:
            if s == "X":
                word.append("1" if (k >> xi) & 1 else "0")
                xi += 1
            else:
                word.append(s)
        results.append("".join(word))
    return results
