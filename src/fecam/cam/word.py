"""Reduced word-level search simulation for all five TCAM designs.

This module answers the paper's evaluation questions (Tab. IV latency and
energy, Fig. 4 waveforms, Fig. 7 word-length sweeps) by simulating one
TCAM word (row) end to end: query application, ML precharge, one- or
two-step evaluation with early termination, and SA sensing.

**Multiplier reduction.**  Cells whose terminals see identical waveforms
and whose stored states are identical behave identically, so they are
merged into one representative cell with a device ``multiplier`` equal to
the group count.  A 128-bit word reduces to a handful of equivalence
classes, keeping the MNA system size constant in word length while wire
and junction capacitances still scale exactly — the same trick SPICE
users apply by hand with the ``M=`` device parameter.

**Search-line energy attribution.**  In an M x N array every search
toggles each column line once for all M rows; a single word's fair share
is 1/M of each column line.  The word model therefore loads each class's
column sources with one cell's worth of column wire per member cell,
while row-wise lines (SeLa/SeLb, ML) carry their full wire load.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..arch.geometry import cell_geometry
from ..arch.wire import WIRE_14NM
from ..designs import DesignKind
from ..devices import VDD, operating_voltages
from ..errors import OperationError, SimulationError
from ..spice import (Capacitor, Circuit, DC, PWL, TransientOptions,
                     TransientResult, VoltageSource, step_sequence, transient)
from .cells import Cmos16TCompareCell, OneFeFetPairCell, TwoFeFetCell
from .senseamp import SA_THRESHOLD_FRACTION, add_ml_periphery
from .states import (first_mismatch_step, mismatch_positions, normalize_query,
                     normalize_word, ternary_match)

__all__ = ["WordTimings", "WordSearchResult", "simulate_word_search",
           "scenario_content", "SCENARIOS_TWO_STEP", "SCENARIOS_SINGLE_STEP"]

SCENARIOS_TWO_STEP = ("match", "step1_miss", "step2_miss")
SCENARIOS_SINGLE_STEP = ("match", "miss")

#: 16T CMOS baseline supply ([25] runs its TCAM at 0.9 V).
VDD_CMOS = 0.9


@dataclass(frozen=True)
class WordTimings:
    """Search phase timing plan.

    ``t_gap`` is the break-before-make slack between the two search steps
    (paper Sec. V-B: "some time slack for the search signal switching
    between the two steps"): cell1 is deselected first, then — after the
    gap — the query lines flip and cell2 is selected.  Without the gap the
    still-selected FeFET couples the swinging SL into SL_bar and glitches
    the (precharged-once) match line.
    """

    t_settle: float = 0.7e-9  # query application + ML precharge overlap
    t_step: float = 1.2e-9  # evaluation window per search step
    t_gap: float = 0.5e-9  # deselect -> reconfigure slack between steps
    t_trans: float = 50e-12  # select-line transition time
    # Query/data lines (SL, Wr/SL, BL) switch with a deliberately slow
    # edge: the long-channel TN/TP gates couple strongly into SL_bar, and
    # a slow edge lets TN sink the coupled charge as it arrives instead of
    # letting the bump open TML on the precharged-once match line.
    t_trans_lines: float = 0.25e-9
    dt: float = 25e-12  # transient step

    def for_design(self, design: DesignKind,
                   n_bits: int = 64) -> "WordTimings":
        """Evaluation windows per design family and word length.

        A self-timed search closes its window when the slowest mismatch
        has developed: a word-length-independent SL_bar settling term plus
        an ML discharge term that grows with the ML load — which is why
        the paper's Fig. 7 latency grows with word length and why the
        1.5T1Fe divider energy per bit grows with it too (Sec. V-C).
        """
        scale = n_bits / 64.0
        if design is DesignKind.CMOS_16T:
            return WordTimings(t_settle=0.5e-9,
                               t_step=0.4e-9 + 0.7e-9 * scale,
                               t_gap=self.t_gap, t_trans=self.t_trans,
                               t_trans_lines=50e-12, dt=10e-12)
        if design is DesignKind.SG_2FEFET:
            return WordTimings(t_settle=0.8e-9,
                               t_step=0.5e-9 + 2.5e-9 * scale,
                               t_gap=self.t_gap, t_trans=self.t_trans,
                               t_trans_lines=50e-12, dt=self.dt)
        if design is DesignKind.DG_2FEFET:
            return WordTimings(t_settle=0.8e-9,
                               t_step=1.2e-9 + 6.8e-9 * scale,
                               t_gap=self.t_gap, t_trans=self.t_trans,
                               t_trans_lines=50e-12, dt=50e-12)
        # 1.5T1Fe designs: the SL_bar settle term (TP-rise limited) is
        # word-length independent; the TML/ML discharge term scales.
        return WordTimings(t_settle=self.t_settle,
                           t_step=0.9e-9 + 0.9e-9 * scale,
                           t_gap=self.t_gap, t_trans=self.t_trans,
                           t_trans_lines=self.t_trans_lines, dt=self.dt)


@dataclass
class WordSearchResult:
    """Outcome of one word-level search simulation."""

    design: DesignKind
    n_bits: int
    scenario: str
    stored: str
    query: str
    expected_match: bool
    matched: bool
    latency: Optional[float]  # search start -> SA output fall (miss cases)
    t_search_start: float
    t_end: float
    steps_run: int
    energy_total: float
    energy_per_bit: float
    energy_by_group: Dict[str, float]
    ml_final: float
    sa_final: float
    ml_min: float
    result: TransientResult

    @property
    def functionally_correct(self) -> bool:
        return self.matched == self.expected_match


def scenario_content(design: DesignKind, n_bits: int,
                     scenario: str) -> Tuple[str, str]:
    """Canonical stored word / query for a named scenario.

    The stored word alternates '1'/'0' (the paper's half-and-half average
    case); miss scenarios flip one query bit — at an even position for a
    step-1 miss, odd for a step-2 miss (cell1/cell2 of the 2-cell pairs).
    """
    if n_bits < 2 or n_bits % 2:
        raise OperationError("word length must be an even number >= 2")
    # '1001' tiling: half the cells store '1' (the paper's average case),
    # balanced so that *each* search step also sees half '1's.
    stored = ("1001" * n_bits)[:n_bits]
    query = list(stored)
    if scenario == "match":
        pass
    elif scenario in ("miss", "step1_miss"):
        query[0] = "0" if query[0] == "1" else "1"
    elif scenario == "step2_miss":
        query[1] = "0" if query[1] == "1" else "1"
    else:
        raise OperationError(f"unknown scenario {scenario!r}")
    return stored, "".join(query)


def _line_level_for_query(q: str, vdd: float) -> float:
    """SL / Wr-SL level during a search step (Tab. II: VDD to search '0',
    ground to search '1')."""
    return vdd if q == "0" else 0.0


def _schedule(levels: List[Tuple[float, float]], t_trans: float):
    if len(levels) == 1 or all(v == levels[0][1] for _, v in levels):
        return DC(levels[0][1])
    return step_sequence(levels, transition=t_trans)


class _WordBuilder:
    """Builds the reduced word circuit for one (design, content, scenario)."""

    def __init__(self, design: DesignKind, stored: str, query: str,
                 scenario: str, timings: WordTimings):
        self.design = design
        self.stored = stored
        self.query = query
        self.scenario = scenario
        self.t = timings
        self.n_bits = len(stored)
        self.ckt = Circuit(f"word-{design.value}-{scenario}")
        geo = cell_geometry(design)
        self.c_col_per_cell = WIRE_14NM.capacitance(geo.height)
        self.c_row_per_cell = WIRE_14NM.capacitance(geo.width)
        self.two_step = design.uses_two_step_search
        # Early termination: a step-1 miss ends the operation after step 1.
        if self.two_step:
            self.steps = 1 if first_mismatch_step(stored, query) == 1 else 2
        else:
            self.steps = 1
        self.t_query = 0.1e-9
        self.t_release = self.t.t_settle
        self.t_step1_end = self.t_release + self.t.t_step
        # Break-before-make: deselect cell1 at step-1 end, flip the query
        # lines and select cell2 only after the slack gap.
        self.t_reconfig = self.t_step1_end + self.t.t_gap
        self.t_end = (self.t_reconfig + self.t.t_step
                      if self.two_step and self.steps == 2 else self.t_step1_end)

    # -- per-design builders ---------------------------------------------------

    def build(self):
        if self.design is DesignKind.CMOS_16T:
            self._build_cmos()
        elif self.design.is_one_fefet:
            self._build_1t5()
        else:
            self._build_2fefet()
        vdd = VDD_CMOS if self.design is DesignKind.CMOS_16T else VDD
        self.periph = add_ml_periphery(self.ckt, "ml",
                                       precharge_until=self.t_release,
                                       vdd=vdd)
        # ML wire capacitance (row-wise, full length).
        c_ml_wire = WIRE_14NM.capacitance(
            cell_geometry(self.design).width * self.n_bits)
        self.ckt.add(Capacitor("CMLWIRE", "ml", "0", c_ml_wire))
        return self.ckt

    def _build_1t5(self):
        volts = operating_voltages(self.design)
        pairs = [(self.stored[i], self.query[i],
                  self.stored[i + 1], self.query[i + 1])
                 for i in range(0, self.n_bits, 2)]
        classes = Counter(pairs)
        self.ckt.add(VoltageSource("VDDC", "vddc", "0", VDD))

        # Row select lines (DG only): all rows toggle together during a
        # search, so one SeLa/SeLb source pair with full row wire load.
        if self.design.is_double_gate:
            sela_levels = [(0.0, 0.0), (self.t_query, volts.vsel)]
            if self.steps == 2:
                sela_levels.append((self.t_step1_end, 0.0))
            selb_levels = [(0.0, 0.0)]
            if self.steps == 2:
                selb_levels.append((self.t_reconfig, volts.vsel))
            self.ckt.add(VoltageSource(
                "VSELA", "sela", "0", _schedule(sela_levels, self.t.t_trans)))
            self.ckt.add(VoltageSource(
                "VSELB", "selb", "0", _schedule(selb_levels, self.t.t_trans)))
            c_row = self.c_row_per_cell * self.n_bits
            self.ckt.add(Capacitor("CSELA", "sela", "0", c_row))
            self.ckt.add(Capacitor("CSELB", "selb", "0", c_row))

        for k, ((s1, q1, s2, q2), count) in enumerate(sorted(classes.items())):
            self._add_pair_class(k, s1, q1, s2, q2, count, volts)

    def _add_pair_class(self, k, s1, q1, s2, q2, count, volts):
        t = self.t
        # SL / Wr-SL: idle (write-idle: SL=0, WrSL=VDD), then the step-1
        # query level on both, then the step-2 level.
        l1 = _line_level_for_query(q1, volts.vdd)
        l2 = _line_level_for_query(q2, volts.vdd)
        sl_levels = [(0.0, 0.0), (self.t_query, l1)]
        wr_levels = [(0.0, volts.vdd), (self.t_query, l1)]
        if self.steps == 2:
            # Gap state = the idle/write configuration (SL=0, Wr/SL=VDD):
            # TN actively holds SL_bar at ground while the selects swap, so
            # no data pattern can glitch the precharged-once match line.
            sl_levels.append((self.t_step1_end, 0.0))
            wr_levels.append((self.t_step1_end, volts.vdd))
            sl_levels.append((self.t_reconfig, l2))
            wr_levels.append((self.t_reconfig, l2))
        sl = f"sl.c{k}"
        wrsl = f"wrsl.c{k}"
        self.ckt.add(VoltageSource(f"VSL.c{k}", sl, "0",
                                   _schedule(sl_levels, t.t_trans_lines)))
        self.ckt.add(VoltageSource(f"VWRSL.c{k}", wrsl, "0",
                                   _schedule(wr_levels, t.t_trans_lines)))
        # Column wire shares: SL + WrSL + both BLs span the array column;
        # one row's share is one cell-height of wire each.
        self.ckt.add(Capacitor(f"CSL.c{k}", sl, "0",
                               2 * self.c_col_per_cell * count))

        if self.design.is_double_gate:
            # Tab. II: BL carries Vb while searching '0', 0 otherwise;
            # only the selected cell's BL is biased.
            bl1_levels = [(0.0, 0.0),
                          (self.t_query, volts.vb if q1 == "0" else 0.0)]
            bl2_levels = [(0.0, 0.0)]
            if self.steps == 2:
                bl1_levels.append((self.t_step1_end, 0.0))
                bl2_levels.append((self.t_reconfig,
                                   volts.vb if q2 == "0" else 0.0))
            sela, selb = "sela", "selb"
        else:
            # SG (Tab. III): merged BL/SeL column carries VSeL for the
            # selected cell in its step, 0 otherwise.
            bl1_levels = [(0.0, 0.0), (self.t_query, volts.vsel)]
            bl2_levels = [(0.0, 0.0)]
            if self.steps == 2:
                bl1_levels.append((self.t_step1_end, 0.0))
                bl2_levels.append((self.t_reconfig, volts.vsel))
            sela, selb = "0", "0"
        bl1 = f"bl1.c{k}"
        bl2 = f"bl2.c{k}"
        self.ckt.add(VoltageSource(f"VBL1.c{k}", bl1, "0",
                                   _schedule(bl1_levels, self.t.t_trans_lines)))
        self.ckt.add(VoltageSource(f"VBL2.c{k}", bl2, "0",
                                   _schedule(bl2_levels, self.t.t_trans_lines)))
        self.ckt.add(Capacitor(f"CBL.c{k}", bl1, "0",
                               self.c_col_per_cell * count))
        self.ckt.add(Capacitor(f"CBL2.c{k}", bl2, "0",
                               self.c_col_per_cell * count))
        pair = OneFeFetPairCell.build(
            self.ckt, self.design, f"pair.c{k}", ml="ml", sl=sl, wrsl=wrsl,
            bl1=bl1, bl2=bl2, sela=sela, selb=selb, vdd="vddc",
            multiplier=count)
        pair.program(s1 + s2)

    def _build_2fefet(self):
        volts = operating_voltages(self.design)
        cells = list(zip(self.stored, self.query))
        classes = Counter(cells)
        for k, ((s, q), count) in enumerate(sorted(classes.items())):
            # Tab. I: search '0' raises the A-side line, '1' the B-side.
            va = volts.vsel if q == "0" else 0.0
            vb_level = volts.vsel if q == "1" else 0.0
            la, lb = f"la.c{k}", f"lb.c{k}"
            self.ckt.add(VoltageSource(
                f"VSLA.c{k}", la, "0",
                _schedule([(0.0, 0.0), (self.t_query, va)], self.t.t_trans)))
            self.ckt.add(VoltageSource(
                f"VSLB.c{k}", lb, "0",
                _schedule([(0.0, 0.0), (self.t_query, vb_level)], self.t.t_trans)))
            self.ckt.add(Capacitor(f"CLA.c{k}", la, "0",
                                   self.c_col_per_cell * count))
            self.ckt.add(Capacitor(f"CLB.c{k}", lb, "0",
                                   self.c_col_per_cell * count))
            cell = TwoFeFetCell.build(self.ckt, self.design, f"cell.c{k}",
                                      ml="ml", line_a=la, line_b=lb,
                                      multiplier=count)
            cell.program(s)

    def _build_cmos(self):
        cells = list(zip(self.stored, self.query))
        classes = Counter(cells)
        for k, ((s, q), count) in enumerate(sorted(classes.items())):
            sl_level = VDD_CMOS if q == "1" else 0.0
            slb_level = VDD_CMOS if q == "0" else 0.0
            sl, slb = f"sl.c{k}", f"slb.c{k}"
            self.ckt.add(VoltageSource(
                f"VSL.c{k}", sl, "0",
                _schedule([(0.0, 0.0), (self.t_query, sl_level)], self.t.t_trans)))
            self.ckt.add(VoltageSource(
                f"VSLB.c{k}", slb, "0",
                _schedule([(0.0, 0.0), (self.t_query, slb_level)], self.t.t_trans)))
            self.ckt.add(Capacitor(f"CSL.c{k}", sl, "0",
                                   self.c_col_per_cell * count))
            self.ckt.add(Capacitor(f"CSLB.c{k}", slb, "0",
                                   self.c_col_per_cell * count))
            # Stored bit as ideal SRAM node voltages ('X' stores 0/0).
            vd = VDD_CMOS if s == "1" else 0.0
            vdb = VDD_CMOS if s == "0" else 0.0
            d, db = f"d.c{k}", f"db.c{k}"
            self.ckt.add(VoltageSource(f"VD.c{k}", d, "0", vd))
            self.ckt.add(VoltageSource(f"VDB.c{k}", db, "0", vdb))
            Cmos16TCompareCell.build(self.ckt, f"cell.c{k}", ml="ml", sl=sl,
                                     slbar=slb, stored_d=d, stored_dbar=db,
                                     multiplier=count)


_ENERGY_GROUPS = (
    ("VPC", "ml_precharge"),
    ("VKEEP", "ml_keeper"),
    ("VSA", "sense_amp"),
    ("VSELA", "select_lines"),
    ("VSELB", "select_lines"),
    ("VSL", "search_lines"),
    ("VWRSL", "search_lines"),
    ("VBL", "search_lines"),
    ("VSLA", "search_lines"),
    ("VSLB", "search_lines"),
    ("VDDC", "cell_rail"),
    ("VD.", "storage"),
    ("VDB.", "storage"),
)


def _group_of(source_name: str) -> str:
    for prefix, group in _ENERGY_GROUPS:
        if source_name.startswith(prefix):
            return group
    return "other"


def simulate_word_search(design: DesignKind, n_bits: int = 64,
                         scenario: str = "step1_miss", *,
                         stored: Optional[str] = None,
                         query: Optional[str] = None,
                         timings: Optional[WordTimings] = None) -> WordSearchResult:
    """Simulate one search on one TCAM word; see module docstring.

    Either pass a named ``scenario`` (content synthesized per the paper's
    average-case convention) or explicit ``stored``/``query`` words (the
    scenario label is then informational).  Early termination is applied
    automatically for the two-step designs.  ``timings`` accepts a
    :class:`WordTimings` or a mapping of its field overrides.
    """
    valid = (SCENARIOS_TWO_STEP if design.uses_two_step_search
             else SCENARIOS_SINGLE_STEP)
    if stored is None or query is None:
        if scenario not in valid:
            raise OperationError(
                f"scenario {scenario!r} invalid for {design}; use one of {valid}")
        stored, query = scenario_content(design, n_bits, scenario)
    else:
        stored = normalize_word(stored)
        query = normalize_query(query)
        n_bits = len(stored)
        if len(query) != n_bits:
            raise OperationError("stored and query lengths differ")
        if n_bits % 2 and design.uses_two_step_search:
            raise OperationError("two-step designs need even word lengths")

    if isinstance(timings, Mapping):
        # Field-override mappings (what DesignPoint also normalizes) are
        # as good as a full WordTimings plan.
        timings = WordTimings(**dict(timings))
    timings = (timings or WordTimings()).for_design(design, n_bits)
    builder = _WordBuilder(design, stored, query, scenario, timings)
    ckt = builder.build()
    result = transient(ckt, builder.t_end,
                       options=TransientOptions(dt=timings.dt))

    vdd = VDD_CMOS if design is DesignKind.CMOS_16T else VDD
    threshold = SA_THRESHOLD_FRACTION * vdd
    sa_out = builder.periph.sa_out
    t_start = builder.t_release
    t_fall = result.crossing_time(sa_out, threshold, rising=False,
                                  after=t_start)
    sa_final = result.final(sa_out)
    matched = sa_final > threshold
    expected = ternary_match(stored, query)
    latency = None if t_fall is None else t_fall - t_start

    ml_trace = result.voltage("ml")
    energy_by_group: Dict[str, float] = {}
    for name in result.source_power:
        energy_by_group.setdefault(_group_of(name), 0.0)
        energy_by_group[_group_of(name)] += result.energy(name)
    energy_total = sum(energy_by_group.values())

    return WordSearchResult(
        design=design, n_bits=n_bits, scenario=scenario, stored=stored,
        query=query, expected_match=expected, matched=matched,
        latency=latency, t_search_start=t_start, t_end=builder.t_end,
        steps_run=builder.steps, energy_total=energy_total,
        energy_per_bit=energy_total / n_bits,
        energy_by_group=energy_by_group, ml_final=float(ml_trace[-1]),
        sa_final=sa_final, ml_min=float(ml_trace.min()), result=result)
