"""`TernaryPlanes` — the one bitplane arena under engine, fabric, and store.

Every tier above the circuit models ultimately stores the same thing:
three bitplanes — ``value`` and ``care`` packed 64 cells per uint64
chunk, plus a ``valid`` row vector.  Historically each
:class:`~fecam.functional.TernaryCAM` owned a private copy and the batch
kernel re-derived its bit-compressed step-1/step-2 planes from scratch
on every call.  This module centralizes both:

* **Storage** — one ``(rows, n_chunks)`` arena.  A fabric allocates a
  single contiguous arena of ``banks x rows_per_bank`` rows and hands
  each bank a zero-copy row-slice :meth:`view`, exactly like hardware
  banks tiling one die; a standalone array owns a private arena.
* **Derived planes** — everything the search kernels precompute from
  content is memoized here and invalidated by a *write generation*
  counter, so repeated searches against a quiescent table never
  recompress:

  - :meth:`derived` — valid-row compaction, the precomputed
    ``value & care`` plane, and the even/odd bit-compressed planes
    (``ce32``/``ve32``/``co32``/``vo32``) of the paper's two-step
    search, in both row-major (gather) and chunk-major (streaming)
    layouts;
  - :meth:`step1_index` — a 256-entry candidate index over the low
    byte of the compressed step-1 plane: for each possible query byte
    ``x``, the rows whose cared even bits are consistent with ``x``.
    Batch search then *gathers* the few candidate rows per query
    instead of comparing every (query, row) pair densely.

Generation semantics: the counter advances exactly when stored content
changes — bit-identical rewrites (single-row or bulk) and erases of
already-empty rows leave it (and therefore every memoized plane)
untouched.  Writes through a view advance the view's own counter *and* every
ancestor's, so a bank write invalidates the bank's planes and the
fabric-level arena planes but never a sibling bank's.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Tuple

import numpy as np

from .analysis.markers import mutates_planes
from .errors import OperationError

__all__ = ["TernaryPlanes", "DerivedPlanes", "Step1Index", "step_masks",
           "compress_even", "build_step1_index", "CHUNK_BITS",
           "n_chunks_for"]

#: Bits per packed storage chunk.
CHUNK_BITS = 64

_ORD_0, _ORD_1, _ORD_X = ord("0"), ord("1"), ord("X")

_EVEN_BITS = np.uint64(0x5555555555555555)

#: Arenas larger than this skip the step-1 candidate index (the
#: 256 x rows build table would be excessive); dense search still works.
_INDEX_MAX_ROWS = 1 << 18
#: Candidate lists above this total size are refused outright (the
#: index would rival the planes themselves in memory).
_INDEX_MAX_ENTRIES = 1 << 23


def n_chunks_for(width: int) -> int:
    """Number of 64-bit chunks needed to hold ``width`` ternary cells."""
    return (width + CHUNK_BITS - 1) // CHUNK_BITS


@lru_cache(maxsize=None)
def step_masks(width: int) -> Tuple[np.ndarray, np.ndarray]:
    """Chunk masks of the even (step-1) and odd (step-2) cell positions.

    Vectorized and memoized per width: every bank of a fabric shares one
    immutable pair instead of re-running a per-bit Python loop at
    construction.  The returned arrays are read-only.
    """
    if width < 1:
        raise OperationError("width must be positive")
    pos = np.arange(width)
    chunk = pos // CHUNK_BITS
    bit = np.uint64(1) << (pos % CHUNK_BITS).astype(np.uint64)
    n_chunks = n_chunks_for(width)
    even = np.zeros(n_chunks, dtype=np.uint64)
    odd = np.zeros(n_chunks, dtype=np.uint64)
    is_even = pos % 2 == 0
    np.bitwise_or.at(even, chunk[is_even], bit[is_even])
    np.bitwise_or.at(odd, chunk[~is_even], bit[~is_even])
    even.setflags(write=False)
    odd.setflags(write=False)
    return even, odd


def compress_even(x: np.ndarray) -> np.ndarray:
    """Software ``pext(x, 0x5555...)``: gather the 32 even bits of each
    uint64 into a uint32 (classic masked-shift bit compaction)."""
    x = x & _EVEN_BITS
    for shift, mask in ((1, 0x3333333333333333), (2, 0x0F0F0F0F0F0F0F0F),
                        (4, 0x00FF00FF00FF00FF), (8, 0x0000FFFF0000FFFF),
                        (16, 0x00000000FFFFFFFF)):
        x = (x | (x >> np.uint64(shift))) & np.uint64(mask)
    return x.astype(np.uint32)


def _unpack_bitplane(packed: np.ndarray, width: int) -> np.ndarray:
    """Inverse of the engine's packer: (N, n_chunks) uint64 -> (N, width)
    bool, bit ``pos`` read from chunk ``pos // 64`` position ``pos % 64``."""
    u8 = np.ascontiguousarray(packed).astype("<u8", copy=False).view(np.uint8)
    bits = np.unpackbits(u8.reshape(packed.shape[0], -1), axis=1,
                         bitorder="little")
    return bits[:, :width].astype(bool, copy=False)


@dataclass
class DerivedPlanes:
    """Everything the search kernels derive from one content generation.

    All row-indexed arrays are compacted to the valid rows (invalid rows
    can neither match nor contribute to step counts).  The step-1
    identity ``(q ^ v) & c == 0  <=>  q & c == v & c`` turns matching
    into compares against the precomputed ``v & c`` plane; ``ve32`` /
    ``vo32`` are its even/odd bit-compressed halves, kept row-major for
    per-candidate gathers and (step-1 only) chunk-major for the dense
    streaming kernel.
    """

    generation: Optional[int]     # None for ad-hoc (masked/uncached) builds
    valid_rows: np.ndarray        # (M,) intp — arena rows, ascending
    rows_searched: int            # M
    ce32: np.ndarray              # (M, C) uint32 — compressed even care
    ve32: np.ndarray              # (M, C) uint32 — compressed even v & c
    co32: np.ndarray              # (M, C) uint32 — compressed odd care
    vo32: np.ndarray              # (M, C) uint32 — compressed odd v & c
    ce32_cm: np.ndarray           # (C, M) uint32, contiguous chunk-major
    ve32_cm: np.ndarray           # (C, M) uint32, contiguous chunk-major


@dataclass
class Step1Index:
    """256-entry candidate index over the low compressed step-1 byte.

    ``indices[indptr[x]:indptr[x + 1]]`` are the positions (into
    ``DerivedPlanes.valid_rows``, ascending) of the rows whose cared low
    even byte is consistent with query byte ``x`` — a strict superset of
    the rows that survive step 1 for any query whose compressed even
    word has low byte ``x``.  ``ce0_at``/``ve0_at`` are the candidates'
    chunk-0 compressed step-1 planes *pre-gathered in index order*, so
    the kernel finishes the chunk-0 comparison with near-sequential
    slice reads instead of random row gathers.  ``mean_candidates`` is
    the average list length, the statistic kernels use to bound gather
    sizes.
    """

    indptr: np.ndarray            # (257,) int64
    indices: np.ndarray           # (K,) intp
    ce0_at: np.ndarray            # (K,) uint32 — ce32[indices, 0]
    ve0_at: np.ndarray            # (K,) uint32 — ve32[indices, 0]
    mean_candidates: float


def build_step1_index(derived: DerivedPlanes) -> Optional[Step1Index]:
    """Build the candidate index for one derived generation.

    Returns ``None`` when the index cannot pay for itself: an empty
    table, an arena too large for the 256 x rows build scan, or a low
    even byte so wildcard-heavy that the candidate lists stop filtering
    (> 50 % mean density on a large table).
    """
    m = derived.rows_searched
    if m == 0 or m > _INDEX_MAX_ROWS:
        return None
    ce8 = (derived.ce32[:, 0] & np.uint32(0xFF)).astype(np.uint8)
    ve8 = (derived.ve32[:, 0] & np.uint32(0xFF)).astype(np.uint8)
    # A row is consistent with exactly 2^(8 - popcount(ce8)) of the 256
    # query bytes (cared bits pinned, the rest free), so the index size
    # is known in O(rows) — the bail-outs run before any 256 x rows
    # table is materialized.
    cared_bits = np.unpackbits(ce8[:, None], axis=1).sum(axis=1,
                                                         dtype=np.int64)
    total_entries = int((np.int64(1) << (8 - cared_bits)).sum())
    mean_candidates = total_entries / 256.0
    if total_entries > _INDEX_MAX_ENTRIES \
            or (m >= 1024 and mean_candidates > 0.5 * m):
        return None
    table = (np.arange(256, dtype=np.uint8)[:, None] & ce8[None, :]) \
        == ve8[None, :]
    x_idx, col_idx = np.nonzero(table)
    indptr = np.zeros(257, dtype=np.int64)
    np.cumsum(np.bincount(x_idx, minlength=256), out=indptr[1:])
    return Step1Index(indptr=indptr, indices=col_idx,
                      ce0_at=derived.ce32[col_idx, 0],
                      ve0_at=derived.ve32[col_idx, 0],
                      mean_candidates=mean_candidates)


class TernaryPlanes:
    """Bit-packed (value, care, valid) storage with memoized derivations.

    >>> planes = TernaryPlanes(rows=4, width=8)
    >>> planes.generation
    0
    >>> bank = planes.view(2, 4)       # zero-copy row slice
    >>> bank.value.base is planes.value
    True
    """

    def __init__(self, rows: int, width: int, *,
                 _storage: Optional[Tuple[np.ndarray, np.ndarray,
                                          np.ndarray]] = None,
                 _parent: Optional["TernaryPlanes"] = None):
        if rows < 1 or width < 1:
            raise OperationError("rows and width must be positive")
        self.rows = rows
        self.width = width
        self.n_chunks = n_chunks_for(width)
        if _storage is None:
            self.value = np.zeros((rows, self.n_chunks), dtype=np.uint64)
            self.care = np.zeros((rows, self.n_chunks), dtype=np.uint64)
            self.valid = np.zeros(rows, dtype=bool)
        else:
            self.value, self.care, self.valid = _storage
        self._parent = _parent
        self.generation = 0
        self._derived: Optional[DerivedPlanes] = None
        self._index: Optional[Tuple[int, Optional[Step1Index]]] = None

    @classmethod
    def over(cls, value: np.ndarray, care: np.ndarray,
             valid: np.ndarray, *, width: int) -> "TernaryPlanes":
        """Construct planes *over* caller-owned buffers (zero-copy).

        The arena-allocation seam for `fecam.cluster`: the caller maps
        shared memory (mmap), carves three ndarray windows out of it,
        and hands them here — every mutation through the returned
        planes writes straight into the shared mapping, and reader
        processes attach their own instances over the same bytes.

        The buffers must already have the canonical layout:
        ``value``/``care`` of shape ``(rows, n_chunks_for(width))``
        dtype uint64, ``valid`` of shape ``(rows,)`` dtype bool.
        Ownership stays with the caller (nothing here unmaps or frees).
        """
        value = np.asarray(value)
        care = np.asarray(care)
        valid = np.asarray(valid)
        if value.ndim != 2 or value.dtype != np.uint64:
            raise OperationError(
                "value plane must be a (rows, n_chunks) uint64 array, "
                f"got shape {value.shape} dtype {value.dtype}")
        if care.shape != value.shape or care.dtype != np.uint64:
            raise OperationError(
                f"care plane must match value plane {value.shape} uint64, "
                f"got shape {care.shape} dtype {care.dtype}")
        rows, chunks = value.shape
        if valid.shape != (rows,) or valid.dtype != np.bool_:
            raise OperationError(
                f"valid plane must be a ({rows},) bool array, "
                f"got shape {valid.shape} dtype {valid.dtype}")
        if chunks != n_chunks_for(width):
            raise OperationError(
                f"width {width} needs {n_chunks_for(width)} chunks per "
                f"row, buffers have {chunks}")
        return cls(rows, width, _storage=(value, care, valid))

    @property
    def even_mask(self) -> np.ndarray:
        return step_masks(self.width)[0]

    @property
    def odd_mask(self) -> np.ndarray:
        return step_masks(self.width)[1]

    # -- views -------------------------------------------------------------------

    def view(self, start: int, stop: int) -> "TernaryPlanes":
        """A zero-copy row-slice view of this arena (``[start, stop)``).

        The view shares storage with (and writes through to) the parent:
        mutating it advances both generation counters, so derived planes
        of the view *and* of the arena invalidate, while sibling views
        keep theirs.
        """
        if not 0 <= start < stop <= self.rows:
            raise OperationError(
                f"view [{start}, {stop}) outside arena of {self.rows} rows")
        return TernaryPlanes(
            stop - start, self.width,
            _storage=(self.value[start:stop], self.care[start:stop],
                      self.valid[start:stop]),
            _parent=self)

    @property
    def is_view(self) -> bool:
        return self._parent is not None

    # -- mutation ----------------------------------------------------------------

    def _bump(self) -> None:
        self.generation += 1
        if self._parent is not None:
            self._parent._bump()

    @mutates_planes
    def set_row(self, row: int, value: np.ndarray, care: np.ndarray) -> None:
        """Store one packed row; a bit-identical rewrite is a no-op (the
        content did not change, so no cache needs to invalidate)."""
        if self.valid[row] and (self.value[row] == value).all() \
                and (self.care[row] == care).all():
            return
        self.value[row] = value
        self.care[row] = care
        self.valid[row] = True
        self._bump()

    @mutates_planes
    def set_rows(self, rows: np.ndarray, value: np.ndarray,
                 care: np.ndarray) -> None:
        """Bulk store; a bulk rewrite whose every row is bit-identical
        to stored content is a no-op (one vectorized compare, far
        cheaper than the derived-plane rebuild it avoids)."""
        if len(rows) == 0:
            return
        if self.valid[rows].all() and (self.value[rows] == value).all() \
                and (self.care[rows] == care).all():
            return
        self.value[rows] = value
        self.care[rows] = care
        self.valid[rows] = True
        self._bump()

    @mutates_planes
    def load(self, value: np.ndarray, care: np.ndarray,
             valid: np.ndarray) -> None:
        """Overwrite all three planes wholesale (snapshot-restore path).

        Writes *into* the existing buffers so views of this arena (and
        the arena behind this view) stay coherent; a bit-identical load
        is a no-op like every other mutator.  Durable recovery uses
        this to reinstate a serialized arena without replaying the
        per-row write path (no energy is charged — restoring retained
        ferroelectric state is not a write pulse).
        """
        value = np.asarray(value, dtype=np.uint64).reshape(self.value.shape)
        care = np.asarray(care, dtype=np.uint64).reshape(self.care.shape)
        valid = np.asarray(valid, dtype=bool).reshape(self.valid.shape)
        if (self.valid == valid).all() and (self.value == value).all() \
                and (self.care == care).all():
            return
        self.value[...] = value
        self.care[...] = care
        self.valid[...] = valid
        self._bump()

    @mutates_planes
    def clear_row(self, row: int) -> None:
        """Invalidate a row and zero its planes (no ghost matches).

        Clearing an already-invalid row is a no-op: invalid rows hold
        zero planes by invariant, so content cannot have changed.
        """
        if not self.valid[row]:
            return
        self.valid[row] = False
        self.value[row] = 0
        self.care[row] = 0
        self._bump()

    # -- derived planes ----------------------------------------------------------

    def build_derived(self) -> DerivedPlanes:
        """Compute a fresh (uncached) derivation of the current content."""
        return _derive(self.value, self.care, self.valid, self.width,
                       generation=self.generation)

    def derived(self) -> DerivedPlanes:
        """The memoized derivation; rebuilt only after a content change."""
        cached = self._derived
        if cached is not None and cached.generation == self.generation:
            return cached
        cached = self.build_derived()
        self._derived = cached
        return cached

    def step1_index(self, *, build: bool = True) -> Optional[Step1Index]:
        """The memoized candidate index for the current generation.

        ``build=False`` only consults the cache — kernels pass it for
        small batches where dense evaluation is cheaper than an index
        build, while still reusing an index a bigger batch left behind.
        """
        cached = self._index
        if cached is not None and cached[0] == self.generation:
            return cached[1]
        if not build:
            return None
        index = build_step1_index(self.derived())
        self._index = (self.generation, index)
        return index

    # -- readback ----------------------------------------------------------------

    def _symbols(self, rows: np.ndarray) -> np.ndarray:
        value_bits = _unpack_bitplane(self.value[rows], self.width)
        care_bits = _unpack_bitplane(self.care[rows], self.width)
        return np.where(care_bits,
                        np.where(value_bits, _ORD_1, _ORD_0),
                        _ORD_X).astype(np.uint8)

    def stored_word(self, row: int) -> Optional[str]:
        """The canonical '01X' word stored at ``row`` (None if invalid)."""
        if not self.valid[row]:
            return None
        return self._symbols(np.array([row]))[0].tobytes().decode("ascii")

    def stored_words(self) -> List[Optional[str]]:
        """All rows decoded in one vectorized unpack (None where invalid)."""
        words: List[Optional[str]] = [None] * self.rows
        rows = np.nonzero(self.valid)[0]
        if rows.size == 0:
            return words
        symbols = self._symbols(rows)
        for i, row in enumerate(rows.tolist()):
            words[row] = symbols[i].tobytes().decode("ascii")
        return words

    @property
    def occupancy(self) -> int:
        return int(self.valid.sum())

    def __repr__(self) -> str:  # pragma: no cover
        kind = "view" if self.is_view else "arena"
        return (f"<TernaryPlanes {kind} {self.rows}x{self.width} "
                f"occupancy={self.occupancy} gen={self.generation}>")


def _derive(value: np.ndarray, care: np.ndarray, valid: np.ndarray,
            width: int, *, generation: Optional[int],
            mask_bits: Optional[np.ndarray] = None) -> DerivedPlanes:
    """Shared derivation core (memoized and ad-hoc/masked builds)."""
    even, odd = step_masks(width)
    valid_rows = np.nonzero(valid)[0]
    v = value[valid_rows]
    c = care[valid_rows]
    if mask_bits is not None:
        c = c & mask_bits[None, :]
    vc = v & c
    ce32 = compress_even(c & even)
    ve32 = compress_even(vc & even)
    co32 = compress_even((c & odd) >> np.uint64(1))
    vo32 = compress_even((vc & odd) >> np.uint64(1))
    return DerivedPlanes(
        generation=generation, valid_rows=valid_rows,
        rows_searched=int(valid_rows.shape[0]),
        ce32=ce32, ve32=ve32, co32=co32, vo32=vo32,
        ce32_cm=np.ascontiguousarray(ce32.T),
        ve32_cm=np.ascontiguousarray(ve32.T))


def masked_derived(planes: TernaryPlanes,
                   mask_bits: np.ndarray) -> DerivedPlanes:
    """Ad-hoc derivation under a global masking register (never cached:
    masks are per-search and would thrash a generation-keyed memo)."""
    return _derive(planes.value, planes.care, planes.valid, planes.width,
                   generation=None, mask_bits=mask_bits)
