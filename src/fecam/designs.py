"""The five TCAM designs evaluated in the paper, as a shared enum.

Every layer of the library (device calibration, cell netlists, area model,
behavioral engine, bench harness) keys off :class:`DesignKind`, so the
mapping from a paper column to code is one symbol.
"""

from __future__ import annotations

from enum import Enum


class DesignKind(Enum):
    """TCAM design identifiers, matching the columns of paper Table IV."""

    CMOS_16T = "16T-CMOS"
    SG_2FEFET = "2SG-FeFET"
    DG_2FEFET = "2DG-FeFET"
    SG_1T5 = "1.5T1SG-Fe"
    DG_1T5 = "1.5T1DG-Fe"

    @property
    def is_fefet(self) -> bool:
        return self is not DesignKind.CMOS_16T

    @property
    def is_double_gate(self) -> bool:
        return self in (DesignKind.DG_2FEFET, DesignKind.DG_1T5)

    @property
    def is_one_fefet(self) -> bool:
        """True for the paper's proposed single-FeFET (1.5T1Fe) cells."""
        return self in (DesignKind.SG_1T5, DesignKind.DG_1T5)

    @property
    def fefets_per_cell(self) -> int:
        if self is DesignKind.CMOS_16T:
            return 0
        return 1 if self.is_one_fefet else 2

    @property
    def uses_two_step_search(self) -> bool:
        """The 1.5T1Fe designs search each 2-cell pair in two steps."""
        return self.is_one_fefet

    def __str__(self) -> str:
        return self.value

    @classmethod
    def fefet_designs(cls) -> tuple:
        """The four FeFET-based designs (Fig. 7 sweep set)."""
        return (cls.SG_2FEFET, cls.DG_2FEFET, cls.SG_1T5, cls.DG_1T5)
