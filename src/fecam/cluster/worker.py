"""Worker process entry point and request protocol.

One worker = one process running :func:`worker_main` over a duplex
``multiprocessing.connection`` pipe.  The protocol is deliberately
tiny — tuples whose first element names the op — and strictly
request/response in FIFO order, which is what lets the parent pipeline
requests and pair responses without per-message ids:

``("search", queries, mask)``
    → ``("ok", generation, matches, energies, latencies)`` where
    ``matches[i]`` is a list of wire rows (see
    :data:`~fecam.cluster.replica.WireMatch`).
``("stats",)``  → ``("ok", telemetry_dict)``
``("ping",)``   → ``("ok", pid)``
``("stop",)``   → ``("ok",)`` and the worker exits.

A failed request answers ``("error", exc_type_name, message)`` and the
worker keeps serving — only a broken pipe (parent gone) or ``stop``
ends the loop.  The module is import-clean for the ``spawn`` start
method: :class:`WorkerSpec` carries everything a fresh interpreter
needs (arena path, store config, timeouts) and is plain-picklable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any

from ..store.config import StoreConfig
from .replica import Replica
from .shm import SharedArena

__all__ = ["WorkerSpec", "worker_main"]


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs to attach, shippable through spawn."""

    worker_id: int
    directory: str          # SharedArena path
    config: StoreConfig
    read_timeout: float = 5.0
    attach_timeout: float = 5.0


def worker_main(spec: WorkerSpec, conn: Any) -> None:
    """Serve requests until ``stop``, EOF, or a broken pipe.

    Runs in the child process.  Request-level exceptions become
    ``("error", ...)`` replies — a worker must survive a bad query or
    a seqlock timeout and keep serving the next request.
    """
    arena = None
    try:
        arena = SharedArena.attach(spec.directory,
                                   timeout=spec.attach_timeout)
        replica = Replica(arena, spec.config,
                          read_timeout=spec.read_timeout)
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            op = msg[0]
            try:
                if op == "search":
                    _, queries, mask = msg
                    generation, matches, energies, latencies = \
                        replica.serve_search(queries, mask)
                    reply = ("ok", generation, matches, energies,
                             latencies)
                elif op == "stats":
                    reply = ("ok", replica.telemetry())
                elif op == "ping":
                    reply = ("ok", os.getpid())
                elif op == "stop":
                    conn.send(("ok",))
                    break
                else:
                    reply = ("error", "OperationError",
                             f"unknown worker op {op!r}")
            except Exception as exc:
                reply = ("error", type(exc).__name__, str(exc))
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break
    finally:
        if arena is not None:
            arena.close()
        try:
            conn.close()
        except OSError:
            pass
