"""Reader-side fabric replica over an attached shared arena.

A worker process does not rebuild content — it *attaches*: the replica
wraps a real :class:`~fecam.fabric.TcamFabric` whose arena is
constructed over the shared mapping, so the exact fused batch kernel,
per-bank energy constants, and priority-encoder merge of the
single-process path run against the writer's bytes.  Bit-identical
results are therefore a structural property, not a reimplementation to
keep in sync — the cross-process conformance battery proves it.

What the writer cannot share through the planes — the placement table
mapping arena rows back to entries — rides in the arena's metadata
blob and is re-read (memoized by generation) whenever the published
generation moves.  Every request runs under the arena seqlock:
one consistent window yields one ``(generation, results)`` pair, torn
windows bust the replica's derived-plane memos and retry.
"""

from __future__ import annotations

import os
import pickle
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from ..errors import OperationError
from ..fabric.fabric import FabricEntry, TcamFabric
from ..fabric.shard import HashSharding
from ..store.config import StoreConfig
from .shm import SharedArena

__all__ = ["Replica"]

#: Wire row for one match: mirrors Match/FabricEntry field content.
WireMatch = Tuple[Hashable, str, float, int, int, Any, int]


class Replica:
    """One process's read-only view of the cluster fabric."""

    def __init__(self, arena: SharedArena, config: StoreConfig, *,
                 read_timeout: float = 5.0):
        if config.backend_kind != "fabric":
            raise OperationError(
                f"cluster replicas need a fabric config, got "
                f"{config.backend_kind!r}")
        sharding = (HashSharding(config.banks)
                    if config.placement == "hash" else None)
        self.arena = arena
        self.read_timeout = read_timeout
        self.fabric = TcamFabric(
            banks=config.banks, rows_per_bank=config.rows_per_bank,
            width=config.width, design=config.design, sharding=sharding,
            energy_model=config.resolve_energy_model(), cache_size=0,
            arena=arena.planes())
        self._meta_generation = -1

    # -- refresh -----------------------------------------------------------------

    def _refresh(self) -> int:
        """Sync entry metadata + memo keys to the published generation."""
        generation = self.arena.generation
        if generation != self._meta_generation:
            blob = self.arena.read_meta()
            placements = pickle.loads(blob) if blob else []
            fabric = self.fabric
            rows_per_bank = fabric.rows_per_bank
            row_entry: List[List[Optional[FabricEntry]]] = [
                [None] * rows_per_bank for _ in range(fabric.num_banks)]
            entries: Dict[Hashable, FabricEntry] = {}
            for key, word, priority, payload, seq, bank, row in placements:
                entry = FabricEntry(key=key, word=word, priority=priority,
                                    bank=bank, row=row, payload=payload,
                                    seq=seq)
                entries[key] = entry
                row_entry[bank][row] = entry
            fabric._entries = entries
            fabric._row_entry = row_entry
            # Planes content changed under us: move the local planes
            # generation to the published one so derived-plane and
            # step-1-index memos re-key (they compare generations).
            fabric.arena.generation = generation
            self._meta_generation = generation
        return generation

    def _bust(self) -> None:
        """Discard anything cached during a torn window."""
        planes = self.fabric.arena
        planes._derived = None
        planes._index = None
        self._meta_generation = -1

    # -- serving -----------------------------------------------------------------

    def serve_search(self, queries: Sequence[str],
                     mask: Optional[str] = None
                     ) -> Tuple[int, List[List[WireMatch]],
                                List[float], List[float]]:
        """One consistent search: ``(generation, matches, energies,
        latencies)`` with all three lists aligned to ``queries``.

        The whole batch runs inside a single seqlock window, so every
        query of the response was answered at exactly the tagged
        generation — the invariant the cross-process snapshot-isolation
        stress test replays against.
        """
        def attempt():
            generation = self._refresh()
            raw = self.fabric.search_batch(list(queries), mask,
                                           use_cache=False)
            return generation, raw
        generation, raw = self.arena.read_consistent(
            attempt, timeout=self.read_timeout, on_retry=self._bust)
        matches = [
            [(e.key, e.word, e.priority, e.bank, e.row, e.payload, e.seq)
             for e in r.matches] for r in raw]
        return (generation, matches,
                [r.energy for r in raw], [r.latency for r in raw])

    def telemetry(self) -> Dict[str, Any]:
        fabric = self.fabric
        return {
            "pid": os.getpid(),
            "generation": self.arena.generation,
            "searches": fabric._searches,
            "energy": sum(b.cam.energy_spent for b in fabric.banks),
            "rows_examined": sum(fabric._rows_examined),
            "step1_eliminated": sum(fabric._step1_eliminated),
            "worst_latency": fabric._worst_latency,
            "occupancy": len(fabric._entries),
        }
