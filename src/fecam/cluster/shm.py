"""Shared-memory planes arena with seqlock publication.

One mmap-backed file holds the whole fabric arena — the same three
bitplanes :class:`~fecam.planes.TernaryPlanes` always owns, laid out
after a fixed header — so any number of reader processes attach
zero-copy ndarray views over the very bytes the single writer mutates.

Layout (``arena.bin``)::

    [ 4 KiB header | value (rows x chunks u64) | care | valid (bool) ]

The header's ``seq`` word is a classic seqlock: the writer bumps it
odd before touching planes or metadata, even after everything —
including the published ``generation`` — is in place.  Readers snapshot
``seq`` (spinning while odd), run their search, and re-check: a changed
word means the window was torn and the attempt is discarded and
retried.  A window that never closes (writer died mid-mutation) turns
into a typed :class:`~fecam.errors.WorkerUnavailable` timeout instead
of a torn result.

Entry placements (key/word/priority/payload/seq/bank/row) ride in a
sibling ``meta.bin`` read with ``pread``/``pwrite`` — the blob can grow
without any remapping, and because ``meta_len`` only moves inside a
publish window, the seqlock covers it exactly like the planes.

Files live in a private directory under tmpfs (``/dev/shm``) when
available; :meth:`SharedArena.unlink` removes the directory wholesale,
and it is the owner's job (``fecam.cluster.ClusterBackend``) to call it
— readers merely :meth:`close` their mappings.

Coherence note: mmap ``MAP_SHARED`` pages are coherent across processes
on one host, and the GIL orders the writer's stores well enough for the
x86-64/aarch64 hosts this targets; the seqlock re-check is what turns
any residual reordering into a retry rather than a wrong answer.
"""

from __future__ import annotations

import mmap
import os
import shutil
import tempfile
import time
from typing import Callable, Optional, TypeVar

import numpy as np

from ..errors import OperationError, WorkerUnavailable
from ..planes import TernaryPlanes, n_chunks_for

__all__ = ["SharedArena", "default_shm_dir"]

_T = TypeVar("_T")

_MAGIC = int.from_bytes(b"FECAMSH1", "little")
_HEADER_BYTES = 4096
# uint64 slot indices into the header.
_H_MAGIC, _H_ROWS, _H_CHUNKS, _H_WIDTH, _H_SEQ, _H_GEN, _H_META = range(7)

_ARENA_FILE = "arena.bin"
_META_FILE = "meta.bin"

#: Reader backoff while a publish window is open / after a torn attempt.
_RETRY_SLEEP_S = 0.0002


def default_shm_dir() -> str:
    """Prefer tmpfs so arena pages never touch a disk."""
    shm = "/dev/shm"
    if os.path.isdir(shm) and os.access(shm, os.W_OK):
        return shm
    return tempfile.gettempdir()


class SharedArena:
    """One cross-process planes arena plus its seqlock words.

    Construct with :meth:`create` (the writer) or :meth:`attach`
    (readers); both map the same file and expose identical views, so
    the split is purely a lifecycle convention — exactly one process
    publishes, and only the creator unlinks.
    """

    def __init__(self) -> None:
        self.directory = ""
        self.rows = 0
        self.width = 0
        self.n_chunks = 0
        self._mm: Optional[mmap.mmap] = None
        self._arena_fd = -1
        self._meta_fd = -1
        self._header: Optional[np.ndarray] = None
        self._value: Optional[np.ndarray] = None
        self._care: Optional[np.ndarray] = None
        self._valid: Optional[np.ndarray] = None

    # -- construction ------------------------------------------------------------

    @classmethod
    def create(cls, *, rows: int, width: int,
               base_dir: Optional[str] = None) -> "SharedArena":
        """Allocate a fresh arena in a private tempdir (writer side)."""
        if rows < 1 or width < 1:
            raise OperationError("rows and width must be positive")
        self = cls()
        self.directory = tempfile.mkdtemp(
            prefix="fecam-cluster-", dir=base_dir or default_shm_dir())
        chunks = n_chunks_for(width)
        plane_bytes = rows * chunks * 8
        total = _HEADER_BYTES + 2 * plane_bytes + rows
        self._arena_fd = os.open(os.path.join(self.directory, _ARENA_FILE),
                                 os.O_RDWR | os.O_CREAT, 0o600)
        os.ftruncate(self._arena_fd, total)
        self._meta_fd = os.open(os.path.join(self.directory, _META_FILE),
                                os.O_RDWR | os.O_CREAT, 0o600)
        self._map(rows, chunks, width)
        header = self._header
        assert header is not None
        header[_H_ROWS] = rows
        header[_H_CHUNKS] = chunks
        header[_H_WIDTH] = width
        header[_H_SEQ] = 0
        header[_H_GEN] = 0
        header[_H_META] = 0
        # Magic last: an attacher that sees it knows the geometry words
        # before it are final.
        header[_H_MAGIC] = _MAGIC
        return self

    @classmethod
    def attach(cls, directory: str, *,
               timeout: float = 5.0) -> "SharedArena":
        """Map an existing arena by path (reader side).

        Waits briefly for the creator to finish initializing — worker
        processes race the writer's startup by design.
        """
        self = cls()
        self.directory = directory
        path = os.path.join(directory, _ARENA_FILE)
        deadline = time.monotonic() + timeout
        fd = -1
        while True:
            try:
                fd = os.open(path, os.O_RDWR)
                head = os.pread(fd, _HEADER_BYTES, 0)
                if len(head) == _HEADER_BYTES and \
                        int.from_bytes(head[:8], "little") == _MAGIC:
                    break
                os.close(fd)
                fd = -1
            except FileNotFoundError:
                pass
            if time.monotonic() > deadline:
                raise WorkerUnavailable(
                    f"no shared arena appeared at {directory!r} "
                    f"within {timeout:.1f}s")
            time.sleep(0.005)
        self._arena_fd = fd
        head_words = np.frombuffer(head, dtype=np.uint64, count=7)
        rows = int(head_words[_H_ROWS])
        chunks = int(head_words[_H_CHUNKS])
        width = int(head_words[_H_WIDTH])
        self._meta_fd = os.open(os.path.join(directory, _META_FILE),
                                os.O_RDWR)
        self._map(rows, chunks, width)
        return self

    def _map(self, rows: int, chunks: int, width: int) -> None:
        plane_bytes = rows * chunks * 8
        total = _HEADER_BYTES + 2 * plane_bytes + rows
        mm = mmap.mmap(self._arena_fd, total)  # MAP_SHARED by default
        self._mm = mm
        self._header = np.frombuffer(mm, dtype=np.uint64,
                                     count=_HEADER_BYTES // 8)
        self._value = np.frombuffer(
            mm, dtype=np.uint64, count=rows * chunks,
            offset=_HEADER_BYTES).reshape(rows, chunks)
        self._care = np.frombuffer(
            mm, dtype=np.uint64, count=rows * chunks,
            offset=_HEADER_BYTES + plane_bytes).reshape(rows, chunks)
        self._valid = np.frombuffer(
            mm, dtype=np.bool_, count=rows,
            offset=_HEADER_BYTES + 2 * plane_bytes)
        self.rows = rows
        self.n_chunks = chunks
        self.width = width

    def planes(self) -> TernaryPlanes:
        """Planes constructed *over* the shared mapping (zero-copy)."""
        if self._value is None:
            raise OperationError("arena is closed")
        return TernaryPlanes.over(self._value, self._care, self._valid,
                                  width=self.width)

    # -- seqlock words -----------------------------------------------------------

    @property
    def seq(self) -> int:
        assert self._header is not None
        return int(self._header[_H_SEQ])

    @property
    def generation(self) -> int:
        assert self._header is not None
        return int(self._header[_H_GEN])

    @property
    def meta_len(self) -> int:
        assert self._header is not None
        return int(self._header[_H_META])

    # -- writer protocol ---------------------------------------------------------

    def begin_publish(self) -> None:
        """Open the window: bump ``seq`` odd before any mutation."""
        assert self._header is not None
        seq = int(self._header[_H_SEQ])
        if seq & 1:
            raise OperationError("publish window already open")
        self._header[_H_SEQ] = seq + 1

    def end_publish(self, *, generation: Optional[int] = None) -> None:
        """Close the window: publish ``generation`` (if the mutation
        landed) and bump ``seq`` back to even.  Closing *without* a
        generation is the validation-failure path — nothing changed, so
        readers must see the old generation."""
        assert self._header is not None
        seq = int(self._header[_H_SEQ])
        if not seq & 1:
            raise OperationError("no publish window open")
        if generation is not None:
            self._header[_H_GEN] = generation
        self._header[_H_SEQ] = seq + 1

    def write_meta(self, blob: bytes) -> None:
        """Store the placement blob (writer, inside the window only —
        ``meta_len`` moving outside a window would defeat the seqlock)."""
        assert self._header is not None
        if not int(self._header[_H_SEQ]) & 1:
            raise OperationError("write_meta outside a publish window")
        os.pwrite(self._meta_fd, blob, 0)
        self._header[_H_META] = len(blob)

    def read_meta(self) -> bytes:
        n = self.meta_len
        if n == 0:
            return b""
        return os.pread(self._meta_fd, n, 0)

    # -- reader protocol ---------------------------------------------------------

    def read_consistent(self, fn: Callable[[], _T], *,
                        timeout: float = 5.0,
                        on_retry: Optional[Callable[[], None]] = None
                        ) -> _T:
        """Run ``fn`` inside a consistent seqlock window.

        Spins while a publish window is open, re-runs ``fn`` whenever
        the window moved underneath it (calling ``on_retry`` first so
        the caller can bust caches keyed on torn content), and raises
        :class:`~fecam.errors.WorkerUnavailable` if no consistent
        window arrives before ``timeout`` — the writer died mid-publish
        and failing is the only answer that is not a torn view.

        An exception from ``fn`` during a torn window is swallowed and
        retried (half-applied content may be arbitrarily malformed);
        the same exception with an unmoved ``seq`` is real and
        propagates.
        """
        assert self._header is not None
        header = self._header
        deadline = time.monotonic() + timeout
        while True:
            seq_before = int(header[_H_SEQ])
            if not seq_before & 1:
                try:
                    out = fn()
                except Exception:
                    if int(header[_H_SEQ]) == seq_before:
                        raise
                else:
                    if int(header[_H_SEQ]) == seq_before:
                        return out
                if on_retry is not None:
                    on_retry()
            if time.monotonic() > deadline:
                raise WorkerUnavailable(
                    f"seqlock read timed out after {timeout:.1f}s "
                    f"(seq={int(header[_H_SEQ])}): a publish window "
                    "never closed — the cluster writer likely died "
                    "mid-mutation")
            time.sleep(_RETRY_SLEEP_S)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping and descriptors (idempotent).

        Live planes built by :meth:`planes` keep the pages referenced
        until they die; the mmap handle itself then closes lazily.
        """
        self._header = None
        self._value = self._care = self._valid = None
        if self._mm is not None:
            try:
                self._mm.close()
            except BufferError:
                # ndarrays still exported over the mapping — the kernel
                # frees the pages when the last reference dies.
                pass
            self._mm = None
        for attr in ("_arena_fd", "_meta_fd"):
            fd = getattr(self, attr)
            if fd >= 0:
                try:
                    os.close(fd)
                except OSError:
                    pass
                setattr(self, attr, -1)

    def unlink(self) -> None:
        """Remove the backing files (owner only; idempotent).

        After this no segment remains under ``/dev/shm`` even if
        readers still hold mappings — their pages survive privately
        until they close."""
        self.close()
        if self.directory:
            shutil.rmtree(self.directory, ignore_errors=True)

    def __repr__(self) -> str:
        state = "closed" if self._mm is None else (
            f"seq={self.seq} gen={self.generation}")
        return (f"<SharedArena {self.rows}x{self.width} "
                f"at {self.directory!r} {state}>")
