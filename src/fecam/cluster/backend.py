"""`ClusterBackend` — the store backend that fans reads out to worker
processes over one shared-memory arena.

Topology: this process is the **single writer**.  It owns a
:class:`~fecam.cluster.shm.SharedArena`, runs a normal
:class:`~fecam.store.FabricBackend` whose planes live *in* that arena
(so every mutation lands directly in shared memory), and wraps each
mutating op in a seqlock publish window::

    seq -> odd                      # readers start spinning/retrying
    mutate planes in place          # the inner fabric writes
    write placement metadata blob
    seq -> even, generation += 1    # the new state is published

N **reader** worker processes each attach a
:class:`~fecam.cluster.replica.Replica` and serve ``search_batch``
zero-copy; a :class:`~fecam.cluster.ring.HashRing` routes each query to
its owning worker.  Failure policy: a dead worker is respawned (or,
with ``respawn=False``, its ring arc rehashes to survivors) and its
queries retried; a dead writer (fault-injected via the
``cluster.publish.*`` crash sites) fails all further writes while
workers keep serving the last published generation.

Lifecycle hygiene: :meth:`close` stops the workers and unlinks the
arena files, and a ``weakref.finalize`` guard does the same if the
backend is dropped without closing — no orphaned ``/dev/shm`` segments
either way.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
import weakref
from collections import deque
from concurrent.futures import Future
from typing import Any, Deque, Dict, Hashable, List, Optional, Sequence, Tuple

from .. import errors as _errors
from ..durable.crash import CrashPoint
from ..durable.crash import fire as _fire_crash
from ..errors import (ClusterError, ClusterWriterFailed, OperationError,
                      SimulatedCrash, WorkerUnavailable)
from ..store.backend import SearchBackend
from ..store.config import StoreConfig
from ..store.fabric import FabricBackend
from ..store.result import Match, Query, QueryResult
from .replica import WireMatch
from .ring import HashRing
from .shm import SharedArena
from .worker import WorkerSpec, worker_main

__all__ = ["ClusterBackend", "resolve_start_method"]

#: Per-query scatter row: (generation, wire match rows, energy, latency).
Scattered = Tuple[int, List[WireMatch], float, float]

_SEND_RETRIES = 3


def resolve_start_method(requested: Optional[str] = None) -> str:
    """Worker start method: explicit arg > ``FECAM_CLUSTER_START`` env >
    ``fork`` when the platform offers it (cheapest) > ``spawn``."""
    method = requested or os.environ.get("FECAM_CLUSTER_START") or ""
    available = multiprocessing.get_all_start_methods()
    if method:
        if method not in available:
            raise OperationError(
                f"start method {method!r} unavailable; one of {available}")
        return method
    return "fork" if "fork" in available else "spawn"


def _map_worker_error(type_name: str, message: str) -> Exception:
    """Rehydrate a worker-side exception by type name.

    Unknown names degrade to :class:`ClusterError` — the worker stays a
    black box, but typed errors (validation, seqlock timeout) cross the
    process boundary intact.
    """
    cls = getattr(_errors, type_name, None)
    if isinstance(cls, type) and issubclass(cls, Exception):
        return cls(message)
    return ClusterError(f"worker error {type_name}: {message}")


class _WorkerHandle:
    """Parent-side endpoint for one worker process.

    Requests pipeline: ``request`` appends a future and sends under one
    lock (so FIFO pairing holds across threads), a dedicated reader
    thread drains responses in order.  Connection loss fails every
    in-flight future with :class:`WorkerUnavailable`.
    """

    def __init__(self, spec: WorkerSpec, ctx) -> None:
        self.spec = spec
        self.worker_id = spec.worker_id
        self.restarts = 0
        self._ctx = ctx
        self._lock = threading.Lock()
        self._respawn_lock = threading.Lock()
        self._pending: Deque[Future] = deque()
        self._alive = False
        self.process = None
        self.conn = None
        self._start()

    def _start(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        self.process = self._ctx.Process(
            target=worker_main, args=(self.spec, child_conn), daemon=True,
            name=f"fecam-cluster-w{self.worker_id}")
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self._alive = True
        reader = threading.Thread(
            target=self._drain, args=(parent_conn,), daemon=True,
            name=f"fecam-cluster-w{self.worker_id}-rx")
        reader.start()

    def _drain(self, conn) -> None:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError, ValueError, TypeError):
                # EOFError/OSError: worker died or pipe closed.
                # ValueError/TypeError: close() nulled the connection's
                # handle under a blocked recv — same thing, racier.
                break
            with self._lock:
                fut = self._pending.popleft() if self._pending else None
            if fut is not None:
                fut.set_result(msg)
        with self._lock:
            if conn is self.conn:
                self._alive = False
            orphans = list(self._pending)
            self._pending.clear()
        for fut in orphans:
            fut.set_exception(WorkerUnavailable(
                f"worker {self.worker_id} connection lost"))

    @property
    def alive(self) -> bool:
        return self._alive

    def request(self, msg: Tuple[Any, ...]) -> "Future[Tuple[Any, ...]]":
        fut: Future = Future()
        with self._lock:
            if not self._alive:
                raise WorkerUnavailable(
                    f"worker {self.worker_id} is not running")
            self._pending.append(fut)
            try:
                self.conn.send(msg)
            except (BrokenPipeError, OSError):
                self._pending.pop()
                self._alive = False
                raise WorkerUnavailable(
                    f"worker {self.worker_id} pipe is broken") from None
        return fut

    def respawn(self) -> None:
        """Replace a dead worker process (no-op if it is healthy)."""
        with self._respawn_lock:
            if self._alive and self.process is not None \
                    and self.process.is_alive():
                return
            self.terminate()
            self.restarts += 1
            self._start()

    def stop(self, timeout: float = 2.0) -> None:
        """Graceful shutdown: ask, then insist."""
        try:
            fut = self.request(("stop",))
            fut.result(timeout=timeout)
        except Exception:
            pass
        self.terminate(timeout)

    def terminate(self, timeout: float = 2.0) -> None:
        with self._lock:
            self._alive = False
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass
        proc = self.process
        if proc is not None and proc.is_alive():
            proc.terminate()
            proc.join(timeout)
            if proc.is_alive():  # pragma: no cover - stuck child
                proc.kill()
                proc.join(timeout)


def _finalize_cluster(arena: SharedArena,
                      handles: Dict[int, _WorkerHandle]) -> None:
    """GC/atexit guard: never leak processes or /dev/shm files."""
    for handle in handles.values():
        try:
            handle.terminate(timeout=0.5)
        except Exception:  # pragma: no cover - best effort teardown
            pass
    arena.unlink()


class ClusterBackend(SearchBackend):
    """Store backend serving reads from worker processes.

    Satisfies the exact :class:`SearchBackend` contract — which is what
    lets the cross-backend conformance battery run the *same* tests
    over ``array`` / ``fabric`` / ``cluster`` and demand bit-identical
    matches, energy, and counters.
    """

    name = "cluster"

    def __init__(self, config: StoreConfig, *, workers: int = 2,
                 start_method: Optional[str] = None,
                 shm_dir: Optional[str] = None,
                 read_timeout: float = 5.0,
                 respawn: bool = True):
        super().__init__(config)
        if config.backend_kind != "fabric":
            raise OperationError(
                "ClusterBackend shards a fabric config; got "
                f"{config.backend_kind!r}")
        if workers < 1:
            raise OperationError("a cluster needs at least one worker")
        self.start_method = resolve_start_method(start_method)
        self.read_timeout = read_timeout
        self._respawn_workers = respawn
        self._write_lock = threading.Lock()
        self._writer_failed = False
        self._generation = 0
        #: Test seams: an armed CrashPoint models the writer dying at a
        #: ``cluster.publish.*`` site; ``publish_hook`` (site -> None)
        #: lets the torn-read tests stall mid-window.
        self.crash_point: Optional[CrashPoint] = None
        self.publish_hook = None
        self.arena = SharedArena.create(
            rows=config.banks * config.rows_per_bank, width=config.width,
            base_dir=shm_dir)
        self.inner = FabricBackend(config, arena=self.arena.planes())
        # The sanitizer's duck-typed planes discovery looks for
        # ``backend.fabric`` — expose the writer-side fabric under the
        # same name so FECAM_SANITIZE=1 instruments shared planes too.
        self.fabric = self.inner.fabric
        ctx = multiprocessing.get_context(self.start_method)
        self.ring = HashRing(range(workers))
        self._handles: Dict[int, _WorkerHandle] = {}
        for worker_id in range(workers):
            spec = WorkerSpec(worker_id=worker_id,
                              directory=self.arena.directory,
                              config=config, read_timeout=read_timeout)
            self._handles[worker_id] = _WorkerHandle(spec, ctx)
        self._finalizer = weakref.finalize(
            self, _finalize_cluster, self.arena, self._handles)
        self._closed = False

    # -- writer: seqlock publication ---------------------------------------------

    def _fire(self, site: str) -> None:
        hook = self.publish_hook
        if hook is not None:
            hook(site)
        _fire_crash(self.crash_point, site)

    def _placement_blob(self) -> bytes:
        rows = [(m.key, m.word, m.priority, m.payload, m.seq, m.bank,
                 m.row) for m in self.inner._matches.values()]
        return pickle.dumps(rows, protocol=pickle.HIGHEST_PROTOCOL)

    def _mutate(self, fn):
        """Run one mutating op inside a publish window.

        Three outcomes: success publishes ``generation + 1``; a
        validation error (duplicate key, capacity, bad word — the inner
        backend applies nothing) closes the window with the generation
        untouched, so readers never notice; a simulated writer death
        marks the writer failed — and if it struck *inside* the window
        the seq word stays odd, which readers surface as a typed
        timeout rather than a torn view.
        """
        if self._writer_failed:
            raise ClusterWriterFailed(
                "cluster writer has failed; reads continue from the "
                "last published generation")
        with self._write_lock:
            try:
                self._fire("cluster.publish.before")
            except SimulatedCrash:
                self._writer_failed = True
                raise
            self.arena.begin_publish()
            try:
                out = fn()
                self._fire("cluster.publish.mid")
                self.arena.write_meta(self._placement_blob())
                self._generation += 1
                self.arena.end_publish(generation=self._generation)
            except SimulatedCrash:
                self._writer_failed = True
                raise
            except BaseException:
                self.arena.end_publish()
                raise
            try:
                self._fire("cluster.publish.after")
            except SimulatedCrash:
                self._writer_failed = True
                raise
            return out

    # -- content lifecycle (writer ops) ------------------------------------------

    def insert(self, word: str, key: Hashable, priority: float,
               payload: Any, seq: int) -> Match:
        return self._mutate(
            lambda: self.inner.insert(word, key, priority, payload, seq))

    def insert_many(self, words: Sequence[str], keys: Sequence[Hashable],
                    priorities: Sequence[float], payloads: Sequence[Any],
                    seqs: Sequence[int]) -> List[Match]:
        return self._mutate(
            lambda: self.inner.insert_many(words, keys, priorities,
                                           payloads, seqs))

    def delete(self, key: Hashable) -> Match:
        return self._mutate(lambda: self.inner.delete(key))

    def update(self, key: Hashable, word: str,
               payload: Any = None) -> Match:
        return self._mutate(
            lambda: self.inner.update(key, word, payload=payload))

    def adopt_snapshot(self, planes_state, placements) -> None:
        """Load a recovered arena + placements wholesale (one window).

        The durable-recovery seam: ``recover()`` rebuilds a store, its
        backend's arena serializes to ``planes_state``/``placements``,
        and this publishes that exact state into the shared arena so
        every worker observes post-recovery content.
        """
        def load():
            value, care, valid = planes_state
            self.inner.fabric.arena.load(value, care, valid)
            for bank in self.inner.fabric.banks:
                bank.sync_free_rows()
            self.inner._adopt_placements(placements, write=False)
        self._mutate(load)

    @classmethod
    def from_store(cls, store, **kwargs) -> "ClusterBackend":
        """Build a cluster seeded with an existing fabric store's state
        (e.g. the store :func:`fecam.durable.recover` just rebuilt)."""
        src = store.backend
        if not isinstance(src, FabricBackend):
            raise OperationError(
                "from_store needs a fabric-backed store to adopt")
        arena = src.fabric.arena
        backend = cls(store.config, **kwargs)
        placements = [(m.key, m.word, m.priority, m.payload, m.seq,
                       m.bank, m.row) for m in src._matches.values()]
        backend.adopt_snapshot(
            (arena.value.copy(), arena.care.copy(), arena.valid.copy()),
            placements)
        return backend

    # -- reads (writer-side bookkeeping) -----------------------------------------

    def get(self, key: Hashable) -> Match:
        return self.inner.get(key)

    def entries(self) -> List[Match]:
        return self.inner.entries()

    def __contains__(self, key: Hashable) -> bool:
        return key in self.inner

    @property
    def capacity(self) -> int:
        return self.inner.capacity

    @property
    def occupancy(self) -> int:
        return self.inner.occupancy

    @property
    def energy_total(self) -> float:
        """Writer-side write energy plus search energy the workers
        actually spent (collected over the stats RPC)."""
        total = self.inner.energy_total
        for telemetry in self.worker_telemetry():
            total += telemetry.get("energy", 0.0)
        return total

    @property
    def generation_published(self) -> int:
        return self.arena.generation

    @property
    def writer_failed(self) -> bool:
        return self._writer_failed

    @property
    def workers(self) -> int:
        return len(self._handles)

    # -- search fan-out ----------------------------------------------------------

    def _handle_failure(self, worker_id: int) -> None:
        """Dead worker: respawn in place, or rehash its arc away."""
        if self._closed:
            raise WorkerUnavailable("cluster backend is closed")
        if self._respawn_workers:
            self._handles[worker_id].respawn()
        else:
            self.ring.remove(worker_id)

    def scatter_search(self, queries: Sequence[str],
                       mask: Optional[str] = None) -> List[Scattered]:
        """Route every query to its worker; returns per-query
        ``(generation, wire_matches, energy, latency)`` rows.

        One round sends each worker its arc of the batch and pairs the
        responses; queries stranded by a death are re-partitioned (over
        the respawned worker, or the shrunken ring) and retried.
        """
        queries = list(queries)
        out: List[Optional[Scattered]] = [None] * len(queries)
        remaining = list(range(len(queries)))
        for attempt in range(_SEND_RETRIES + 1):
            if not remaining:
                break
            if not self.ring.nodes:
                raise WorkerUnavailable("no cluster workers remain")
            groups = self.ring.partition([queries[i] for i in remaining])
            in_flight = []
            stranded: List[int] = []
            for worker_id, positions in groups:
                indices = [remaining[p] for p in positions]
                try:
                    fut = self._handles[worker_id].request(
                        ("search", [queries[i] for i in indices], mask))
                except WorkerUnavailable:
                    self._handle_failure(worker_id)
                    stranded.extend(indices)
                    continue
                in_flight.append((worker_id, indices, fut))
            for worker_id, indices, fut in in_flight:
                try:
                    msg = fut.result(timeout=self.read_timeout + 10.0)
                except WorkerUnavailable:
                    self._handle_failure(worker_id)
                    stranded.extend(indices)
                    continue
                if msg[0] == "error":
                    raise _map_worker_error(msg[1], msg[2])
                _, generation, matches, energies, latencies = msg
                for j, i in enumerate(indices):
                    out[i] = (generation, matches[j], energies[j],
                              latencies[j])
            remaining = stranded
        if remaining:
            raise WorkerUnavailable(
                f"{len(remaining)} queries undeliverable after "
                f"{_SEND_RETRIES + 1} scatter rounds")
        return out  # type: ignore[return-value]

    def search_batch(self, queries: Sequence[str],
                     mask: Optional[str] = None) -> List[QueryResult]:
        queries = list(queries)
        if not queries:
            return []
        scattered = self.scatter_search(queries, mask)
        results = []
        for bits, (_, rows, energy, latency) in zip(queries, scattered):
            matches = [Match(key=k, word=w, priority=p, bank=b, row=r,
                             payload=pl, seq=s)
                       for k, w, p, b, r, pl, s in rows]
            results.append(QueryResult(query=Query(bits=bits, mask=mask),
                                       matches=matches, energy=energy,
                                       latency=latency))
        return results

    # -- worker telemetry --------------------------------------------------------

    def worker_telemetry(self) -> List[Dict[str, Any]]:
        """Best-effort stats RPC to every worker (dead ones skipped)."""
        futures = []
        for worker_id, handle in self._handles.items():
            try:
                futures.append((worker_id, handle,
                                handle.request(("stats",))))
            except WorkerUnavailable:
                continue
        out = []
        for worker_id, handle, fut in futures:
            try:
                msg = fut.result(timeout=self.read_timeout + 10.0)
            except Exception:
                continue
            if msg[0] != "ok":
                continue
            telemetry = dict(msg[1])
            telemetry["worker_id"] = worker_id
            telemetry["restarts"] = handle.restarts
            telemetry["alive"] = handle.alive
            out.append(telemetry)
        return out

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Stop workers and unlink the shared segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._finalizer.detach()
        for handle in self._handles.values():
            handle.stop()
        self.arena.unlink()

    def __repr__(self) -> str:
        return (f"<ClusterBackend {len(self._handles)} workers over "
                f"{self.config.banks}x{self.config.rows_per_bank}x"
                f"{self.width}, gen {self.arena.generation}, "
                f"{self.start_method}>")
