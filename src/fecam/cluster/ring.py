"""Consistent-hash query routing for the cluster front end.

Classic ring with virtual nodes: each worker owns ``replicas`` points
placed by a keyed blake2b hash, and a query goes to the first point at
or after its own hash.  Removing a worker therefore moves only that
worker's arc to its successors (the property that makes death + rehash
cheap), and every process computes identical routes — the hashes are
content-derived, never ``PYTHONHASHSEED``-dependent.

Routing is the cluster front door's per-query hot path, so lookups go
through a flattened bucket table (successor precomputed for 1024
evenly spaced points) and :meth:`HashRing.partition` hashes a whole
batch in one vectorized pass over the query bytes — no per-query
Python-level hashing.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np

from ..errors import OperationError, TernaryValueError

__all__ = ["HashRing"]

_BUCKET_BITS = 10
_BUCKETS = 1 << _BUCKET_BITS

# FNV-style multiplicative string hash over query bytes, evaluated as a
# vectorized dot product: hash(q) = sum(q[i] * PRIME**(n-1-i)) mod 2**64.
# Stable across processes and runs; uniform enough for load spreading.
_weights_cache: Dict[int, np.ndarray] = {}


def _weights(n: int) -> np.ndarray:
    cached = _weights_cache.get(n)
    if cached is None:
        cached = np.empty(n, dtype=np.uint64)
        acc = 1
        for i in range(n - 1, -1, -1):
            cached[i] = acc
            acc = (acc * 1099511628211) & 0xFFFFFFFFFFFFFFFF
        _weights_cache[n] = cached
    return cached


def _point(node: Hashable, replica: int) -> int:
    digest = hashlib.blake2b(f"{node!r}#{replica}".encode(),
                             digest_size=8).digest()
    return int.from_bytes(digest, "little")


class HashRing:
    """Consistent-hash ring over worker ids with vectorized routing."""

    def __init__(self, nodes: Sequence[Hashable], *, replicas: int = 64):
        if replicas < 1:
            raise OperationError("replicas must be positive")
        self._replicas = replicas
        self._nodes: List[Hashable] = []
        self._table: np.ndarray = np.zeros(_BUCKETS, dtype=np.int64)
        self._slot_of: Dict[Hashable, int] = {}
        self._slots: List[Hashable] = []
        for node in nodes:
            self.add(node)

    @property
    def nodes(self) -> List[Hashable]:
        return list(self._nodes)

    def add(self, node: Hashable) -> None:
        if node in self._nodes:
            return
        self._nodes.append(node)
        self._rebuild()

    def remove(self, node: Hashable) -> None:
        if node not in self._nodes:
            return
        self._nodes.remove(node)
        self._rebuild()

    def _rebuild(self) -> None:
        if not self._nodes:
            self._table = np.zeros(_BUCKETS, dtype=np.int64)
            self._slots = []
            self._slot_of = {}
            return
        # Stable slot numbering so the bucket table can hold small ints.
        self._slots = list(self._nodes)
        self._slot_of = {node: i for i, node in enumerate(self._slots)}
        points = sorted(
            (_point(node, r), self._slot_of[node])
            for node in self._nodes for r in range(self._replicas))
        hashes = np.array([p for p, _ in points], dtype=np.uint64)
        slots = np.array([s for _, s in points], dtype=np.int64)
        # Bucket b covers hashes [b * 2**(64-bits), ...): its owner is
        # the first ring point at or after the bucket's low edge,
        # wrapping to the first point past the top.
        edges = np.arange(_BUCKETS, dtype=np.uint64) \
            << np.uint64(64 - _BUCKET_BITS)
        idx = np.searchsorted(hashes, edges, side="left")
        idx[idx == len(hashes)] = 0
        self._table = slots[idx]

    # -- routing -----------------------------------------------------------------

    def _bucket_of(self, queries: Sequence[str]) -> np.ndarray:
        try:
            blob = "".join(queries).encode("ascii")
        except UnicodeEncodeError:
            raise TernaryValueError(
                "queries must be ASCII ternary strings") from None
        n = len(queries)
        width = len(blob) // n
        mat = np.frombuffer(blob, dtype=np.uint8).reshape(n, width)
        h = (mat.astype(np.uint64) * _weights(width)[None, :]).sum(
            axis=1, dtype=np.uint64)
        return (h >> np.uint64(64 - _BUCKET_BITS)).astype(np.int64)

    def node_for(self, query: str) -> Hashable:
        """Owner of one query (the scalar twin of :meth:`partition`)."""
        if not self._nodes:
            raise OperationError("hash ring has no nodes")
        if len(self._nodes) == 1:
            return self._nodes[0]
        bucket = int(self._bucket_of([query])[0])
        return self._slots[int(self._table[bucket])]

    def partition(self, queries: Sequence[str]
                  ) -> List[Tuple[Hashable, List[int]]]:
        """Group query *positions* by owning node.

        Returns ``[(node, positions), ...]`` covering every index in
        ``queries`` exactly once.  Queries of mixed widths fall back to
        scalar routing (the vectorized pass needs a rectangular byte
        matrix); the uniform-width fast path is the serving norm.
        """
        if not self._nodes:
            raise OperationError("hash ring has no nodes")
        n = len(queries)
        if n == 0:
            return []
        if len(self._nodes) == 1:
            return [(self._nodes[0], list(range(n)))]
        first_w = len(queries[0])
        if any(len(q) != first_w for q in queries):
            groups: Dict[Hashable, List[int]] = {}
            for i, q in enumerate(queries):
                groups.setdefault(self.node_for(q), []).append(i)
            return list(groups.items())
        owners = self._table[self._bucket_of(queries)]
        out: List[Tuple[Hashable, List[int]]] = []
        for slot, node in enumerate(self._slots):
            positions = np.nonzero(owners == slot)[0]
            if len(positions):
                out.append((node, positions.tolist()))
        return out

    def __repr__(self) -> str:
        return (f"<HashRing {len(self._nodes)} nodes x "
                f"{self._replicas} replicas>")
