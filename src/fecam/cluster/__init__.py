"""Multi-process serving: shared-memory fabric + consistent-hash front end.

The step from "fast on one core" to "heavy traffic from millions of
users": the contiguous planes arena moves into an mmap-backed shared
segment (:class:`SharedArena`), N worker processes serve
``search_batch`` from zero-copy views (:class:`~.replica.Replica`),
and the single writer publishes mutations seqlock-style — generation
word bumped odd before the mutation, even after, readers retrying torn
windows.  :class:`ClusterBackend` packages the writer + worker pool
behind the standard store-backend contract (so the cross-backend
conformance battery covers it verbatim) and :class:`ClusterService`
puts a :class:`~fecam.service.SearchService`-shaped front door on top,
routing queries by :class:`HashRing`.

Failure modes, by design: a dead worker respawns (or its hash arc
moves to survivors); a dead writer fails writes while reads keep
serving the last published generation; a writer dead *mid-window* is
the one unrecoverable read state, surfaced as a typed
:class:`~fecam.errors.WorkerUnavailable` timeout, never a torn view.
"""

from .backend import ClusterBackend, resolve_start_method
from .replica import Replica
from .ring import HashRing
from .service import ClusterServed, ClusterService
from .shm import SharedArena, default_shm_dir
from .worker import WorkerSpec, worker_main

__all__ = [
    "ClusterBackend", "ClusterService", "ClusterServed", "HashRing",
    "Replica", "SharedArena", "WorkerSpec", "default_shm_dir",
    "resolve_start_method", "worker_main",
]
