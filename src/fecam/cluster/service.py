"""`ClusterService` — the multi-process front door.

Mirrors :class:`~fecam.service.SearchService`'s API (submit /
search / search_many / asearch / write / read / stats / close) over a
:class:`~fecam.cluster.ClusterBackend`, with one architectural
difference: cross-process reads need **no read lock**.  The arena
seqlock *is* the read synchronization — each worker answers from a
consistent published generation or retries — so the service's RWLock
exists only to serialize writers (and to keep the ``FECAM_SANITIZE=1``
lock discipline over the writer-side planes).

Serving shape:

* ``search_many`` is the throughput door: it scatters the burst
  straight across the workers (no queue hop) and wraps each answer in
  a lazy :class:`ClusterServed` — match/result objects materialize
  only if the caller actually inspects them, which is what keeps the
  per-query cost near the wire cost.
* ``submit``/``search`` ride a micro-batching dispatcher thread like
  the single-process service, so trickle traffic from many threads
  still coalesces into fused worker batches.

Every result carries the worker-observed ``generation``; replaying the
write journal to that generation reproduces the result bit-for-bit
(the cross-process stress suite holds this as an invariant).
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import Counter, deque
from concurrent.futures import Future
from typing import (Any, Callable, Dict, Hashable, List, Optional,
                    Sequence, Tuple, Union)

from ..analysis.sanitize import maybe_sanitize_service
from ..errors import OperationError, ServiceClosed, ServiceOverloaded
from ..fabric.batch import normalize_queries
from ..service.locks import RWLock
from ..service.stats import LatencyReservoir, ServiceStats
from ..store import CamStore
from ..store.config import StoreConfig
from ..store.result import LazyMatches, Match, Query, QueryResult
from .backend import ClusterBackend

__all__ = ["ClusterService", "ClusterServed"]

_NON_BINARY = str.maketrans("", "", "01")


class ClusterServed:
    """One completed cluster request (lazy ServedResult twin).

    Field-compatible with :class:`~fecam.service.ServedResult` —
    ``result`` / ``generation`` / ``latency`` / ``best`` /
    ``match_keys`` — but holds only the wire rows until inspected.
    The materialized :class:`QueryResult` is already detached (rows
    were copied across the process boundary), so no freeze step is
    needed.
    """

    __slots__ = ("generation", "latency", "_bits", "_mask", "_rows",
                 "_energy", "_model_latency", "_result")

    def __init__(self, bits: str, mask: Optional[str], generation: int,
                 rows: List[Tuple], energy: float, model_latency: float,
                 latency: float):
        self.generation = generation
        self.latency = latency
        self._bits = bits
        self._mask = mask
        self._rows = rows
        self._energy = energy
        self._model_latency = model_latency
        self._result: Optional[QueryResult] = None

    @property
    def result(self) -> QueryResult:
        result = self._result
        if result is None:
            result = QueryResult(
                query=Query(bits=self._bits, mask=self._mask),
                matches=LazyMatches(self._rows),
                energy=self._energy, latency=self._model_latency)
            self._result = result
        return result

    @property
    def best(self) -> Optional[Match]:
        return self.result.best

    @property
    def match_keys(self) -> List[Hashable]:
        return self.result.match_keys

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"ClusterServed(generation={self.generation}, "
                f"matches={len(self._rows)}, latency={self.latency:.2e})")


class _Pending:
    __slots__ = ("bits", "mask", "future", "enqueued_at")

    def __init__(self, bits: str, mask: Optional[str],
                 future: "Future[ClusterServed]", enqueued_at: float):
        self.bits = bits
        self.mask = mask
        self.future = future
        self.enqueued_at = enqueued_at


class ClusterService:
    """Consistent-hash front end over one writer + N reader processes."""

    def __init__(self, store: Optional[CamStore] = None, *,
                 config: Optional[StoreConfig] = None, workers: int = 2,
                 max_batch: int = 256, max_queue: int = 4096,
                 latency_window: int = 4096, start: bool = True,
                 start_method: Optional[str] = None,
                 shm_dir: Optional[str] = None,
                 read_timeout: float = 5.0, respawn: bool = True,
                 owns_backend: Optional[bool] = None):
        if store is None:
            if config is None:
                raise OperationError(
                    "ClusterService needs a store or a StoreConfig")
            store = CamStore(backend=ClusterBackend(
                config, workers=workers, start_method=start_method,
                shm_dir=shm_dir, read_timeout=read_timeout,
                respawn=respawn))
            if owns_backend is None:
                owns_backend = True
        backend = store.backend
        if not isinstance(backend, ClusterBackend):
            raise OperationError(
                "ClusterService fronts a ClusterBackend store; got "
                f"{type(backend).__name__}")
        if max_batch < 1 or max_queue < 1:
            raise OperationError("max_batch/max_queue must be positive")
        self.store = store
        self.backend: ClusterBackend = backend
        self.max_batch = max_batch
        self.max_queue = max_queue
        self._owns_backend = bool(owns_backend)
        self._rw = RWLock()
        self._mutex = threading.Lock()
        self._wakeup = threading.Condition(self._mutex)
        self._queue: "deque[_Pending]" = deque()
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        self._submitted = 0
        self._served = 0
        self._failed = 0
        self._overloads = 0
        self._max_queue_depth = 0
        self._batches = 0
        self._batch_sizes: "Counter[int]" = Counter()
        self._coalesced = 0
        self._direct = 0
        self._writes = 0
        self._latencies = LatencyReservoir(latency_window)
        self._started_wall = time.time()
        self._started_mono = time.perf_counter()
        maybe_sanitize_service(self)
        if start:
            self.start()

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "ClusterService":
        with self._mutex:
            if self._closed:
                raise ServiceClosed("cluster service is closed")
            if self._thread is not None:
                return self
            self._thread = threading.Thread(
                target=self._dispatch_loop,
                name="fecam-cluster-dispatcher", daemon=True)
            self._thread.start()
        return self

    @property
    def closed(self) -> bool:
        with self._mutex:
            return self._closed

    def close(self, *, drain: bool = True,
              timeout: Optional[float] = None) -> bool:
        """Stop accepting, drain (or fail) the queue, stop the workers,
        and unlink the shared segment.  Idempotent."""
        with self._mutex:
            already = self._closed
            self._closed = True
            rejected: List[_Pending] = []
            if not drain:
                rejected = list(self._queue)
                self._queue.clear()
            self._wakeup.notify_all()
            thread = self._thread
        for pending in rejected:
            self._fail(pending, ServiceClosed(
                "cluster service closed before this request dispatched"))
        stopped = True
        if thread is not None:
            thread.join(timeout)
            stopped = not thread.is_alive()
        elif drain and not already:
            self._dispatch_loop()
        if self._owns_backend and not already:
            self.backend.close()
        return stopped

    def __enter__(self) -> "ClusterService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- front doors -------------------------------------------------------------

    def _prepare(self, query: Union[Query, str],
                 mask: Optional[str]) -> Tuple[str, Optional[str]]:
        if type(query) is str:
            bits: Any = query
            own_mask: Optional[str] = None
        else:
            coerced = Query.coerce(query)
            bits = coerced.bits
            own_mask = coerced.mask
        if not (isinstance(bits, str) and len(bits) == self.store.width
                and not bits.translate(_NON_BINARY)):
            bits = normalize_queries([bits], self.store.width)[0]
        if own_mask is not None and mask is not None \
                and own_mask != mask:
            raise OperationError(
                "the query's own mask conflicts with the mask argument")
        return bits, (own_mask if own_mask is not None else mask)

    def submit(self, query: Union[Query, str],
               mask: Optional[str] = None) -> "Future[ClusterServed]":
        bits, mask = self._prepare(query, mask)
        future: "Future[ClusterServed]" = Future()
        pending = _Pending(bits, mask, future, time.perf_counter())
        with self._mutex:
            if self._closed:
                raise ServiceClosed("cluster service is closed")
            if len(self._queue) >= self.max_queue:
                self._overloads += 1
                raise ServiceOverloaded(
                    f"cluster queue is full ({self.max_queue})")
            self._queue.append(pending)
            self._submitted += 1
            depth = len(self._queue)
            if depth > self._max_queue_depth:
                self._max_queue_depth = depth
            if depth > 1:
                self._coalesced += 1
            self._wakeup.notify()
        return future

    def search(self, query: Union[Query, str],
               mask: Optional[str] = None, *,
               timeout: Optional[float] = None) -> ClusterServed:
        return self.submit(query, mask).result(timeout)

    async def asearch(self, query: Union[Query, str],
                      mask: Optional[str] = None) -> ClusterServed:
        return await asyncio.wrap_future(self.submit(query, mask))

    def search_many(self, queries: Sequence[Union[Query, str]],
                    mask: Optional[str] = None) -> List[ClusterServed]:
        """Burst door: scatter the whole batch across the workers
        directly — no dispatcher hop, one wall-clock stamp, lazy
        results.  This is the path the throughput benchmark measures.
        """
        if not queries:
            return []
        if any(type(query) is not str for query in queries):
            # Query objects may carry their own masks; the per-request
            # door handles those individually.
            futures = [self.submit(query, mask) for query in queries]
            return [future.result() for future in futures]
        width = self.store.width
        prepared: List[str] = []
        for bits in queries:
            if not (len(bits) == width
                    and not bits.translate(_NON_BINARY)):
                bits, _ = self._prepare(bits, mask)
            prepared.append(bits)
        with self._mutex:
            if self._closed:
                raise ServiceClosed("cluster service is closed")
            self._submitted += len(prepared)
            self._direct += len(prepared)
        start = time.perf_counter()
        try:
            scattered = self.backend.scatter_search(prepared, mask)
        except Exception:
            with self._mutex:
                self._failed += len(prepared)
            raise
        wall = time.perf_counter() - start
        out = [ClusterServed(bits, mask, generation, rows, energy,
                             model_latency, wall)
               for bits, (generation, rows, energy, model_latency)
               in zip(prepared, scattered)]
        with self._mutex:
            self._served += len(out)
            self._batches += 1
            self._batch_sizes[len(out)] += 1
            self._latencies.record(wall)
        return out

    async def asearch_many(self, queries: Sequence[Union[Query, str]],
                           mask: Optional[str] = None
                           ) -> List[ClusterServed]:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, lambda: self.search_many(queries, mask))

    # -- writes ------------------------------------------------------------------

    def write(self, txn: Callable[[CamStore], Any]) -> Any:
        """One mutating transaction under writer exclusivity.

        Each store op inside ``txn`` publishes its own seqlock window,
        so workers may observe intermediate generations of a
        multi-op transaction — per-op granularity is the cluster's
        journaling unit, exactly what the serial-replay stress suite
        replays against.
        """
        if self.closed:
            raise ServiceClosed("cluster service is closed")
        with self._rw.write_locked():
            result = txn(self.store)
        with self._mutex:
            self._writes += 1
        return result

    def read(self, fn: Callable[[CamStore], Any]) -> Any:
        if self.closed:
            raise ServiceClosed("cluster service is closed")
        with self._rw.read_locked():
            return fn(self.store)

    def insert(self, word: str, key: Optional[Hashable] = None, *,
               priority: Optional[float] = None,
               payload: Any = None) -> Match:
        return self.write(lambda store: store.insert(
            word, key=key, priority=priority, payload=payload))

    def insert_many(self, words: Sequence[str],
                    keys: Optional[Sequence[Hashable]] = None, *,
                    priorities: Optional[Sequence[float]] = None,
                    payloads: Optional[Sequence[Any]] = None
                    ) -> List[Match]:
        return self.write(lambda store: store.insert_many(
            words, keys=keys, priorities=priorities, payloads=payloads))

    def delete(self, key: Hashable) -> Match:
        return self.write(lambda store: store.delete(key))

    def update(self, key: Hashable, word: str, *,
               payload: Any = None) -> Match:
        return self.write(lambda store: store.update(
            key, word, payload=payload))

    # -- dispatcher (submit/search micro-batching) -------------------------------

    def _next_batch(self) -> Optional[List[_Pending]]:
        with self._wakeup:
            while not self._queue and not self._closed:
                self._wakeup.wait(0.05)
            if not self._queue:
                return None
            batch = []
            while self._queue and len(batch) < self.max_batch:
                batch.append(self._queue.popleft())
            return batch

    def _dispatch_loop(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            # Group by mask: one scatter per mask keeps worker-side
            # search semantics identical to the fused single-process
            # batch (a mask applies to a whole kernel call).
            by_mask: Dict[Optional[str], List[_Pending]] = {}
            for pending in batch:
                by_mask.setdefault(pending.mask, []).append(pending)
            for mask, group in by_mask.items():
                self._serve(group, mask)

    def _serve(self, group: List[_Pending],
               mask: Optional[str]) -> None:
        try:
            scattered = self.backend.scatter_search(
                [p.bits for p in group], mask)
        except Exception as exc:
            for pending in group:
                self._fail(pending, exc)
            return
        done = time.perf_counter()
        with self._mutex:
            self._served += len(group)
            self._batches += 1
            self._batch_sizes[len(group)] += 1
            for pending in group:
                self._latencies.record(done - pending.enqueued_at)
        for pending, (generation, rows, energy, model_latency) \
                in zip(group, scattered):
            pending.future.set_result(ClusterServed(
                pending.bits, mask, generation, rows, energy,
                model_latency, done - pending.enqueued_at))

    def _fail(self, pending: _Pending, error: BaseException) -> None:
        with self._mutex:
            self._failed += 1
        if not pending.future.set_running_or_notify_cancel():
            return  # pragma: no cover - caller cancelled
        pending.future.set_exception(error)

    # -- telemetry ---------------------------------------------------------------

    @property
    def stats(self) -> ServiceStats:
        with self._rw.read_locked():
            generation = self.store.generation
        with self._mutex:
            sample = self._latencies.snapshot()
            counters = dict(
                submitted=self._submitted, served=self._served,
                failed=self._failed, overloads=self._overloads,
                queue_depth=len(self._queue),
                max_queue_depth=self._max_queue_depth,
                batches=self._batches,
                batch_size_hist=dict(self._batch_sizes),
                coalesced=self._coalesced, direct=self._direct,
                writes=self._writes,
                generation=generation)
        return ServiceStats(
            p50_latency=LatencyReservoir.percentile(sample, 50.0),
            p99_latency=LatencyReservoir.percentile(sample, 99.0),
            latency_samples=len(sample),
            timestamp=time.time(),
            uptime_s=time.perf_counter() - self._started_mono,
            **counters)

    def worker_stats(self) -> List[Dict[str, Any]]:
        """Per-worker telemetry via the stats RPC (per-worker labels
        for the obs adapter): searches, energy, restarts, pid, the
        generation each worker currently observes."""
        return self.backend.worker_telemetry()

    def __repr__(self) -> str:  # pragma: no cover
        state = "closed" if self.closed else "open"
        return (f"<ClusterService {state} workers="
                f"{self.backend.workers} max_batch={self.max_batch}>")
