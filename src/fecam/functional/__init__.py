"""Behavioral ternary CAM engine with circuit-tier energy annotation."""

from .engine import EnergyModel, SearchStats, TernaryCAM

__all__ = ["TernaryCAM", "SearchStats", "EnergyModel"]
