"""Behavioral ternary CAM engine with circuit-tier energy annotation."""

from .engine import (CHUNK_BITS, EnergyModel, SearchStats, TernaryCAM,
                     n_chunks_for, pack_word, pack_words)

__all__ = ["TernaryCAM", "SearchStats", "EnergyModel", "pack_word",
           "pack_words", "CHUNK_BITS", "n_chunks_for"]
