"""Fast behavioral TCAM engine with circuit-tier energy annotation.

The circuit tier (``fecam.cam``) answers *how fast / how much energy*;
this engine answers *what does the array do* at application scale: store
thousands of ternary words, search bit-parallel with numpy, and annotate
each operation with per-search energy/latency pulled from the evaluated
figures of merit of the chosen design.

Words are packed into 64-bit chunks as (value, care) masks; a row matches
iff ``(query XOR value) AND care == 0`` in every chunk — the same
executable specification as :func:`fecam.cam.states.ternary_match`, which
the test suite enforces by property tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..designs import DesignKind
from ..errors import OperationError, TernaryValueError
from ..cam.states import normalize_query, normalize_word
from ..cam.ops import SearchPolicy

__all__ = ["TernaryCAM", "SearchStats", "EnergyModel"]

_CHUNK = 64


@dataclass
class SearchStats:
    """Statistics of one array search."""

    matches: List[int]
    rows_searched: int
    step1_eliminated: int  # rows resolved (missed) in step 1
    step2_misses: int
    full_matches: int
    energy: float  # J, early-termination aware
    latency: float  # s, worst-case (2-step when any row needed step 2)

    @property
    def step1_miss_rate(self) -> float:
        if self.rows_searched == 0:
            return 0.0
        return self.step1_eliminated / self.rows_searched


@dataclass
class EnergyModel:
    """Per-bit search energies/latency for one design.

    By default lazily pulled from the circuit tier
    (:func:`fecam.arch.evaluate_array`); override the fields for
    what-if studies without running SPICE.
    """

    design: DesignKind
    word_length: int
    e_1step_per_bit: Optional[float] = None
    e_2step_per_bit: Optional[float] = None
    latency_1step: Optional[float] = None
    latency_2step: Optional[float] = None
    write_energy_per_cell: Optional[float] = None

    def resolve(self) -> "EnergyModel":
        if self.e_1step_per_bit is not None:
            return self
        from ..arch.evacam import evaluate_array

        fom = evaluate_array(self.design, word_length=self.word_length)
        self.e_1step_per_bit = fom.search_energy_1step
        self.e_2step_per_bit = fom.search_energy_total
        self.latency_1step = fom.latency_1step
        self.latency_2step = fom.latency_total
        self.write_energy_per_cell = (fom.write_energy_per_cell or 0.0)
        return self


class TernaryCAM:
    """A behavioral M x N ternary CAM.

    >>> tcam = TernaryCAM(rows=4, width=8)
    >>> tcam.write(0, "1010XXXX")
    >>> tcam.search("10101111").matches
    [0]
    """

    def __init__(self, rows: int, width: int,
                 design: DesignKind = DesignKind.DG_1T5, *,
                 policy: SearchPolicy = SearchPolicy(),
                 energy_model: Optional[EnergyModel] = None):
        if rows < 1 or width < 1:
            raise OperationError("rows and width must be positive")
        self.rows = rows
        self.width = width
        self.design = design
        self.policy = policy
        self._energy = energy_model or EnergyModel(design, width)
        n_chunks = (width + _CHUNK - 1) // _CHUNK
        self._n_chunks = n_chunks
        self._value = np.zeros((rows, n_chunks), dtype=np.uint64)
        self._care = np.zeros((rows, n_chunks), dtype=np.uint64)
        self._valid = np.zeros(rows, dtype=bool)
        # Masks for even (cell1/step-1) and odd (cell2/step-2) positions.
        even, odd = self._step_masks(width, n_chunks)
        self._even_mask = even
        self._odd_mask = odd
        self.search_count = 0
        self.write_count = 0
        self.energy_spent = 0.0

    @staticmethod
    def _step_masks(width: int, n_chunks: int):
        even = np.zeros(n_chunks, dtype=np.uint64)
        odd = np.zeros(n_chunks, dtype=np.uint64)
        for pos in range(width):
            chunk, bit = divmod(pos, _CHUNK)
            if pos % 2 == 0:
                even[chunk] |= np.uint64(1 << bit)
            else:
                odd[chunk] |= np.uint64(1 << bit)
        return even, odd

    def _pack(self, word: str):
        value = np.zeros(self._n_chunks, dtype=np.uint64)
        care = np.zeros(self._n_chunks, dtype=np.uint64)
        for pos, symbol in enumerate(word):
            chunk, bit = divmod(pos, _CHUNK)
            if symbol == "X":
                continue
            care[chunk] |= np.uint64(1 << bit)
            if symbol == "1":
                value[chunk] |= np.uint64(1 << bit)
        return value, care

    # -- content -------------------------------------------------------------------

    def write(self, row: int, word: str) -> None:
        """Store a ternary word (costs write energy per the design)."""
        word = normalize_word(word)
        if len(word) != self.width:
            raise TernaryValueError(
                f"word length {len(word)} != array width {self.width}")
        if not 0 <= row < self.rows:
            raise OperationError(f"row {row} out of range")
        self._value[row], self._care[row] = self._pack(word)
        self._valid[row] = True
        self.write_count += 1
        model = self._energy.resolve()
        self.energy_spent += (model.write_energy_per_cell or 0.0) * self.width

    def erase(self, row: int) -> None:
        self._valid[row] = False

    def stored_word(self, row: int) -> Optional[str]:
        if not self._valid[row]:
            return None
        symbols = []
        for pos in range(self.width):
            chunk, bit = divmod(pos, _CHUNK)
            mask = np.uint64(1 << bit)
            if not self._care[row, chunk] & mask:
                symbols.append("X")
            elif self._value[row, chunk] & mask:
                symbols.append("1")
            else:
                symbols.append("0")
        return "".join(symbols)

    @property
    def occupancy(self) -> int:
        return int(self._valid.sum())

    # -- search -------------------------------------------------------------------

    def search(self, query: str, mask: str = None) -> SearchStats:
        """Parallel search; returns matches plus early-termination stats.

        ``mask`` is the classic TCAM *global masking register*: positions
        marked '0' are excluded from the comparison for this search (a
        per-search wildcard on the query side).
        """
        query = normalize_query(query)
        if len(query) != self.width:
            raise TernaryValueError(
                f"query length {len(query)} != array width {self.width}")
        q_value, _ = self._pack(query)
        diff = (q_value[None, :] ^ self._value) & self._care
        if mask is not None:
            if len(mask) != self.width:
                raise TernaryValueError("mask length != array width")
            mask_bits, _ = self._pack(
                "".join("1" if m == "1" else "0" for m in mask))
            diff = diff & mask_bits[None, :]
        miss_step1 = ((diff & self._even_mask[None, :]) != 0).any(axis=1)
        miss_step2 = ((diff & self._odd_mask[None, :]) != 0).any(axis=1)
        miss_any = miss_step1 | miss_step2
        valid = self._valid
        match_rows = np.nonzero(valid & ~miss_any)[0]

        step1_elim = int((valid & miss_step1).sum())
        step2_miss = int((valid & ~miss_step1 & miss_step2).sum())
        full_match = int(len(match_rows))
        rows_searched = int(valid.sum())

        model = self._energy.resolve()
        early = self.policy.early_termination and self.design.uses_two_step_search
        e1 = model.e_1step_per_bit * self.width
        e2 = model.e_2step_per_bit * self.width
        if self.design.uses_two_step_search:
            if early:
                energy = step1_elim * e1 + (step2_miss + full_match) * e2
            else:
                energy = rows_searched * e2
            needs_step2 = (step2_miss + full_match) > 0
            latency = model.latency_2step if needs_step2 else model.latency_1step
        else:
            energy = rows_searched * e2
            latency = model.latency_2step
        self.search_count += 1
        self.energy_spent += energy
        return SearchStats(matches=[int(r) for r in match_rows],
                           rows_searched=rows_searched,
                           step1_eliminated=step1_elim,
                           step2_misses=step2_miss, full_matches=full_match,
                           energy=energy, latency=latency)

    def search_first(self, query: str) -> Optional[int]:
        """Priority-encoder semantics: lowest matching row index."""
        matches = self.search(query).matches
        return matches[0] if matches else None

    def __len__(self) -> int:
        return self.rows

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<TernaryCAM {self.rows}x{self.width} ({self.design}), "
                f"{self.occupancy} valid rows>")
