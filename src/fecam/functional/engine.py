"""Fast behavioral TCAM engine with circuit-tier energy annotation.

The circuit tier (``fecam.cam``) answers *how fast / how much energy*;
this engine answers *what does the array do* at application scale: store
thousands of ternary words, search bit-parallel with numpy, and annotate
each operation with per-search energy/latency pulled from the evaluated
figures of merit of the chosen design.

Words are packed into 64-bit chunks as (value, care) masks; a row matches
iff ``(query XOR value) AND care == 0`` in every chunk — the same
executable specification as :func:`fecam.cam.states.ternary_match`, which
the test suite enforces by property tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..designs import DesignKind
from ..errors import OperationError, TernaryValueError
from ..cam.states import normalize_query, normalize_word
from ..cam.ops import SearchPolicy
from ..metrics.point import FIDELITIES
from ..planes import CHUNK_BITS, TernaryPlanes, n_chunks_for, step_masks

__all__ = ["TernaryCAM", "SearchStats", "EnergyModel", "pack_word",
           "pack_words", "CHUNK_BITS", "n_chunks_for"]

_CHUNK = CHUNK_BITS

_ORD_0, _ORD_1, _ORD_X = ord("0"), ord("1"), ord("X")


def _pack_bitplane(bits: np.ndarray, width: int) -> np.ndarray:
    """Pack an (N, width) boolean plane into (N, n_chunks) uint64.

    Bit ``pos`` of a word lands in chunk ``pos // 64`` at bit position
    ``pos % 64`` — identical layout to the scalar packer the engine has
    always used, so packed content is interchangeable.
    """
    n = bits.shape[0]
    padded = n_chunks_for(width) * _CHUNK
    if padded != width:
        full = np.zeros((n, padded), dtype=bool)
        full[:, :width] = bits
        bits = full
    packed = np.packbits(bits, axis=1, bitorder="little")
    return np.ascontiguousarray(packed).view("<u8").astype(np.uint64,
                                                           copy=False)


def pack_words(words: Sequence[str], width: int) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized bulk packer: N ternary words -> (value, care) matrices.

    Each word must be a canonical ``'01X'`` string of exactly ``width``
    symbols (run :func:`fecam.cam.states.normalize_word` first for alias
    forms such as ``*``/``?``/lowercase).  Returns two ``(N, n_chunks)``
    uint64 arrays with the same bit layout as the engine's row storage.
    This replaces the per-character Python loop on bulk-write hot paths.
    """
    n_chunks = n_chunks_for(width)
    n = len(words)
    if n == 0:
        return (np.zeros((0, n_chunks), dtype=np.uint64),
                np.zeros((0, n_chunks), dtype=np.uint64))
    for i, word in enumerate(words):
        if len(word) != width:
            raise TernaryValueError(
                f"word {i} has length {len(word)}; every word must have "
                f"length {width}")
    try:
        buf = "".join(words).encode("ascii")
    except UnicodeEncodeError as exc:
        bad_i = next(i for i, word in enumerate(words)
                     if any(ord(symbol) > 127 for symbol in word))
        raise TernaryValueError(
            f"non-ASCII symbol in ternary word {bad_i}: {exc}")
    sym = np.frombuffer(buf, dtype=np.uint8).reshape(n, width)
    is_one = sym == _ORD_1
    is_x = sym == _ORD_X
    bad = ~((sym == _ORD_0) | is_one | is_x)
    if bad.any():
        # Report *which* word broke: on a 10k-word bulk load the symbol
        # alone is useless for finding the culprit.
        bad_i, bad_pos = (int(axis[0]) for axis in np.nonzero(bad))
        raise TernaryValueError(
            f"invalid ternary symbol {chr(sym[bad_i, bad_pos])!r} at "
            f"position {bad_pos} of word {bad_i}; words must be "
            "canonical '01X' strings")
    return _pack_bitplane(is_one, width), _pack_bitplane(~is_x, width)


def pack_word(word: str, width: int) -> Tuple[np.ndarray, np.ndarray]:
    """Pack one canonical ternary word into (value, care) chunk vectors."""
    value, care = pack_words([word], width)
    return value[0], care[0]


@dataclass
class SearchStats:
    """Statistics of one array search."""

    matches: List[int]
    rows_searched: int
    step1_eliminated: int  # rows resolved (missed) in step 1
    step2_misses: int
    full_matches: int
    energy: float  # J, early-termination aware
    latency: float  # s, worst-case (2-step when any row needed step 2)

    @property
    def step1_miss_rate(self) -> float:
        if self.rows_searched == 0:
            return 0.0
        return self.step1_eliminated / self.rows_searched


@dataclass(frozen=True)
class EnergyModel:
    """Per-bit search energies/latency for one design.

    Frozen: a model can be shared between arrays, fabrics, and stores
    without one consumer's resolution bleeding into another.  Unset
    fields are lazily priced by the metrics tier
    (:func:`fecam.metrics.evaluate`) at the chosen ``fidelity`` —
    ``"spice"`` (ground truth, the historical default), ``"analytical"``
    (closed form, microseconds), or ``"paper"`` (published Table IV
    values).  Construct with explicit fields for what-if studies without
    running any model at all.
    """

    design: DesignKind
    word_length: int
    e_1step_per_bit: Optional[float] = None
    e_2step_per_bit: Optional[float] = None
    latency_1step: Optional[float] = None
    latency_2step: Optional[float] = None
    write_energy_per_cell: Optional[float] = None
    fidelity: str = "spice"

    def __post_init__(self) -> None:
        if self.fidelity not in FIDELITIES:
            raise OperationError(
                f"fidelity must be one of {FIDELITIES}, "
                f"got {self.fidelity!r}")

    @property
    def resolved(self) -> bool:
        return self.e_1step_per_bit is not None

    def resolve(self) -> "EnergyModel":
        """Return a fully-priced model (``self`` if already resolved).

        Never mutates: callers holding the unresolved instance keep it
        unchanged, so one model shared across stores cannot be
        cross-contaminated by another's resolution.
        """
        if self.resolved:
            return self
        from ..metrics import DesignPoint, evaluate

        fom = evaluate(DesignPoint(design=self.design,
                                   word_length=self.word_length),
                       fidelity=self.fidelity)
        return replace(
            self,
            e_1step_per_bit=fom.search_energy_1step,
            e_2step_per_bit=fom.search_energy_total,
            latency_1step=fom.latency_1step,
            latency_2step=fom.latency_total,
            write_energy_per_cell=fom.write_energy_per_cell or 0.0)


class TernaryCAM:
    """A behavioral M x N ternary CAM.

    >>> tcam = TernaryCAM(rows=4, width=8)
    >>> tcam.write(0, "1010XXXX")
    >>> tcam.search("10101111").matches
    [0]
    """

    def __init__(self, rows: int, width: int,
                 design: DesignKind = DesignKind.DG_1T5, *,
                 policy: SearchPolicy = SearchPolicy(),
                 energy_model: Optional[EnergyModel] = None,
                 planes: Optional[TernaryPlanes] = None):
        if rows < 1 or width < 1:
            raise OperationError("rows and width must be positive")
        self.rows = rows
        self.width = width
        self.design = design
        self.policy = policy
        self._energy = energy_model or EnergyModel(design, width)
        self._n_chunks = n_chunks_for(width)
        # Storage (and its memoized derived planes) lives in a
        # TernaryPlanes instance: private by default, or an injected
        # row-slice view of a fabric's contiguous multi-bank arena.
        if planes is None:
            planes = TernaryPlanes(rows, width)
        elif planes.rows != rows or planes.width != width:
            raise OperationError(
                f"planes are {planes.rows}x{planes.width}, array wants "
                f"{rows}x{width}")
        self._planes = planes
        # Masks for even (cell1/step-1) and odd (cell2/step-2) positions.
        self._even_mask = planes.even_mask
        self._odd_mask = planes.odd_mask
        self.search_count = 0
        self.write_count = 0
        self.energy_spent = 0.0
        self._two_step_search = design.uses_two_step_search

    @staticmethod
    def _step_masks(width: int, n_chunks: int):
        even, odd = step_masks(width)
        if even.shape != (n_chunks,):  # pragma: no cover - caller bug
            raise OperationError(
                f"width {width} needs {even.shape[0]} chunks, not {n_chunks}")
        return even, odd

    @property
    def planes(self) -> TernaryPlanes:
        """The bitplane storage (shared with the fabric arena when this
        array is a bank of one)."""
        return self._planes

    @property
    def _value(self) -> np.ndarray:
        return self._planes.value

    @property
    def _care(self) -> np.ndarray:
        return self._planes.care

    @property
    def _valid(self) -> np.ndarray:
        return self._planes.valid

    def _pack(self, word: str):
        return pack_word(word, len(word))

    # -- content -------------------------------------------------------------------

    def write(self, row: int, word: str) -> None:
        """Store a ternary word (costs write energy per the design)."""
        word = normalize_word(word)
        if len(word) != self.width:
            raise TernaryValueError(
                f"word length {len(word)} != array width {self.width}")
        if not 0 <= row < self.rows:
            raise OperationError(f"row {row} out of range")
        value, care = self._pack(word)
        self._planes.set_row(row, value, care)
        self.write_count += 1
        model = self._resolved_energy()
        self.energy_spent += (model.write_energy_per_cell or 0.0) * self.width

    def write_many(self, rows: Sequence[int], words: Sequence[str], *,
                   packed: Optional[Tuple[np.ndarray, np.ndarray]] = None
                   ) -> None:
        """Bulk write: pack every word in one vectorized pass.

        Equivalent to ``for row, word in zip(rows, words): write(row, word)``
        (same validation, counters, and energy accounting) but without the
        per-character packing loop — the hot path for fabric bulk loads.
        Callers that already packed the words (:func:`pack_words`) pass
        the (value, care) planes via ``packed`` to skip re-packing.
        """
        if len(rows) != len(words):
            raise OperationError("rows and words must have equal length")
        if len(rows) == 0:  # not `not rows`: numpy arrays are valid input
            return
        row_arr = np.asarray(rows, dtype=np.int64)
        if row_arr.min() < 0 or row_arr.max() >= self.rows:
            raise OperationError("row index out of range in bulk write")
        if len(np.unique(row_arr)) != len(row_arr):
            raise OperationError("duplicate row indices in bulk write")
        if packed is not None:
            value, care = packed
            if value.shape != (len(rows), self._n_chunks) or \
                    care.shape != (len(rows), self._n_chunks):
                raise OperationError("packed planes do not match rows/width")
        else:
            try:
                value, care = pack_words(list(words), self.width)
            except (TernaryValueError, TypeError):
                # Alias symbols ('*', '?', lowercase) or non-string
                # sequences (what write() accepts): normalizing path.
                value, care = pack_words([normalize_word(w) for w in words],
                                         self.width)
        self._planes.set_rows(row_arr, value, care)
        self.write_count += len(rows)
        model = self._resolved_energy()
        per_write = (model.write_energy_per_cell or 0.0) * self.width
        for _ in range(len(rows)):  # accumulate like sequential writes
            self.energy_spent += per_write

    def erase(self, row: int) -> None:
        """Invalidate a row and zero its stored bits.

        Clearing ``_value``/``_care`` (not just ``_valid``) guarantees an
        erased row can never ghost-match through stale bits in any masked
        or packed search path that forgets to consult the valid vector.
        """
        if not 0 <= row < self.rows:
            raise OperationError(f"row {row} out of range")
        self._planes.clear_row(row)

    def stored_word(self, row: int) -> Optional[str]:
        if not self._valid[row]:
            assert not self._value[row].any() and not self._care[row].any(), \
                f"invalid row {row} retains stale stored bits"
            return None
        return self._planes.stored_word(row)

    def stored_words(self) -> List[Optional[str]]:
        """Every row's stored word (None where invalid) in one bulk
        vectorized unpack — the snapshot reader fabric/store tiers use
        instead of a per-row, per-bit readback loop."""
        return self._planes.stored_words()

    @property
    def occupancy(self) -> int:
        return int(self._valid.sum())

    @property
    def energy_model(self) -> EnergyModel:
        """The (possibly still unresolved) pricing model in effect."""
        return self._energy

    @energy_model.setter
    def energy_model(self, model: EnergyModel) -> None:
        # What-if studies swap in a whole new frozen model; the next
        # operation prices with it (resolving lazily if fields are unset).
        self._energy = model

    # -- search -------------------------------------------------------------------

    def pack_query(self, query: str) -> np.ndarray:
        """Pack a canonical binary query into its uint64 chunk vector."""
        if len(query) != self.width:
            raise TernaryValueError(
                f"query length {len(query)} != array width {self.width}")
        if any(symbol not in "01" for symbol in query):
            # The ternary packer would silently treat 'X' as a wildcard
            # value bit; a *query* must be fully specified.
            raise TernaryValueError(
                "query must contain only '0'/'1' symbols")
        q_value, _ = pack_word(query, self.width)
        return q_value

    def pack_mask(self, mask: str) -> np.ndarray:
        """Pack a global-mask register value ('1' = compare, '0' = skip)."""
        if len(mask) != self.width:
            raise TernaryValueError("mask length != array width")
        if any(symbol not in "01" for symbol in mask):
            raise TernaryValueError(
                "mask must contain only '0'/'1' symbols")
        mask_bits, _ = pack_word(mask, self.width)
        return mask_bits

    def _resolved_energy(self) -> EnergyModel:
        """The priced model, resolving (and keeping) it on first use.

        :class:`EnergyModel` is frozen, so resolution swaps in the new
        resolved instance instead of mutating — an unresolved model
        shared with other arrays stays untouched.
        """
        model = self._energy
        if model.e_1step_per_bit is None:
            model = model.resolve()
            self._energy = model
        return model

    def _search_constants(self) -> Tuple[float, float, float, float, bool, bool]:
        """Per-word FoM constants (e1, e2, lat1, lat2, two_step, early).

        Model and policy fields are read live — swapping a new frozen
        :class:`EnergyModel` onto :attr:`energy_model` mid-run for
        what-if studies takes effect on the next search.  Only the
        design's two-step flag is cached (at construction):
        ``_finish_search`` runs for every (query, bank) pair of a batch,
        and the enum-property chain would dominate the vectorized
        kernel.
        """
        model = self._resolved_energy()
        two_step = self._two_step_search
        return (model.e_1step_per_bit * self.width,
                model.e_2step_per_bit * self.width,
                model.latency_1step, model.latency_2step,
                two_step, self.policy.early_termination and two_step)

    def _finish_search(self, match_rows: List[int], rows_searched: int,
                       step1_elim: int, step2_miss: int) -> SearchStats:
        """Shared energy/latency accounting for every search path.

        Scalar, packed, and batched searches all funnel through here with
        plain-int counts, so their energy numbers are bit-identical.
        """
        full_match = len(match_rows)
        e1, e2, lat1, lat2, two_step, early = self._search_constants()
        if two_step:
            if early:
                energy = step1_elim * e1 + (step2_miss + full_match) * e2
            else:
                energy = rows_searched * e2
            latency = lat2 if (step2_miss + full_match) > 0 else lat1
        else:
            energy = rows_searched * e2
            latency = lat2
        self.search_count += 1
        self.energy_spent += energy
        return SearchStats(matches=match_rows, rows_searched=rows_searched,
                           step1_eliminated=step1_elim,
                           step2_misses=step2_miss, full_matches=full_match,
                           energy=energy, latency=latency)

    def search_packed(self, q_value: np.ndarray,
                      mask_bits: Optional[np.ndarray] = None) -> SearchStats:
        """Fast-path search on an already-packed query chunk vector.

        Skips string normalization and packing — callers that search the
        same query against many arrays (the fabric tier) pack once via
        :meth:`pack_query` / :func:`pack_words` and reuse the vector.
        """
        q_value = np.asarray(q_value, dtype=np.uint64)
        if q_value.shape != (self._n_chunks,):
            raise TernaryValueError(
                f"packed query must have shape ({self._n_chunks},), "
                f"got {q_value.shape}")
        diff = (q_value[None, :] ^ self._value) & self._care
        if mask_bits is not None:
            mask_bits = np.asarray(mask_bits, dtype=np.uint64)
            if mask_bits.shape != (self._n_chunks,):
                raise TernaryValueError(
                    f"packed mask must have shape ({self._n_chunks},), "
                    f"got {mask_bits.shape}")
            diff = diff & mask_bits[None, :]
        miss_step1 = ((diff & self._even_mask[None, :]) != 0).any(axis=1)
        miss_step2 = ((diff & self._odd_mask[None, :]) != 0).any(axis=1)
        valid = self._valid
        match_rows = np.nonzero(valid & ~(miss_step1 | miss_step2))[0]
        step1_elim = int((valid & miss_step1).sum())
        step2_miss = int((valid & ~miss_step1 & miss_step2).sum())
        return self._finish_search([int(r) for r in match_rows],
                                   int(valid.sum()), step1_elim, step2_miss)

    def search(self, query: str, mask: Optional[str] = None) -> SearchStats:
        """Parallel search; returns matches plus early-termination stats.

        ``mask`` is the classic TCAM *global masking register*: positions
        marked '0' are excluded from the comparison for this search (a
        per-search wildcard on the query side).  It must contain only
        '0'/'1' symbols.
        """
        query = normalize_query(query)
        q_value = self.pack_query(query)
        mask_bits = self.pack_mask(mask) if mask is not None else None
        return self.search_packed(q_value, mask_bits)

    def search_first(self, query: str) -> Optional[int]:
        """Priority-encoder semantics: lowest matching row index."""
        matches = self.search(query).matches
        return matches[0] if matches else None

    def __len__(self) -> int:
        return self.rows

    def __contains__(self, word) -> bool:
        """True iff some valid row stores exactly this ternary word.

        Accepts any alias form :func:`normalize_word` does; words that
        don't normalize or whose length differs from the array width
        are simply not contained (no exception), matching ``in``
        semantics on other containers.
        """
        try:
            word = normalize_word(word)
        except (TernaryValueError, TypeError):
            return False
        if len(word) != self.width:
            return False
        value, care = pack_word(word, self.width)
        same = ((self._value == value[None, :])
                & (self._care == care[None, :])).all(axis=1)
        return bool((same & self._valid).any())

    def __repr__(self) -> str:
        return (f"<TernaryCAM {self.rows}x{self.width} "
                f"design={self.design} "
                f"occupancy={self.occupancy}/{self.rows}>")
