"""fecam.obs — unified observability for the serving stack.

One place for the three telemetry capabilities the stack previously
lacked or scattered across four silos:

* **metrics** — a process-wide :class:`MetricsRegistry` (counters,
  gauges, histograms with explicit buckets) plus adapters that fold the
  existing ``ServiceStats`` / ``StoreStats`` / ``FabricStats`` / engine
  counters into one named, labeled snapshot
  (:func:`~fecam.obs.adapters.instrument`);
* **tracing** — sampled per-request :class:`Trace` objects with
  per-stage spans (queue wait, coalesce wait, lock wait, kernel time,
  result freeze) threaded through the service → store → kernel path,
  emitted as JSON lines;
* **export** — Prometheus text exposition
  (:func:`~fecam.obs.export.render_prometheus`), JSON-lines dumps, an
  optional stdlib-only HTTP ``/metrics`` thread
  (:class:`~fecam.obs.http.MetricsServer`), and a slow-query log
  (:class:`~fecam.obs.slowlog.SlowQueryLog`).

:class:`Observability` bundles all of it behind one object a
:class:`~fecam.service.SearchService` accepts::

    from fecam.obs import Observability, Tracer, JsonLinesSink, EveryN

    obs = Observability(
        tracer=Tracer(EveryN(64), JsonLinesSink("traces.jsonl")))
    service = SearchService(store, obs=obs)
    obs.bind_service(service)          # fold all four stats silos in
    server = obs.start_http()          # GET /metrics
    print(obs.prometheus_text())

When no ``obs`` is passed, the serving hot path pays a single ``None``
check per request — observability off truly costs ~nothing.
"""

from __future__ import annotations

from typing import (TYPE_CHECKING, Any, Callable, List, Optional,
                    Sequence)

from . import adapters, export, http, slowlog, trace  # noqa: F401
from .adapters import (BATCH_SIZE_BUCKETS, instrument, instrument_cam,
                       instrument_durable, instrument_fabric,
                       instrument_service, instrument_store)
from .export import lint_prometheus, render_json_lines, render_prometheus
from .http import PROMETHEUS_CONTENT_TYPE, MetricsServer
from .registry import (DEFAULT_LATENCY_BUCKETS, Counter, FamilySnapshot,
                       Gauge, Histogram, HistogramValue, MetricFamily,
                       MetricSample, MetricsRegistry)
from .slowlog import SlowQueryLog
from .trace import (EveryN, JsonLinesSink, SeededRandom, Span, Trace,
                    Tracer, activated, active, record_span, stage)

if TYPE_CHECKING:  # circular at runtime: the service imports obs types
    from ..service import SearchService

__all__ = [
    # bundle
    "Observability",
    # registry
    "MetricsRegistry", "MetricFamily", "Counter", "Gauge", "Histogram",
    "HistogramValue", "MetricSample", "FamilySnapshot",
    "DEFAULT_LATENCY_BUCKETS",
    # adapters
    "instrument", "instrument_service", "instrument_store",
    "instrument_fabric", "instrument_cam", "instrument_durable",
    "BATCH_SIZE_BUCKETS",
    # tracing
    "Span", "Trace", "Tracer", "EveryN", "SeededRandom", "JsonLinesSink",
    "activated", "active", "record_span", "stage",
    # exporters / endpoints / slowlog
    "render_prometheus", "render_json_lines", "lint_prometheus",
    "MetricsServer", "PROMETHEUS_CONTENT_TYPE", "SlowQueryLog",
]


class Observability:
    """Everything a service needs to be observed, in one handle.

    Composes a registry, an optional tracer, and an optional slow-query
    log; owns the ``fecam_service_request_latency_seconds`` histogram
    the dispatcher feeds (batch-amortized via ``observe_many``) and a
    collect hook exporting the tracer/slowlog counters.  All pieces are
    optional: ``Observability()`` alone gives metrics with no tracing
    and no slow-query log.
    """

    def __init__(self, *, registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 slow_log: Optional[SlowQueryLog] = None,
                 latency_buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer
        self.slow_log = slow_log
        self.latency = self.registry.histogram(
            "fecam_service_request_latency_seconds",
            "End-to-end request latency (submit to completion).",
            buckets=latency_buckets)
        self._unregisters: List[Callable[[], None]] = []
        self._servers: List[MetricsServer] = []
        if tracer is not None or slow_log is not None:
            c_sampled = self.registry.counter(
                "fecam_service_traces_sampled_total",
                "Requests chosen for tracing.")
            c_finished = self.registry.counter(
                "fecam_service_traces_finished_total",
                "Traces completed and emitted.")
            c_slow = self.registry.counter(
                "fecam_service_slow_queries_total",
                "Requests logged over the slow-query threshold.")

            def hook() -> None:
                if self.tracer is not None:
                    c_sampled.set_total(self.tracer.sampled)
                    c_finished.set_total(self.tracer.finished)
                if self.slow_log is not None:
                    c_slow.set_total(self.slow_log.count)

            self._unregisters.append(self.registry.on_collect(hook))

    # -- wiring --------------------------------------------------------------------

    def bind_service(self, service: "SearchService") -> Callable[[], None]:
        """Fold ``service`` (and its store/backend) into the registry."""
        unregister = instrument(service, self.registry)
        self._unregisters.append(unregister)
        return unregister

    def record_latencies(self, latencies: Sequence[float]) -> None:
        """Record one dispatch batch of request latencies (one lock)."""
        self.latency.observe_many(latencies)

    # -- sampling shortcuts ---------------------------------------------------------

    def sample(self, started: Optional[float] = None,
               **attrs: Any) -> Optional[Trace]:
        """Tracer passthrough: a new trace or ``None`` (also when no
        tracer is configured)."""
        if self.tracer is None:
            return None
        return self.tracer.sample(started, **attrs)

    # -- export --------------------------------------------------------------------

    def prometheus_text(self) -> str:
        return render_prometheus(self.registry)

    def json_lines(self) -> str:
        return render_json_lines(self.registry)

    def start_http(self, host: str = "127.0.0.1",
                   port: int = 0) -> MetricsServer:
        """Start a daemon ``/metrics`` thread; closed with this bundle."""
        server = MetricsServer(self.registry, host=host, port=port)
        self._servers.append(server)
        return server

    # -- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        """Stop HTTP servers and detach every collect hook we added."""
        for server in self._servers:
            server.close()
        self._servers.clear()
        for unregister in self._unregisters:
            unregister()
        self._unregisters.clear()

    def __enter__(self) -> "Observability":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Observability registry={self.registry!r} "
                f"tracer={self.tracer!r} slow_log={self.slow_log!r}>")
