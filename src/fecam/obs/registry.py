"""Process-wide metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` names every time series of a serving stack
(`fecam_service_queue_depth`, `fecam_fabric_bank_occupancy{bank="3"}`,
...) and snapshots them on demand.  The design follows the Prometheus
data model — metric *families* carry a name, help text, type, and label
names; each distinct label-value combination is an independent child
series — but with no external dependency and two fecam-specific rules:

* **lock-cheap recording**: every child guards its own tiny mutex, and
  :meth:`Histogram.observe_many` takes it once per batch, so the
  serving tier records a whole dispatch's latencies in one acquisition;
* **pull adapters**: most series are not written on the hot path at
  all.  Adapters (:mod:`fecam.obs.adapters`) register ``on_collect``
  hooks that fold the existing stats silos (``ServiceStats``,
  ``StoreStats``, ``FabricStats``, the engine's cam counters) into the
  registry only when a snapshot is requested — the request path pays
  nothing for them.

Registration is validated and idempotent: re-registering an identical
family returns the existing object; any mismatch (type, label names,
buckets) raises :class:`~fecam.errors.ObservabilityError`.
"""

from __future__ import annotations

import bisect
import math
import re
import threading

from dataclasses import dataclass
from typing import (Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple, Union)

from ..errors import ObservabilityError

__all__ = ["MetricsRegistry", "MetricFamily", "Counter", "Gauge",
           "Histogram", "HistogramValue", "MetricSample", "FamilySnapshot",
           "DEFAULT_LATENCY_BUCKETS"]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets for request latencies (seconds): log-ish
#: spacing from 10 us to 1 s, the range a micro-batched in-process
#: search service actually occupies.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0)


@dataclass(frozen=True)
class HistogramValue:
    """Snapshot of one histogram child: cumulative buckets + sum/count.

    ``buckets`` pairs each upper bound with the count of observations
    ``<= bound`` (Prometheus ``le`` semantics); the implicit ``+Inf``
    bucket is included last, so its count always equals ``count``.
    """

    buckets: Tuple[Tuple[float, int], ...]
    sum: float
    count: int


@dataclass(frozen=True)
class MetricSample:
    """One child series at snapshot time."""

    labels: Tuple[Tuple[str, str], ...]  # (name, value) pairs, family order
    value: Union[float, HistogramValue]


@dataclass(frozen=True)
class FamilySnapshot:
    """One metric family at snapshot time (what exporters consume)."""

    name: str
    help: str
    kind: str  # "counter" | "gauge" | "histogram"
    labelnames: Tuple[str, ...]
    samples: Tuple[MetricSample, ...]


class _Child:
    """Base of one labeled series; subclasses hold the actual value."""

    __slots__ = ("_lock",)

    def __init__(self) -> None:
        self._lock = threading.Lock()


class Counter(_Child):
    """Monotonically increasing count (events, requests, joules)."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        super().__init__()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counters only go up (inc by {amount})")
        with self._lock:
            self._value += amount

    def set_total(self, value: float) -> None:
        """Mirror an externally-accumulated total into this counter.

        The adapter hook for the existing stats silos: their cumulative
        counters are the source of truth, and this series reflects them
        at collect time.  The mirrored value may reset (a store swap
        restarts its counters) exactly like a process restart resets a
        native Prometheus counter.
        """
        with self._lock:
            self._value = float(value)

    def get(self) -> float:
        with self._lock:
            return self._value

    def _snapshot(self) -> float:
        return self.get()


class Gauge(_Child):
    """Point-in-time value (queue depth, occupancy, hit rate)."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        super().__init__()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    def get(self) -> float:
        with self._lock:
            return self._value

    def _snapshot(self) -> float:
        return self.get()


class Histogram(_Child):
    """Distribution with explicit, cumulative-exported buckets.

    ``bounds`` are inclusive upper edges (Prometheus ``le``): an
    observation lands in the first bucket whose bound is ``>= value``,
    or the implicit ``+Inf`` overflow.  Internally counts are stored
    per-bucket (non-cumulative) so ``observe`` is O(log buckets); the
    snapshot accumulates.
    """

    __slots__ = ("_bounds", "_counts", "_sum", "_count")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        super().__init__()
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # + the +Inf overflow
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def observe_many(self, values: Sequence[float]) -> None:
        """Record a batch under one lock acquisition.

        The serving tier's dispatcher records every latency of a drain
        in one call, so per-request overhead amortizes across the batch.
        Large batches sort once (C timsort) and walk the bounds with
        one C bisect each — O(bounds) interpreter iterations per batch
        instead of O(values), which is what keeps metrics-only serving
        overhead under the benchmark's 1% ceiling.
        """
        if not values:
            return
        bounds = self._bounds
        n = len(values)
        if n <= len(bounds):
            with self._lock:
                counts = self._counts
                for value in values:
                    counts[bisect.bisect_left(bounds, value)] += 1
                self._sum += sum(values)
                self._count += n
            return
        ordered = sorted(values)
        bisect_right = bisect.bisect_right
        with self._lock:
            counts = self._counts
            previous = 0
            for index, bound in enumerate(bounds):
                cumulative = bisect_right(ordered, bound)
                counts[index] += cumulative - previous
                previous = cumulative
                if previous == n:
                    break
            counts[len(bounds)] += n - previous
            self._sum += sum(ordered)
            self._count += n

    def load(self, pairs: Iterable[Tuple[float, int]]) -> None:
        """Replace this histogram's state from ``(value, count)`` pairs.

        The adapter hook for pre-aggregated silo histograms (the
        service's ``batch_size_hist``): the whole distribution is
        re-derived at collect time from the silo's exact counts.
        """
        bounds = self._bounds
        counts = [0] * (len(bounds) + 1)
        total = 0.0
        n = 0
        for value, count in pairs:
            counts[bisect.bisect_left(bounds, value)] += count
            total += value * count
            n += count
        with self._lock:
            self._counts = counts
            self._sum = total
            self._count = n

    def _snapshot(self) -> HistogramValue:
        with self._lock:
            counts = list(self._counts)
            total, n = self._sum, self._count
        cumulative: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self._bounds, counts):
            running += count
            cumulative.append((bound, running))
        cumulative.append((math.inf, n))
        return HistogramValue(buckets=tuple(cumulative), sum=total, count=n)


_CHILD_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric and all of its labeled children.

    Families without label names proxy the child API directly
    (``family.inc()`` etc.); labeled families hand out children via
    :meth:`labels`.
    """

    def __init__(self, name: str, help: str, kind: str,
                 labelnames: Tuple[str, ...],
                 buckets: Optional[Tuple[float, ...]] = None):
        self.name = name
        self.help = help
        self.kind = kind
        self.labelnames = labelnames
        self.buckets = buckets
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], _Child] = {}
        if not labelnames:
            self._children[()] = self._new_child()

    def _new_child(self) -> _Child:
        if self.kind == "histogram":
            return Histogram(self.buckets)
        return _CHILD_TYPES[self.kind]()

    def labels(self, **labelvalues) -> _Child:
        """The child series for one label-value combination.

        Values are coerced to ``str`` (Prometheus labels are strings);
        children are created on first use and live for the registry's
        lifetime.
        """
        if set(labelvalues) != set(self.labelnames):
            raise ObservabilityError(
                f"metric {self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}")
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._new_child()
                self._children[key] = child
            return child

    def _sole_child(self) -> _Child:
        if self.labelnames:
            raise ObservabilityError(
                f"metric {self.name} has labels {self.labelnames}; "
                f"address a child via .labels() first")
        return self._children[()]

    # Unlabeled convenience proxies -----------------------------------------------

    def inc(self, amount: float = 1.0) -> None:
        self._sole_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._sole_child().dec(amount)

    def set(self, value: float) -> None:
        self._sole_child().set(value)

    def set_total(self, value: float) -> None:
        self._sole_child().set_total(value)

    def get(self) -> float:
        return self._sole_child().get()

    def observe(self, value: float) -> None:
        self._sole_child().observe(value)

    def observe_many(self, values: Sequence[float]) -> None:
        self._sole_child().observe_many(values)

    def load(self, pairs: Iterable[Tuple[float, int]]) -> None:
        self._sole_child().load(pairs)

    # Snapshot --------------------------------------------------------------------

    def snapshot(self) -> FamilySnapshot:
        with self._lock:
            children = sorted(self._children.items())
        samples = tuple(
            MetricSample(labels=tuple(zip(self.labelnames, key)),
                         value=child._snapshot())
            for key, child in children)
        return FamilySnapshot(name=self.name, help=self.help,
                              kind=self.kind, labelnames=self.labelnames,
                              samples=samples)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<MetricFamily {self.kind} {self.name} "
                f"labels={self.labelnames} children={len(self._children)}>")


def _validate_name(name: str) -> None:
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise ObservabilityError(
            f"invalid metric name {name!r} (want [a-zA-Z_:][a-zA-Z0-9_:]*)")


def _validate_labelnames(labelnames: Sequence[str], kind: str) -> Tuple[str, ...]:
    names = tuple(labelnames)
    for label in names:
        if not isinstance(label, str) or not _LABEL_RE.match(label):
            raise ObservabilityError(
                f"invalid label name {label!r} "
                f"(want [a-zA-Z_][a-zA-Z0-9_]*)")
        if label.startswith("__"):
            raise ObservabilityError(
                f"label name {label!r} is reserved (double underscore)")
        if kind == "histogram" and label == "le":
            raise ObservabilityError(
                "'le' is the histogram bucket label; it cannot be a "
                "user label")
    if len(set(names)) != len(names):
        raise ObservabilityError(f"duplicate label names in {names}")
    return names


def _validate_buckets(buckets: Sequence[float]) -> Tuple[float, ...]:
    bounds = tuple(float(b) for b in buckets)
    if not bounds:
        raise ObservabilityError("histograms need at least one bucket")
    for bound in bounds:
        if not math.isfinite(bound):
            raise ObservabilityError(
                "explicit buckets must be finite (+Inf is implicit)")
    if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
        raise ObservabilityError(
            f"bucket bounds must be strictly increasing, got {bounds}")
    return bounds


class MetricsRegistry:
    """A namespace of metric families plus collect-time pull hooks.

    >>> registry = MetricsRegistry()
    >>> served = registry.counter("demo_served_total", "Requests served.")
    >>> served.inc()
    >>> [f.name for f in registry.collect()]
    ['demo_served_total']
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}
        self._hooks: List[Callable[[], None]] = []

    # -- registration ------------------------------------------------------------

    def _register(self, name: str, help: str, kind: str,
                  labelnames: Sequence[str],
                  buckets: Optional[Sequence[float]]) -> MetricFamily:
        _validate_name(name)
        names = _validate_labelnames(labelnames, kind)
        bounds = _validate_buckets(buckets) if kind == "histogram" else None
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if (existing.kind != kind or existing.labelnames != names
                        or existing.buckets != bounds):
                    raise ObservabilityError(
                        f"metric {name} already registered as "
                        f"{existing.kind}{existing.labelnames} "
                        f"(buckets={existing.buckets}); cannot re-register "
                        f"as {kind}{names} (buckets={bounds})")
                return existing
            family = MetricFamily(name, help, kind, names, bounds)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> MetricFamily:
        return self._register(name, help, "counter", labelnames, None)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> MetricFamily:
        return self._register(name, help, "gauge", labelnames, None)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
                  ) -> MetricFamily:
        return self._register(name, help, "histogram", labelnames, buckets)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._families

    def get(self, name: str) -> Optional[MetricFamily]:
        with self._lock:
            return self._families.get(name)

    # -- collect-time pull hooks ---------------------------------------------------

    def on_collect(self, hook: Callable[[], None]) -> Callable[[], None]:
        """Run ``hook`` before every snapshot; returns an unregisterer.

        This is how adapters fold live stats silos into the registry
        without touching the hot path: the silo is read (and the
        mirrored series updated) only when someone actually collects.
        """
        with self._lock:
            self._hooks.append(hook)

        def unregister() -> None:
            with self._lock:
                try:
                    self._hooks.remove(hook)
                except ValueError:
                    pass  # already unregistered

        return unregister

    # -- snapshot ------------------------------------------------------------------

    def collect(self) -> List[FamilySnapshot]:
        """Run the pull hooks, then snapshot every family (name order)."""
        with self._lock:
            hooks = list(self._hooks)
        for hook in hooks:
            hook()
        with self._lock:
            families = sorted(self._families.items())
        return [family.snapshot() for _, family in families]

    def __repr__(self) -> str:  # pragma: no cover
        with self._lock:
            return (f"<MetricsRegistry families={len(self._families)} "
                    f"hooks={len(self._hooks)}>")
