"""Sampled structured tracing for the serving stack.

A :class:`Trace` is one request's timeline: a root ``request`` span
plus per-stage child spans (queue wait, coalesce wait, lock wait,
kernel time, result freeze) recorded by the layers a request passes
through.  Traces are *sampled* — a :class:`Tracer` decides 1-in-N at
submission, and unsampled requests carry no trace at all, so the fast
path's only cost is a ``None`` check.

Layers below the service do not take a trace argument: the dispatcher
*activates* the sampled traces of a dispatch around its store call
(:func:`activated`), and instrumented code down the stack
(``CamStore.search_batch``, the fused arena kernel) records stage spans
into whatever is active via :func:`record_span` / :func:`stage` — a
thread-local lookup that costs one attribute read when tracing is off.

Finished traces are emitted as JSON lines (:class:`JsonLinesSink`),
one object per trace, with every span as a start-offset/duration pair
relative to the request's submission — the workload-trace format the
ROADMAP's autotuner consumes (query bits, batch size, generation, and
per-stage timings per sampled request).
"""

from __future__ import annotations

import io
import itertools
import json
import random
import threading
import time

from contextlib import contextmanager
from typing import (Any, Callable, Dict, Iterator, List, Optional,
                    Sequence, Tuple, Union)

__all__ = ["Span", "Trace", "Tracer", "EveryN", "SeededRandom",
           "JsonLinesSink", "activated", "active", "record_span", "stage"]

ROOT_SPAN_NAME = "request"


class Span:
    """One named interval inside a trace.

    ``start``/``end`` are ``time.perf_counter()`` readings (the same
    clock the service's latency accounting uses), so span arithmetic
    against the request's end-to-end latency is exact.  ``end`` is
    ``None`` while the span is open.
    """

    __slots__ = ("span_id", "parent_id", "name", "start", "end", "attrs")

    def __init__(self, span_id: int, parent_id: Optional[int], name: str,
                 start: float, end: Optional[float] = None,
                 attrs: Optional[Dict[str, Any]] = None):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end = end
        self.attrs = attrs if attrs is not None else {}

    def close(self, end: Optional[float] = None) -> "Span":
        self.end = time.perf_counter() if end is None else end
        return self

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Span #{self.span_id} {self.name} parent={self.parent_id} "
                f"dur={self.duration * 1e6:.1f}us>")


class Trace:
    """One sampled request's spans, rooted at a ``request`` span.

    Span ids are allocated per trace starting at 1 (the root); a span's
    ``parent_id`` defaults to the root, so stage spans recorded by any
    layer nest under the request without the layers knowing each other.
    """

    def __init__(self, trace_id: int, started: Optional[float] = None,
                 **attrs: Any):
        self.trace_id = trace_id
        self.started_wall = time.time()
        self._lock = threading.Lock()
        self._next_id = 2  # 1 is the root
        start = time.perf_counter() if started is None else started
        self.root = Span(1, None, ROOT_SPAN_NAME, start, attrs=dict(attrs))
        self.spans: List[Span] = [self.root]

    @property
    def root_id(self) -> int:
        return self.root.span_id

    def open(self, name: str, start: Optional[float] = None,
             parent_id: Optional[int] = None, **attrs: Any) -> Span:
        """Begin a span; close it with :meth:`Span.close`."""
        if start is None:
            start = time.perf_counter()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            span = Span(span_id, self.root.span_id
                        if parent_id is None else parent_id,
                        name, start, attrs=dict(attrs) if attrs else None)
            self.spans.append(span)
        return span

    def record(self, name: str, start: float, end: float,
               parent_id: Optional[int] = None, **attrs: Any) -> Span:
        """Record an already-measured interval as one closed span."""
        return self.open(name, start, parent_id, **attrs).close(end)

    def finish(self, end: Optional[float] = None) -> "Trace":
        self.root.close(end)
        return self

    @property
    def finished(self) -> bool:
        return self.root.end is not None

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form: offsets/durations in seconds from the root.

        Schema (one object per trace, stable keys)::

            {"trace_id": int, "ts": float,        # wall clock at submit
             "duration_s": float,                  # root span = e2e
             "attrs": {...},                       # request attributes
             "spans": [{"id": int, "parent": int | None, "name": str,
                        "start_s": float,          # offset from submit
                        "duration_s": float,
                        "attrs": {...}}, ...]}     # omitted when empty
        """
        t0 = self.root.start
        spans = []
        with self._lock:
            snapshot = list(self.spans)
        for span in snapshot:
            row: Dict[str, Any] = {
                "id": span.span_id, "parent": span.parent_id,
                "name": span.name, "start_s": span.start - t0,
                "duration_s": span.duration}
            if span.attrs:
                row["attrs"] = span.attrs
            spans.append(row)
        return {"trace_id": self.trace_id, "ts": self.started_wall,
                "duration_s": self.root.duration,
                "attrs": self.root.attrs, "spans": spans}

    def __repr__(self) -> str:  # pragma: no cover
        state = "finished" if self.finished else "open"
        return (f"<Trace #{self.trace_id} {state} "
                f"spans={len(self.spans)}>")


# -- samplers ------------------------------------------------------------------


class EveryN:
    """Deterministic 1-in-N sampler: fires on request 0, N, 2N, ...

    ``EveryN(1)`` traces everything (tests, short repros);
    the counter is an :class:`itertools.count`, so concurrent
    submitters never double-sample a slot.
    """

    def __init__(self, n: int):
        if n < 1:
            raise ValueError(f"sampling period must be >= 1, got {n}")
        self.n = n
        self._counter = itertools.count()

    def __call__(self) -> bool:
        return next(self._counter) % self.n == 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"EveryN({self.n})"


class SeededRandom:
    """Bernoulli sampler with a seeded, reproducible decision stream.

    Two samplers built with the same ``(rate, seed)`` make identical
    decisions for the same request sequence — the property the sampling
    determinism tests pin.
    """

    def __init__(self, rate: float, seed: int = 0):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sampling rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.seed = seed
        self._rng = random.Random(seed)

    def __call__(self) -> bool:
        return self._rng.random() < self.rate

    def __repr__(self) -> str:  # pragma: no cover
        return f"SeededRandom(rate={self.rate}, seed={self.seed})"


# -- sinks ---------------------------------------------------------------------


class JsonLinesSink:
    """Append JSON objects, one per line, to a path or file object.

    Thread-safe; every ``write`` flushes, so a reader (the autotuner, a
    tail -f) sees complete lines as they land.  ``count`` is the number
    of objects written.
    """

    def __init__(self, target: Union[str, "io.TextIOBase"],
                 mode: str = "w"):
        self._lock = threading.Lock()
        if isinstance(target, str):
            self._file = open(target, mode)
            self._owns = True
            self.path: Optional[str] = target
        else:
            self._file = target
            self._owns = False
            self.path = getattr(target, "name", None)
        self.count = 0

    def write(self, obj: Dict[str, Any]) -> None:
        line = json.dumps(obj, separators=(",", ":"), sort_keys=True)
        with self._lock:
            self._file.write(line + "\n")
            self._file.flush()
            self.count += 1

    def close(self) -> None:
        with self._lock:
            if self._owns:
                self._file.close()

    def __enter__(self) -> "JsonLinesSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- tracer --------------------------------------------------------------------


class Tracer:
    """Decides which requests are traced and where traces go.

    ``sampler`` is any zero-argument callable returning ``bool``
    (:class:`EveryN`, :class:`SeededRandom`, or your own); ``sink``
    receives every finished trace's :meth:`Trace.as_dict`.  The
    telemetry counters (``sampled``/``finished``) feed the registry via
    the Observability bundle's collect hook.
    """

    def __init__(self, sampler: Optional[Callable[[], bool]] = None,
                 sink: Optional[JsonLinesSink] = None, *,
                 sample_every: int = 128):
        self.sampler = sampler if sampler is not None else EveryN(sample_every)
        self.sink = sink
        self.sampled = 0
        self.finished = 0
        self._ids = itertools.count(1)

    def sample(self, started: Optional[float] = None,
               **attrs: Any) -> Optional[Trace]:
        """One sampling decision: a new :class:`Trace` or ``None``.

        ``started`` pins the root span's start (a ``perf_counter``
        reading) so stage arithmetic lines up exactly with the caller's
        own latency accounting.
        """
        if not self.sampler():
            return None
        return self.begin(started, **attrs)

    def begin(self, started: Optional[float] = None,
              **attrs: Any) -> Trace:
        """Start a trace unconditionally (the sampler already fired).

        Hot callers invoke ``tracer.sampler()`` inline and only pay
        this call on a positive decision — :meth:`sample` is the
        one-call convenience for everyone else.
        """
        self.sampled += 1
        return Trace(next(self._ids), started, **attrs)

    def finish(self, trace: Trace, end: Optional[float] = None) -> None:
        """Close the root span and emit the trace to the sink."""
        trace.finish(end)
        self.finished += 1
        if self.sink is not None:
            self.sink.write(trace.as_dict())

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Tracer sampler={self.sampler!r} sampled={self.sampled} "
                f"finished={self.finished}>")


# -- active-trace threading ----------------------------------------------------

_ACTIVE = threading.local()

#: One activation target: a trace plus the span id that lower-layer
#: stage spans should parent to.
Target = Tuple[Trace, int]


def active() -> Tuple[Target, ...]:
    """The traces currently activated on this thread (usually empty)."""
    return getattr(_ACTIVE, "targets", ())


@contextmanager
def activated(targets: Sequence[Target]) -> Iterator[None]:
    """Make ``targets`` the active traces for the enclosed block.

    The service dispatcher activates a dispatch group's sampled traces
    around its ``store.search_batch`` call; everything the store and
    kernel record inside lands on each of them, parented to the span id
    the dispatcher chose (its own ``kernel`` span).
    """
    previous = getattr(_ACTIVE, "targets", ())
    _ACTIVE.targets = tuple(targets)
    try:
        yield
    finally:
        _ACTIVE.targets = previous


def record_span(targets: Sequence[Target], name: str, start: float,
                end: float, **attrs: Any) -> None:
    """Record one measured interval into every target trace."""
    for trace, parent_id in targets:
        trace.record(name, start, end, parent_id=parent_id, **attrs)


@contextmanager
def stage(name: str, **attrs: Any) -> Iterator[None]:
    """Time the enclosed block as a stage span on every active trace.

    When nothing is active this is a no-op beyond one thread-local
    read — instrumented layers call it once per *batch*, so the
    untraced hot path pays nanoseconds per dispatch, not per request.
    """
    targets = active()
    if not targets:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        record_span(targets, name, start, time.perf_counter(), **attrs)
