"""Adapters: fold the existing stats silos into one metrics registry.

The stack already keeps four disconnected telemetry silos —
:class:`~fecam.service.ServiceStats`, :class:`~fecam.store.StoreStats`,
:class:`~fecam.fabric.FabricStats`, and the engine-level cam counters
behind :class:`~fecam.functional.SearchStats` — each with its own
shape.  These adapters register *collect-time hooks* that read each
silo and mirror it into named, labeled registry series
(``fecam_service_queue_depth``,
``fecam_fabric_bank_occupancy{bank="3"}``, ...).  Nothing here touches
the request path: the silos stay the source of truth, and the mirror
refreshes only when a snapshot is collected (a scrape, a dump).

:func:`instrument` is the one-call entry point: hand it a
:class:`~fecam.service.SearchService` and it wires the service, its
store, and the store's backend (fabric banks and cams included) in one
go.  Every ``instrument_*`` returns an unregister callable.
"""

from __future__ import annotations

from typing import Callable, List

from .. import kernels as _kernels
from .registry import MetricsRegistry

__all__ = ["instrument", "instrument_service", "instrument_store",
           "instrument_fabric", "instrument_cam", "instrument_durable",
           "instrument_cluster", "BATCH_SIZE_BUCKETS"]

#: Buckets for the mirrored batch-size histogram: powers of two up to
#: the largest max_batch anyone realistically configures.
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
                      256.0, 512.0, 1024.0)

Unregister = Callable[[], None]


def instrument_service(service, registry: MetricsRegistry) -> Unregister:
    """Mirror a :class:`~fecam.service.SearchService`'s ServiceStats."""
    c_submitted = registry.counter(
        "fecam_service_submitted_total",
        "Requests accepted into the service queue.")
    c_served = registry.counter(
        "fecam_service_served_total",
        "Requests completed with a result.")
    c_failed = registry.counter(
        "fecam_service_failed_total",
        "Requests completed with an exception.")
    c_overloads = registry.counter(
        "fecam_service_overloads_total",
        "Submissions rejected by queue backpressure.")
    c_batches = registry.counter(
        "fecam_service_batches_total",
        "Dispatches issued to the store.")
    c_coalesced = registry.counter(
        "fecam_service_coalesced_total",
        "Requests served in a fused batch of size > 1.")
    c_direct = registry.counter(
        "fecam_service_direct_total",
        "Requests that dispatched alone.")
    c_writes = registry.counter(
        "fecam_service_writes_total",
        "Write transactions applied through the service.")
    g_queue_depth = registry.gauge(
        "fecam_service_queue_depth",
        "Requests waiting in the queue right now.")
    g_max_queue_depth = registry.gauge(
        "fecam_service_max_queue_depth",
        "High-water mark of the bounded request queue.")
    g_pending = registry.gauge(
        "fecam_service_pending",
        "Requests accepted but not yet completed.")
    g_generation = registry.gauge(
        "fecam_service_generation",
        "Store write-generation at the last snapshot.")
    g_p50 = registry.gauge(
        "fecam_service_p50_latency_seconds",
        "Windowed median request latency (latency reservoir).")
    g_p99 = registry.gauge(
        "fecam_service_p99_latency_seconds",
        "Windowed tail request latency (latency reservoir).")
    g_uptime = registry.gauge(
        "fecam_service_uptime_seconds",
        "Seconds since the service was constructed.")
    h_batch = registry.histogram(
        "fecam_service_batch_size",
        "Requests per dispatch batch (mirrored exact counts).",
        buckets=BATCH_SIZE_BUCKETS)

    def hook() -> None:
        stats = service.stats
        c_submitted.set_total(stats.submitted)
        c_served.set_total(stats.served)
        c_failed.set_total(stats.failed)
        c_overloads.set_total(stats.overloads)
        c_batches.set_total(stats.batches)
        c_coalesced.set_total(stats.coalesced)
        c_direct.set_total(stats.direct)
        c_writes.set_total(stats.writes)
        g_queue_depth.set(stats.queue_depth)
        g_max_queue_depth.set(stats.max_queue_depth)
        g_pending.set(stats.pending)
        g_generation.set(stats.generation)
        g_p50.set(stats.p50_latency)
        g_p99.set(stats.p99_latency)
        g_uptime.set(stats.uptime_s)
        h_batch.load(stats.batch_size_hist.items())

    return registry.on_collect(hook)


def instrument_store(store, registry: MetricsRegistry) -> Unregister:
    """Mirror a :class:`~fecam.store.CamStore`'s StoreStats."""
    c_searches = registry.counter(
        "fecam_store_searches_total",
        "Queries answered by the store, including cache hits.")
    c_array_searches = registry.counter(
        "fecam_store_array_searches_total",
        "Queries that actually fired the arrays.")
    c_writes = registry.counter(
        "fecam_store_writes_total",
        "Insert/update/delete operations applied.")
    c_cache_hits = registry.counter(
        "fecam_store_cache_hits_total",
        "Store-level query-cache hits.")
    c_cache_misses = registry.counter(
        "fecam_store_cache_misses_total",
        "Store-level query-cache misses.")
    c_energy = registry.counter(
        "fecam_store_energy_joules_total",
        "Joules spent by the arrays (searches + writes).")
    g_occupancy = registry.gauge(
        "fecam_store_occupancy", "Live entries in the store.")
    g_capacity = registry.gauge(
        "fecam_store_capacity", "Total rows across all banks.")
    g_hit_rate = registry.gauge(
        "fecam_store_cache_hit_rate", "Query-cache hit rate [0, 1].")
    g_worst_latency = registry.gauge(
        "fecam_store_worst_latency_seconds",
        "Worst single-query array latency observed.")
    g_generation = registry.gauge(
        "fecam_store_generation",
        "Monotonic write-generation of the store content.")
    g_kernel = registry.gauge(
        "fecam_kernel_backend",
        "Match-kernel backend in use (1 on the active backend's "
        "label, 0 elsewhere).", labelnames=("backend",))

    def hook() -> None:
        stats = store.stats
        active = _kernels.backend_name()
        for name in ("numpy", "compiled"):
            g_kernel.labels(backend=name).set(
                1.0 if name == active else 0.0)
        c_searches.set_total(stats.searches)
        c_array_searches.set_total(stats.array_searches)
        c_writes.set_total(stats.writes)
        c_cache_hits.set_total(stats.cache_hits)
        c_cache_misses.set_total(stats.cache_misses)
        c_energy.set_total(stats.energy_total)
        g_occupancy.set(stats.occupancy)
        g_capacity.set(stats.capacity)
        g_hit_rate.set(stats.cache_hit_rate)
        g_worst_latency.set(stats.worst_latency)
        g_generation.set(store.generation)

    return registry.on_collect(hook)


def instrument_fabric(fabric, registry: MetricsRegistry) -> Unregister:
    """Mirror a :class:`~fecam.fabric.TcamFabric`'s FabricStats,
    including the per-bank telemetry behind the paper's step-1
    early-termination story (labeled by ``bank``)."""
    c_searches = registry.counter(
        "fecam_fabric_searches_total",
        "Queries answered by the fabric, including cache hits.")
    c_array_searches = registry.counter(
        "fecam_fabric_array_searches_total",
        "Queries that fired the banks.")
    c_cache_hits = registry.counter(
        "fecam_fabric_cache_hits_total", "Fabric query-cache hits.")
    c_cache_misses = registry.counter(
        "fecam_fabric_cache_misses_total", "Fabric query-cache misses.")
    c_energy = registry.counter(
        "fecam_fabric_energy_joules_total",
        "Joules spent across every bank.")
    g_occupancy = registry.gauge(
        "fecam_fabric_occupancy", "Live entries across all banks.")
    g_worst_latency = registry.gauge(
        "fecam_fabric_worst_latency_seconds",
        "Worst merged search latency observed.")
    g_bank_occupancy = registry.gauge(
        "fecam_fabric_bank_occupancy",
        "Live entries per bank.", labelnames=("bank",))
    c_bank_searches = registry.counter(
        "fecam_fabric_bank_searches_total",
        "Searches fired per bank.", labelnames=("bank",))
    c_bank_energy = registry.counter(
        "fecam_fabric_bank_energy_joules_total",
        "Joules spent per bank.", labelnames=("bank",))
    c_rows_examined = registry.counter(
        "fecam_fabric_rows_examined_total",
        "Rows examined per bank across all searches.",
        labelnames=("bank",))
    c_step1_eliminated = registry.counter(
        "fecam_fabric_step1_eliminated_total",
        "Rows resolved by step 1 per bank (early termination).",
        labelnames=("bank",))
    g_step1_miss_rate = registry.gauge(
        "fecam_fabric_step1_miss_rate",
        "Step-1 miss rate per bank [0, 1].", labelnames=("bank",))

    def hook() -> None:
        stats = fabric.stats
        c_searches.set_total(stats.searches)
        c_array_searches.set_total(stats.array_searches)
        c_cache_hits.set_total(stats.cache_hits)
        c_cache_misses.set_total(stats.cache_misses)
        c_energy.set_total(stats.energy_total)
        g_occupancy.set(stats.occupancy)
        g_worst_latency.set(stats.worst_latency)
        for bank in stats.per_bank:
            label = str(bank.bank_id)
            g_bank_occupancy.labels(bank=label).set(bank.occupancy)
            c_bank_searches.labels(bank=label).set_total(bank.searches)
            c_bank_energy.labels(bank=label).set_total(bank.energy)
            c_rows_examined.labels(bank=label).set_total(
                bank.rows_examined)
            c_step1_eliminated.labels(bank=label).set_total(
                bank.step1_eliminated)
            g_step1_miss_rate.labels(bank=label).set(
                bank.step1_miss_rate)

    return registry.on_collect(hook)


def instrument_cam(cam, registry: MetricsRegistry,
                   bank: int = 0) -> Unregister:
    """Mirror one :class:`~fecam.functional.TernaryCAM`'s cumulative
    engine counters (the silo behind every per-search
    :class:`~fecam.functional.SearchStats`)."""
    c_searches = registry.counter(
        "fecam_cam_searches_total",
        "Array searches executed by the engine.", labelnames=("bank",))
    c_writes = registry.counter(
        "fecam_cam_writes_total",
        "Row writes executed by the engine.", labelnames=("bank",))
    c_energy = registry.counter(
        "fecam_cam_energy_joules_total",
        "Joules the engine charged this array.", labelnames=("bank",))
    label = str(bank)

    def hook() -> None:
        c_searches.labels(bank=label).set_total(cam.search_count)
        c_writes.labels(bank=label).set_total(cam.write_count)
        c_energy.labels(bank=label).set_total(cam.energy_spent)

    return registry.on_collect(hook)


def instrument_durable(store, registry: MetricsRegistry) -> Unregister:
    """Wire a :class:`~fecam.durable.DurableCamStore`'s persistence
    telemetry: WAL append/fsync and snapshot latency histograms (fed
    inline through the layer's callback taps), plus collect-time
    counters for records, bytes, fsyncs, snapshots, and the records
    replayed by the recovery that produced this store."""
    h_append = registry.histogram(
        "fecam_wal_append_seconds",
        "Wall time of one WAL record append (encode + write + flush).")
    h_fsync = registry.histogram(
        "fecam_wal_fsync_seconds",
        "Wall time of one WAL fsync (policy-dependent frequency).")
    h_snapshot = registry.histogram(
        "fecam_snapshot_duration_seconds",
        "Wall time of one arena snapshot (serialize + fsync + rename).")
    c_records = registry.counter(
        "fecam_wal_records_total", "WAL records appended.")
    c_bytes = registry.counter(
        "fecam_wal_bytes_total", "WAL bytes appended (frames + magic).")
    c_fsyncs = registry.counter(
        "fecam_wal_fsyncs_total", "WAL fsync calls issued.")
    c_snapshots = registry.counter(
        "fecam_snapshots_total", "Arena snapshots written.")
    c_replayed = registry.counter(
        "fecam_recovery_replayed_records_total",
        "WAL records replayed by the recovery that built this store.")
    g_snap_gen = registry.gauge(
        "fecam_snapshot_generation",
        "Write-generation of the newest snapshot on disk.")

    wal = store.wal
    prev_append = wal.on_append
    prev_fsync = wal.on_fsync
    prev_snapshot = store.on_snapshot

    # Inline taps chain rather than replace, so stacking adapters (or a
    # bench harness tapping alongside) keeps everyone fed.
    def on_append(seconds: float, nbytes: int) -> None:
        h_append.observe(seconds)
        if prev_append is not None:
            prev_append(seconds, nbytes)

    def on_fsync(seconds: float) -> None:
        h_fsync.observe(seconds)
        if prev_fsync is not None:
            prev_fsync(seconds)

    def on_snapshot(seconds: float) -> None:
        h_snapshot.observe(seconds)
        if prev_snapshot is not None:
            prev_snapshot(seconds)

    wal.on_append = on_append
    wal.on_fsync = on_fsync
    store.on_snapshot = on_snapshot

    def hook() -> None:
        c_records.set_total(wal.appended_records)
        c_bytes.set_total(wal.appended_bytes)
        c_fsyncs.set_total(wal.fsyncs)
        c_snapshots.set_total(store.snapshots_taken)
        c_replayed.set_total(store.recovered_records)
        g_snap_gen.set(store.snapshot_generation)

    unhook = registry.on_collect(hook)

    def unregister() -> None:
        unhook()
        wal.on_append = prev_append
        wal.on_fsync = prev_fsync
        store.on_snapshot = prev_snapshot

    return unregister


def instrument_cluster(service, registry: MetricsRegistry) -> Unregister:
    """Mirror a :class:`~fecam.cluster.ClusterService`'s per-worker
    telemetry, labeled by ``worker``.  The front-door ServiceStats are
    covered by :func:`instrument_service` (the cluster service keeps
    the same stats shape on purpose); this adapter adds the replica
    side: each worker's search counters, published generation, and
    liveness, gathered over the stats RPC at collect time.  Dead
    workers keep their last mirrored values and report ``alive`` 0."""
    g_alive = registry.gauge(
        "fecam_cluster_worker_alive",
        "1 while the worker process is serving, 0 once it has died.",
        labelnames=("worker",))
    c_restarts = registry.counter(
        "fecam_cluster_worker_restarts_total",
        "Times the worker was respawned after dying.",
        labelnames=("worker",))
    g_generation = registry.gauge(
        "fecam_cluster_worker_generation",
        "Published arena generation the worker last observed.",
        labelnames=("worker",))
    c_searches = registry.counter(
        "fecam_cluster_worker_searches_total",
        "Queries the worker served from its arena view.",
        labelnames=("worker",))
    c_energy = registry.counter(
        "fecam_cluster_worker_energy_joules_total",
        "Joules the worker's banks charged for searches.",
        labelnames=("worker",))
    c_rows_examined = registry.counter(
        "fecam_cluster_worker_rows_examined_total",
        "Rows the worker examined across all searches.",
        labelnames=("worker",))
    c_step1_eliminated = registry.counter(
        "fecam_cluster_worker_step1_eliminated_total",
        "Rows the worker resolved by step 1 (early termination).",
        labelnames=("worker",))
    g_worst_latency = registry.gauge(
        "fecam_cluster_worker_worst_latency_seconds",
        "Worst modeled search latency the worker observed.",
        labelnames=("worker",))
    g_workers = registry.gauge(
        "fecam_cluster_workers",
        "Worker processes currently alive.")
    g_writer_ok = registry.gauge(
        "fecam_cluster_writer_ok",
        "1 while the writer accepts mutations, 0 after writer failure.")

    def hook() -> None:
        telemetry = service.worker_stats()
        alive = 0
        for row in telemetry:
            label = str(row["worker_id"])
            is_alive = bool(row.get("alive"))
            alive += int(is_alive)
            g_alive.labels(worker=label).set(1.0 if is_alive else 0.0)
            c_restarts.labels(worker=label).set_total(
                row.get("restarts", 0))
            g_generation.labels(worker=label).set(
                row.get("generation", 0))
            c_searches.labels(worker=label).set_total(
                row.get("searches", 0))
            c_energy.labels(worker=label).set_total(
                row.get("energy", 0.0))
            c_rows_examined.labels(worker=label).set_total(
                row.get("rows_examined", 0))
            c_step1_eliminated.labels(worker=label).set_total(
                row.get("step1_eliminated", 0))
            g_worst_latency.labels(worker=label).set(
                row.get("worst_latency", 0.0))
        g_workers.set(alive)
        g_writer_ok.set(0.0 if service.backend.writer_failed else 1.0)

    return registry.on_collect(hook)


def instrument(obj, registry: MetricsRegistry) -> Unregister:
    """Wire a whole serving object graph into ``registry``.

    Dispatches on type and recurses: a service instruments itself plus
    its store; a store instruments itself plus its backend (a fabric
    brings every bank's cam along).  Returns one unregister callable
    covering everything wired.
    """
    # Imports are local so `fecam.obs` never circularly imports the
    # layers it observes (they import `fecam.obs.trace` for spans).
    from ..cluster.backend import ClusterBackend
    from ..cluster.service import ClusterService
    from ..durable.store import DurableCamStore
    from ..functional.engine import TernaryCAM
    from ..fabric.fabric import TcamFabric
    from ..service.service import SearchService
    from ..store.array import ArrayBackend
    from ..store.fabric import FabricBackend
    from ..store.store import CamStore

    unregisters: List[Unregister] = []
    if isinstance(obj, SearchService):
        unregisters.append(instrument_service(obj, registry))
        unregisters.append(instrument(obj.store, registry))
    elif isinstance(obj, ClusterService):
        # Same ServiceStats shape as SearchService, plus the per-worker
        # replica telemetry behind the cluster's stats RPC.
        unregisters.append(instrument_service(obj, registry))
        unregisters.append(instrument_cluster(obj, registry))
        unregisters.append(instrument(obj.store, registry))
    elif isinstance(obj, CamStore):
        unregisters.append(instrument_store(obj, registry))
        if isinstance(obj, DurableCamStore):
            unregisters.append(instrument_durable(obj, registry))
        backend = obj.backend
        if isinstance(backend, ClusterBackend):
            # The writer-side fabric is the source of truth for content
            # and write energy; worker search counters come through
            # instrument_cluster's per-worker series.
            unregisters.append(instrument(backend.inner.fabric, registry))
        elif isinstance(backend, FabricBackend):
            unregisters.append(instrument(backend.fabric, registry))
        elif isinstance(backend, ArrayBackend):
            unregisters.append(instrument_cam(backend.cam, registry))
    elif isinstance(obj, TcamFabric):
        unregisters.append(instrument_fabric(obj, registry))
        for bank in obj.banks:
            unregisters.append(
                instrument_cam(bank.cam, registry, bank=bank.bank_id))
    elif isinstance(obj, TernaryCAM):
        unregisters.append(instrument_cam(obj, registry))
    else:
        raise TypeError(
            f"cannot instrument {type(obj).__name__}; expected a "
            f"SearchService, ClusterService, CamStore, TcamFabric, "
            f"or TernaryCAM")

    def unregister_all() -> None:
        for unregister in unregisters:
            unregister()

    return unregister_all
