"""Exporters: Prometheus text exposition, JSON lines, and a linter.

:func:`render_prometheus` turns a registry snapshot into the text
exposition format (version 0.0.4) any Prometheus-compatible scraper
ingests; :func:`render_json_lines` emits one JSON object per sample for
log pipelines and the autotuner's offline analysis; and
:func:`lint_prometheus` is a dependency-free subset of ``promtool
check metrics`` — the CI gate that keeps the exposition format honest
without installing promtool.
"""

from __future__ import annotations

import json
import math
import re
import time

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .registry import (FamilySnapshot, HistogramValue, MetricsRegistry,
                       MetricSample)

__all__ = ["render_prometheus", "render_json_lines", "lint_prometheus"]

_SnapshotSource = Union[MetricsRegistry, Sequence[FamilySnapshot]]


def _families(source: _SnapshotSource) -> Sequence[FamilySnapshot]:
    if isinstance(source, MetricsRegistry):
        return source.collect()
    return source


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label(value: str) -> str:
    return (value.replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Iterable[Tuple[str, str]]) -> str:
    pairs = [f'{name}="{_escape_label(value)}"' for name, value in labels]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _sample_line(name: str, labels: Iterable[Tuple[str, str]],
                 value: float) -> str:
    return f"{name}{_format_labels(labels)} {_format_value(value)}"


def render_prometheus(source: _SnapshotSource) -> str:
    """Render a snapshot (or live registry) as Prometheus text format.

    Histograms expand to the conventional ``_bucket{le=...}`` series
    (cumulative, ``+Inf`` last) plus ``_sum`` and ``_count``.
    """
    lines: List[str] = []
    for family in _families(source):
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for sample in family.samples:
            if isinstance(sample.value, HistogramValue):
                for bound, count in sample.value.buckets:
                    le = ("+Inf" if bound == math.inf
                          else _format_value(bound))
                    labels = tuple(sample.labels) + (("le", le),)
                    lines.append(_sample_line(
                        family.name + "_bucket", labels, count))
                lines.append(_sample_line(
                    family.name + "_sum", sample.labels, sample.value.sum))
                lines.append(_sample_line(
                    family.name + "_count", sample.labels,
                    sample.value.count))
            else:
                lines.append(_sample_line(
                    family.name, sample.labels, sample.value))
    return "\n".join(lines) + "\n" if lines else ""


def render_json_lines(source: _SnapshotSource, *,
                      timestamp: Optional[float] = None) -> str:
    """One JSON object per sample: the metric dump for log pipelines.

    Histogram buckets are ``[le, cumulative_count]`` pairs with ``le``
    as a string (``"+Inf"`` for the overflow) so the document stays
    valid JSON — the schema is explicit and round-trippable, unlike a
    naive ``json.dumps`` of float-keyed dicts.
    """
    ts = time.time() if timestamp is None else timestamp
    lines: List[str] = []
    for family in _families(source):
        for sample in family.samples:
            row: Dict[str, object] = {
                "ts": ts, "name": family.name, "type": family.kind,
                "labels": dict(sample.labels)}
            if isinstance(sample.value, HistogramValue):
                row["sum"] = sample.value.sum
                row["count"] = sample.value.count
                row["buckets"] = [
                    ["+Inf" if bound == math.inf else _format_value(bound),
                     count]
                    for bound, count in sample.value.buckets]
            else:
                row["value"] = sample.value
            lines.append(json.dumps(row, sort_keys=True,
                                    separators=(",", ":")))
    return "\n".join(lines) + "\n" if lines else ""


# -- exposition-format linter --------------------------------------------------

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_HELP_RE = re.compile(rf"^# HELP ({_NAME})(?: (.*))?$")
_TYPE_RE = re.compile(rf"^# TYPE ({_NAME}) (\w+)$")
_SAMPLE_RE = re.compile(
    rf"^({_NAME})(\{{.*\}})? (\S+)(?: (-?\d+))?$")
_LABEL_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_VALID_TYPES = frozenset(
    {"counter", "gauge", "histogram", "summary", "untyped"})


def _parse_value(text: str) -> Optional[float]:
    if text in ("+Inf", "Inf"):
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        return None


def _parse_labels(text: str) -> Optional[List[Tuple[str, str]]]:
    """Parse a ``{name="value",...}`` block; None on malformed syntax."""
    body = text[1:-1]
    if not body:
        return []
    labels: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(body):
        match = _LABEL_RE.match(body, pos)
        if match is None:
            return None
        labels.append((match.group(1), match.group(2)))
        pos = match.end()
        if pos < len(body):
            if body[pos] != ",":
                return None
            pos += 1
    return labels


def _base_name(name: str, kind: Optional[str]) -> str:
    if kind == "histogram":
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                return name[: -len(suffix)]
    return name


def lint_prometheus(text: str) -> List[str]:
    """Validate Prometheus text exposition; returns error strings.

    Promtool-free CI gate.  Checks, per the exposition-format spec:

    * every line is a ``# HELP``/``# TYPE`` comment, blank, or a sample;
    * ``# TYPE`` names a valid type, appears at most once per metric,
      and precedes that metric's samples;
    * sample names/labels are well-formed and values parse as floats
      (``+Inf``/``-Inf``/``NaN`` included);
    * every sample belongs to a declared family (strict: we only lint
      text we generate, which always declares);
    * histogram series use only ``_bucket``/``_sum``/``_count``
      suffixes, ``_bucket`` carries an ``le`` label, each label set has
      a ``+Inf`` bucket, bucket counts are cumulative (non-decreasing),
      and ``_count`` equals the ``+Inf`` bucket.

    An empty list means the exposition is clean.
    """
    errors: List[str] = []
    types: Dict[str, str] = {}
    seen_samples: set = set()
    # histogram name -> label-key -> {"buckets": [(le, v)], "count": v}
    histograms: Dict[str, Dict[Tuple[Tuple[str, str], ...], Dict]] = {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if _HELP_RE.match(line):
                continue
            type_match = _TYPE_RE.match(line)
            if type_match:
                name, kind = type_match.groups()
                if kind not in _VALID_TYPES:
                    errors.append(
                        f"line {lineno}: invalid type {kind!r} for {name}")
                elif name in types:
                    errors.append(
                        f"line {lineno}: duplicate TYPE for {name}")
                elif name in seen_samples:
                    errors.append(
                        f"line {lineno}: TYPE for {name} after its "
                        f"samples")
                else:
                    types[name] = kind
                continue
            errors.append(f"line {lineno}: malformed comment: {line!r}")
            continue

        sample = _SAMPLE_RE.match(line)
        if sample is None:
            errors.append(f"line {lineno}: malformed sample: {line!r}")
            continue
        name, label_block, value_text, _ts = sample.groups()
        labels = _parse_labels(label_block) if label_block else []
        if labels is None:
            errors.append(
                f"line {lineno}: malformed labels: {label_block!r}")
            continue
        label_names = [label for label, _ in labels]
        if len(set(label_names)) != len(label_names):
            errors.append(f"line {lineno}: duplicate label names in "
                          f"{label_block!r}")
        value = _parse_value(value_text)
        if value is None:
            errors.append(
                f"line {lineno}: unparseable value {value_text!r}")
            continue

        kind = None
        base = name
        for candidate, candidate_kind in types.items():
            if _base_name(name, candidate_kind) == candidate \
                    and (name == candidate
                         or candidate_kind == "histogram"):
                kind, base = candidate_kind, candidate
                break
        if kind is None:
            errors.append(
                f"line {lineno}: sample {name} has no preceding TYPE")
            continue
        seen_samples.add(base)

        if kind == "histogram":
            suffix = name[len(base):]
            if suffix not in ("_bucket", "_sum", "_count"):
                errors.append(
                    f"line {lineno}: histogram {base} sample with "
                    f"invalid suffix {suffix!r}")
                continue
            plain = tuple(sorted((k, v) for k, v in labels if k != "le"))
            series = histograms.setdefault(base, {}).setdefault(
                plain, {"buckets": [], "count": None})
            if suffix == "_bucket":
                le = dict(labels).get("le")
                if le is None:
                    errors.append(
                        f"line {lineno}: {name} bucket without le label")
                    continue
                series["buckets"].append((le, value, lineno))
            elif suffix == "_count":
                series["count"] = (value, lineno)

    for base, by_labels in histograms.items():
        for plain, series in by_labels.items():
            buckets = series["buckets"]
            if not any(le == "+Inf" for le, _, _ in buckets):
                errors.append(
                    f"histogram {base}{dict(plain)}: no +Inf bucket")
            counts = [count for _, count, _ in buckets]
            if any(b > a for b, a in zip(counts, counts[1:])):
                errors.append(
                    f"histogram {base}{dict(plain)}: bucket counts "
                    f"not cumulative: {counts}")
            if series["count"] is not None and buckets:
                inf_counts = [count for le, count, _ in buckets
                              if le == "+Inf"]
                if inf_counts and series["count"][0] != inf_counts[-1]:
                    errors.append(
                        f"histogram {base}{dict(plain)}: _count "
                        f"{series['count'][0]} != +Inf bucket "
                        f"{inf_counts[-1]}")
    return errors
