"""A stdlib ``/metrics`` endpoint for any :class:`MetricsRegistry`.

One daemon thread runs a :class:`http.server.ThreadingHTTPServer`
serving

* ``GET /metrics``       — Prometheus text exposition (0.0.4);
* ``GET /metrics.json``  — the JSON-lines metric dump;

anything else is a 404.  Each request collects a fresh snapshot, so a
scraper always sees current values; the serving hot path is untouched
(adapters fold the stats silos in at collect time).

>>> from fecam.obs import MetricsRegistry, MetricsServer
>>> registry = MetricsRegistry()
>>> registry.counter("demo_total", "Demo.").inc()
>>> with MetricsServer(registry) as server:     # doctest: +SKIP
...     print(server.url)                       # curl this
http://127.0.0.1:43123/metrics
"""

from __future__ import annotations

import threading

from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .export import render_json_lines, render_prometheus
from .registry import MetricsRegistry

__all__ = ["MetricsServer", "PROMETHEUS_CONTENT_TYPE"]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsServer:
    """Serve a registry over HTTP from a daemon thread.

    ``port=0`` (default) binds an ephemeral port — read it back from
    :attr:`port` / :attr:`url`.  ``close()`` (or the context manager)
    shuts the listener down; the server never outlives the process
    anyway (daemon thread).
    """

    def __init__(self, registry: MetricsRegistry,
                 host: str = "127.0.0.1", port: int = 0):
        self.registry = registry

        outer = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:
                path = self.path.split("?", 1)[0]
                if path in ("/metrics", "/metrics/"):
                    body = render_prometheus(outer.registry).encode()
                    content_type = PROMETHEUS_CONTENT_TYPE
                elif path == "/metrics.json":
                    body = render_json_lines(outer.registry).encode()
                    content_type = "application/json; charset=utf-8"
                else:
                    self.send_error(404, "try /metrics or /metrics.json")
                    return
                self.send_response(200)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # pragma: no cover
                pass  # scrapes must not spam the serving process's logs

        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="fecam-metrics-http", daemon=True)
        self._thread.start()

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join()

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<MetricsServer {self.url}>"
