"""Slow-query log: JSON lines for requests over a latency threshold.

The p99 gauge says *that* the tail is bad; the slow-query log says
*which requests* are in it — bits, mask, the batch they rode, the
write-generation they observed, and how long they actually took.  The
dispatcher checks the threshold per completed request (one float
compare when configured, nothing when not) and emits one JSON object
per offender.
"""

from __future__ import annotations

import time

from typing import Any, Dict, Hashable, Optional

from .trace import JsonLinesSink

__all__ = ["SlowQueryLog"]


class SlowQueryLog:
    """Log requests whose end-to-end latency reaches ``threshold_s``.

    Entries are JSON lines with stable keys::

        {"ts": float,            # wall clock at completion
         "bits": str, "mask": str | null,
         "latency_s": float, "threshold_s": float,
         "generation": int,      # store write-generation observed
         "batch_size": int,      # how many co-riders shared the drain
         "matches": int}

    ``count`` tracks entries written (exported as
    ``fecam_service_slow_queries_total`` when bundled into an
    :class:`~fecam.obs.Observability`).
    """

    def __init__(self, threshold_s: float, sink: JsonLinesSink):
        if threshold_s < 0:
            raise ValueError(
                f"slow-query threshold must be >= 0, got {threshold_s}")
        self.threshold_s = threshold_s
        self.sink = sink
        self.count = 0

    def record(self, *, bits: str, mask: Optional[str], latency: float,
               generation: int, batch_size: int, matches: int,
               extra: Optional[Dict[str, Any]] = None) -> bool:
        """Log one completed request if it is slow; returns whether."""
        if latency < self.threshold_s:
            return False
        entry: Dict[str, Any] = {
            "ts": time.time(), "bits": bits, "mask": mask,
            "latency_s": latency, "threshold_s": self.threshold_s,
            "generation": generation, "batch_size": batch_size,
            "matches": matches}
        if extra:
            entry.update(extra)
        self.sink.write(entry)
        self.count += 1
        return True

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<SlowQueryLog threshold={self.threshold_s * 1e3:.3f}ms "
                f"count={self.count}>")
