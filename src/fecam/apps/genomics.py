"""Seed matching for DNA read mapping — the paper's bioinformatics
motivation (Sec. I, citing the seed-and-vote in-memory accelerator [2]).

Reads are chopped into fixed-length seeds; each seed is matched in
parallel against reference k-mers stored in a
:class:`~fecam.store.CamStore`.  Ambiguous IUPAC bases ('N') map to
don't-care symbols, which is exactly the ternary capability binary CAMs
lack.  A ``store_config`` shards a large reference index across banks
and batches seed lookups through the vectorized search path —
:func:`vote_alignment` resolves a whole read in one store pass.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..designs import DesignKind
from ..errors import OperationError
from ..store import CamStore, StoreConfig, StoreStats
from ._compat import legacy_store_config

__all__ = ["encode_base", "encode_seed", "SeedIndex", "vote_alignment"]

_BASE_BITS = {"A": "00", "C": "01", "G": "10", "T": "11", "N": "XX"}


def encode_base(base: str) -> str:
    """2-bit DNA encoding; 'N' (unknown) becomes two don't-cares."""
    try:
        return _BASE_BITS[base.upper()]
    except KeyError:
        raise OperationError(f"invalid base {base!r}") from None


def encode_seed(seed: str) -> str:
    """Encode a DNA string into a ternary TCAM word (2 bits per base)."""
    if not seed:
        raise OperationError("empty seed")
    return "".join(encode_base(b) for b in seed)


@dataclass
class SeedHit:
    position: int  # reference offset of the stored k-mer
    row: int


class SeedIndex:
    """Associative-store index of all k-mers of a reference sequence.

    >>> idx = SeedIndex("ACGTACGTACGT", k=4)
    >>> [h.position for h in idx.lookup("TACG")]
    [3, 7]
    """

    def __init__(self, reference: str, k: int = 8,
                 design: Optional[DesignKind] = None, *,
                 store_config: Optional[StoreConfig] = None):
        config = legacy_store_config(
            "SeedIndex", store_config=store_config, design=design)
        if k < 2:
            raise OperationError("seed length must be >= 2")
        if len(reference) < k:
            raise OperationError("reference shorter than the seed length")
        self.reference = reference.upper()
        self.k = k
        positions = len(self.reference) - k + 1
        self._store = CamStore(config.with_geometry(width=2 * k,
                                                    rows=positions))
        # Priority = reference position, so matches come back in
        # ascending-position order across every backend.
        self._store.insert_many(
            [encode_seed(self.reference[pos:pos + k])
             for pos in range(positions)],
            keys=list(range(positions)),
            priorities=list(range(positions)))

    def _encode_query(self, seed: str) -> str:
        if len(seed) != self.k:
            raise OperationError(f"seed must be {self.k} bases")
        word = encode_seed(seed)
        if "X" in word:
            raise OperationError("query seeds must not contain N")
        return word

    def lookup(self, seed: str) -> List[SeedHit]:
        """All reference positions whose k-mer matches the seed.

        The *query* must be concrete (A/C/G/T): TCAM queries are binary.
        Ambiguity lives on the stored side ('N' in the reference).
        """
        result = self._store.search(self._encode_query(seed))
        return [SeedHit(position=m.key, row=m.row) for m in result.matches]

    def lookup_batch(self, seeds: Sequence[str]) -> List[List[SeedHit]]:
        """Vectorized lookup of many seeds (one store pass)."""
        if not seeds:
            return []
        results = self._store.search_batch(
            [self._encode_query(seed) for seed in seeds])
        return [[SeedHit(position=m.key, row=m.row) for m in r.matches]
                for r in results]

    def lookup_reference_scan(self, seed: str) -> List[int]:
        """Software reference implementation (for verification)."""
        hits = []
        for pos in range(len(self.reference) - self.k + 1):
            kmer = self.reference[pos:pos + self.k]
            if all(r == "N" or r == s for r, s in zip(kmer, seed.upper())):
                hits.append(pos)
        return hits

    @property
    def energy_spent(self) -> float:
        return self._store.stats.energy_total

    @property
    def store_stats(self) -> StoreStats:
        """Full telemetry of the backing store."""
        return self._store.stats


def vote_alignment(read: str, index: SeedIndex,
                   stride: Optional[int] = None) -> Optional[int]:
    """Seed-and-vote read mapping: each seed votes for the alignment
    offset implied by its hit; the plurality offset wins.

    All seeds of the read are matched in one batched store pass.
    Returns the winning reference offset or None when nothing matched.
    """
    k = index.k
    stride = stride or k
    starts = [s for s in range(0, len(read) - k + 1, stride)
              if "N" not in read[s:s + k].upper()]
    votes: Counter = Counter()
    hit_lists = index.lookup_batch([read[s:s + k] for s in starts])
    for seed_start, hits in zip(starts, hit_lists):
        for hit in hits:
            votes[hit.position - seed_start] += 1
    if not votes:
        return None
    offset, count = votes.most_common(1)[0]
    return offset if count > 0 else None
