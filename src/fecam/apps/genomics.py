"""Seed matching for DNA read mapping — the paper's bioinformatics
motivation (Sec. I, citing the seed-and-vote in-memory accelerator [2]).

Reads are chopped into fixed-length seeds; each seed is matched in
parallel against reference k-mers stored in the TCAM.  Ambiguous IUPAC
bases ('N') map to don't-care symbols, which is exactly the ternary
capability binary CAMs lack.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..designs import DesignKind
from ..errors import OperationError
from ..functional.engine import TernaryCAM

__all__ = ["encode_base", "encode_seed", "SeedIndex", "vote_alignment"]

_BASE_BITS = {"A": "00", "C": "01", "G": "10", "T": "11", "N": "XX"}


def encode_base(base: str) -> str:
    """2-bit DNA encoding; 'N' (unknown) becomes two don't-cares."""
    try:
        return _BASE_BITS[base.upper()]
    except KeyError:
        raise OperationError(f"invalid base {base!r}") from None


def encode_seed(seed: str) -> str:
    """Encode a DNA string into a ternary TCAM word (2 bits per base)."""
    if not seed:
        raise OperationError("empty seed")
    return "".join(encode_base(b) for b in seed)


@dataclass
class SeedHit:
    position: int  # reference offset of the stored k-mer
    row: int


class SeedIndex:
    """TCAM index of all k-mers of a reference sequence.

    >>> idx = SeedIndex("ACGTACGTACGT", k=4)
    >>> [h.position for h in idx.lookup("TACG")]
    [3, 7]
    """

    def __init__(self, reference: str, k: int = 8,
                 design: DesignKind = DesignKind.DG_1T5):
        if k < 2:
            raise OperationError("seed length must be >= 2")
        if len(reference) < k:
            raise OperationError("reference shorter than the seed length")
        self.reference = reference.upper()
        self.k = k
        positions = len(self.reference) - k + 1
        self._tcam = TernaryCAM(rows=positions, width=2 * k, design=design)
        for pos in range(positions):
            kmer = self.reference[pos:pos + k]
            self._tcam.write(pos, encode_seed(kmer))

    def lookup(self, seed: str) -> List[SeedHit]:
        """All reference positions whose k-mer matches the seed.

        The *query* must be concrete (A/C/G/T): TCAM queries are binary.
        Ambiguity lives on the stored side ('N' in the reference).
        """
        if len(seed) != self.k:
            raise OperationError(f"seed must be {self.k} bases")
        word = encode_seed(seed)
        if "X" in word:
            raise OperationError("query seeds must not contain N")
        stats = self._tcam.search(word)
        return [SeedHit(position=row, row=row) for row in stats.matches]

    def lookup_reference_scan(self, seed: str) -> List[int]:
        """Software reference implementation (for verification)."""
        hits = []
        for pos in range(len(self.reference) - self.k + 1):
            kmer = self.reference[pos:pos + self.k]
            if all(r == "N" or r == s for r, s in zip(kmer, seed.upper())):
                hits.append(pos)
        return hits

    @property
    def energy_spent(self) -> float:
        return self._tcam.energy_spent


def vote_alignment(read: str, index: SeedIndex,
                   stride: Optional[int] = None) -> Optional[int]:
    """Seed-and-vote read mapping: each seed votes for the alignment
    offset implied by its hit; the plurality offset wins.

    Returns the winning reference offset or None when nothing matched.
    """
    k = index.k
    stride = stride or k
    votes: Counter = Counter()
    for seed_start in range(0, len(read) - k + 1, stride):
        seed = read[seed_start:seed_start + k]
        if "N" in seed.upper():
            continue
        for hit in index.lookup(seed):
            votes[hit.position - seed_start] += 1
    if not votes:
        return None
    offset, count = votes.most_common(1)[0]
    return offset if count > 0 else None
