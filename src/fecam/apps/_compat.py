"""Deprecation shims for the pre-`CamStore` app constructors.

Every app used to take TCAM layout arguments (``design=``, ``banks=``,
``cache_size=``, ``tcam=``) directly; the canonical form is now a
:class:`~fecam.store.StoreConfig` passed as ``store_config=``.  The old
spellings keep working through :func:`legacy_store_config`, which emits
a :class:`DeprecationWarning` exactly once per constructor per process
(not once per call — a 10k-instantiation loop must not print 10k
warnings).
"""

from __future__ import annotations

import warnings
from typing import Optional, Set

from ..designs import DesignKind
from ..errors import OperationError
from ..store import StoreConfig

__all__ = ["legacy_store_config", "warn_once", "reset_warn_once"]

_warned: Set[str] = set()


def reset_warn_once() -> None:
    """Forget which constructors already warned (test hook)."""
    _warned.clear()


def warn_once(ctor: str, message: str, *, stacklevel: int = 4) -> None:
    """Emit ``message`` as a DeprecationWarning once per ``ctor``.

    Deduplication is keyed on the constructor name, not the call site,
    so repeated instantiation from anywhere warns a single time.  The
    default ``stacklevel=4`` points at the code calling the app
    constructor (warn_once <- legacy_store_config <- __init__ <-
    caller); callers that invoke warn_once directly from their
    __init__ pass 3.
    """
    if ctor in _warned:
        return
    _warned.add(ctor)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def legacy_store_config(ctor: str, *,
                        store_config: Optional[StoreConfig],
                        design: Optional[DesignKind] = None,
                        banks: Optional[int] = None,
                        cache_size: Optional[int] = None) -> StoreConfig:
    """Resolve old layout kwargs and ``store_config`` into one config.

    Passing any legacy kwarg warns (once per constructor) and builds an
    equivalent config; mixing legacy kwargs with ``store_config`` is an
    error rather than a silent merge.
    """
    legacy = {name: value for name, value in
              (("design", design), ("banks", banks),
               ("cache_size", cache_size)) if value is not None}
    if not legacy:
        return store_config if store_config is not None else StoreConfig()
    if store_config is not None:
        raise OperationError(
            f"{ctor}: pass either store_config= or the legacy "
            f"{sorted(legacy)} arguments, not both")
    spelled = ", ".join(f"{name}=..." for name in sorted(legacy))
    warn_once(ctor, f"{ctor}({spelled}) is deprecated; pass "
                    f"store_config=StoreConfig({spelled}) instead")
    return StoreConfig(design=design if design is not None
                       else DesignKind.DG_1T5,
                       banks=banks if banks is not None else 1,
                       cache_size=cache_size if cache_size is not None
                       else 0)
