"""Application substrates: router LPM, associative cache, packet
classifier, and genomics seed matching (the paper's Sec. I workloads).

Every app is served by :class:`~fecam.store.CamStore` and takes a
``store_config=`` :class:`~fecam.store.StoreConfig` — including its
``fidelity`` knob, so an app prices operations at the chosen metrics
tier purely by config::

    TcamRouter(capacity=1024,
               store_config=StoreConfig(banks=8, fidelity="analytical"))

builds without ever invoking the SPICE tier.
"""

from .cache import AccessResult, TcamCache
from .classifier import (Packet, Rule, ServedClassifier, TcamClassifier,
                         range_to_prefixes)
from .genomics import SeedIndex, encode_base, encode_seed, vote_alignment
from .hamming import HammingSearcher, OneShotClassifier, hamming_distance
from .router import (Route, ServedRouter, TcamRouter, int_to_ip,
                     ip_to_int, parse_cidr)

__all__ = [
    "TcamRouter", "ServedRouter", "Route", "parse_cidr", "ip_to_int",
    "int_to_ip",
    "TcamCache", "AccessResult",
    "TcamClassifier", "ServedClassifier", "Rule", "Packet",
    "range_to_prefixes",
    "SeedIndex", "encode_seed", "encode_base", "vote_alignment",
    "HammingSearcher", "OneShotClassifier", "hamming_distance",
]
