"""Packet classification with range-to-ternary expansion.

Firewall/QoS rules mix prefixes (addresses) with numeric ranges (ports).
TCAMs store only ternary words, so ranges are expanded into the minimal
set of prefix words (the classic O(2w) expansion); each logical rule may
occupy several TCAM rows.  Priority = rule insertion order, mapped to row
order so the priority encoder returns the highest-priority hit.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..designs import DesignKind
from ..errors import OperationError
from ..service import SearchService, ServiceStats
from ..store import CamStore, StoreConfig, StoreStats
from ._compat import legacy_store_config

__all__ = ["range_to_prefixes", "Rule", "Packet", "ServedClassifier",
           "TcamClassifier"]


def range_to_prefixes(lo: int, hi: int, width: int) -> List[str]:
    """Minimal prefix cover of the integer range [lo, hi].

    Returns ternary words of ``width`` bits.  This is the standard TCAM
    range-expansion: worst case 2*width - 2 prefixes (e.g. [1, 2^w - 2]).
    """
    if lo > hi:
        raise OperationError(f"empty range [{lo}, {hi}]")
    if lo < 0 or hi >= (1 << width):
        raise OperationError(f"range [{lo}, {hi}] exceeds {width} bits")
    prefixes: List[str] = []

    def cover(lo_: int, hi_: int) -> None:
        if lo_ > hi_:
            return
        # Largest aligned block starting at lo_ that fits in [lo_, hi_].
        size = 1
        while True:
            next_size = size * 2
            if lo_ % next_size != 0 or lo_ + next_size - 1 > hi_:
                break
            size = next_size
        bits = width - size.bit_length() + 1
        if bits == 0:
            prefix = ""  # the block covers the whole space: all wildcards
        else:
            prefix = format(lo_ >> (width - bits), f"0{bits}b")
        prefixes.append(prefix + "X" * (width - bits))
        cover(lo_ + size, hi_)

    cover(lo, hi)
    return prefixes


@dataclass(frozen=True)
class Packet:
    """The 5-tuple-ish header the classifier matches on."""

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    protocol: int

    def key_bits(self) -> str:
        return (format(self.src_ip, "032b") + format(self.dst_ip, "032b")
                + format(self.src_port, "016b") + format(self.dst_port, "016b")
                + format(self.protocol, "08b"))


@dataclass
class Rule:
    """One classification rule; ranges expand to multiple TCAM rows."""

    name: str
    src_prefix: Tuple[int, int] = (0, 0)  # (network, prefix_len)
    dst_prefix: Tuple[int, int] = (0, 0)
    src_port_range: Tuple[int, int] = (0, 65535)
    dst_port_range: Tuple[int, int] = (0, 65535)
    protocol: Optional[int] = None  # None = any

    def _prefix_word(self, prefix: Tuple[int, int]) -> str:
        network, length = prefix
        bits = format(network, "032b")
        return bits[:length] + "X" * (32 - length)

    def ternary_words(self) -> List[str]:
        """Cartesian product of the field expansions."""
        src = self._prefix_word(self.src_prefix)
        dst = self._prefix_word(self.dst_prefix)
        sports = range_to_prefixes(*self.src_port_range, width=16)
        dports = range_to_prefixes(*self.dst_port_range, width=16)
        proto = ("X" * 8 if self.protocol is None
                 else format(self.protocol, "08b"))
        return [src + dst + sp + dp + proto for sp in sports for dp in dports]

    def matches(self, packet: Packet) -> bool:
        """Reference (non-TCAM) semantics for verification."""
        def prefix_ok(value, prefix):
            network, length = prefix
            if length == 0:
                return True
            shift = 32 - length
            return value >> shift == network >> shift

        return (prefix_ok(packet.src_ip, self.src_prefix)
                and prefix_ok(packet.dst_ip, self.dst_prefix)
                and self.src_port_range[0] <= packet.src_port <= self.src_port_range[1]
                and self.dst_port_range[0] <= packet.dst_port <= self.dst_port_range[1]
                and (self.protocol is None or packet.protocol == self.protocol))


class ServedClassifier:
    """Concurrent classification front door over one rule-set snapshot.

    Handed out by :meth:`TcamClassifier.serve`.  Thread-safe:
    :meth:`classify` from any number of threads, :meth:`aclassify`
    from coroutines; concurrent packets coalesce into fused batch
    searches over the expanded rule rows.
    """

    def __init__(self, classifier: "TcamClassifier",
                 service: SearchService):
        self._rules = list(classifier.rules)  # snapshot for name lookup
        self.service = service

    def _name_of(self, served) -> Optional[str]:
        best = served.best
        return self._rules[best.payload].name if best is not None else None

    def classify(self, packet: Packet) -> Optional[str]:
        """Blocking concurrent classification; highest-priority rule name."""
        return self._name_of(self.service.search(packet.key_bits()))

    def classify_batch(self, packets: Sequence[Packet]
                       ) -> List[Optional[str]]:
        """Submit a burst; the dispatcher fuses it into batch searches."""
        served = self.service.search_many(
            [packet.key_bits() for packet in packets])
        return [self._name_of(s) for s in served]

    async def aclassify(self, packet: Packet) -> Optional[str]:
        """``asyncio`` classification front door."""
        return self._name_of(await self.service.asearch(packet.key_bits()))

    @property
    def stats(self) -> ServiceStats:
        return self.service.stats


class TcamClassifier:
    """Priority packet classifier over a 104-bit TCAM key.

    Backed by a :class:`CamStore`: the expanded rule rows stripe
    round-robin over the configured banks (priority = expansion order,
    so the cross-bank encoder preserves first-rule-wins semantics), and
    packet batches classify through the vectorized search path.
    """

    KEY_WIDTH = 32 + 32 + 16 + 16 + 8

    def __init__(self, capacity_rows: int = 4096,
                 design: Optional[DesignKind] = None, *,
                 banks: Optional[int] = None,
                 cache_size: Optional[int] = None,
                 store_config: Optional[StoreConfig] = None):
        config = legacy_store_config(
            "TcamClassifier", store_config=store_config, design=design,
            banks=banks, cache_size=cache_size)
        self.capacity_rows = capacity_rows
        self.store_config = config
        self.rules: List[Rule] = []
        self._rows_used = 0  # running expansion count (capacity check)
        self._store: Optional[CamStore] = None
        self._dirty = True

    @property
    def design(self) -> DesignKind:
        return self.store_config.design

    @property
    def banks(self) -> int:
        return self.store_config.banks

    @property
    def cache_size(self) -> int:
        return self.store_config.cache_size

    def add_rule(self, rule: Rule) -> int:
        """Append a rule (lower index = higher priority); returns the
        number of TCAM rows it expands to."""
        words = rule.ternary_words()
        if self._rows_used + len(words) > self.capacity_rows:
            raise OperationError("classifier TCAM capacity exceeded")
        self.rules.append(rule)
        self._rows_used += len(words)
        self._dirty = True
        return len(words)

    def _rebuild(self) -> None:
        rows: List[Tuple[str, int]] = []
        for idx, rule in enumerate(self.rules):
            for word in rule.ternary_words():
                rows.append((word, idx))
        self._store = CamStore(self.store_config.with_geometry(
            width=self.KEY_WIDTH, rows=max(len(rows), 1)))
        if rows:
            self._store.insert_many(
                [word for word, _ in rows],
                keys=list(range(len(rows))),
                priorities=list(range(len(rows))),
                payloads=[idx for _, idx in rows])
        self._rows_used = len(rows)
        self._dirty = False

    @property
    def rows_used(self) -> int:
        # add_rule keeps the expansion count in sync; no rebuild needed.
        return self._rows_used

    def classify(self, packet: Packet) -> Optional[str]:
        """Highest-priority rule name matching the packet, or None."""
        if not self.rules:
            return None
        if self._dirty:
            self._rebuild()
        match = self._store.search_first(packet.key_bits())
        if match is None:
            return None
        return self.rules[match.payload].name

    def classify_batch(self, packets: Sequence[Packet]) -> List[Optional[str]]:
        """Vectorized classification of a packet batch (one store pass)."""
        if not self.rules:
            return [None] * len(packets)
        if self._dirty:
            self._rebuild()
        results = self._store.search_batch(
            [p.key_bits() for p in packets])
        return [self.rules[r.best.payload].name if r.best is not None
                else None for r in results]

    @contextmanager
    def serve(self, **service_kwargs) -> "Iterator[ServedClassifier]":
        """Serve this rule set to concurrent callers via the service tier.

        Builds (or reuses) the backing store and wraps it in a
        :class:`~fecam.service.SearchService`.  The served rule set is
        a snapshot: rules added while serving take effect on the next
        ``serve()``, when the store is rebuilt.

        While serving, the :class:`ServedClassifier` is the only
        supported access path: the service's reader-writer lock covers
        dispatches and service writes, not this classifier's own
        ``classify()``/``store_stats`` entry points, so direct calls
        from another thread race the dispatcher on the shared store.
        """
        if self._dirty or self._store is None:
            self._rebuild()
        service = SearchService(self._store, **service_kwargs)
        try:
            yield ServedClassifier(self, service)
        finally:
            service.close()

    def classify_reference(self, packet: Packet) -> Optional[str]:
        for rule in self.rules:
            if rule.matches(packet):
                return rule.name
        return None

    @property
    def store_stats(self) -> Optional[StoreStats]:
        """Full telemetry of the backing store (None before first build)."""
        return self._store.stats if self._store is not None else None
