"""Longest-prefix-match IP routing on the associative store — the
paper's classic network-router motivation (Sec. I).

Prefixes map naturally onto ternary words (the host bits become 'X');
longest-prefix-match priority is realized by storing routes in
descending-prefix-length priority order, so the store's priority encoder
returns the most specific route — exactly how commercial router TCAMs
operate.  The table lives in a :class:`~fecam.store.CamStore`, so one
config (``store_config=StoreConfig(banks=..., cache_size=...)``) scales
it from a single array to a sharded multi-bank fabric with batched
lookups and query caching.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..designs import DesignKind
from ..errors import OperationError
from ..service import SearchService, ServiceStats
from ..store import CamStore, StoreConfig, StoreStats
from ._compat import legacy_store_config

__all__ = ["Route", "ServedRouter", "TcamRouter", "parse_cidr",
           "ip_to_int", "int_to_ip"]


def ip_to_int(address: str) -> int:
    parts = address.split(".")
    if len(parts) != 4:
        raise OperationError(f"invalid IPv4 address {address!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise OperationError(f"invalid IPv4 octet in {address!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def parse_cidr(cidr: str) -> Tuple[int, int]:
    """Parse 'a.b.c.d/len' into (network_int, prefix_len)."""
    try:
        address, _, length_str = cidr.partition("/")
        length = int(length_str) if length_str else 32
    except ValueError:
        raise OperationError(f"invalid CIDR {cidr!r}") from None
    if not 0 <= length <= 32:
        raise OperationError(f"invalid prefix length in {cidr!r}")
    network = ip_to_int(address)
    if length < 32:
        network &= ~((1 << (32 - length)) - 1)
    return network, length


@dataclass(frozen=True)
class Route:
    network: int
    prefix_len: int
    next_hop: str

    def ternary_word(self) -> str:
        bits = format(self.network, "032b")
        return bits[:self.prefix_len] + "X" * (32 - self.prefix_len)

    def covers(self, address: int) -> bool:
        if self.prefix_len == 0:
            return True
        shift = 32 - self.prefix_len
        return (address >> shift) == (self.network >> shift)


class ServedRouter:
    """Concurrent LPM front door over one routing-table snapshot.

    Handed out by :meth:`TcamRouter.serve`; wraps the table's
    :class:`~fecam.service.SearchService` with address-level lookups.
    Thread-safe: call :meth:`lookup` from any number of threads, or
    :meth:`alookup` from coroutines.
    """

    def __init__(self, service: SearchService):
        self.service = service

    @staticmethod
    def _query(address: str) -> str:
        return format(ip_to_int(address), "032b")

    def lookup(self, address: str) -> Optional[str]:
        """Blocking concurrent LPM; returns the next hop (or None)."""
        best = self.service.search(self._query(address)).best
        return best.payload.next_hop if best is not None else None

    def lookup_batch(self, addresses: Sequence[str]) -> List[Optional[str]]:
        """Submit a burst; the dispatcher fuses it into batch searches."""
        served = self.service.search_many(
            [self._query(address) for address in addresses])
        return [s.best.payload.next_hop if s.best is not None else None
                for s in served]

    async def alookup(self, address: str) -> Optional[str]:
        """``asyncio`` LPM front door."""
        served = await self.service.asearch(self._query(address))
        best = served.best
        return best.payload.next_hop if best is not None else None

    @property
    def stats(self) -> ServiceStats:
        return self.service.stats


class TcamRouter:
    """An IPv4 forwarding table backed by a :class:`CamStore`.

    Routes are stored in descending-prefix-length priority order so the
    store's priority encoder returns the longest (most specific)
    prefix.  The backing layout (banks, design, query cache) comes from
    ``store_config``; the old ``design=``/``banks=``/``cache_size=``
    arguments still work through a deprecation shim.

    >>> router = TcamRouter(capacity=16)
    >>> router.add_route("10.0.0.0/8", "coarse")
    >>> router.add_route("10.1.0.0/16", "fine")
    >>> router.lookup("10.1.2.3")
    'fine'
    """

    def __init__(self, capacity: int = 1024,
                 design: Optional[DesignKind] = None, *,
                 banks: Optional[int] = None,
                 cache_size: Optional[int] = None,
                 store_config: Optional[StoreConfig] = None):
        config = legacy_store_config(
            "TcamRouter", store_config=store_config, design=design,
            banks=banks, cache_size=cache_size)
        self.capacity = capacity
        self.store_config = config
        self._routes: List[Route] = []
        self._store: Optional[CamStore] = None
        self._dirty = True

    # Legacy layout attributes, still consulted by older call sites.

    @property
    def design(self) -> DesignKind:
        return self.store_config.design

    @property
    def banks(self) -> int:
        return self.store_config.banks

    @property
    def cache_size(self) -> int:
        return self.store_config.cache_size

    # -- table management -----------------------------------------------------------

    def add_route(self, cidr: str, next_hop: str) -> Route:
        if len(self._routes) >= self.capacity:
            raise OperationError("routing table full")
        network, length = parse_cidr(cidr)
        route = Route(network=network, prefix_len=length, next_hop=next_hop)
        # Replace an identical prefix if present.
        self._routes = [r for r in self._routes
                        if (r.network, r.prefix_len) != (network, length)]
        self._routes.append(route)
        self._dirty = True
        return route

    def remove_route(self, cidr: str) -> bool:
        network, length = parse_cidr(cidr)
        before = len(self._routes)
        self._routes = [r for r in self._routes
                        if (r.network, r.prefix_len) != (network, length)]
        self._dirty = self._dirty or len(self._routes) != before
        return len(self._routes) != before

    def __len__(self) -> int:
        return len(self._routes)

    def _rebuild(self) -> None:
        # Longest prefixes first => priority encoder returns LPM; the
        # store stripes rows round-robin for balanced bank occupancy.
        self._routes.sort(key=lambda r: (-r.prefix_len, r.network))
        self._store = CamStore(self.store_config.with_geometry(
            width=32, rows=max(len(self._routes), 1)))
        if self._routes:
            self._store.insert_many(
                [route.ternary_word() for route in self._routes],
                keys=[(route.network, route.prefix_len)
                      for route in self._routes],
                priorities=list(range(len(self._routes))),
                payloads=self._routes)
        self._dirty = False

    # -- lookups ---------------------------------------------------------------------

    def lookup(self, address: str) -> Optional[str]:
        """TCAM longest-prefix-match lookup; returns the next hop."""
        route = self.lookup_route(address)
        return route.next_hop if route else None

    def lookup_route(self, address: str) -> Optional[Route]:
        if not self._routes:
            return None
        if self._dirty:
            self._rebuild()
        match = self._store.search_first(
            format(ip_to_int(address), "032b"))
        return match.payload if match is not None else None

    def lookup_batch(self, addresses: Sequence[str]) -> List[Optional[str]]:
        """Vectorized LPM for a batch of addresses (one store pass)."""
        if not self._routes:
            return [None] * len(addresses)
        if self._dirty:
            self._rebuild()
        queries = [format(ip_to_int(a), "032b") for a in addresses]
        results = self._store.search_batch(queries)
        return [r.best.payload.next_hop if r.best is not None else None
                for r in results]

    @contextmanager
    def serve(self, **service_kwargs) -> "Iterator[ServedRouter]":
        """Serve this table to concurrent callers through the service tier.

        Builds (or reuses) the backing store and wraps it in a
        :class:`~fecam.service.SearchService`, so many threads — or
        ``asyncio`` coroutines — look up addresses concurrently and
        their requests coalesce into fused batch searches.  The served
        table is the route set at entry: route edits made while serving
        take effect on the next ``serve()`` (the store is rebuilt),
        matching how production routers swap whole FIB snapshots.

        While serving, the :class:`ServedRouter` is the only supported
        access path to the table: the service's reader-writer lock
        covers dispatches and service writes, not this router's own
        ``lookup()``/``stats`` entry points, so direct calls on the
        router from another thread race the dispatcher on the shared
        store (query-cache mutation, torn reads past service writes).

        >>> router = TcamRouter(capacity=16)
        >>> router.add_route("10.0.0.0/8", "core")
        >>> with router.serve() as served:
        ...     served.lookup("10.1.2.3")
        'core'
        """
        if self._dirty or self._store is None:
            self._rebuild()
        service = SearchService(self._store, **service_kwargs)
        try:
            yield ServedRouter(service)
        finally:
            service.close()

    def lookup_reference(self, address: str) -> Optional[str]:
        """Pure-software LPM (specification for tests)."""
        value = ip_to_int(address)
        best: Optional[Route] = None
        for route in self._routes:
            if route.covers(value):
                if best is None or route.prefix_len > best.prefix_len:
                    best = route
        return best.next_hop if best else None

    @property
    def store_stats(self) -> Optional[StoreStats]:
        """Full telemetry of the backing store (None before first build)."""
        return self._store.stats if self._store is not None else None

    @property
    def stats(self) -> Dict[str, float]:
        if self._store is None:
            return {"searches": 0, "energy_j": 0.0, "banks": self.banks,
                    "cache_hits": 0}
        stats = self._store.stats
        return {"searches": stats.searches,
                "energy_j": stats.energy_total,
                "banks": stats.banks,
                "cache_hits": stats.cache_hits}
