"""Longest-prefix-match IP routing on the TCAM fabric — the paper's
classic network-router motivation (Sec. I).

Prefixes map naturally onto ternary words (the host bits become 'X');
longest-prefix-match priority is realized by storing routes in
descending-prefix-length priority order, so the fabric's cross-bank
priority encoder returns the most specific route — exactly how
commercial router TCAMs operate.  The table is striped round-robin
across ``banks`` fabric banks, so it scales past a single array and
serves address batches through the vectorized search path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..designs import DesignKind
from ..errors import OperationError
from ..fabric import TcamFabric

__all__ = ["Route", "TcamRouter", "parse_cidr", "ip_to_int", "int_to_ip"]


def ip_to_int(address: str) -> int:
    parts = address.split(".")
    if len(parts) != 4:
        raise OperationError(f"invalid IPv4 address {address!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise OperationError(f"invalid IPv4 octet in {address!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def parse_cidr(cidr: str) -> Tuple[int, int]:
    """Parse 'a.b.c.d/len' into (network_int, prefix_len)."""
    try:
        address, _, length_str = cidr.partition("/")
        length = int(length_str) if length_str else 32
    except ValueError:
        raise OperationError(f"invalid CIDR {cidr!r}") from None
    if not 0 <= length <= 32:
        raise OperationError(f"invalid prefix length in {cidr!r}")
    network = ip_to_int(address)
    if length < 32:
        network &= ~((1 << (32 - length)) - 1)
    return network, length


@dataclass(frozen=True)
class Route:
    network: int
    prefix_len: int
    next_hop: str

    def ternary_word(self) -> str:
        bits = format(self.network, "032b")
        return bits[:self.prefix_len] + "X" * (32 - self.prefix_len)

    def covers(self, address: int) -> bool:
        if self.prefix_len == 0:
            return True
        shift = 32 - self.prefix_len
        return (address >> shift) == (self.network >> shift)


class TcamRouter:
    """An IPv4 forwarding table backed by a :class:`TcamFabric`.

    Routes are stored in descending-prefix-length priority order so the
    fabric's priority encoder returns the longest (most specific)
    prefix.  ``banks`` stripes the table over multiple TCAM arrays;
    ``cache_size`` enables the fabric's query-result cache for
    read-heavy lookup traffic.

    >>> router = TcamRouter(capacity=16)
    >>> router.add_route("10.0.0.0/8", "coarse")
    >>> router.add_route("10.1.0.0/16", "fine")
    >>> router.lookup("10.1.2.3")
    'fine'
    """

    def __init__(self, capacity: int = 1024,
                 design: DesignKind = DesignKind.DG_1T5, *,
                 banks: int = 1, cache_size: int = 0):
        if banks < 1:
            raise OperationError("banks must be positive")
        self.capacity = capacity
        self.design = design
        self.banks = banks
        self.cache_size = cache_size
        self._routes: List[Route] = []
        self._fabric: Optional[TcamFabric] = None
        self._dirty = True

    # -- table management -----------------------------------------------------------

    def add_route(self, cidr: str, next_hop: str) -> Route:
        if len(self._routes) >= self.capacity:
            raise OperationError("routing table full")
        network, length = parse_cidr(cidr)
        route = Route(network=network, prefix_len=length, next_hop=next_hop)
        # Replace an identical prefix if present.
        self._routes = [r for r in self._routes
                        if (r.network, r.prefix_len) != (network, length)]
        self._routes.append(route)
        self._dirty = True
        return route

    def remove_route(self, cidr: str) -> bool:
        network, length = parse_cidr(cidr)
        before = len(self._routes)
        self._routes = [r for r in self._routes
                        if (r.network, r.prefix_len) != (network, length)]
        self._dirty = self._dirty or len(self._routes) != before
        return len(self._routes) != before

    def __len__(self) -> int:
        return len(self._routes)

    def _rebuild(self) -> None:
        # Longest prefixes first => priority encoder returns LPM; rows
        # stripe round-robin across banks for balanced occupancy.
        self._routes.sort(key=lambda r: (-r.prefix_len, r.network))
        self._fabric = TcamFabric.striped(
            [route.ternary_word() for route in self._routes],
            banks=self.banks, width=32, design=self.design,
            keys=[(route.network, route.prefix_len)
                  for route in self._routes],
            payloads=self._routes, cache_size=self.cache_size)
        self._dirty = False

    # -- lookups ---------------------------------------------------------------------

    def lookup(self, address: str) -> Optional[str]:
        """TCAM longest-prefix-match lookup; returns the next hop."""
        route = self.lookup_route(address)
        return route.next_hop if route else None

    def lookup_route(self, address: str) -> Optional[Route]:
        if not self._routes:
            return None
        if self._dirty:
            self._rebuild()
        entry = self._fabric.search_first(
            format(ip_to_int(address), "032b"))
        return entry.payload if entry is not None else None

    def lookup_batch(self, addresses: Sequence[str]) -> List[Optional[str]]:
        """Vectorized LPM for a batch of addresses (one fabric pass)."""
        if not self._routes:
            return [None] * len(addresses)
        if self._dirty:
            self._rebuild()
        queries = [format(ip_to_int(a), "032b") for a in addresses]
        results = self._fabric.search_batch(queries)
        return [r.best.payload.next_hop if r.best is not None else None
                for r in results]

    def lookup_reference(self, address: str) -> Optional[str]:
        """Pure-software LPM (specification for tests)."""
        value = ip_to_int(address)
        best: Optional[Route] = None
        for route in self._routes:
            if route.covers(value):
                if best is None or route.prefix_len > best.prefix_len:
                    best = route
        return best.next_hop if best else None

    @property
    def stats(self) -> Dict[str, float]:
        if self._fabric is None:
            return {"searches": 0, "energy_j": 0.0, "banks": self.banks,
                    "cache_hits": 0}
        fabric_stats = self._fabric.stats
        return {"searches": fabric_stats.searches,
                "energy_j": fabric_stats.energy_total,
                "banks": fabric_stats.num_banks,
                "cache_hits": fabric_stats.cache_hits}
