"""Fully-associative cache with TCAM tag matching — the paper's
"high-associativity caches" motivation (Sec. I / abstract).

The tag store is a binary-mode :class:`~fecam.store.CamStore` (no
wildcards in tags, one entry per cache line, priority = line index so
hit detection keeps the classic lowest-line priority-encoder
semantics); hit detection is one parallel search.  Replacement is LRU.
A ``store_config`` scales the tag store across banks and adds query
caching for probe-heavy traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..designs import DesignKind
from ..errors import OperationError
from ..store import CamStore, StoreConfig, StoreStats
from ._compat import legacy_store_config

__all__ = ["AccessResult", "TcamCache"]


@dataclass
class AccessResult:
    hit: bool
    line: int
    evicted_tag: Optional[int] = None


class TcamCache:
    """Fully-associative cache: TCAM tags + LRU replacement.

    >>> cache = TcamCache(lines=2, block_bits=4, address_bits=16)
    >>> cache.access(0x1230).hit
    False
    >>> cache.access(0x1234).hit   # same block
    True
    """

    def __init__(self, lines: int, *, block_bits: int = 6,
                 address_bits: int = 32,
                 design: Optional[DesignKind] = None,
                 store_config: Optional[StoreConfig] = None):
        config = legacy_store_config(
            "TcamCache", store_config=store_config, design=design)
        if lines < 1:
            raise OperationError("cache needs at least one line")
        if not 0 < block_bits < address_bits:
            raise OperationError("invalid block/address split")
        self.lines = lines
        self.block_bits = block_bits
        self.tag_bits = address_bits - block_bits
        # TCAM words must be even-length for the 2-cell pairing.
        self._pad = self.tag_bits % 2
        self._store = CamStore(config.with_geometry(
            width=self.tag_bits + self._pad, rows=lines))
        self._tags: List[Optional[int]] = [None] * lines
        self._lru: List[int] = list(range(lines))  # front = LRU victim
        self.hits = 0
        self.misses = 0

    def _tag_of(self, address: int) -> int:
        return address >> self.block_bits

    def _tag_word(self, tag: int) -> str:
        return format(tag, f"0{self.tag_bits + self._pad}b")

    def _touch(self, line: int) -> None:
        self._lru.remove(line)
        self._lru.append(line)

    def _probe(self, tag: int) -> Optional[int]:
        """The line holding ``tag``, via one parallel tag search."""
        match = self._store.search_first(self._tag_word(tag))
        if match is not None and self._tags[match.key] == tag:
            return match.key
        return None

    def access(self, address: int) -> AccessResult:
        """Look up an address; allocate on miss (LRU victim)."""
        if address < 0:
            raise OperationError("addresses are non-negative")
        tag = self._tag_of(address)
        line = self._probe(tag)
        if line is not None:
            self.hits += 1
            self._touch(line)
            return AccessResult(hit=True, line=line)
        self.misses += 1
        victim = self._lru[0]
        evicted = self._tags[victim]
        self._tags[victim] = tag
        if evicted is None:
            # Line index doubles as key and priority: hit detection
            # returns the lowest matching line, like the raw-row search.
            self._store.insert(self._tag_word(tag), key=victim,
                               priority=victim)
        else:
            self._store.update(victim, self._tag_word(tag))
        self._touch(victim)
        return AccessResult(hit=False, line=victim, evicted_tag=evicted)

    def contains(self, address: int) -> bool:
        """Non-allocating membership probe (still fires a tag search)."""
        if address < 0:
            raise OperationError("addresses are non-negative")
        return self._probe(self._tag_of(address)) is not None

    def contains_batch(self, addresses: Sequence[int]) -> List[bool]:
        """Vectorized membership probe for a batch of addresses."""
        for address in addresses:
            if address < 0:
                raise OperationError("addresses are non-negative")
        if not addresses:
            return []
        tags = [self._tag_of(address) for address in addresses]
        results = self._store.search_batch(
            [self._tag_word(tag) for tag in tags])
        return [r.best is not None and self._tags[r.best.key] == tag
                for tag, r in zip(tags, results)]

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def energy_spent(self) -> float:
        return self._store.stats.energy_total

    @property
    def store_stats(self) -> StoreStats:
        """Full telemetry of the backing tag store."""
        return self._store.stats
