"""Fully-associative cache with TCAM tag matching — the paper's
"high-associativity caches" motivation (Sec. I / abstract).

The tag store is a binary-mode TCAM (no wildcards in tags); hit detection
is one parallel search.  Replacement is LRU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..designs import DesignKind
from ..errors import OperationError
from ..functional.engine import TernaryCAM

__all__ = ["AccessResult", "TcamCache"]


@dataclass
class AccessResult:
    hit: bool
    line: int
    evicted_tag: Optional[int] = None


class TcamCache:
    """Fully-associative cache: TCAM tags + LRU replacement.

    >>> cache = TcamCache(lines=2, block_bits=4, address_bits=16)
    >>> cache.access(0x1230).hit
    False
    >>> cache.access(0x1234).hit   # same block
    True
    """

    def __init__(self, lines: int, *, block_bits: int = 6,
                 address_bits: int = 32,
                 design: DesignKind = DesignKind.DG_1T5):
        if lines < 1:
            raise OperationError("cache needs at least one line")
        if not 0 < block_bits < address_bits:
            raise OperationError("invalid block/address split")
        self.lines = lines
        self.block_bits = block_bits
        self.tag_bits = address_bits - block_bits
        # TCAM words must be even-length for the 2-cell pairing.
        self._pad = self.tag_bits % 2
        self._tcam = TernaryCAM(rows=lines, width=self.tag_bits + self._pad,
                                design=design)
        self._tags: List[Optional[int]] = [None] * lines
        self._lru: List[int] = list(range(lines))  # front = LRU victim
        self.hits = 0
        self.misses = 0

    def _tag_of(self, address: int) -> int:
        return address >> self.block_bits

    def _tag_word(self, tag: int) -> str:
        return format(tag, f"0{self.tag_bits + self._pad}b")

    def _touch(self, line: int) -> None:
        self._lru.remove(line)
        self._lru.append(line)

    def access(self, address: int) -> AccessResult:
        """Look up an address; allocate on miss (LRU victim)."""
        if address < 0:
            raise OperationError("addresses are non-negative")
        tag = self._tag_of(address)
        row = self._tcam.search_first(self._tag_word(tag))
        if row is not None and self._tags[row] == tag:
            self.hits += 1
            self._touch(row)
            return AccessResult(hit=True, line=row)
        self.misses += 1
        victim = self._lru[0]
        evicted = self._tags[victim]
        self._tags[victim] = tag
        self._tcam.write(victim, self._tag_word(tag))
        self._touch(victim)
        return AccessResult(hit=False, line=victim, evicted_tag=evicted)

    def contains(self, address: int) -> bool:
        tag = self._tag_of(address)
        row = self._tcam.search_first(self._tag_word(tag))
        return row is not None and self._tags[row] == tag

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def energy_spent(self) -> float:
        return self._tcam.energy_spent
