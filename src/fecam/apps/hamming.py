"""Approximate (Hamming-distance) matching on a TCAM.

The paper's author group uses FeFET CAMs for multi-state Hamming-distance
search [3] and one-shot learning [5].  An exact-match TCAM can answer
*bounded* Hamming-distance queries by query perturbation: a stored word
within distance ``d`` of the query matches at least one of the queries
obtained by flipping ``<= d`` bits — with wildcards reducing the search
effort.  This module implements:

* :func:`hamming_distance` over ternary words (don't-cares are free);
* :class:`HammingSearcher` — bounded-distance and nearest-neighbor search
  over a :class:`TernaryCAM`, with an exact reference implementation;
* a one-shot-classifier convenience built on nearest-neighbor search
  (class prototypes stored as ternary words, unstable bits as 'X').
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

from ..cam.states import normalize_query, normalize_word
from ..designs import DesignKind
from ..errors import OperationError, TernaryValueError
from ..functional.engine import TernaryCAM

__all__ = ["hamming_distance", "HammingSearcher", "OneShotClassifier"]


def hamming_distance(stored: str, query: str) -> int:
    """Mismatch count between a ternary word and a binary query
    ('X' positions cost nothing)."""
    stored = normalize_word(stored)
    query = normalize_query(query)
    if len(stored) != len(query):
        raise TernaryValueError("length mismatch")
    return sum(1 for s, q in zip(stored, query) if s != "X" and s != q)


class HammingSearcher:
    """Bounded-distance / nearest-neighbor search over a TernaryCAM.

    Query perturbation: distance-``d`` candidates are found by searching
    the original query plus every query with ``<= d`` bits flipped
    (``sum C(n,k)`` searches).  Practical for the small ``d`` used in
    associative-memory workloads (the cited one-shot learners use d<=3).
    """

    def __init__(self, rows: int, width: int,
                 design: DesignKind = DesignKind.DG_1T5,
                 tcam: Optional[TernaryCAM] = None):
        self.tcam = tcam or TernaryCAM(rows=rows, width=width, design=design)
        self.width = width
        self._words: Dict[int, str] = {}

    def store(self, row: int, word: str) -> None:
        word = normalize_word(word)
        self.tcam.write(row, word)
        self._words[row] = word

    def search_within(self, query: str, distance: int) -> List[Tuple[int, int]]:
        """All (row, exact_distance) with distance <= ``distance``,
        sorted by distance then row."""
        query = normalize_query(query)
        if distance < 0:
            raise OperationError("distance must be non-negative")
        if distance > self.width:
            distance = self.width
        found: Dict[int, int] = {}
        for d in range(distance + 1):
            for flip_positions in combinations(range(self.width), d):
                bits = list(query)
                for p in flip_positions:
                    bits[p] = "0" if bits[p] == "1" else "1"
                for row in self.tcam.search("".join(bits)).matches:
                    if row not in found:
                        found[row] = hamming_distance(self._words[row], query)
            if found and d >= max(found.values()):
                # Every remaining candidate is already closer.
                pass
        return sorted(found.items(), key=lambda kv: (kv[1], kv[0]))

    def nearest(self, query: str, max_distance: Optional[int] = None
                ) -> Optional[Tuple[int, int]]:
        """(row, distance) of the closest stored word, expanding the
        search radius incrementally (early exit at the first hit)."""
        query = normalize_query(query)
        limit = self.width if max_distance is None else max_distance
        for d in range(limit + 1):
            for flip_positions in combinations(range(self.width), d):
                bits = list(query)
                for p in flip_positions:
                    bits[p] = "0" if bits[p] == "1" else "1"
                matches = self.tcam.search("".join(bits)).matches
                if matches:
                    row = min(matches)
                    return row, hamming_distance(self._words[row], query)
        return None

    def nearest_reference(self, query: str) -> Optional[Tuple[int, int]]:
        """Exhaustive software nearest-neighbor (specification)."""
        query = normalize_query(query)
        best: Optional[Tuple[int, int]] = None
        for row, word in sorted(self._words.items()):
            d = hamming_distance(word, query)
            if best is None or d < best[1]:
                best = (row, d)
        return best


class OneShotClassifier:
    """Nearest-prototype classifier (the ferroelectric TCAM one-shot
    learning use case [5]): one ternary prototype per class."""

    def __init__(self, width: int, design: DesignKind = DesignKind.DG_1T5,
                 capacity: int = 64):
        self.width = width
        self.searcher = HammingSearcher(rows=capacity, width=width,
                                        design=design)
        self.labels: List[str] = []

    def learn(self, label: str, prototype: str) -> int:
        """Store one class prototype ('X' marks unreliable features)."""
        if len(self.labels) >= len(self.searcher.tcam):
            raise OperationError("classifier capacity exhausted")
        row = len(self.labels)
        self.searcher.store(row, prototype)
        self.labels.append(label)
        return row

    def classify(self, features: str,
                 max_distance: Optional[int] = None) -> Optional[str]:
        hit = self.searcher.nearest(features, max_distance=max_distance)
        if hit is None:
            return None
        return self.labels[hit[0]]
