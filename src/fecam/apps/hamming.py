"""Approximate (Hamming-distance) matching on the associative store.

The paper's author group uses FeFET CAMs for multi-state Hamming-distance
search [3] and one-shot learning [5].  An exact-match TCAM can answer
*bounded* Hamming-distance queries by query perturbation: a stored word
within distance ``d`` of the query matches at least one of the queries
obtained by flipping ``<= d`` bits — with wildcards reducing the search
effort.  This module implements:

* :func:`hamming_distance` over ternary words (don't-cares are free);
* :class:`HammingSearcher` — bounded-distance and nearest-neighbor search
  over a :class:`~fecam.store.CamStore` (each perturbation ring is one
  batched store pass), with an exact reference implementation;
* a one-shot-classifier convenience built on nearest-neighbor search
  (class prototypes stored as ternary words, unstable bits as 'X').
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

from ..cam.states import normalize_query, normalize_word
from ..designs import DesignKind
from ..errors import OperationError, TernaryValueError
from ..functional.engine import TernaryCAM
from ..store import ArrayBackend, CamStore, StoreConfig
from ._compat import legacy_store_config, warn_once

__all__ = ["hamming_distance", "HammingSearcher", "OneShotClassifier"]


def hamming_distance(stored: str, query: str) -> int:
    """Mismatch count between a ternary word and a binary query
    ('X' positions cost nothing)."""
    stored = normalize_word(stored)
    query = normalize_query(query)
    if len(stored) != len(query):
        raise TernaryValueError("length mismatch")
    return sum(1 for s, q in zip(stored, query) if s != "X" and s != q)


def _ring(query: str, width: int, d: int) -> List[str]:
    """Every query obtained by flipping exactly ``d`` bits, in the
    deterministic :func:`itertools.combinations` order."""
    ring: List[str] = []
    for flip_positions in combinations(range(width), d):
        bits = list(query)
        for p in flip_positions:
            bits[p] = "0" if bits[p] == "1" else "1"
        ring.append("".join(bits))
    return ring


class HammingSearcher:
    """Bounded-distance / nearest-neighbor search over a CamStore.

    Query perturbation: distance-``d`` candidates are found by searching
    the original query plus every query with ``<= d`` bits flipped
    (``sum C(n,k)`` searches, each ring served as one batched store
    pass).  Practical for the small ``d`` used in associative-memory
    workloads (the cited one-shot learners use d<=3).
    """

    def __init__(self, rows: int, width: int,
                 design: Optional[DesignKind] = None,
                 tcam: Optional[TernaryCAM] = None, *,
                 store_config: Optional[StoreConfig] = None):
        config = legacy_store_config(
            "HammingSearcher", store_config=store_config, design=design)
        if tcam is not None:
            warn_once("HammingSearcher(tcam=...)",
                      "HammingSearcher(tcam=...) is deprecated; pass "
                      "store_config=StoreConfig(...) and let the store "
                      "own its array", stacklevel=3)
            backend = ArrayBackend(
                config.with_geometry(width=width, rows=rows), cam=tcam)
            self.cam_store = CamStore(backend=backend)
        else:
            self.cam_store = CamStore(config.with_geometry(width=width,
                                                           rows=rows))
        self.width = width
        self._words: Dict[int, str] = {}

    @property
    def capacity(self) -> int:
        return self.cam_store.capacity

    @property
    def tcam(self) -> TernaryCAM:
        """The underlying array (array backend only; legacy accessor)."""
        backend = self.cam_store.backend
        if not isinstance(backend, ArrayBackend):
            raise OperationError(
                "a multi-bank searcher has no single tcam; use "
                "cam_store instead")
        return backend.cam

    def store(self, row: int, word: str) -> None:
        """Store a prototype word under ``row`` (rewrites in place)."""
        word = normalize_word(word)
        if row in self.cam_store:
            self.cam_store.update(row, word)
        else:
            # Priority = row keeps lowest-row-wins tie-breaking across
            # backends, like a hardware priority encoder would.
            self.cam_store.insert(word, key=row, priority=row)
        self._words[row] = word

    def _ring_rows(self, queries: Sequence[str]) -> List[int]:
        """Rows matching any query of one perturbation ring (one batched
        store pass), in ascending row order."""
        rows = {m.key for r in self.cam_store.search_batch(queries)
                for m in r.matches}
        return sorted(rows)

    def search_within(self, query: str, distance: int) -> List[Tuple[int, int]]:
        """All (row, exact_distance) with distance <= ``distance``,
        sorted by distance then row."""
        query = normalize_query(query)
        if distance < 0:
            raise OperationError("distance must be non-negative")
        if distance > self.width:
            distance = self.width
        found: Dict[int, int] = {}
        for d in range(distance + 1):
            for row in self._ring_rows(_ring(query, self.width, d)):
                if row not in found:
                    found[row] = hamming_distance(self._words[row], query)
        return sorted(found.items(), key=lambda kv: (kv[1], kv[0]))

    def nearest(self, query: str, max_distance: Optional[int] = None
                ) -> Optional[Tuple[int, int]]:
        """(row, distance) of the closest stored word, expanding the
        search radius ring by ring (early exit at the first non-empty
        ring; ties broken by the lowest row)."""
        query = normalize_query(query)
        limit = self.width if max_distance is None else max_distance
        for d in range(limit + 1):
            rows = self._ring_rows(_ring(query, self.width, d))
            if rows:
                row = rows[0]
                return row, hamming_distance(self._words[row], query)
        return None

    def nearest_reference(self, query: str) -> Optional[Tuple[int, int]]:
        """Exhaustive software nearest-neighbor (specification)."""
        query = normalize_query(query)
        best: Optional[Tuple[int, int]] = None
        for row, word in sorted(self._words.items()):
            d = hamming_distance(word, query)
            if best is None or d < best[1]:
                best = (row, d)
        return best


class OneShotClassifier:
    """Nearest-prototype classifier (the ferroelectric TCAM one-shot
    learning use case [5]): one ternary prototype per class."""

    def __init__(self, width: int, design: Optional[DesignKind] = None,
                 capacity: int = 64, *,
                 store_config: Optional[StoreConfig] = None):
        config = legacy_store_config(
            "OneShotClassifier", store_config=store_config, design=design)
        self.width = width
        self.searcher = HammingSearcher(rows=capacity, width=width,
                                        store_config=config)
        self.labels: List[str] = []

    def learn(self, label: str, prototype: str) -> int:
        """Store one class prototype ('X' marks unreliable features)."""
        if len(self.labels) >= self.searcher.capacity:
            raise OperationError("classifier capacity exhausted")
        row = len(self.labels)
        self.searcher.store(row, prototype)
        self.labels.append(label)
        return row

    def classify(self, features: str,
                 max_distance: Optional[int] = None) -> Optional[str]:
        hit = self.searcher.nearest(features, max_distance=max_distance)
        if hit is None:
            return None
        return self.labels[hit[0]]

    def classify_batch(self, features: Sequence[str],
                       max_distance: Optional[int] = None
                       ) -> List[Optional[str]]:
        """Classify many feature vectors (rings batched per query)."""
        return [self.classify(f, max_distance=max_distance)
                for f in features]
