"""Priority encoder and hit logic for the CAM periphery (paper Fig. 2).

A CAM search returns M match-line outcomes; the encoder reduces them to a
hit flag plus the address of the highest-priority (lowest-index) match.
The gate-level cost model feeds the array-level area/energy totals.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2
from typing import List, Optional, Sequence, Tuple

from ..errors import OperationError
from ..units import UM

__all__ = ["PriorityEncoder", "EncoderCost"]


@dataclass(frozen=True)
class EncoderCost:
    """Gate-count-derived cost of an M-input priority encoder."""

    inputs: int
    gates: int
    area: float  # m^2
    energy_per_op: float  # J
    delay: float  # s


class PriorityEncoder:
    """Behavioural priority encoder with a gate-level cost estimate."""

    #: 14 nm-ish per-gate figures (NAND2-equivalent).
    GATE_AREA = 0.1 * UM ** 2
    GATE_ENERGY = 0.08e-15
    GATE_DELAY = 12e-12

    def __init__(self, inputs: int):
        if inputs < 1:
            raise OperationError("encoder needs at least one input")
        self.inputs = inputs

    def encode(self, match_lines: Sequence[bool]) -> Tuple[bool, Optional[int]]:
        """Return (hit, address of the lowest-index active line)."""
        if len(match_lines) != self.inputs:
            raise OperationError(
                f"expected {self.inputs} match lines, got {len(match_lines)}")
        for i, m in enumerate(match_lines):
            if m:
                return True, i
        return False, None

    def encode_all(self, match_lines: Sequence[bool]) -> List[int]:
        """All matching addresses, highest priority first."""
        if len(match_lines) != self.inputs:
            raise OperationError(
                f"expected {self.inputs} match lines, got {len(match_lines)}")
        return [i for i, m in enumerate(match_lines) if m]

    def cost(self) -> EncoderCost:
        """Cost of a lookahead priority encoder: ~4 gates per input plus
        an OR-reduce tree for the hit flag."""
        n = self.inputs
        address_bits = max(1, ceil(log2(max(n, 2))))
        gates = 4 * n + 2 * address_bits + (n - 1)
        depth = 2 * max(1, ceil(log2(max(n, 2)))) + 2
        return EncoderCost(
            inputs=n,
            gates=gates,
            area=gates * self.GATE_AREA,
            energy_per_op=gates * self.GATE_ENERGY * 0.15,  # activity factor
            delay=depth * self.GATE_DELAY,
        )
