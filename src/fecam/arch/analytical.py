"""Closed-form latency/energy estimator — the fast Eva-CAM tier.

Eva-CAM [15] (which the paper uses for parasitics) is an *analytical*
CAM evaluation tool: no transient simulation, just RC and current-based
expressions.  This module provides that tier for our designs so that
architecture sweeps (word length, array size, technology what-ifs) run in
microseconds, cross-checked against the SPICE tier by tests.

Model (per search evaluation):

* ML discharge delay  ``t_ml = C_ml * dV / I_pull`` with ``C_ml`` from
  device junctions + wire and ``I_pull`` the worst-case pulldown current
  at its operating bias;
* SL_bar settle term for the 1.5T1Fe designs (word-length independent);
* precharge + line-switching energy ``sum C V^2`` over toggled lines;
* divider static energy ``I_div * V * t_window`` over conducting cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..designs import DesignKind
from ..devices import (VDD, cell_sizing, make_fefet, nmos,
                       operating_voltages)
from ..errors import OperationError
from .geometry import cell_geometry
from .wire import WIRE_14NM

__all__ = ["AnalyticalEstimate", "estimate_search"]

#: SA threshold fraction (same convention as the SPICE tier).
_DV_FRACTION = 0.5
#: Fixed overheads (SA + sequencing), seconds.
_T_SENSE = 60e-12


@dataclass(frozen=True)
class AnalyticalEstimate:
    """Closed-form per-search estimate for one design/word length."""

    design: DesignKind
    word_length: int
    ml_capacitance: float  # F
    pulldown_current: float  # A
    latency_per_eval: float  # s
    evaluations: int  # 1 or 2 (two-step designs)
    latency_total: float  # s
    energy_per_bit: float  # J (full search, both steps)
    energy_breakdown: Dict[str, float]
    latency_1step: float = 0.0  # s (search resolved after one evaluation)
    energy_per_bit_1step: float = 0.0  # J (step-1-terminated search)


def _ml_capacitance(design: DesignKind, n: int) -> float:
    geo = cell_geometry(design)
    wire = WIRE_14NM.capacitance(geo.width * n)
    if design.is_one_fefet:
        sz = cell_sizing(design)
        # One TML junction per 2 cells.
        junction = (n // 2) * 0.9e-9 * sz.tml_w
    elif design.is_fefet:
        # Two FeFET drains per cell.
        from ..devices import fefet_params_for
        junction = n * 2 * fefet_params_for(design).c_jd
    else:
        junction = n * 2 * 0.9e-9 * 40e-9  # two compare-stack junctions
    return wire + junction


def _pulldown_current(design: DesignKind) -> float:
    """Worst-case single-cell ML pulldown current at its operating bias."""
    volts = operating_voltages(design) if design.is_fefet else None
    if design.is_one_fefet:
        # TML driven by the worst mismatch SL_bar level.
        from ..cam.sizing import slbar_level

        sz = cell_sizing(design)
        v_gate = min(slbar_level(design, 1.0, "0"),
                     slbar_level(design, 0.0, "1"))
        tml = nmos("TML", "d", "g", "s", w=sz.tml_w, l=sz.tml_l,
                   vth=sz.tml_vth)
        return tml.channel_current(VDD * 0.7, v_gate, 0.0)
    if design.is_fefet:
        fef = make_fefet(design, "F", "f", "d", "s", "b", initial_s=1.0)
        if design.is_double_gate:
            return fef.channel_current(0.0, VDD * 0.7, 0.0, volts.vsel)
        return fef.channel_current(volts.vsel, VDD * 0.7, 0.0, 0.0)
    # CMOS compare stack: two series 40 nm NMOS at 0.9 V.
    m = nmos("M", "d", "g", "s", w=40e-9)
    return m.channel_current(0.9 * 0.7, 0.9, 0.0) / 2.0


def estimate_search(design: DesignKind, word_length: int = 64, *,
                    step1_miss_rate: float = 0.9) -> AnalyticalEstimate:
    """Closed-form search latency/energy (no transient simulation)."""
    if word_length < 2:
        raise OperationError("word length must be >= 2")
    vdd = 0.9 if design is DesignKind.CMOS_16T else VDD
    c_ml = _ml_capacitance(design, word_length)
    i_pull = _pulldown_current(design)
    t_ml = c_ml * (_DV_FRACTION * vdd) / i_pull
    geo = cell_geometry(design)

    breakdown: Dict[str, float] = {}
    breakdown["ml_precharge"] = c_ml * vdd * vdd
    # Column query lines: one cell-share each (1/M of the array column).
    c_col = WIRE_14NM.capacitance(geo.height) * word_length
    if design.is_one_fefet:
        volts = operating_voltages(design)
        sz = cell_sizing(design)
        evaluations = 2
        t_settle = 0.45e-9  # SL_bar settling (TP/TN-limited, N-independent)
        t_eval = t_settle + t_ml + _T_SENSE
        # Divider static: half the searched cells conduct ~ the TP current.
        from ..devices import pmos as _pmos

        tp = _pmos("TP", "a", "g", "b", w=sz.tp_w, l=sz.tp_l, vth=sz.tp_vth)
        i_div = -tp.channel_current(0.1, 0.0, VDD, VDD)
        breakdown["divider_static"] = (0.5 * (word_length / 2) * i_div
                                       * VDD * t_eval * evaluations)
        breakdown["query_lines"] = 2.0 * c_col * vdd * vdd
        if design.is_double_gate:
            from ..devices import fefet_params_for

            c_sel = (WIRE_14NM.capacitance(geo.width) * word_length
                     + (word_length // 2) * (fefet_params_for(design).c_bg
                                             + fefet_params_for(design).c_bg_well))
            breakdown["select_lines"] = 2.0 * c_sel * volts.vsel ** 2
        latency_total = evaluations * t_eval + 0.3e-9
    else:
        evaluations = 1
        t_eval = 0.3e-9 + t_ml + _T_SENSE
        latency_total = t_eval
        if design.is_fefet:
            volts = operating_voltages(design)
            from ..devices import fefet_params_for

            p = fefet_params_for(design)
            line_v = volts.vsel
            c_line = c_col + word_length * (
                (p.c_bg + p.c_bg_well) if design.is_double_gate else p.c_fg)
            breakdown["query_lines"] = c_line * line_v ** 2
        else:
            breakdown["query_lines"] = 2.0 * c_col * vdd * vdd
    breakdown["sense_amp"] = 0.5e-15 * (vdd / 0.8) ** 2

    energy_total = sum(breakdown.values())
    if evaluations == 2:
        # Step-1-terminated search: the ML is precharged once and the SA
        # fires on it once regardless of step count, while the per-step
        # contributors (divider window, query/select line toggles) are
        # split evenly across the two evaluations.
        energy_1step = (breakdown["ml_precharge"] + breakdown["sense_amp"]
                        + 0.5 * (breakdown["divider_static"]
                                 + breakdown["query_lines"]
                                 + breakdown.get("select_lines", 0.0)))
        latency_1step = t_eval
    else:
        energy_1step = energy_total
        latency_1step = latency_total
    return AnalyticalEstimate(
        design=design, word_length=word_length, ml_capacitance=c_ml,
        pulldown_current=i_pull, latency_per_eval=t_eval,
        evaluations=evaluations, latency_total=latency_total,
        energy_per_bit=energy_total / word_length,
        energy_breakdown=breakdown,
        latency_1step=latency_1step,
        energy_per_bit_1step=energy_1step / word_length)
