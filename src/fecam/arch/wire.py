"""Interconnect parasitics for a 14 nm-class metal stack.

Plays the role of the Eva-CAM wire extraction the paper cites [15]: match
lines, search lines and select lines are modeled as lumped RC loads whose
values scale with the physical run length derived from the cell geometry.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..designs import DesignKind
from .geometry import cell_geometry

__all__ = ["WireParams", "WIRE_14NM", "WireLoad", "ml_wire", "column_wire",
           "row_wire"]


@dataclass(frozen=True)
class WireParams:
    """Per-length interconnect constants."""

    c_per_m: float  # F/m
    r_per_m: float  # ohm/m

    def capacitance(self, length: float) -> float:
        return self.c_per_m * length

    def resistance(self, length: float) -> float:
        return self.r_per_m * length


#: Lower-level metal at the 14 nm node: ~0.12 fF/um, ~25 ohm/um.
WIRE_14NM = WireParams(c_per_m=0.12e-9, r_per_m=25.0e6)


@dataclass(frozen=True)
class WireLoad:
    """Lumped RC of one routed line."""

    length: float  # m
    capacitance: float  # F
    resistance: float  # ohm

    @property
    def elmore_delay(self) -> float:
        """0.5 * R * C — distributed-line Elmore approximation (s)."""
        return 0.5 * self.resistance * self.capacitance


def _load(length: float, wire: WireParams = WIRE_14NM) -> WireLoad:
    return WireLoad(length=length, capacitance=wire.capacitance(length),
                    resistance=wire.resistance(length))


def ml_wire(design: DesignKind, word_length: int,
            wire: WireParams = WIRE_14NM) -> WireLoad:
    """Match-line wire spanning ``word_length`` cells."""
    length = cell_geometry(design).width * word_length
    return _load(length, wire)


def row_wire(design: DesignKind, word_length: int,
             wire: WireParams = WIRE_14NM) -> WireLoad:
    """A row control line (SeLa/SeLb) spanning the word."""
    length = cell_geometry(design).width * word_length
    return _load(length, wire)


def column_wire(design: DesignKind, rows: int,
                wire: WireParams = WIRE_14NM) -> WireLoad:
    """A column line (BL/SL/Wr-SL) spanning ``rows`` cells."""
    length = cell_geometry(design).height * rows
    return _load(length, wire)
