"""High-voltage driver model and the shared-driver mat of paper Fig. 6.

The DG-FeFET flavour is co-optimized so its LVT write voltage equals its
BG read voltage (2.0 V).  Because a subarray's BLs (write) and SeLs
(search) are perpendicular and never active simultaneously, one HV driver
bank can serve the BLs of one subarray and the SeLs of its 90-degree
rotated neighbour in a time-multiplexed fashion; four subarrays compose a
mat and the driver count halves (Sec. III-B4).

The driver itself is modeled at the level the paper evaluates: area per
driver (HV transistors are big), static leakage while idle, and drive
resistance for line-charging delays.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..designs import DesignKind
from ..devices import operating_voltages
from ..errors import OperationError
from ..units import UM

__all__ = ["HvDriverParams", "DriverBank", "SharedDriverMat",
           "driver_params_for"]


@dataclass(frozen=True)
class HvDriverParams:
    """One high-voltage line driver."""

    max_voltage: float  # V it must deliver
    area: float  # m^2
    leakage_power: float  # W while idle
    drive_resistance: float  # ohm when active

    @property
    def area_um2(self) -> float:
        return self.area / UM ** 2


def driver_params_for(design: DesignKind) -> HvDriverParams:
    """HV driver scaled to the design's write voltage.

    HV transistor area grows roughly quadratically with the voltage it
    must withstand (drain-extension / cascode overhead); so the +/-4 V
    SG-FeFET drivers are markedly bigger and leakier than the +/-2 V DG
    drivers — a peripheral advantage of DG designs the paper highlights.
    """
    if not design.is_fefet:
        raise OperationError("the CMOS TCAM needs no HV drivers")
    v = operating_voltages(design).vw
    v_ratio = v / 2.0
    return HvDriverParams(
        max_voltage=v,
        area=(1.2 * v_ratio ** 2) * UM ** 2,
        leakage_power=2e-9 * v_ratio ** 2,
        drive_resistance=2e3 / v_ratio,
    )


@dataclass(frozen=True)
class DriverBank:
    """A bank of line drivers attached to one subarray edge."""

    design: DesignKind
    lines: int
    params: HvDriverParams

    @property
    def area(self) -> float:
        return self.lines * self.params.area

    @property
    def leakage_power(self) -> float:
        return self.lines * self.params.leakage_power


@dataclass(frozen=True)
class SharedDriverMat:
    """Four rotated subarrays sharing HV driver banks (paper Fig. 6a).

    ``rows``/``cols`` describe one subarray.  Without sharing, each
    subarray owns a BL bank (``cols`` write drivers) and a SeL bank
    (``2*rows`` select drivers for SeLa/SeLb, or ``cols`` SL drivers for
    the column-selected designs).  With sharing, adjacent subarrays
    time-multiplex one bank for both roles, halving the driver count —
    possible only when write and select voltages coincide
    (``OperatingVoltages.shares_hv_level``).
    """

    design: DesignKind
    rows: int
    cols: int

    @property
    def _write_lines_per_subarray(self) -> int:
        # One BL per cell column (1.5T1Fe) or two (2FeFET complementary).
        return self.cols * (2 if not self.design.is_one_fefet else 1)

    @property
    def _select_lines_per_subarray(self) -> int:
        if self.design is DesignKind.DG_1T5:
            return 2 * self.rows  # SeLa/SeLb per row pair group
        return self.cols  # column-selected designs

    @property
    def sharing_supported(self) -> bool:
        return (self.design.is_fefet
                and operating_voltages(self.design).shares_hv_level)

    def driver_count(self, shared: bool = True) -> int:
        per_sub = self._write_lines_per_subarray + self._select_lines_per_subarray
        total = 4 * per_sub
        if shared and self.sharing_supported:
            return total // 2
        return total

    def driver_area(self, shared: bool = True) -> float:
        return self.driver_count(shared) * driver_params_for(self.design).area

    def driver_leakage(self, shared: bool = True) -> float:
        return (self.driver_count(shared)
                * driver_params_for(self.design).leakage_power)

    def utilization(self, shared: bool = True) -> float:
        """Fraction of drivers active during a search-or-write phase.

        Unshared banks idle whenever their one role is inactive (writes
        are rare); shared banks serve a role in every phase.
        """
        return 0.5 if not (shared and self.sharing_supported) else 1.0

    def savings_summary(self) -> dict:
        """Driver count/area/leakage with and without sharing."""
        return {
            "design": str(self.design),
            "sharing_supported": self.sharing_supported,
            "drivers_unshared": self.driver_count(shared=False),
            "drivers_shared": self.driver_count(shared=True),
            "area_unshared_um2": self.driver_area(False) / UM ** 2,
            "area_shared_um2": self.driver_area(True) / UM ** 2,
            "leakage_unshared_w": self.driver_leakage(False),
            "leakage_shared_w": self.driver_leakage(True),
            "utilization_unshared": self.utilization(False),
            "utilization_shared": self.utilization(True),
        }
