"""Layout-rule cell-area model (paper Tab. IV areas, Sec. V-B).

The paper estimates cell areas from layouts "based on [27]", explicitly
counting the large spacing between isolated P-wells.  We reproduce that
accounting with a feature-based model: each cell's area is the sum of

* its FeFET footprints,
* its share of the control transistors (the 1.5T1Fe trio TP/TN/TML is
  split across the 2-cell pair — the ".5T" bookkeeping),
* fixed wiring/contact overhead, and
* isolated P-well strip penalties for designs that need individual
  back-gate control (row-wise for 1.5T1DG-Fe, column-wise double for
  2DG-FeFET — Sec. III-B3: 2M vs 2N wells).

The four feature constants below are calibrated so the model lands on the
paper's reported areas; the *structure* (which design pays which penalty)
is the model, the constants are the technology.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..designs import DesignKind
from ..errors import CalibrationError
from ..units import UM

__all__ = ["CellGeometry", "cell_geometry", "FEATURE_AREAS"]

# Calibrated feature areas, um^2 (14 nm node, layout rules of [27]).
FEATURE_AREAS = {
    # One 20x50 nm FeFET footprint incl. gate contact and FE via.
    "fefet": 0.0375,
    # The TP/TN/TML control trio of a 2-cell pair (long-channel TN/TP).
    "control_trio": 0.1010,
    # Fixed per-cell wiring/contact overhead.
    "overhead": 0.0200,
    # Isolated P-well strip, per cell, for row-wise BG control (1.5T1DG).
    "well_row": 0.0480,
    # Isolated P-well strip, per cell per well, column-wise (2DG: 2 wells).
    "well_col": 0.0545,
    # The 16T CMOS cell in the same 14 nm node ([25]).
    "cmos_16t": 0.2860,
}


@dataclass(frozen=True)
class CellGeometry:
    """Physical footprint of one TCAM cell."""

    design: DesignKind
    area: float  # m^2
    aspect: float  # width / height

    @property
    def width(self) -> float:
        """Cell width along the match line (word direction), meters."""
        return (self.area * self.aspect) ** 0.5

    @property
    def height(self) -> float:
        """Cell height along the search/bit lines, meters."""
        return self.area / self.width

    @property
    def area_um2(self) -> float:
        return self.area / UM ** 2


def cell_geometry(design: DesignKind) -> CellGeometry:
    """Area accounting per design (reproduces paper Tab. IV)."""
    f = FEATURE_AREAS
    if design is DesignKind.CMOS_16T:
        area_um2 = f["cmos_16t"]
        aspect = 1.0
    elif design is DesignKind.SG_2FEFET:
        area_um2 = 2 * f["fefet"] + f["overhead"]
        aspect = 0.8  # two FeFETs stacked along the bit lines
    elif design is DesignKind.DG_2FEFET:
        area_um2 = 2 * f["fefet"] + f["overhead"] + 2 * f["well_col"]
        aspect = 0.8
    elif design is DesignKind.SG_1T5:
        area_um2 = f["fefet"] + 0.5 * f["control_trio"] + f["overhead"]
        aspect = 1.2  # long-channel TN/TP run along the word direction
    elif design is DesignKind.DG_1T5:
        area_um2 = (f["fefet"] + 0.5 * f["control_trio"] + f["overhead"]
                    + f["well_row"])
        aspect = 1.2
    else:  # pragma: no cover - enum is closed
        raise CalibrationError(f"unknown design {design}")
    return CellGeometry(design=design, area=area_um2 * UM ** 2, aspect=aspect)
