"""Multi-bank TCAM macro organization (paper Fig. 2 scaled out).

A practical TCAM macro tiles many M x N subarrays into banks: capacity
grows with banks, all banks search in parallel (per-bank priority
encoders feed a global one), and writes go to one bank at a time.  This
module sizes such a macro for a given capacity/word-length target and
aggregates area, per-search energy and latency, including the shared-
driver mats of Fig. 6 for the DG designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2
from typing import Dict, Optional

from ..designs import DesignKind
from ..errors import OperationError
from ..units import UM
from .drivers import SharedDriverMat
from .encoder import PriorityEncoder
from .evacam import ArrayFoM, evaluate_array
from .geometry import cell_geometry

__all__ = ["TcamMacro"]


@dataclass(frozen=True)
class TcamMacro:
    """A banked TCAM macro: ``banks`` subarrays of ``rows`` x ``word``."""

    design: DesignKind
    rows: int = 64
    word: int = 64
    banks: int = 4

    def __post_init__(self):
        if self.rows < 1 or self.word < 2 or self.banks < 1:
            raise OperationError("invalid macro shape")

    @classmethod
    def for_capacity(cls, design: DesignKind, entries: int, word: int,
                     rows_per_bank: int = 64) -> "TcamMacro":
        """Smallest macro holding ``entries`` words."""
        if entries < 1:
            raise OperationError("need at least one entry")
        banks = ceil(entries / rows_per_bank)
        return cls(design=design, rows=rows_per_bank, word=word, banks=banks)

    # -- capacity ---------------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self.rows * self.banks

    @property
    def bits(self) -> int:
        return self.capacity * self.word

    # -- aggregated figures of merit ----------------------------------------------

    def _fom(self) -> ArrayFoM:
        return evaluate_array(self.design, rows=self.rows,
                              word_length=self.word)

    def area(self) -> float:
        """Total macro area (m^2): cells + drivers + encoders."""
        geo = cell_geometry(self.design)
        cells = geo.area * self.rows * self.word * self.banks
        if self.design.is_fefet:
            mats = max(1, ceil(self.banks / 4))
            mat = SharedDriverMat(self.design, rows=self.rows, cols=self.word)
            drivers = mats * mat.driver_area(shared=True)
        else:
            drivers = 0.0
        per_bank_enc = PriorityEncoder(self.rows).cost().area * self.banks
        global_enc = PriorityEncoder(self.banks).cost().area
        return cells + drivers + per_bank_enc + global_enc

    def area_mm2(self) -> float:
        return self.area() / 1e-6

    def search_energy(self) -> float:
        """Energy of one macro search (all banks in parallel), joules."""
        fom = self._fom()
        per_bank = fom.search_energy_avg * self.word * self.rows
        encoders = (PriorityEncoder(self.rows).cost().energy_per_op
                    * self.banks
                    + PriorityEncoder(self.banks).cost().energy_per_op)
        return per_bank * self.banks + encoders

    def search_latency(self) -> float:
        """Latency of one macro search: array + two encoder stages."""
        fom = self._fom()
        return (fom.latency_total
                + PriorityEncoder(self.rows).cost().delay
                + PriorityEncoder(self.banks).cost().delay)

    def write_energy(self) -> float:
        """Energy to write one word (one bank active)."""
        fom = self._fom()
        if fom.write_energy_per_cell is None:
            return 0.0
        return fom.write_energy_per_cell * self.word

    def throughput(self) -> float:
        """Searches per second (fully pipelined by bank-parallel search)."""
        return 1.0 / self.search_latency()

    def summary(self) -> Dict[str, float]:
        return {
            "design": str(self.design),
            "capacity_entries": self.capacity,
            "word_bits": self.word,
            "banks": self.banks,
            "area_mm2": self.area_mm2(),
            "search_energy_pj": self.search_energy() * 1e12,
            "search_latency_ns": self.search_latency() * 1e9,
            "write_energy_fj": self.write_energy() * 1e15,
            "throughput_msps": self.throughput() / 1e6,
        }
