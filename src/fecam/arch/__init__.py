"""Architecture-level evaluation (Eva-CAM-like): areas, wires, drivers,
encoder, and the Table IV / Fig. 7 figure-of-merit aggregation."""

from .analytical import AnalyticalEstimate, estimate_search
from .bank import TcamMacro
from .drivers import (DriverBank, HvDriverParams, SharedDriverMat,
                      driver_params_for)
from .encoder import EncoderCost, PriorityEncoder
from .evacam import (PAPER_TABLE4, STEP1_MISS_RATE_DEFAULT, ArrayFoM,
                     clear_cache, evaluate_array)
from .geometry import FEATURE_AREAS, CellGeometry, cell_geometry
from .wire import (WIRE_14NM, WireLoad, WireParams, column_wire, ml_wire,
                   row_wire)

__all__ = [
    "CellGeometry", "cell_geometry", "FEATURE_AREAS",
    "WireParams", "WireLoad", "WIRE_14NM", "ml_wire", "column_wire",
    "row_wire",
    "HvDriverParams", "DriverBank", "SharedDriverMat", "driver_params_for",
    "PriorityEncoder", "EncoderCost",
    "ArrayFoM", "evaluate_array", "PAPER_TABLE4", "clear_cache",
    "STEP1_MISS_RATE_DEFAULT",
    "AnalyticalEstimate", "estimate_search", "TcamMacro",
]
