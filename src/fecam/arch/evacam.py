"""Array-level figure-of-merit evaluation (the Eva-CAM role, paper [15]).

``evaluate_array`` is the legacy front door to the numbers the paper
reports in Tab. IV and sweeps in Fig. 7: cell area, write energy,
1-/2-step search latency and energy, and the 90 %-step-1-miss average.
Since the :mod:`fecam.metrics` redesign it is a thin wrapper over
``metrics.evaluate(point, fidelity="spice")`` — same arithmetic (the
word-level SPICE tier via :func:`fecam.cam.word.simulate_word_search`,
area/drivers/encoder from the analytical tier), now memoized in the
shared metrics registry instead of a module-private cache.
:class:`ArrayFoM` is an alias of the canonical
:class:`~fecam.metrics.Fom`, so legacy and metrics callers exchange the
very same objects.

The 16T CMOS baseline reports the published silicon figures of [25]
exactly as the paper does (write voltage 0.9 V, 0.286 um^2, 235 ps,
0.53 fJ/bit), cross-checked by our simulated 16T word model.
"""

from __future__ import annotations

from ..designs import DesignKind
from ..metrics.fom import Fom as ArrayFoM
from ..metrics.point import STEP1_MISS_RATE_DEFAULT
from ..metrics.registry import clear_registry as clear_cache

__all__ = ["ArrayFoM", "evaluate_array", "PAPER_TABLE4", "clear_cache",
           "STEP1_MISS_RATE_DEFAULT"]

#: Paper Table IV reference values, for side-by-side reporting (and the
#: source of the metrics API's ``fidelity="paper"`` tier).
#: (write_voltage_v, fe_thickness_nm, cell_area_um2, write_energy_fj,
#:  latency_1step_ps, latency_total_ps, energy_1step_fj, energy_total_fj,
#:  energy_avg_fj)
PAPER_TABLE4 = {
    DesignKind.CMOS_16T: dict(write_voltage="0.9V", t_fe_nm=None,
                              cell_area_um2=0.286, write_energy_fj=None,
                              latency_1step_ps=None, latency_total_ps=235.0,
                              energy_1step_fj=None, energy_total_fj=0.53,
                              energy_avg_fj=0.53),
    DesignKind.SG_2FEFET: dict(write_voltage="+/-4V", t_fe_nm=10,
                               cell_area_um2=0.095, write_energy_fj=1.63,
                               latency_1step_ps=None, latency_total_ps=582.0,
                               energy_1step_fj=None, energy_total_fj=0.17,
                               energy_avg_fj=0.17),
    DesignKind.DG_2FEFET: dict(write_voltage="+/-2V", t_fe_nm=5,
                               cell_area_um2=0.204, write_energy_fj=0.81,
                               latency_1step_ps=None, latency_total_ps=1147.0,
                               energy_1step_fj=None, energy_total_fj=0.25,
                               energy_avg_fj=0.25),
    DesignKind.SG_1T5: dict(write_voltage="+/-4V, 3.2V", t_fe_nm=10,
                            cell_area_um2=0.108, write_energy_fj=0.82,
                            latency_1step_ps=159.0, latency_total_ps=351.0,
                            energy_1step_fj=0.11, energy_total_fj=0.16,
                            energy_avg_fj=0.12),
    DesignKind.DG_1T5: dict(write_voltage="+/-2V, 1.6V", t_fe_nm=5,
                            cell_area_um2=0.156, write_energy_fj=0.41,
                            latency_1step_ps=231.0, latency_total_ps=481.0,
                            energy_1step_fj=0.13, energy_total_fj=0.21,
                            energy_avg_fj=0.14),
}


def evaluate_array(design: DesignKind, *, rows: int = 64,
                   word_length: int = 64,
                   step1_miss_rate: float = STEP1_MISS_RATE_DEFAULT,
                   timings=None) -> ArrayFoM:
    """Produce the Tab. IV row for a design at an array size.

    ``step1_miss_rate`` weights the early-termination average exactly as
    the paper does: ``E_avg = p * E_1step + (1-p) * E_2step``.

    Equivalent to ``metrics.evaluate(DesignPoint(...), "spice")`` — the
    SPICE tier is the ground truth this function has always computed.
    """
    from ..metrics import DesignPoint, evaluate

    point = DesignPoint(design=design, word_length=word_length, rows=rows,
                        step1_miss_rate=step1_miss_rate, timings=timings)
    return evaluate(point, fidelity="spice")
