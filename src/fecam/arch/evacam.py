"""Array-level figure-of-merit evaluation (the Eva-CAM role, paper [15]).

``evaluate_array`` aggregates the library's layers into the numbers the
paper reports in Tab. IV and sweeps in Fig. 7: cell area, write energy,
1-/2-step search latency and energy, and the 90 %-step-1-miss average.
Latency/energy come from the word-level SPICE tier
(:func:`fecam.cam.word.simulate_word_search`); area, drivers, and encoder
from the analytical tier.  Results are cached per (design, word length)
because the benches and tests revisit the same points.

The 16T CMOS baseline reports the published silicon figures of [25]
exactly as the paper does (write voltage 0.9 V, 0.286 um^2, 235 ps,
0.53 fJ/bit), cross-checked by our simulated 16T word model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..designs import DesignKind
from ..devices import operating_voltages
from ..errors import OperationError
from ..units import FJ, PS, UM
from .drivers import SharedDriverMat
from .encoder import PriorityEncoder
from .geometry import cell_geometry

# The cam tier imports arch.geometry for wire pitches, so evacam pulls the
# cam entry points lazily inside evaluate_array to avoid a package cycle.

__all__ = ["ArrayFoM", "evaluate_array", "PAPER_TABLE4", "clear_cache",
           "STEP1_MISS_RATE_DEFAULT"]

#: The paper's pessimistic real-world assumption (Sec. V-B).
STEP1_MISS_RATE_DEFAULT = 0.90

#: Paper Table IV reference values, for side-by-side reporting.
#: (write_voltage_v, fe_thickness_nm, cell_area_um2, write_energy_fj,
#:  latency_1step_ps, latency_total_ps, energy_1step_fj, energy_total_fj,
#:  energy_avg_fj)
PAPER_TABLE4 = {
    DesignKind.CMOS_16T: dict(write_voltage="0.9V", t_fe_nm=None,
                              cell_area_um2=0.286, write_energy_fj=None,
                              latency_1step_ps=None, latency_total_ps=235.0,
                              energy_1step_fj=None, energy_total_fj=0.53,
                              energy_avg_fj=0.53),
    DesignKind.SG_2FEFET: dict(write_voltage="+/-4V", t_fe_nm=10,
                               cell_area_um2=0.095, write_energy_fj=1.63,
                               latency_1step_ps=None, latency_total_ps=582.0,
                               energy_1step_fj=None, energy_total_fj=0.17,
                               energy_avg_fj=0.17),
    DesignKind.DG_2FEFET: dict(write_voltage="+/-2V", t_fe_nm=5,
                               cell_area_um2=0.204, write_energy_fj=0.81,
                               latency_1step_ps=None, latency_total_ps=1147.0,
                               energy_1step_fj=None, energy_total_fj=0.25,
                               energy_avg_fj=0.25),
    DesignKind.SG_1T5: dict(write_voltage="+/-4V, 3.2V", t_fe_nm=10,
                            cell_area_um2=0.108, write_energy_fj=0.82,
                            latency_1step_ps=159.0, latency_total_ps=351.0,
                            energy_1step_fj=0.11, energy_total_fj=0.16,
                            energy_avg_fj=0.12),
    DesignKind.DG_1T5: dict(write_voltage="+/-2V, 1.6V", t_fe_nm=5,
                            cell_area_um2=0.156, write_energy_fj=0.41,
                            latency_1step_ps=231.0, latency_total_ps=481.0,
                            energy_1step_fj=0.13, energy_total_fj=0.21,
                            energy_avg_fj=0.14),
}


@dataclass(frozen=True)
class ArrayFoM:
    """Figures of merit for one design at one array size."""

    design: DesignKind
    rows: int
    word_length: int
    write_voltage: str
    fe_thickness: Optional[float]  # m
    cell_area: float  # m^2
    write_energy_per_cell: float  # J
    latency_1step: float  # s (single search step / single evaluation)
    latency_total: float  # s (both steps for 1.5T1Fe designs)
    search_energy_1step: float  # J per cell
    search_energy_total: float  # J per cell (2 steps)
    search_energy_avg: float  # J per cell at the assumed step-1 miss rate
    macro_area: float  # m^2 incl. drivers + encoder
    driver_count: int
    encoder_delay: float

    @property
    def cell_area_um2(self) -> float:
        return self.cell_area / UM ** 2

    def as_row(self) -> Dict[str, float]:
        """Flat dict in the paper's units (um^2 / fJ / ps)."""
        return {
            "design": str(self.design),
            "write_voltage": self.write_voltage,
            "t_fe_nm": (None if self.fe_thickness is None
                        else self.fe_thickness * 1e9),
            "cell_area_um2": round(self.cell_area_um2, 4),
            "write_energy_fj": (None if self.write_energy_per_cell is None
                                else round(self.write_energy_per_cell / FJ, 3)),
            "latency_1step_ps": round(self.latency_1step / PS, 1),
            "latency_total_ps": round(self.latency_total / PS, 1),
            "energy_1step_fj": round(self.search_energy_1step / FJ, 4),
            "energy_total_fj": round(self.search_energy_total / FJ, 4),
            "energy_avg_fj": round(self.search_energy_avg / FJ, 4),
        }


_CACHE: Dict[Tuple, ArrayFoM] = {}


def clear_cache() -> None:
    _CACHE.clear()


def evaluate_array(design: DesignKind, *, rows: int = 64,
                   word_length: int = 64,
                   step1_miss_rate: float = STEP1_MISS_RATE_DEFAULT,
                   timings=None) -> ArrayFoM:
    """Produce the Tab. IV row for a design at an array size.

    ``step1_miss_rate`` weights the early-termination average exactly as
    the paper does: ``E_avg = p * E_1step + (1-p) * E_2step``.
    """
    from ..cam.ops import WriteController
    from ..cam.word import simulate_word_search

    key = (design, rows, word_length, round(step1_miss_rate, 4), timings)
    if key in _CACHE:
        return _CACHE[key]
    if not 0.0 <= step1_miss_rate <= 1.0:
        raise OperationError("step1_miss_rate must be in [0, 1]")

    geo = cell_geometry(design)
    if design.is_fefet:
        volts = operating_voltages(design)
        wc = WriteController(design)
        write_energy = wc.write_energy_per_cell()
        t_fe = wc.params.ferro.t_fe
        if design.is_one_fefet:
            write_v = f"+/-{volts.vw:g}V, {volts.vm:g}V"
        else:
            write_v = f"+/-{volts.vw:g}V"
    else:
        write_energy = None
        t_fe = None
        write_v = "0.9V"

    if design.uses_two_step_search:
        miss1 = simulate_word_search(design, word_length, "step1_miss",
                                     timings=timings)
        miss2 = simulate_word_search(design, word_length, "step2_miss",
                                     timings=timings)
        latency_1 = miss1.latency
        latency_2 = miss2.latency
        e1 = miss1.energy_per_bit
        e2 = miss2.energy_per_bit
        e_avg = step1_miss_rate * e1 + (1.0 - step1_miss_rate) * e2
    else:
        miss = simulate_word_search(design, word_length, "miss",
                                    timings=timings)
        latency_1 = latency_2 = miss.latency
        e1 = e2 = e_avg = miss.energy_per_bit
    if latency_1 is None or latency_2 is None:
        raise OperationError(
            f"{design}: mismatch did not resolve within the eval window")

    mat = (SharedDriverMat(design, rows=rows, cols=word_length)
           if design.is_fefet else None)
    encoder = PriorityEncoder(rows)
    cells_area = geo.area * rows * word_length
    driver_area = mat.driver_area(shared=True) / 4.0 if mat else 0.0
    macro_area = cells_area + driver_area + encoder.cost().area

    fom = ArrayFoM(
        design=design, rows=rows, word_length=word_length,
        write_voltage=write_v, fe_thickness=t_fe, cell_area=geo.area,
        write_energy_per_cell=write_energy,
        latency_1step=latency_1, latency_total=latency_2,
        search_energy_1step=e1, search_energy_total=e2,
        search_energy_avg=e_avg, macro_area=macro_area,
        driver_count=mat.driver_count(True) if mat else 0,
        encoder_delay=encoder.cost().delay)
    _CACHE[key] = fom
    return fom
