"""Shared memoizing registry for design-point evaluations.

One process-wide cache replaces the ad-hoc ``_CACHE`` dict that lived in
``fecam.arch.evacam``: every tier (paper / analytical / spice) and every
front door (``metrics.evaluate``, the legacy ``evaluate_array``, a
store's :class:`~fecam.functional.EnergyModel`) shares it, keyed by the
*normalized* :meth:`DesignPoint.key` — so mapping-style timing overrides
(unhashable dicts) land on the same slot as their ``WordTimings``
equivalent instead of raising ``TypeError``.

Cache hits return the identical :class:`~fecam.metrics.Fom` object (it
is frozen, so sharing is safe); ``clear_registry()`` — also exported as
the legacy alias :func:`fecam.arch.clear_cache` — empties it.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from .fom import Fom
from .point import DesignPoint

__all__ = ["cached_evaluate", "clear_registry", "registry_size"]

_REGISTRY: Dict[Tuple, Fom] = {}


def cached_evaluate(point: DesignPoint, fidelity: str,
                    compute: Callable[[], Fom]) -> Fom:
    """Return the memoized Fom for (point, fidelity), computing once."""
    key = point.key(fidelity)
    fom = _REGISTRY.get(key)
    if fom is None:
        fom = _REGISTRY[key] = compute()
    return fom


def clear_registry() -> None:
    """Forget every cached evaluation (all tiers)."""
    _REGISTRY.clear()


def registry_size() -> int:
    """Number of distinct (point, fidelity) evaluations cached."""
    return len(_REGISTRY)
