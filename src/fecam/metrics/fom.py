"""`Fom` — the one canonical figure-of-merit record.

Every fidelity tier answers the same questions the paper's Table IV
asks — cell/macro area, write energy, 1-step and total search latency,
1-step/2-step/average search energy — so every tier returns the same
frozen dataclass.  ``fecam.arch.ArrayFoM`` is an alias of this class:
legacy callers of :func:`fecam.arch.evaluate_array` receive the very
same type the metrics API returns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..designs import DesignKind
from ..units import FJ, PS, UM

__all__ = ["Fom"]


@dataclass(frozen=True)
class Fom:
    """Figures of merit for one design point at one fidelity.

    Energies are joules *per bit* (the paper's fJ/bit convention),
    latencies seconds, areas m².  ``search_energy_avg`` is the paper's
    early-termination average ``p·E₁ + (1−p)·E₂`` at the point's step-1
    miss rate.

    >>> from fecam.designs import DesignKind
    >>> from fecam.metrics import DesignPoint, evaluate
    >>> fom = evaluate(DesignPoint(DesignKind.DG_1T5), fidelity="paper")
    >>> fom.as_row()["cell_area_um2"]
    0.156
    """

    design: DesignKind
    fidelity: str
    rows: int
    word_length: int
    banks: int
    step1_miss_rate: float
    write_voltage: str
    fe_thickness: Optional[float]  # m
    cell_area: float  # m^2
    write_energy_per_cell: Optional[float]  # J
    latency_1step: float  # s (single search step / single evaluation)
    latency_total: float  # s (both steps for 1.5T1Fe designs)
    search_energy_1step: float  # J per cell
    search_energy_total: float  # J per cell (2 steps)
    search_energy_avg: float  # J per cell at the assumed step-1 miss rate
    macro_area: float  # m^2 incl. drivers + encoders, all banks
    driver_count: int
    encoder_delay: float

    @property
    def cell_area_um2(self) -> float:
        return self.cell_area / UM ** 2

    @property
    def search_energy_per_word(self) -> float:
        """Average energy of one whole-word search (J)."""
        return self.search_energy_avg * self.word_length

    @property
    def edp(self) -> float:
        """Energy-delay product of one average word search (J·s)."""
        return self.search_energy_per_word * self.latency_total

    def as_row(self) -> Dict[str, float]:
        """Flat dict in the paper's units (um^2 / fJ / ps).

        Key set and rounding match the published Table IV columns, plus
        the tier tag and the energy-delay product.
        """
        return {
            "design": str(self.design),
            "fidelity": self.fidelity,
            "write_voltage": self.write_voltage,
            "t_fe_nm": (None if self.fe_thickness is None
                        else round(self.fe_thickness * 1e9, 3)),
            "cell_area_um2": round(self.cell_area_um2, 4),
            "write_energy_fj": (None if self.write_energy_per_cell is None
                                else round(self.write_energy_per_cell / FJ, 3)),
            "latency_1step_ps": round(self.latency_1step / PS, 1),
            "latency_total_ps": round(self.latency_total / PS, 1),
            "energy_1step_fj": round(self.search_energy_1step / FJ, 4),
            "energy_total_fj": round(self.search_energy_total / FJ, 4),
            "energy_avg_fj": round(self.search_energy_avg / FJ, 4),
            "edp_fj_ns": round(self.edp / (FJ * 1e-9), 4),
        }
