"""`DesignPoint` — one frozen, hashable coordinate in the design space.

Every evaluation request across the three fidelity tiers is described by
the same value: *which* design, at *what* geometry (word length, rows,
banks), under *what* workload assumption (step-1 miss rate), with *what*
timing overrides.  Freezing the point makes it a registry key, so two
callers asking the same question — a store pricing its searches, a bench
regenerating Table IV, a sweep revisiting a corner — share one cached
answer.

>>> from fecam.designs import DesignKind
>>> from fecam.metrics import DesignPoint
>>> point = DesignPoint(DesignKind.DG_1T5, word_length=64, rows=64)
>>> point.word_length
64
>>> point == DesignPoint(DesignKind.DG_1T5)
True
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any, Optional, Tuple

from ..designs import DesignKind
from ..errors import OperationError

__all__ = ["DesignPoint", "FIDELITIES", "STEP1_MISS_RATE_DEFAULT",
           "ANALYTICAL_LATENCY_FACTOR", "ANALYTICAL_ENERGY_FACTOR"]

#: The three model-fidelity tiers, cheapest first.
#:
#: ``"paper"``      — the published Table IV numbers (reference values,
#:                    zero computation);
#: ``"analytical"`` — the closed-form Eva-CAM-style estimator
#:                    (microseconds, no transient simulation);
#: ``"spice"``      — the word-level MNA transient tier (ground truth,
#:                    ~1 s per cold design point).
FIDELITIES = ("paper", "analytical", "spice")

#: The paper's pessimistic real-world assumption (Sec. V-B): 90 % of
#: searched rows miss in step 1 and terminate early.
STEP1_MISS_RATE_DEFAULT = 0.90

#: Stated analytical-vs-SPICE agreement bounds: the closed-form tier's
#: latency/energy figures stay within these factors of the transient
#: ground truth (ratio in (1/factor, factor)).  The tier-1 tests pin
#: them at N=32 for every FeFET design; the fidelity benchmark gates the
#: full grid on the same constants.
ANALYTICAL_LATENCY_FACTOR = 3.0
ANALYTICAL_ENERGY_FACTOR = 2.5


@dataclass(frozen=True)
class DesignPoint:
    """One design coordinate to evaluate.

    ``timings`` optionally overrides the word-level search timing plan:
    pass a :class:`~fecam.cam.word.WordTimings` or a plain mapping of its
    field overrides (``{"t_step": 2e-9}``) — mappings are normalized to a
    ``WordTimings`` at construction so the point stays hashable and
    equivalent overrides share one registry slot.  Only the ``"spice"``
    tier runs a transient schedule, so timing overrides affect (and key)
    that tier alone; the paper/analytical tiers ignore them.

    >>> DesignPoint(DesignKind.SG_1T5, timings={"t_gap": 0.6e-9}).timings
    WordTimings(t_settle=7e-10, t_step=1.2e-09, t_gap=6e-10, ...)
    """

    design: DesignKind
    word_length: int = 64
    rows: int = 64
    banks: int = 1
    step1_miss_rate: float = STEP1_MISS_RATE_DEFAULT
    timings: Optional[Any] = None  # WordTimings or mapping of overrides

    def __post_init__(self) -> None:
        if not isinstance(self.design, DesignKind):
            raise OperationError(
                f"design must be a DesignKind, got {self.design!r}")
        if self.word_length < 2:
            raise OperationError("word_length must be >= 2")
        if self.rows < 1:
            raise OperationError("rows must be positive")
        if self.banks < 1:
            raise OperationError("banks must be positive")
        if not 0.0 <= self.step1_miss_rate <= 1.0:
            raise OperationError("step1_miss_rate must be in [0, 1]")
        if self.timings is not None:
            # Normalize dict overrides into the frozen timing plan so the
            # point is hashable, and fold an all-defaults plan back to
            # None — equivalent overrides must share one registry slot.
            from ..cam.word import WordTimings

            timings = self.timings
            if isinstance(timings, Mapping):
                timings = WordTimings(**dict(timings))
            elif not isinstance(timings, WordTimings):
                # Anything else would surface later as a bare TypeError
                # inside the registry lookup — the failure class the
                # normalized key exists to eliminate.
                raise OperationError(
                    "timings must be a WordTimings or a mapping of its "
                    f"field overrides, got {type(timings).__name__}")
            if timings == WordTimings():
                timings = None
            object.__setattr__(self, "timings", timings)

    def key(self, fidelity: str) -> Tuple:
        """Canonical registry key for this point at one fidelity.

        The miss rate is rounded (as the legacy ``evacam`` cache did) so
        float noise cannot fragment the cache, and timing overrides only
        key the ``"spice"`` tier — the paper/analytical tiers have no
        transient schedule to override, so every timing variant of a
        point shares their one cached answer.
        """
        return (self.design, self.word_length, self.rows, self.banks,
                round(self.step1_miss_rate, 4),
                self.timings if fidelity == "spice" else None, fidelity)
