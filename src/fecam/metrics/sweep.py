"""`sweep` — columnar evaluation over a grid of design points.

Architecture exploration asks the same question many times (every
design × word length × bank count); ``sweep()`` walks the Cartesian
grid through the memoized :func:`~fecam.metrics.evaluate` and returns
*columnar* data — one NumPy array per figure of merit — ready for
plotting, ranking, or dataframe construction without per-row dict
shuffling.  On the analytical tier a full Fig. 7-style grid runs in
microseconds per point.

>>> from fecam.designs import DesignKind
>>> from fecam.metrics import sweep
>>> table = sweep(designs=(DesignKind.DG_1T5,), word_lengths=(16, 64),
...               fidelity="paper")
>>> table["word_length"].tolist()
[16, 64]
>>> table["energy_avg_fj"].shape
(2,)
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..designs import DesignKind
from ..units import FJ, PS
from .evaluate import evaluate
from .point import DesignPoint, STEP1_MISS_RATE_DEFAULT

__all__ = ["sweep", "sweep_records"]

#: Numeric columns emitted by :func:`sweep`, in paper units.
_NUMERIC_COLUMNS = (
    "word_length", "rows", "banks", "cell_area_um2", "macro_area_um2",
    "write_energy_fj", "latency_1step_ps", "latency_total_ps",
    "energy_1step_fj", "energy_total_fj", "energy_avg_fj", "edp_fj_ns",
)


def sweep(*, designs: Optional[Iterable[DesignKind]] = None,
          word_lengths: Sequence[int] = (64,),
          rows: Sequence[int] = (64,),
          banks: Sequence[int] = (1,),
          step1_miss_rate: float = STEP1_MISS_RATE_DEFAULT,
          fidelity: str = "analytical",
          timings=None) -> Dict[str, np.ndarray]:
    """Evaluate the full grid and return one column per figure of merit.

    Iteration order is ``designs`` (outermost) × ``banks`` × ``rows`` ×
    ``word_lengths`` (innermost), so a single-design sweep reads straight
    down a plot axis.  The ``design`` and ``fidelity`` columns are object
    arrays of strings; every other column is numeric (``write_energy_fj``
    is NaN where the design has no FeFET write, i.e. the CMOS baseline).

    >>> from fecam.designs import DesignKind
    >>> t = sweep(designs=DesignKind.fefet_designs(), fidelity="paper")
    >>> len(t["design"])
    4
    """
    designs = (tuple(designs) if designs is not None
               else DesignKind.fefet_designs())
    foms = [evaluate(DesignPoint(design=design, word_length=n, rows=r,
                                 banks=b, step1_miss_rate=step1_miss_rate,
                                 timings=timings), fidelity)
            for design in designs
            for b in banks
            for r in rows
            for n in word_lengths]
    out: Dict[str, np.ndarray] = {
        "design": np.array([str(f.design) for f in foms], dtype=object),
        "fidelity": np.array([f.fidelity for f in foms], dtype=object),
    }
    # Columns come from the raw Fom fields, not as_row(): the latter
    # rounds to Table-IV display precision, which would quantize
    # downstream ratio/error analyses built on the sweep.
    extract = {
        "word_length": lambda f: f.word_length,
        "rows": lambda f: f.rows,
        "banks": lambda f: f.banks,
        "cell_area_um2": lambda f: f.cell_area_um2,
        "macro_area_um2": lambda f: f.macro_area / 1e-12,
        "write_energy_fj": lambda f: (np.nan
                                      if f.write_energy_per_cell is None
                                      else f.write_energy_per_cell / FJ),
        "latency_1step_ps": lambda f: f.latency_1step / PS,
        "latency_total_ps": lambda f: f.latency_total / PS,
        "energy_1step_fj": lambda f: f.search_energy_1step / FJ,
        "energy_total_fj": lambda f: f.search_energy_total / FJ,
        "energy_avg_fj": lambda f: f.search_energy_avg / FJ,
        "edp_fj_ns": lambda f: f.edp / (FJ * 1e-9),
    }
    for column in _NUMERIC_COLUMNS:
        dtype = np.int64 if column in ("word_length", "rows",
                                       "banks") else np.float64
        out[column] = np.asarray([extract[column](f) for f in foms],
                                 dtype=dtype)
    return out


def sweep_records(table: Dict[str, np.ndarray]) -> List[Dict]:
    """Transpose a :func:`sweep` table into a list of per-point dicts."""
    n = len(table["design"])
    columns = list(table)
    return [{column: (table[column][i].item()
                      if isinstance(table[column][i], np.generic)
                      else table[column][i])
             for column in columns} for i in range(n)]
