"""fecam.metrics — one design-evaluation API across fidelity tiers.

The metrology counterpart of the :mod:`fecam.store` facade: every
consumer that needs figures of merit — stores pricing their searches,
benches regenerating Table IV / Fig. 7, sweeps exploring word lengths —
asks the same three questions through one front door:

* :class:`DesignPoint` — a frozen, hashable design-space coordinate;
* :func:`evaluate` — ``evaluate(point, fidelity)`` with
  ``fidelity in FIDELITIES`` (``"paper"`` reference values,
  ``"analytical"`` closed form, ``"spice"`` transient ground truth),
  returning one canonical :class:`Fom`, memoized in a shared registry;
* :func:`sweep` — columnar grid evaluation for design-space plots.

Pick the tier by cost: ``paper`` is free (published numbers),
``analytical`` costs microseconds (RC/current expressions, within a
small factor of SPICE — the cross-tier tests state the tolerance), and
``spice`` costs ~1 s cold per design point and is the ground truth the
other tiers are checked against.
"""

from .evaluate import evaluate
from .fom import Fom
from .point import (ANALYTICAL_ENERGY_FACTOR, ANALYTICAL_LATENCY_FACTOR,
                    DesignPoint, FIDELITIES, STEP1_MISS_RATE_DEFAULT)
from .registry import cached_evaluate, clear_registry, registry_size
from .sweep import sweep, sweep_records

__all__ = [
    "DesignPoint", "FIDELITIES", "STEP1_MISS_RATE_DEFAULT",
    "ANALYTICAL_LATENCY_FACTOR", "ANALYTICAL_ENERGY_FACTOR",
    "Fom", "evaluate", "sweep", "sweep_records",
    "cached_evaluate", "clear_registry", "registry_size",
]
