"""`evaluate` — one entry point over the paper / analytical / SPICE tiers.

The paper's headline results are figure-of-merit comparisons; this
module is the single front door that produces them at selectable model
fidelity (the Eva-CAM framing the paper builds on):

* ``fidelity="paper"`` — the published Table IV reference values
  (instant; the tier tests and reports compare against);
* ``fidelity="analytical"`` — closed-form RC/current expressions from
  :mod:`fecam.arch.analytical` (microseconds; architecture sweeps);
* ``fidelity="spice"`` — the word-level MNA transient tier
  (:func:`fecam.cam.word.simulate_word_search`; ground truth, ~1 s per
  cold design point).

Area, drivers, and encoder costs never need transient simulation, so
all three tiers share one macro-geometry helper; search latency/energy
and the write tier differ per fidelity.  Results are memoized in the
shared :mod:`~fecam.metrics.registry`.

>>> from fecam.designs import DesignKind
>>> from fecam.metrics import DesignPoint, evaluate
>>> fast = evaluate(DesignPoint(DesignKind.DG_1T5), fidelity="analytical")
>>> truth = evaluate(DesignPoint(DesignKind.DG_1T5), fidelity="spice")
>>> 0.25 < fast.latency_total / truth.latency_total < 4.0
True
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..designs import DesignKind
from ..errors import OperationError
from .fom import Fom
from .point import DesignPoint, FIDELITIES
from .registry import cached_evaluate

__all__ = ["evaluate"]

# The arch/cam tiers are imported lazily inside the evaluators:
# fecam.arch.evacam imports this package at module load (for the shared
# Fom/registry), so importing arch back at module level would cycle.


def evaluate(point: DesignPoint, fidelity: str = "spice") -> Fom:
    """Evaluate one design point at the requested model fidelity.

    Returns the canonical :class:`Fom`; repeated calls with an equal
    point and fidelity return the identical cached object.

    >>> from fecam.designs import DesignKind
    >>> from fecam.metrics import DesignPoint, evaluate
    >>> fom = evaluate(DesignPoint(DesignKind.SG_1T5), fidelity="paper")
    >>> fom.as_row()["energy_avg_fj"]
    0.12
    >>> evaluate(DesignPoint(DesignKind.SG_1T5), "paper") is fom
    True
    """
    if not isinstance(point, DesignPoint):
        raise OperationError(
            f"evaluate() needs a DesignPoint, got {point!r}")
    if fidelity not in FIDELITIES:
        raise OperationError(
            f"fidelity must be one of {FIDELITIES}, got {fidelity!r}")
    if fidelity == "paper":
        compute = lambda: _evaluate_paper(point)  # noqa: E731
    elif fidelity == "analytical":
        compute = lambda: _evaluate_analytical(point)  # noqa: E731
    else:
        compute = lambda: _evaluate_spice(point)  # noqa: E731
    return cached_evaluate(point, fidelity, compute)


# ---------------------------------------------------------------------------
# shared pieces (no transient simulation)
# ---------------------------------------------------------------------------

def _macro_costs(point: DesignPoint,
                 cell_area: float) -> Tuple[float, int, float]:
    """(macro_area, driver_count, encoder_delay) for the whole point.

    Matches the legacy ``evaluate_array`` arithmetic exactly at
    ``banks=1``; extra banks replicate the per-bank macro and add one
    global priority encoder over the bank outputs.
    """
    from ..arch.drivers import SharedDriverMat
    from ..arch.encoder import PriorityEncoder

    design = point.design
    mat = (SharedDriverMat(design, rows=point.rows, cols=point.word_length)
           if design.is_fefet else None)
    encoder_cost = PriorityEncoder(point.rows).cost()
    cells_area = cell_area * point.rows * point.word_length
    driver_area = mat.driver_area(shared=True) / 4.0 if mat else 0.0
    macro_area = point.banks * (cells_area + driver_area + encoder_cost.area)
    encoder_delay = encoder_cost.delay
    if point.banks > 1:
        global_cost = PriorityEncoder(point.banks).cost()
        macro_area += global_cost.area
        encoder_delay += global_cost.delay
    driver_count = (mat.driver_count(True) * point.banks) if mat else 0
    return macro_area, driver_count, encoder_delay


def _write_info(design: DesignKind) -> Tuple[str, Optional[float],
                                             Optional[float]]:
    """(write_voltage label, write energy per cell, t_fe) — closed form."""
    from ..cam.ops import WriteController
    from ..devices import operating_voltages

    if not design.is_fefet:
        return "0.9V", None, None
    volts = operating_voltages(design)
    wc = WriteController(design)
    if design.is_one_fefet:
        write_v = f"+/-{volts.vw:g}V, {volts.vm:g}V"
    else:
        write_v = f"+/-{volts.vw:g}V"
    return write_v, wc.write_energy_per_cell(), wc.params.ferro.t_fe


def _build(point: DesignPoint, fidelity: str, *, write_voltage: str,
           fe_thickness: Optional[float], cell_area: float,
           write_energy: Optional[float], latency_1step: float,
           latency_total: float, e1: float, e2: float,
           e_avg: float) -> Fom:
    macro_area, driver_count, encoder_delay = _macro_costs(point, cell_area)
    return Fom(
        design=point.design, fidelity=fidelity, rows=point.rows,
        word_length=point.word_length, banks=point.banks,
        step1_miss_rate=point.step1_miss_rate,
        write_voltage=write_voltage, fe_thickness=fe_thickness,
        cell_area=cell_area, write_energy_per_cell=write_energy,
        latency_1step=latency_1step, latency_total=latency_total,
        search_energy_1step=e1, search_energy_total=e2,
        search_energy_avg=e_avg, macro_area=macro_area,
        driver_count=driver_count, encoder_delay=encoder_delay)


# ---------------------------------------------------------------------------
# fidelity tiers
# ---------------------------------------------------------------------------

def _evaluate_paper(point: DesignPoint) -> Fom:
    """The published Table IV row, verbatim.

    At the paper's default 90 % step-1 miss rate the published average
    energy is reported exactly as printed; any other miss rate recomputes
    the early-termination weighting from the published step energies.
    """
    from ..arch.evacam import PAPER_TABLE4
    from ..units import FJ, PS, UM
    from .point import STEP1_MISS_RATE_DEFAULT

    design = point.design
    entry = PAPER_TABLE4[design]
    cell_area = entry["cell_area_um2"] * UM ** 2
    e2 = entry["energy_total_fj"] * FJ
    e1 = (entry["energy_1step_fj"] * FJ
          if entry["energy_1step_fj"] is not None else e2)
    latency_total = entry["latency_total_ps"] * PS
    latency_1step = (entry["latency_1step_ps"] * PS
                     if entry["latency_1step_ps"] is not None
                     else latency_total)
    p = point.step1_miss_rate
    if (design.uses_two_step_search
            and round(p, 4) != round(STEP1_MISS_RATE_DEFAULT, 4)):
        e_avg = p * e1 + (1.0 - p) * e2
    else:
        e_avg = entry["energy_avg_fj"] * FJ
    return _build(
        point, "paper", write_voltage=entry["write_voltage"],
        fe_thickness=(None if entry["t_fe_nm"] is None
                      else entry["t_fe_nm"] * 1e-9),
        cell_area=cell_area,
        write_energy=(None if entry["write_energy_fj"] is None
                      else entry["write_energy_fj"] * FJ),
        latency_1step=latency_1step, latency_total=latency_total,
        e1=e1, e2=e2, e_avg=e_avg)


def _evaluate_analytical(point: DesignPoint) -> Fom:
    """Closed-form tier: no transient simulation anywhere."""
    from ..arch.analytical import estimate_search
    from ..arch.geometry import cell_geometry

    design = point.design
    est = estimate_search(design, point.word_length,
                          step1_miss_rate=point.step1_miss_rate)
    e1 = est.energy_per_bit_1step
    e2 = est.energy_per_bit
    if design.uses_two_step_search:
        p = point.step1_miss_rate
        e_avg = p * e1 + (1.0 - p) * e2
    else:
        e_avg = e2
    write_v, write_energy, t_fe = _write_info(design)
    return _build(
        point, "analytical", write_voltage=write_v, fe_thickness=t_fe,
        cell_area=cell_geometry(design).area, write_energy=write_energy,
        latency_1step=est.latency_1step, latency_total=est.latency_total,
        e1=e1, e2=e2, e_avg=e_avg)


def _evaluate_spice(point: DesignPoint) -> Fom:
    """Ground-truth tier: word-level MNA transient simulation.

    This is, arithmetic-for-arithmetic, the legacy
    ``fecam.arch.evaluate_array`` computation — the paper's Tab. IV /
    Fig. 7 producer — relocated behind the unified front door.
    """
    from ..arch.geometry import cell_geometry
    from ..cam.word import simulate_word_search

    design = point.design
    word_length = point.word_length
    timings = point.timings
    if design.uses_two_step_search:
        miss1 = simulate_word_search(design, word_length, "step1_miss",
                                     timings=timings)
        miss2 = simulate_word_search(design, word_length, "step2_miss",
                                     timings=timings)
        latency_1 = miss1.latency
        latency_2 = miss2.latency
        e1 = miss1.energy_per_bit
        e2 = miss2.energy_per_bit
        p = point.step1_miss_rate
        e_avg = p * e1 + (1.0 - p) * e2
    else:
        miss = simulate_word_search(design, word_length, "miss",
                                    timings=timings)
        latency_1 = latency_2 = miss.latency
        e1 = e2 = e_avg = miss.energy_per_bit
    if latency_1 is None or latency_2 is None:
        raise OperationError(
            f"{design}: mismatch did not resolve within the eval window")
    write_v, write_energy, t_fe = _write_info(design)
    return _build(
        point, "spice", write_voltage=write_v, fe_thickness=t_fe,
        cell_area=cell_geometry(design).area, write_energy=write_energy,
        latency_1step=latency_1, latency_total=latency_2,
        e1=e1, e2=e2, e_avg=e_avg)
