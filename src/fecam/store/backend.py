"""The :class:`SearchBackend` contract every store backend satisfies.

A backend owns physical storage (one array or a fabric of banks) and
answers batch searches; all policy above raw storage — key allocation,
priorities, query caching, telemetry aggregation — lives in the
:class:`~fecam.store.CamStore` facade, so the two backends stay thin and
interchangeable.  Words and queries arrive canonicalized ('01X' /
'01' strings of exactly ``width`` symbols); backends never normalize.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Hashable, List, Optional, Sequence

from ..errors import OperationError
from .config import StoreConfig
from .result import Match, QueryResult

__all__ = ["SearchBackend", "make_backend"]


class SearchBackend(ABC):
    """Uniform storage + batch-search interface over one or many banks."""

    #: Short backend identifier, reported in :class:`StoreStats`.
    name: str = "abstract"

    def __init__(self, config: StoreConfig):
        if config.width is None or config.rows is None:
            raise OperationError(
                "backends need a resolved StoreConfig (width and rows)")
        self.config = config

    # -- layout ------------------------------------------------------------------

    @property
    def width(self) -> int:
        return self.config.width

    @property
    @abstractmethod
    def capacity(self) -> int:
        """Total rows this backend can hold."""

    @property
    @abstractmethod
    def occupancy(self) -> int:
        """Live entries currently stored."""

    @property
    @abstractmethod
    def energy_total(self) -> float:
        """Cumulative J spent by the arrays (searches and writes)."""

    # -- content lifecycle -------------------------------------------------------

    @abstractmethod
    def insert(self, word: str, key: Hashable, priority: float,
               payload: Any, seq: int) -> Match:
        """Store one canonical word; returns its :class:`Match` handle."""

    @abstractmethod
    def insert_many(self, words: Sequence[str], keys: Sequence[Hashable],
                    priorities: Sequence[float], payloads: Sequence[Any],
                    seqs: Sequence[int]) -> List[Match]:
        """Bulk store through the vectorized packer (atomic: validates
        capacity and every word before any row is written)."""

    @abstractmethod
    def delete(self, key: Hashable) -> Match:
        """Remove an entry; its row returns to the free pool."""

    @abstractmethod
    def update(self, key: Hashable, word: str,
               payload: Any = None) -> Match:
        """Rewrite an entry's word in place (placement/priority kept)."""

    @abstractmethod
    def get(self, key: Hashable) -> Match:
        """The entry stored under ``key`` (raises on missing keys)."""

    @abstractmethod
    def entries(self) -> List[Match]:
        """All live entries in global priority order."""

    @abstractmethod
    def __contains__(self, key: Hashable) -> bool: ...

    # -- search ------------------------------------------------------------------

    @abstractmethod
    def search_batch(self, queries: Sequence[str],
                     mask: Optional[str] = None) -> List[QueryResult]:
        """Search canonical binary queries; one result per query, in
        order, with matches in global priority order and exact
        energy/latency accounting (never cached at this layer)."""


def make_backend(config: StoreConfig) -> SearchBackend:
    """Instantiate the backend a resolved config asks for."""
    from .array import ArrayBackend
    from .fabric import FabricBackend

    kind = config.backend_kind
    if kind == "array":
        return ArrayBackend(config)
    return FabricBackend(config)
