"""Typed configuration for a :class:`~fecam.store.CamStore`.

One :class:`StoreConfig` value describes the full layout of an
associative store — word width, total row capacity, bank count, the
paper design pricing every operation, query caching, and key placement —
so scaling a workload from one array to a sharded multi-bank fabric is a
config edit, not a code change.  ``fidelity`` selects the metrics tier
that prices operations (``"spice"`` ground truth — the default —
``"analytical"`` closed form, or ``"paper"`` published values), so a
store can trade pricing accuracy for construction speed by config alone.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..designs import DesignKind
from ..errors import OperationError
from ..functional.engine import EnergyModel
from ..metrics.point import FIDELITIES

__all__ = ["StoreConfig", "BACKEND_KINDS", "PLACEMENTS", "FIDELITIES"]

#: Accepted ``StoreConfig.backend`` values. ``"auto"`` picks the array
#: backend for a single bank and the fabric backend for several.
BACKEND_KINDS = ("auto", "array", "fabric")

#: Accepted ``StoreConfig.placement`` values: ``"striped"`` places keys
#: round-robin by insertion order (balanced occupancy, the construction
#: every app uses); ``"hash"`` places by a stable key hash (replica-
#: independent point placement).
PLACEMENTS = ("striped", "hash")


@dataclass(frozen=True)
class StoreConfig:
    """Layout of one associative store.

    ``width`` and ``rows`` may be left ``None`` by callers that embed a
    config inside a larger object (an app derives them from its own
    parameters) and filled later via :meth:`resolved`.
    """

    width: Optional[int] = None
    rows: Optional[int] = None            # total rows across all banks
    banks: int = 1
    design: DesignKind = DesignKind.DG_1T5
    backend: str = "auto"                 # one of BACKEND_KINDS
    cache_size: int = 0                   # 0 disables the query cache
    placement: str = "striped"            # one of PLACEMENTS
    energy_model: Optional[EnergyModel] = None
    fidelity: str = "spice"               # one of metrics.FIDELITIES

    def __post_init__(self) -> None:
        if self.banks < 1:
            raise OperationError("a store needs at least one bank")
        if self.fidelity not in FIDELITIES:
            raise OperationError(
                f"fidelity must be one of {FIDELITIES}, "
                f"got {self.fidelity!r}")
        if self.cache_size < 0:
            raise OperationError("cache_size must be non-negative")
        if self.backend not in BACKEND_KINDS:
            raise OperationError(
                f"backend must be one of {BACKEND_KINDS}, "
                f"got {self.backend!r}")
        if self.placement not in PLACEMENTS:
            raise OperationError(
                f"placement must be one of {PLACEMENTS}, "
                f"got {self.placement!r}")
        if self.backend == "array" and self.banks != 1:
            raise OperationError(
                "the array backend holds exactly one bank; use "
                "backend='fabric' (or 'auto') for banks > 1")
        if self.width is not None and self.width < 1:
            raise OperationError("width must be positive")
        if self.rows is not None and self.rows < 1:
            raise OperationError("rows must be positive")

    # -- derived layout ----------------------------------------------------------

    def resolve_energy_model(self) -> EnergyModel:
        """The pricing model a backend built from this config should use.

        An explicit fully-priced ``energy_model`` wins (what-if studies
        with fixed numbers — its ``fidelity`` tag is moot); otherwise an
        unresolved model at this config's ``fidelity``, so
        ``fidelity="analytical"`` stores never touch the SPICE tier, at
        construction or later.  An *unresolved* explicit model whose
        fidelity contradicts the config's is rejected: silently honoring
        either side would surprise the other.
        """
        if self.energy_model is not None:
            model = self.energy_model
            if not model.resolved and model.fidelity != self.fidelity:
                raise OperationError(
                    f"energy_model.fidelity={model.fidelity!r} conflicts "
                    f"with StoreConfig.fidelity={self.fidelity!r}; price "
                    "the model, align the fidelities, or drop one")
            return model
        if self.width is None:
            raise OperationError("width is not set; call resolved() first")
        return EnergyModel(self.design, self.width, fidelity=self.fidelity)

    @property
    def backend_kind(self) -> str:
        """The backend ``"auto"`` resolves to: array iff one bank."""
        if self.backend != "auto":
            return self.backend
        return "array" if self.banks == 1 else "fabric"

    @property
    def rows_per_bank(self) -> int:
        if self.rows is None:
            raise OperationError("rows is not set; call resolved() first")
        return (self.rows + self.banks - 1) // self.banks

    def resolved(self, *, width: Optional[int] = None,
                 rows: Optional[int] = None) -> "StoreConfig":
        """Fill in missing ``width``/``rows`` and validate completeness.

        Explicit config values win over the defaults supplied here, so
        an app can say "my store is 32 bits wide with N rows" while the
        user still controls banks/design/cache via the config.
        """
        config = self
        if config.width is None and width is not None:
            config = replace(config, width=width)
        if config.rows is None and rows is not None:
            config = replace(config, rows=rows)
        if config.width is None or config.rows is None:
            raise OperationError(
                "StoreConfig needs width and rows to build a store "
                f"(width={config.width}, rows={config.rows})")
        return config

    def with_geometry(self, *, width: int, rows: int) -> "StoreConfig":
        """Fill in geometry the caller owns, rejecting conflicts.

        Apps with a fixed key geometry (router: 32-bit addresses,
        classifier: the 104-bit 5-tuple, ...) use this instead of
        :meth:`resolved`: a config that explicitly disagrees fails here,
        at construction, rather than deep inside the word packer on the
        first lookup.
        """
        if self.width is not None and self.width != width:
            raise OperationError(
                f"store_config.width={self.width} conflicts with this "
                f"workload's fixed width {width}; leave width unset")
        if self.rows is not None and self.rows != rows:
            raise OperationError(
                f"store_config.rows={self.rows} conflicts with this "
                f"workload's derived capacity {rows}; leave rows unset")
        return replace(self, width=width, rows=rows)
