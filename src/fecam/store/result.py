"""The store's uniform result model.

Every backend answers every workload with the same three shapes:

* :class:`Query` — what to search (bits plus an optional global mask);
* :class:`Match` — one stored entry that matched, with its placement;
* :class:`QueryResult` — the priority-ordered matches of one query plus
  the energy/latency actually paid to serve it;
* :class:`StoreStats` — cumulative store telemetry.

This replaces the historical split where array-backed apps spoke
:class:`~fecam.functional.SearchStats` (bare row indices) and
fabric-backed apps spoke :class:`~fecam.fabric.FabricSearchResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, List, Optional, Tuple

from ..errors import TernaryValueError

__all__ = ["Query", "Match", "QueryResult", "StoreStats"]


@dataclass(frozen=True)
class Query:
    """One search request: fully-specified bits, optional global mask.

    ``mask`` is the classic TCAM global-masking register: positions
    marked '0' are excluded from the comparison for this query.
    """

    bits: str
    mask: Optional[str] = None

    @classmethod
    def coerce(cls, query: "Query | str") -> "Query":
        """Accept a plain bit-string wherever a Query is expected."""
        if isinstance(query, cls):
            return query
        if isinstance(query, str):
            return cls(bits=query)
        raise TernaryValueError(
            f"queries must be bit-strings or Query objects, "
            f"got {type(query).__name__}")


@dataclass
class Match:
    """One stored entry that matched a query, with where it lives."""

    key: Hashable
    word: str
    priority: float
    bank: int
    row: int
    payload: Any = None
    seq: int = 0  # insertion tiebreak for equal priorities

    @property
    def sort_key(self) -> Tuple[float, int]:
        return (self.priority, self.seq)


@dataclass
class QueryResult:
    """Priority-ordered matches of one query and what serving it cost.

    A cache hit reports ``energy == latency == 0.0`` (no array fired)
    and ``cached=True``, consistent with the store's cumulative energy
    not growing on hits.
    """

    query: Query
    matches: List[Match] = field(default_factory=list)
    energy: float = 0.0    # J, summed over every bank that fired
    latency: float = 0.0   # s, worst bank (banks search in parallel)
    cached: bool = False

    @property
    def best(self) -> Optional[Match]:
        """Priority-encoder output: the best-priority match."""
        return self.matches[0] if self.matches else None

    @property
    def match_keys(self) -> List[Hashable]:
        return [match.key for match in self.matches]

    def __len__(self) -> int:
        return len(self.matches)

    def __bool__(self) -> bool:
        # A result with zero matches is still a real result.
        return True


@dataclass
class StoreStats:
    """Cumulative telemetry of one :class:`~fecam.store.CamStore`."""

    backend: str            # "array" | "fabric"
    banks: int
    width: int
    capacity: int           # total rows
    occupancy: int          # live entries
    searches: int           # queries answered, including cache hits
    array_searches: int     # queries that actually fired the arrays
    writes: int             # insert/update/delete operations
    energy_total: float     # J spent by the arrays (searches + writes)
    worst_latency: float    # s, worst single-query latency observed
    cache_hits: int
    cache_misses: int
    cache_hit_rate: float
