"""The store's uniform result model.

Every backend answers every workload with the same three shapes:

* :class:`Query` — what to search (bits plus an optional global mask);
* :class:`Match` — one stored entry that matched, with its placement;
* :class:`QueryResult` — the priority-ordered matches of one query plus
  the energy/latency actually paid to serve it;
* :class:`StoreStats` — cumulative store telemetry.

This replaces the historical split where array-backed apps spoke
:class:`~fecam.functional.SearchStats` (bare row indices) and
fabric-backed apps spoke :class:`~fecam.fabric.FabricSearchResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Any, Hashable, Iterator, List, Optional, Sequence,
                    Tuple)

from ..errors import TernaryValueError

__all__ = ["Query", "Match", "LazyMatches", "QueryResult", "StoreStats"]


@dataclass(frozen=True)
class Query:
    """One search request: fully-specified bits, optional global mask.

    ``mask`` is the classic TCAM global-masking register: positions
    marked '0' are excluded from the comparison for this query.
    """

    bits: str
    mask: Optional[str] = None

    @classmethod
    def coerce(cls, query: "Query | str") -> "Query":
        """Accept a plain bit-string wherever a Query is expected."""
        if isinstance(query, cls):
            return query
        if isinstance(query, str):
            return cls(bits=query)
        raise TernaryValueError(
            f"queries must be bit-strings or Query objects, "
            f"got {type(query).__name__}")


@dataclass
class Match:
    """One stored entry that matched a query, with where it lives."""

    key: Hashable
    word: str
    priority: float
    bank: int
    row: int
    payload: Any = None
    seq: int = 0  # insertion tiebreak for equal priorities

    @property
    def sort_key(self) -> Tuple[float, int]:
        return (self.priority, self.seq)


class LazyMatches(Sequence):
    """A frozen match list that materializes :class:`Match` objects on
    first access.

    Holds the per-match field tuples captured at freeze time (so later
    writes to the backend's live ``Match`` objects cannot leak in) and
    defers constructing ``Match`` instances until somebody actually
    looks: a served result that is only counted, or whose caller reads
    nothing beyond ``len()``, never pays the per-match object builds.
    """

    __slots__ = ("_rows", "_items")

    def __init__(self, rows: List[Tuple]):
        self._rows = rows          # (key, word, priority, bank, row,
        self._items: Optional[List[Match]] = None   # payload, seq)

    @classmethod
    def snapshot(cls, matches: Sequence[Match]) -> "LazyMatches":
        """Capture the field state of live matches without building
        detached ``Match`` objects yet."""
        return cls([(m.key, m.word, m.priority, m.bank, m.row,
                     m.payload, m.seq) for m in matches])

    def _materialize(self) -> List[Match]:
        items = self._items
        if items is None:
            items = [Match(*row) for row in self._rows]
            self._items = items
        return items

    def __len__(self) -> int:
        return len(self._rows)

    def __getitem__(self, index):
        return self._materialize()[index]

    def __iter__(self) -> Iterator[Match]:
        return iter(self._materialize())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LazyMatches):
            other = other._materialize()
        if isinstance(other, list):
            return self._materialize() == other
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LazyMatches({self._materialize()!r})"


@dataclass
class QueryResult:
    """Priority-ordered matches of one query and what serving it cost.

    A cache hit reports ``energy == latency == 0.0`` (no array fired)
    and ``cached=True``, consistent with the store's cumulative energy
    not growing on hits.
    """

    query: Query
    matches: Sequence[Match] = field(default_factory=list)
    energy: float = 0.0    # J, summed over every bank that fired
    latency: float = 0.0   # s, worst bank (banks search in parallel)
    cached: bool = False

    def freeze(self) -> "QueryResult":
        """A frozen snapshot detached from the backend's live matches.

        Backends reuse live :class:`Match` objects (``update()``
        mutates word/payload in place), so anything that outlives the
        lock it was computed under must hold copies.  The snapshot is
        field tuples plus a :class:`LazyMatches` view — cheaper than
        cloning ``Match`` objects eagerly, with materialization paid
        only by results that are actually inspected.
        """
        return QueryResult(query=self.query,
                           matches=LazyMatches.snapshot(self.matches),
                           energy=self.energy, latency=self.latency,
                           cached=self.cached)

    @property
    def best(self) -> Optional[Match]:
        """Priority-encoder output: the best-priority match."""
        return self.matches[0] if self.matches else None

    @property
    def match_keys(self) -> List[Hashable]:
        return [match.key for match in self.matches]

    def __len__(self) -> int:
        return len(self.matches)

    def __bool__(self) -> bool:
        # A result with zero matches is still a real result.
        return True


@dataclass
class StoreStats:
    """Cumulative telemetry of one :class:`~fecam.store.CamStore`."""

    backend: str            # "array" | "fabric"
    banks: int
    width: int
    capacity: int           # total rows
    occupancy: int          # live entries
    searches: int           # queries answered, including cache hits
    array_searches: int     # queries that actually fired the arrays
    writes: int             # insert/update/delete operations
    energy_total: float     # J spent by the arrays (searches + writes)
    worst_latency: float    # s, worst single-query latency observed
    cache_hits: int
    cache_misses: int
    cache_hit_rate: float
