"""Fabric backend: a sharded multi-bank :class:`TcamFabric` behind the
store API.

Scaling a store past one array is a config edit: the fabric broadcasts
every query to all banks, merges matches with cross-bank
priority-encoder semantics, and sums energy / maxes latency exactly as
parallel hardware banks would.  The store facade owns query caching, so
the wrapped fabric always runs with its own cache disabled — one cache,
one invalidation policy, regardless of backend.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Sequence

from ..errors import OperationError
from ..fabric.fabric import FabricEntry, TcamFabric
from ..fabric.shard import HashSharding
from ..planes import TernaryPlanes
from .backend import SearchBackend
from .config import StoreConfig
from .result import Match, Query, QueryResult

__all__ = ["FabricBackend"]


class FabricBackend(SearchBackend):
    """Store backend over a sharded multi-bank TCAM fabric."""

    name = "fabric"

    def __init__(self, config: StoreConfig, *,
                 arena: Optional[TernaryPlanes] = None):
        super().__init__(config)
        if config.backend_kind != "fabric":
            raise OperationError(
                f"config resolves to the {config.backend_kind!r} backend")
        sharding = (HashSharding(config.banks)
                    if config.placement == "hash" else None)
        # ``arena`` threads the planes-over-foreign-buffers seam through
        # to the fabric so `fecam.cluster` can build the writer-side
        # backend directly atop a shared-memory mapping.
        self.fabric = TcamFabric(
            banks=config.banks, rows_per_bank=config.rows_per_bank,
            width=config.width, design=config.design, sharding=sharding,
            energy_model=config.resolve_energy_model(), cache_size=0,
            arena=arena)
        self._matches: Dict[Hashable, Match] = {}

    # -- durable restore ----------------------------------------------------------

    def _adopt_placements(self, placements, *, write: bool) -> None:
        entries = []
        for key, word, priority, payload, seq, bank, row in placements:
            entry = FabricEntry(key=key, word=word, priority=priority,
                                bank=bank, row=row, payload=payload,
                                seq=seq)
            entries.append(entry)
            self._matches[key] = Match(
                key=key, word=word, priority=priority, bank=bank,
                row=row, payload=payload, seq=seq)
        self.fabric.adopt_entries(entries, write=write)

    @classmethod
    def from_placements(cls, config: StoreConfig, placements, *,
                        arena: Optional[TernaryPlanes] = None
                        ) -> "FabricBackend":
        """Rebuild a backend by writing words at recorded bank/row slots.

        ``placements`` rows of ``(key, word, priority, payload, seq,
        bank, row)`` — the WAL reshard-record payload — go through
        :meth:`TcamFabric.adopt_entries`, so replay reproduces the live
        placement bit-for-bit instead of re-running the allocator.
        """
        backend = cls(config, arena=arena)
        backend._adopt_placements(placements, write=True)
        return backend

    @classmethod
    def from_snapshot(cls, config: StoreConfig, planes_state,
                      placements, *,
                      arena: Optional[TernaryPlanes] = None
                      ) -> "FabricBackend":
        """Rebuild a backend from a serialized arena plus the entry map
        (the snapshot-restore path: the contiguous arena loads
        wholesale, then allocators and key maps are rebuilt around
        it).  With ``arena=`` the load lands in caller-owned (shared)
        buffers — how a recovered store's content enters a cluster."""
        backend = cls(config, arena=arena)
        value, care, valid = planes_state
        backend.fabric.arena.load(value, care, valid)
        backend._adopt_placements(placements, write=False)
        return backend

    def _bank_for(self, seq: int) -> Optional[int]:
        # Striped placement overrides the fabric's hash sharding with
        # round-robin-by-insertion-order (balanced occupancy, and the
        # one-bank case lands every row exactly where ArrayBackend does).
        if self.config.placement == "striped":
            return seq % self.config.banks
        return None

    # -- layout ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self.fabric.capacity

    @property
    def occupancy(self) -> int:
        return self.fabric.occupancy

    @property
    def energy_total(self) -> float:
        return sum(bank.cam.energy_spent for bank in self.fabric.banks)

    # -- content lifecycle -------------------------------------------------------

    def insert(self, word: str, key: Hashable, priority: float,
               payload: Any, seq: int) -> Match:
        entry = self.fabric.insert(word, key=key, priority=priority,
                                   payload=payload,
                                   bank=self._bank_for(seq))
        match = Match(key=key, word=entry.word, priority=priority,
                      bank=entry.bank, row=entry.row, payload=payload,
                      seq=seq)
        self._matches[key] = match
        return match

    def insert_many(self, words: Sequence[str], keys: Sequence[Hashable],
                    priorities: Sequence[float], payloads: Sequence[Any],
                    seqs: Sequence[int]) -> List[Match]:
        banks = ([self._bank_for(seq) for seq in seqs]
                 if self.config.placement == "striped" else None)
        entries = self.fabric.insert_many(
            words, keys=list(keys), priorities=list(priorities),
            payloads=list(payloads), banks=banks)
        matches: List[Match] = []
        for entry, priority, payload, seq in zip(entries, priorities,
                                                 payloads, seqs):
            match = Match(key=entry.key, word=entry.word,
                          priority=priority, bank=entry.bank,
                          row=entry.row, payload=payload, seq=seq)
            self._matches[entry.key] = match
            matches.append(match)
        return matches

    def delete(self, key: Hashable) -> Match:
        match = self.get(key)
        self.fabric.delete(key)
        del self._matches[key]
        return match

    def update(self, key: Hashable, word: str,
               payload: Any = None) -> Match:
        match = self.get(key)
        self.fabric.update(key, word, payload=payload)
        match.word = word
        if payload is not None:
            match.payload = payload
        return match

    def get(self, key: Hashable) -> Match:
        try:
            return self._matches[key]
        except KeyError:
            raise OperationError(f"no entry with key {key!r}") from None

    def entries(self) -> List[Match]:
        return sorted(self._matches.values(), key=lambda m: m.sort_key)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._matches

    # -- search ------------------------------------------------------------------

    def search_batch(self, queries: Sequence[str],
                     mask: Optional[str] = None) -> List[QueryResult]:
        queries = list(queries)
        if not queries:
            return []
        raw = self.fabric.search_batch(queries, mask, use_cache=False)
        matches_of = self._matches
        return [QueryResult(query=Query(bits=bits, mask=mask),
                            matches=[matches_of[e.key] for e in r.matches],
                            energy=r.energy, latency=r.latency)
                for bits, r in zip(queries, raw)]

    def __repr__(self) -> str:
        return (f"<FabricBackend {self.config.banks}x"
                f"{self.config.rows_per_bank}x{self.width} "
                f"({self.config.design}), {self.occupancy} entries>")
