"""One associative-store API over every TCAM backend.

The store tier gives every workload a single front door:
:class:`CamStore`, configured by a typed :class:`StoreConfig`, speaking
a uniform batch-first result model (:class:`Query`, :class:`Match`,
:class:`QueryResult`, :class:`StoreStats`).  Physical storage is
pluggable behind the :class:`SearchBackend` protocol — one behavioral
array (:class:`ArrayBackend`) or a sharded multi-bank fabric
(:class:`FabricBackend`) — so sharding, batching, and query caching are
config edits, not code changes.  A one-bank fabric and the plain array
produce bit-identical matches, energy, and latency (property-tested).
"""

from .backend import SearchBackend, make_backend
from .array import ArrayBackend
from .config import BACKEND_KINDS, PLACEMENTS, StoreConfig
from .fabric import FabricBackend
from .result import Match, Query, QueryResult, StoreStats
from .store import CamStore

__all__ = [
    "CamStore", "StoreConfig",
    "Query", "Match", "QueryResult", "StoreStats",
    "SearchBackend", "ArrayBackend", "FabricBackend", "make_backend",
    "BACKEND_KINDS", "PLACEMENTS",
]
