"""`CamStore` — one associative-store facade over every backend.

The store owns the policy layer every workload used to hand-roll:

* key allocation (auto keys, duplicate detection) and priorities
  (insertion order by default, so the priority encoder preserves
  first-write-wins semantics);
* word/query canonicalization, batch-first search entry points;
* an LRU query-result cache with write-generation invalidation —
  uniform across backends, so a single-array workload gains caching the
  same way a sharded one does;
* cumulative telemetry (:class:`StoreStats`).

Physical storage is a :class:`~fecam.store.SearchBackend`: one array
(:class:`~fecam.store.ArrayBackend`) or a sharded multi-bank fabric
(:class:`~fecam.store.FabricBackend`), chosen by
:class:`~fecam.store.StoreConfig` — scaling is a config edit.

>>> store = CamStore(StoreConfig(width=8, rows=4))
>>> _ = store.insert("1010XXXX", key="rule-a")
>>> store.search_first("10101111").key
'rule-a'
"""

from __future__ import annotations

import time

import numpy as np

from dataclasses import replace
from typing import Any, Hashable, List, Optional, Sequence, Union

from ..analysis.markers import hot_path, lock_free, requires_lock
from ..cam.states import normalize_word
from ..errors import OperationError, TernaryValueError
from ..fabric.batch import normalize_queries
from ..fabric.cache import QueryCache, serve_cached_batch
from ..obs.trace import active as trace_active
from ..obs.trace import record_span
from ..obs.trace import stage as trace_stage
from ..designs import DesignKind
from .backend import SearchBackend, make_backend
from .config import StoreConfig
from .result import Match, Query, QueryResult, StoreStats

__all__ = ["CamStore"]

_CANONICAL_ORDS = (ord("0"), ord("1"), ord("X"))


def _normalize_words(words: Sequence[str], width: int) -> List[str]:
    """Canonicalize a batch of ternary words, vectorized.

    Canonical '01X' strings of the right width pass in one NumPy scan;
    anything else (aliases like '*'/'?', lowercase, non-strings) falls
    back to per-word :func:`normalize_word`, which raises the same
    errors a loop of scalar writes would.
    """
    words = list(words)
    try:
        if all(len(word) == width for word in words):
            buf = "".join(words).encode("ascii")
            sym = np.frombuffer(buf, dtype=np.uint8)
            o0, o1, ox = _CANONICAL_ORDS
            if ((sym == o0) | (sym == o1) | (sym == ox)).all():
                return words
    except (TypeError, UnicodeEncodeError):
        pass
    normalized = []
    for i, word in enumerate(words):
        try:
            normalized.append(normalize_word(word))
        except TernaryValueError as exc:
            raise TernaryValueError(f"word {i}: {exc}") from None
    return normalized


class CamStore:
    """One associative store over an array or fabric backend."""

    def __init__(self, config: Optional[StoreConfig] = None, *,
                 backend: Optional[SearchBackend] = None, **overrides):
        """Build a store from a config (plus keyword overrides).

        ``CamStore(width=8, rows=64)`` and
        ``CamStore(StoreConfig(width=8, rows=64))`` are equivalent;
        overrides win over the config's fields.  ``backend`` injects a
        pre-built backend (its config wins) — the hook legacy shims use
        to adopt an existing array.
        """
        if backend is not None:
            if config is not None or overrides:
                raise OperationError(
                    "pass either a backend or a config, not both")
            config = backend.config
        else:
            if config is None:
                config = StoreConfig(**overrides)
            elif overrides:
                config = replace(config, **overrides)
            config = config.resolved()
            backend = make_backend(config)
        self.config = config
        self._backend = backend
        self._cache: Optional[QueryCache] = (
            QueryCache(config.cache_size) if config.cache_size else None)
        self._generation = 0
        # Start above any adopted entry's seq (pre-loaded backends key
        # adopted rows by row index), so fresh inserts can never collide
        # with — or outrank — adopted priorities/seqs.
        self._seq = 1 + max((entry.seq for entry in backend.entries()),
                            default=-1)
        self._searches = 0
        self._array_searches = 0
        self._writes = 0
        self._worst_latency = 0.0

    # -- layout ------------------------------------------------------------------

    @property
    @lock_free
    def backend(self) -> SearchBackend:
        """The active backend — one atomic reference.  Reshard swaps it
        under the write lock; reading the reference itself needs none."""
        return self._backend

    @backend.setter
    def backend(self, value: SearchBackend) -> None:
        self._backend = value

    @property
    @lock_free
    def width(self) -> int:
        return self.config.width

    @property
    @lock_free
    def design(self) -> DesignKind:
        return self.config.design

    @property
    @lock_free
    def banks(self) -> int:
        return self.config.banks

    @property
    @lock_free
    def capacity(self) -> int:
        return self.backend.capacity

    @property
    @requires_lock("read")
    def occupancy(self) -> int:
        return self.backend.occupancy

    @property
    @requires_lock("read")
    def generation(self) -> int:
        """Monotonic write-generation counter of this store's content.

        Advances by exactly one on every mutating operation —
        ``insert``, ``insert_many`` (one bump for the whole batch),
        ``delete``, ``update`` — mirroring the planes-tier
        write-generation scheme one level up, where a generation is one
        journaled operation instead of one arena write.  The query
        cache invalidates on it, and the serving tier tags every
        result with the generation it was computed at, so a serial
        replay of the operation journal up to that generation
        reproduces the observed state.
        """
        return self._generation

    # -- content lifecycle -------------------------------------------------------

    def _allocate_key(self, key: Optional[Hashable]) -> Hashable:
        return ("auto", self._seq) if key is None else key

    def _wrote(self) -> None:
        self._writes += 1
        self._generation += 1  # invalidates every cached result

    @requires_lock("write")
    def insert(self, word: str, key: Optional[Hashable] = None, *,
               priority: Optional[float] = None,
               payload: Any = None) -> Match:
        """Store a word; returns its :class:`Match` handle.

        ``key`` defaults to a unique auto key; ``priority`` defaults to
        insertion order (earlier = higher priority, i.e. sorts first).
        """
        word = normalize_word(word)
        key = self._allocate_key(key)
        match = self.backend.insert(
            word, key, self._seq if priority is None else priority,
            payload, self._seq)
        self._seq += 1
        self._wrote()
        return match

    @requires_lock("write")
    def insert_many(self, words: Sequence[str],
                    keys: Optional[Sequence[Hashable]] = None, *,
                    priorities: Optional[Sequence[float]] = None,
                    payloads: Optional[Sequence[Any]] = None
                    ) -> List[Match]:
        """Bulk load through the vectorized packer (atomic)."""
        words = _normalize_words(words, self.width)
        n = len(words)
        for name, seq in (("keys", keys), ("priorities", priorities),
                          ("payloads", payloads)):
            if seq is not None and len(seq) != n:
                raise OperationError(f"{name} must match words in length")
        if n == 0:
            return []
        seqs = list(range(self._seq, self._seq + n))
        # Per-item auto keys take their own seq — ("auto", self._seq)
        # for every None would collide inside one batch.
        keys = ([("auto", seq) if key is None else key
                 for key, seq in zip(keys, seqs)] if keys is not None
                else [("auto", seq) for seq in seqs])
        if len(set(keys)) != n:
            raise OperationError("duplicate keys in bulk insert")
        matches = self.backend.insert_many(
            words, keys,
            list(priorities) if priorities is not None else seqs,
            list(payloads) if payloads is not None else [None] * n,
            seqs)
        self._seq += n
        self._wrote()
        return matches

    @requires_lock("write")
    def delete(self, key: Hashable) -> Match:
        """Remove an entry; its row returns to the backend's free pool."""
        match = self.backend.delete(key)
        self._wrote()
        return match

    @requires_lock("write")
    def update(self, key: Hashable, word: str, *,
               payload: Any = None) -> Match:
        """Rewrite an entry's word in place (placement/priority kept)."""
        match = self.backend.update(key, normalize_word(word), payload)
        self._wrote()
        return match

    @requires_lock("read")
    def get(self, key: Hashable) -> Match:
        return self.backend.get(key)

    @requires_lock("read")
    def entries(self) -> List[Match]:
        """All live entries in global priority order."""
        return self.backend.entries()

    def __len__(self) -> int:
        return self.backend.occupancy

    def __contains__(self, key: Hashable) -> bool:
        return key in self.backend

    # -- search ------------------------------------------------------------------

    def _coerce_batch(self, queries: Sequence[Union[Query, str]],
                      mask: Optional[str]) -> "tuple[List[str], Optional[str]]":
        # Each query's effective mask is its own, falling back to the
        # batch argument.  The kernel applies ONE mask to the whole
        # batch, so any disagreement — including a masked Query next to
        # an unmasked one — must be an error, never a silent leak of
        # one query's mask onto its neighbours.
        if all(type(query) is str for query in queries):
            # Plain-string batches (the serving hot path) carry no
            # per-query mask, so the conflict accounting below is moot.
            return normalize_queries(queries, self.width), mask
        bits: List[str] = []
        effective_masks = set()
        for query in queries:
            query = Query.coerce(query)
            if (query.mask is not None and mask is not None
                    and query.mask != mask):
                raise OperationError(
                    "a query's own mask conflicts with the batch mask "
                    "argument")
            effective_masks.add(query.mask if query.mask is not None
                                else mask)
            bits.append(query.bits)
        if len(effective_masks) > 1:
            raise OperationError(
                "all queries of one batch must share one mask "
                "(mix of masked and unmasked queries)")
        if effective_masks:
            mask = next(iter(effective_masks))
        return normalize_queries(bits, self.width), mask

    @staticmethod
    def _snapshot(result: QueryResult) -> QueryResult:
        # Copy stored/served matches lists so a caller mutating a result
        # cannot corrupt the cached original.
        return replace(result, matches=list(result.matches))

    @staticmethod
    def _from_cache(hit: QueryResult) -> QueryResult:
        # A hit fires no array: report the cost actually paid (none).
        return replace(hit, matches=list(hit.matches), energy=0.0,
                       latency=0.0, cached=True)

    @requires_lock("read")
    def search(self, query: Union[Query, str],
               mask: Optional[str] = None, *,
               use_cache: bool = True) -> QueryResult:
        """Search one query (a bit-string or :class:`Query`)."""
        return self.search_batch([query], mask=mask,
                                 use_cache=use_cache)[0]

    @requires_lock("read")
    def search_first(self, query: Union[Query, str],
                     mask: Optional[str] = None) -> Optional[Match]:
        """Priority-encoder output: the best-priority match, or None."""
        return self.search(query, mask).best

    @hot_path
    @requires_lock("read")
    def search_batch(self, queries: Sequence[Union[Query, str]],
                     mask: Optional[str] = None, *,
                     use_cache: bool = True) -> List[QueryResult]:
        """Vectorized multi-query search; one result per query, in order.

        Without a cache this is bit-identical (matches, energy, latency)
        to a loop of :meth:`search` calls; with a cache, duplicate
        queries inside the batch are computed once and the copies served
        as hits.
        """
        bits_list, mask = self._coerce_batch(queries, mask)
        if not bits_list:
            return []
        computed_n = 0

        def compute(unique: List[str]) -> List[QueryResult]:
            nonlocal computed_n
            computed_n = len(unique)
            with trace_stage("backend.search_batch", queries=len(unique)):
                computed = self.backend.search_batch(unique, mask)
            self._searches += len(unique)
            self._array_searches += len(unique)
            for result in computed:
                self._worst_latency = max(self._worst_latency,
                                          result.latency)
            return computed

        def count_served() -> None:
            self._searches += 1

        targets = trace_active()
        if not targets:
            return serve_cached_batch(
                self._cache if use_cache else None, (self._generation,),
                bits_list, key_fn=lambda bits: (bits, mask),
                compute=compute, snapshot=self._snapshot,
                from_cache=self._from_cache, count_served=count_served)
        # Traced path: time the whole store stage (cache lookups
        # included) and annotate how much of the batch actually fired
        # the arrays vs. rode the query cache.
        start = time.perf_counter()
        results = serve_cached_batch(
            self._cache if use_cache else None, (self._generation,),
            bits_list, key_fn=lambda bits: (bits, mask),
            compute=compute, snapshot=self._snapshot,
            from_cache=self._from_cache, count_served=count_served)
        record_span(targets, "store.search_batch", start,
                    time.perf_counter(), queries=len(bits_list),
                    computed=computed_n,
                    cache_served=len(bits_list) - computed_n)
        return results

    # -- telemetry ---------------------------------------------------------------

    @property
    @requires_lock("read")
    def stats(self) -> StoreStats:
        cache = self._cache
        return StoreStats(
            backend=self.backend.name, banks=self.banks, width=self.width,
            capacity=self.capacity, occupancy=self.occupancy,
            searches=self._searches, array_searches=self._array_searches,
            writes=self._writes, energy_total=self.backend.energy_total,
            worst_latency=self._worst_latency,
            cache_hits=cache.hits if cache is not None else 0,
            cache_misses=cache.misses if cache is not None else 0,
            cache_hit_rate=cache.hit_rate if cache is not None else 0.0)

    def __repr__(self) -> str:
        cache = (str(self.config.cache_size)
                 if self._cache is not None else "off")
        return (f"<CamStore backend={self.backend.name} "
                f"banks={self.banks} {self.capacity}x{self.width} "
                f"design={self.design} "
                f"occupancy={self.occupancy}/{self.capacity} "
                f"cache={cache}>")
