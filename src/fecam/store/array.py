"""Single-array backend: one :class:`TernaryCAM` behind the store API.

The minimal deployment of the paper's TCAM — every entry lives in one
array (wrapped in a :class:`~fecam.fabric.CamBank` for row lifecycle),
and batch searches run through the same vectorized two-step kernel the
fabric uses, so a one-bank store pays no fabric overhead yet produces
bit-identical matches, energy, and latency to a one-bank fabric (the
property the equivalence suite enforces).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Sequence

from ..errors import OperationError
from ..fabric.bank import CamBank
from ..fabric.batch import pack_queries, search_packed_batch
from ..functional.engine import TernaryCAM, pack_words
from .backend import SearchBackend
from .config import StoreConfig
from .result import Match, Query, QueryResult

__all__ = ["ArrayBackend"]


class ArrayBackend(SearchBackend):
    """Store backend over a single behavioral TCAM array."""

    name = "array"

    def __init__(self, config: StoreConfig,
                 cam: Optional[TernaryCAM] = None):
        super().__init__(config)
        if config.backend_kind != "array":
            raise OperationError(
                f"config resolves to the {config.backend_kind!r} backend")
        self._bank = CamBank(0, config.rows, config.width, config.design,
                             energy_model=config.resolve_energy_model(),
                             cam=cam)
        self._entries: Dict[Hashable, Match] = {}
        self._row_entry: List[Optional[Match]] = [None] * config.rows
        if cam is not None:
            # Adopted pre-loaded rows become entries keyed by row index
            # (one bulk stored_words() unpack, not a per-row readback).
            for row, word in enumerate(cam.stored_words()):
                if word is None:
                    continue
                match = Match(key=row, word=word, priority=float(row),
                              bank=0, row=row, seq=row)
                self._entries[row] = match
                self._row_entry[row] = match

    @property
    def cam(self) -> TernaryCAM:
        """The underlying array (circuit-calibrated engine)."""
        return self._bank.cam

    # -- durable restore ----------------------------------------------------------

    def _register_placements(self, placements) -> None:
        for key, word, priority, payload, seq, bank, row in placements:
            if bank != 0:
                raise OperationError(
                    f"entry {key!r} places bank {bank}; the array "
                    f"backend has exactly one bank")
            match = Match(key=key, word=word, priority=priority, bank=0,
                          row=row, payload=payload, seq=seq)
            self._entries[key] = match
            self._row_entry[row] = match

    @classmethod
    def from_placements(cls, config: StoreConfig,
                        placements) -> "ArrayBackend":
        """Rebuild a backend by writing words at recorded rows.

        ``placements`` rows of ``(key, word, priority, payload, seq,
        bank, row)`` — the WAL reshard-record payload — are written
        through the bank at their exact rows, so replay reproduces the
        live placement bit-for-bit instead of re-running the allocator.
        """
        backend = cls(config)
        words = [p[1] for p in placements]
        if words:
            value, care = pack_words(words, config.width)
            backend._bank.place_many([p[6] for p in placements], words,
                                     packed=(value, care))
        backend._register_placements(placements)
        return backend

    @classmethod
    def from_snapshot(cls, config: StoreConfig, planes_state,
                      placements) -> "ArrayBackend":
        """Rebuild a backend from serialized arena planes plus the
        entry map (the snapshot-restore path: content loads wholesale,
        then the allocator and key maps are rebuilt around it)."""
        backend = cls(config)
        value, care, valid = planes_state
        backend._bank.cam.planes.load(value, care, valid)
        backend._bank.sync_free_rows()
        backend._register_placements(placements)
        return backend

    # -- layout ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._bank.rows

    @property
    def occupancy(self) -> int:
        return self._bank.occupancy

    @property
    def energy_total(self) -> float:
        return self.cam.energy_spent

    # -- content lifecycle -------------------------------------------------------

    def insert(self, word: str, key: Hashable, priority: float,
               payload: Any, seq: int) -> Match:
        if key in self._entries:
            raise OperationError(f"duplicate key {key!r}; use update()")
        row = self._bank.insert(word)
        match = Match(key=key, word=word, priority=priority, bank=0,
                      row=row, payload=payload, seq=seq)
        self._entries[key] = match
        self._row_entry[row] = match
        return match

    def insert_many(self, words: Sequence[str], keys: Sequence[Hashable],
                    priorities: Sequence[float], payloads: Sequence[Any],
                    seqs: Sequence[int]) -> List[Match]:
        for key in keys:
            if key in self._entries:
                raise OperationError(f"duplicate key {key!r}; use update()")
        # Pack (and validate) every word before any row is written, so a
        # bad word cannot leak allocated rows mid-batch.
        value, care = pack_words(list(words), self.width)
        rows = self._bank.insert_many(words, packed=(value, care))
        matches: List[Match] = []
        for word, key, priority, payload, seq, row in zip(
                words, keys, priorities, payloads, seqs, rows):
            match = Match(key=key, word=word, priority=priority, bank=0,
                          row=row, payload=payload, seq=seq)
            self._entries[key] = match
            self._row_entry[row] = match
            matches.append(match)
        return matches

    def delete(self, key: Hashable) -> Match:
        match = self.get(key)
        self._bank.delete(match.row)
        del self._entries[key]
        self._row_entry[match.row] = None
        return match

    def update(self, key: Hashable, word: str,
               payload: Any = None) -> Match:
        match = self.get(key)
        self._bank.update(match.row, word)
        match.word = word
        if payload is not None:
            match.payload = payload
        return match

    def get(self, key: Hashable) -> Match:
        try:
            return self._entries[key]
        except KeyError:
            raise OperationError(f"no entry with key {key!r}") from None

    def entries(self) -> List[Match]:
        return sorted(self._entries.values(), key=lambda m: m.sort_key)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    # -- search ------------------------------------------------------------------

    def search_batch(self, queries: Sequence[str],
                     mask: Optional[str] = None) -> List[QueryResult]:
        queries = list(queries)
        if not queries:
            return []
        mask_bits = (self.cam.pack_mask(mask) if mask is not None else None)
        q_matrix = pack_queries(queries, self.width)
        stats_list = search_packed_batch(self.cam, q_matrix, mask_bits)
        results: List[QueryResult] = []
        for bits, stats in zip(queries, stats_list):
            matches = [entry for entry in
                       (self._row_entry[row] for row in stats.matches)
                       if entry is not None]
            if len(matches) > 1:
                matches.sort(key=lambda m: m.sort_key)
            results.append(QueryResult(
                query=Query(bits=bits, mask=mask), matches=matches,
                energy=stats.energy, latency=stats.latency))
        return results

    def __repr__(self) -> str:
        return (f"<ArrayBackend {self.capacity}x{self.width} "
                f"({self.config.design}), {self.occupancy} entries>")
