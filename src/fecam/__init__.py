"""fecam — reproduction of the DAC 2023 paper
"Compact and High-Performance TCAM Based on Scaled Double-Gate FeFETs".

Layered public API:

* :mod:`fecam.spice` — modified-nodal-analysis circuit simulator.
* :mod:`fecam.devices` — compact models: EKV MOSFET, Preisach/KAI
  ferroelectric, SG- and DG-FeFET.
* :mod:`fecam.cam` — the paper's contribution: 1.5T1Fe TCAM cells (SG/DG),
  the 2FeFET baselines, word/array circuits, write and two-step-search
  controllers with early termination.
* :mod:`fecam.arch` — Eva-CAM-style array evaluation: areas, wires, shared
  HV drivers, figures of merit.
* :mod:`fecam.functional` — fast behavioral ternary-match engine annotated
  with circuit-tier energy/latency.
* :mod:`fecam.fabric` — sharded multi-bank TCAM fabric: free-row bank
  lifecycle, hash/range sharding, vectorized batch search, cross-bank
  priority-encoder merge, LRU query caching with shard-scoped
  invalidation.
* :mod:`fecam.apps` — application substrates (router LPM, associative
  cache, packet classifier, genomics seed matching), scaled past one
  array by the fabric tier.
* :mod:`fecam.bench` — experiment harness regenerating every paper
  table/figure.

Quickstart::

    import fecam

    tcam = fecam.functional.TernaryCAM(rows=64, width=64,
                                       design=fecam.DesignKind.DG_1T5)
    tcam.write(0, "01X" * 21 + "0")
    hits = tcam.search("010" * 21 + "0")

At system scale, the fabric serves batched traffic over many banks::

    fabric = fecam.fabric.TcamFabric(banks=16, rows_per_bank=1024,
                                     width=64, cache_size=4096)
    fabric.insert("01X" * 21 + "0", key="rule-0")
    results = fabric.search_batch(["010" * 21 + "0"] * 1000)
"""

from .designs import DesignKind
from . import spice  # noqa: F401
from . import devices  # noqa: F401
from . import cam  # noqa: F401
from . import arch  # noqa: F401
from . import functional  # noqa: F401
from . import fabric  # noqa: F401
from . import apps  # noqa: F401
from . import bench  # noqa: F401
from .fabric import TcamFabric  # noqa: F401  (headline system-tier API)

__version__ = "1.1.0"

__all__ = ["DesignKind", "TcamFabric", "spice", "devices", "cam", "arch",
           "functional", "fabric", "apps", "bench", "__version__"]
