"""fecam — reproduction of the DAC 2023 paper
"Compact and High-Performance TCAM Based on Scaled Double-Gate FeFETs".

Layered public API:

* :mod:`fecam.spice` — modified-nodal-analysis circuit simulator.
* :mod:`fecam.devices` — compact models: EKV MOSFET, Preisach/KAI
  ferroelectric, SG- and DG-FeFET.
* :mod:`fecam.cam` — the paper's contribution: 1.5T1Fe TCAM cells (SG/DG),
  the 2FeFET baselines, word/array circuits, write and two-step-search
  controllers with early termination.
* :mod:`fecam.arch` — Eva-CAM-style array evaluation: areas, wires, shared
  HV drivers, figures of merit.
* :mod:`fecam.metrics` — **the design-evaluation API**: one frozen
  :class:`~fecam.metrics.DesignPoint` evaluated by
  :func:`~fecam.metrics.evaluate` at selectable fidelity (``"paper"`` /
  ``"analytical"`` / ``"spice"``) into one canonical
  :class:`~fecam.metrics.Fom`, memoized in a shared registry, with a
  columnar :func:`~fecam.metrics.sweep` for design-space grids.
* :mod:`fecam.planes` — **the bitplane arena**: one
  :class:`~fecam.planes.TernaryPlanes` storage object (value/care/valid
  planes) under engine, fabric, and store, with write-generation-cached
  derived planes (compressed step-1/step-2 planes, candidate index) and
  zero-copy per-bank row-slice views of a fabric's contiguous arena.
* :mod:`fecam.functional` — fast behavioral ternary-match engine annotated
  with circuit-tier energy/latency.
* :mod:`fecam.fabric` — sharded multi-bank TCAM fabric: free-row bank
  lifecycle, hash/range sharding, vectorized batch search, cross-bank
  priority-encoder merge, LRU query caching with shard-scoped
  invalidation.
* :mod:`fecam.store` — **the associative-store API**: one
  :class:`~fecam.store.CamStore` facade with a typed
  :class:`~fecam.store.StoreConfig` and a uniform batch-first result
  model (:class:`~fecam.store.Query` / :class:`~fecam.store.Match` /
  :class:`~fecam.store.StoreStats`) over pluggable backends — a single
  array or the sharded fabric — so scaling is a config edit.
* :mod:`fecam.service` — **the concurrent serving tier**: a
  :class:`~fecam.service.SearchService` micro-batches concurrent
  requests into fused batch searches over a store, with snapshot
  isolation (reader-writer locking, write-generation-tagged results),
  bounded-queue backpressure, sync and ``asyncio`` front doors, and
  :class:`~fecam.service.ServiceStats` telemetry.
* :mod:`fecam.durable` — **persistence and live reconfiguration**: a
  :class:`~fecam.durable.DurableCamStore` journaling every mutation to
  a CRC-framed write-ahead log, generation-keyed arena snapshots,
  bit-identical crash :func:`~fecam.durable.recover`, and online
  :func:`~fecam.durable.reshard` of a served store's bank fan-out with
  a bounded write-locked pause.
* :mod:`fecam.obs` — **unified observability**: one
  :class:`~fecam.obs.MetricsRegistry` (counters/gauges/histograms)
  folding the four stats silos into a named, labeled snapshot with
  Prometheus text / JSON-lines exporters, an optional ``/metrics``
  HTTP thread, sampled per-request tracing with per-stage spans
  (queue → coalesce → lock → kernel → freeze), and a slow-query log —
  all bundled into :class:`~fecam.obs.Observability` and accepted by
  ``SearchService(obs=...)``.
* :mod:`fecam.apps` — application substrates (router LPM, associative
  cache, packet classifier, genomics seed matching, Hamming /
  one-shot matching), all served by :class:`~fecam.store.CamStore`;
  the router and classifier can serve concurrent traffic via
  ``serve()``.
* :mod:`fecam.bench` — experiment harness regenerating every paper
  table/figure.

Quickstart::

    import fecam

    store = fecam.CamStore(fecam.StoreConfig(width=64, rows=64))
    store.insert("01X" * 21 + "0", key="rule-0")
    hit = store.search_first("010" * 21 + "0")      # -> Match(key="rule-0")

Scaling to a sharded, cached 16-bank fabric is a config edit::

    store = fecam.CamStore(fecam.StoreConfig(
        width=64, rows=16384, banks=16, cache_size=4096))
    store.insert("01X" * 21 + "0", key="rule-0")
    results = store.search_batch(["010" * 21 + "0"] * 1000)
"""

from .designs import DesignKind
from . import planes  # noqa: F401
from . import spice  # noqa: F401
from . import devices  # noqa: F401
from . import cam  # noqa: F401
from . import arch  # noqa: F401
from . import metrics  # noqa: F401
from . import functional  # noqa: F401
from . import fabric  # noqa: F401
from . import store  # noqa: F401
from . import service  # noqa: F401
from . import durable  # noqa: F401
from . import obs  # noqa: F401
from . import apps  # noqa: F401
from . import bench  # noqa: F401
from .fabric import TcamFabric  # noqa: F401  (system tier, raw fabric)
from .metrics import (DesignPoint, Fom, evaluate,  # noqa: F401
                      sweep)
from .store import (CamStore, Match, Query, StoreConfig,  # noqa: F401
                    StoreStats)
from .service import (SearchService, ServedResult,  # noqa: F401
                      ServiceStats)

__version__ = "1.3.0"

__all__ = ["DesignKind", "CamStore", "StoreConfig", "Query", "Match",
           "StoreStats", "TcamFabric", "DesignPoint", "Fom", "evaluate",
           "sweep", "SearchService", "ServedResult", "ServiceStats",
           "planes", "spice", "devices", "cam", "arch", "metrics",
           "functional", "fabric", "store", "service", "durable", "obs",
           "apps", "bench", "__version__"]
