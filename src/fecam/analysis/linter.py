"""The lint framework: rule registry, file loading, noqa, orchestration.

A lint run is two passes over the parsed module set.  Pass one lets
every rule *collect* project-wide facts (which classes are frozen
dataclasses, which methods carry ``@requires_lock`` markers, which
classes own an ``RWLock``); pass two *checks* each module against those
facts.  Cross-file knowledge is what makes repo-specific rules like
lock discipline possible at all — a single-file linter cannot know that
``CamStore.insert`` is a writer-locked operation when it sees
``self.store.insert(...)`` in ``service.py``.

Suppression has two tiers with different intent:

* ``# fecam: noqa[FCA002]`` on the offending line — a reviewed,
  in-code exception with the justification next to it;
* a baseline file (:mod:`fecam.analysis.baseline`) — a bulk ledger of
  pre-existing violations for adopting the linter on a legacy tree.
  This repo ships an *empty* baseline on purpose: every violation the
  rules can find has been fixed, not grandfathered.
"""

from __future__ import annotations

import ast
import re

from dataclasses import dataclass, field
from pathlib import Path
from typing import (Dict, FrozenSet, Iterable, Iterator, List, Optional,
                    Sequence, Set, Tuple, Type)

__all__ = ["Violation", "Rule", "Module", "Project", "LintResult",
           "LintError", "register", "all_rules", "rules_by_code",
           "iter_python_files", "load_module", "run_lint"]


class LintError(Exception):
    """A file could not be linted (unreadable, syntax error)."""


@dataclass(frozen=True)
class Violation:
    """One finding: a rule code anchored to a source location."""

    code: str       # "FCA001"
    rule: str       # slug, e.g. "generation-discipline"
    path: str       # display path (relative where possible)
    line: int       # 1-indexed
    col: int        # 0-indexed (ast convention)
    message: str

    @property
    def fingerprint(self) -> Tuple[str, str, str]:
        """Line-number-free identity used by baseline matching (line
        numbers drift on every unrelated edit; path+code+message is
        stable until the finding itself changes)."""
        return (self.path, self.code, self.message)

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.code} {self.message}")


@dataclass
class Module:
    """One parsed source file plus its suppression comments."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    #: line -> suppressed codes (empty frozenset == suppress all codes)
    noqa: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    def suppressed(self, violation: Violation) -> bool:
        codes = self.noqa.get(violation.line)
        if codes is None:
            return False
        return not codes or violation.code in codes


@dataclass
class Project:
    """Cross-file facts rules share between the collect and check passes."""

    modules: List[Module] = field(default_factory=list)
    #: names of ``@dataclass(frozen=True)`` classes anywhere in the set
    frozen_classes: Set[str] = field(default_factory=set)
    #: method/property name -> lock mode from ``@requires_lock`` markers
    lock_required: Dict[str, str] = field(default_factory=dict)
    #: attribute names marked ``@lock_free``
    lock_free: Set[str] = field(default_factory=set)
    #: function names that are sanctioned planes mutators
    #: (``@mutates_planes``); calling one discharges the bump obligation
    planes_mutators: Set[str] = field(default_factory=set)
    #: (display_path, class name) -> lock attribute names, for classes
    #: whose ``__init__`` builds an ``RWLock``
    lock_owners: Dict[Tuple[str, str], Set[str]] = field(
        default_factory=dict)


class Rule:
    """Base class for lint rules.

    Subclasses set ``code`` (``FCAxxx``), ``name`` (a kebab-case slug),
    and ``description``; override :meth:`collect` when the rule needs
    project-wide facts and :meth:`check` to emit violations.
    """

    code: str = ""
    name: str = ""
    description: str = ""

    def collect(self, module: Module, project: Project) -> None:
        """Pass 1: record project-wide facts from ``module``."""

    def check(self, module: Module,
              project: Project) -> Iterator[Violation]:
        """Pass 2: yield violations found in ``module``."""
        return iter(())

    def violation(self, module: Module, node: ast.AST,
                  message: str) -> Violation:
        return Violation(code=self.code, rule=self.name,
                         path=module.display_path,
                         line=getattr(node, "lineno", 1),
                         col=getattr(node, "col_offset", 0),
                         message=message)


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not re.fullmatch(r"FCA\d{3}", rule_cls.code):
        raise ValueError(
            f"rule code must look like FCA001, got {rule_cls.code!r}")
    if rule_cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule_cls.code}")
    _REGISTRY[rule_cls.code] = rule_cls
    return rule_cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, by ascending code."""
    from . import rules as _rules  # noqa: F401  (registers on import)
    return [cls() for _, cls in sorted(_REGISTRY.items())]


def rules_by_code() -> Dict[str, Rule]:
    return {rule.code: rule for rule in all_rules()}


# -- file loading --------------------------------------------------------------

_NOQA_RE = re.compile(
    r"#\s*fecam:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?", re.IGNORECASE)


def _parse_noqa(source: str) -> Dict[int, FrozenSet[str]]:
    noqa: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "noqa" not in line:
            continue
        found = _NOQA_RE.search(line)
        if found is None:
            continue
        codes = found.group("codes")
        noqa[lineno] = (frozenset() if codes is None else frozenset(
            code.strip().upper() for code in codes.split(",")
            if code.strip()))
    return noqa


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: Set[Path] = set()
    out: List[Path] = []
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        elif not path.exists():
            raise LintError(f"no such file or directory: {path}")
        else:
            candidates = []
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append(candidate)
    return out


def load_module(path: Path, root: Optional[Path] = None) -> Module:
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"cannot read {path}: {exc}") from None
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise LintError(
            f"{path}:{exc.lineno}: syntax error: {exc.msg}") from None
    display = str(path)
    if root is not None:
        try:
            display = str(path.resolve().relative_to(root.resolve()))
        except ValueError:
            pass
    return Module(path=path, display_path=display, source=source,
                  tree=tree, noqa=_parse_noqa(source))


@dataclass
class LintResult:
    """Outcome of one lint run (violations already noqa-filtered)."""

    violations: List[Violation]
    files_checked: int
    suppressed_noqa: int = 0
    suppressed_baseline: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations


def run_lint(paths: Sequence[Path], *,
             select: Optional[Set[str]] = None,
             ignore: Optional[Set[str]] = None,
             root: Optional[Path] = None) -> LintResult:
    """Lint ``paths`` with every registered rule (minus select/ignore).

    Violations suppressed by ``# fecam: noqa`` comments are dropped here
    (counted in ``suppressed_noqa``); baseline filtering is the caller's
    concern (:func:`fecam.analysis.baseline.apply_baseline`), so the
    library API always reports what the rules actually found.
    """
    rules = all_rules()
    if select:
        rules = [rule for rule in rules if rule.code in select]
    if ignore:
        rules = [rule for rule in rules if rule.code not in ignore]
    project = Project()
    for path in iter_python_files(paths):
        project.modules.append(load_module(path, root))
    # Pass 1: every rule sees every module before any check runs —
    # markers in store.py must be known when service.py is checked even
    # though store.py sorts later.
    for rule in rules:
        for module in project.modules:
            rule.collect(module, project)
    violations: List[Violation] = []
    suppressed = 0
    for rule in rules:
        for module in project.modules:
            for violation in rule.check(module, project):
                if module.suppressed(violation):
                    suppressed += 1
                else:
                    violations.append(violation)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return LintResult(violations=violations,
                      files_checked=len(project.modules),
                      suppressed_noqa=suppressed)
