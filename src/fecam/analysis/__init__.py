"""fecam.analysis — correctness tooling for the serving stack.

Two complementary halves:

* a **static linter** (``python -m fecam.analysis lint src/fecam``)
  whose repo-specific rules (FCA001+) enforce the invariants the
  concurrent serving tier rests on: generation discipline on bitplane
  writes, RWLock discipline on shared store state, frozen-dataclass
  immutability, snapshot isolation at the service boundary, hot-path
  hygiene, and observability naming; and
* a **runtime sanitizer** (:mod:`fecam.analysis.sanitize`, enabled by
  ``FECAM_SANITIZE=1``) that instruments the real RWLock and planes
  objects with per-thread locksets, catching at test time what static
  analysis cannot see (aliasing, dynamic call paths).

The marker decorators in :mod:`fecam.analysis.markers` are the shared
vocabulary: the linter checks them lexically, the sanitizer checks
them dynamically, and both fail loudly instead of letting a torn read
ship.
"""

from .baseline import apply_baseline, load_baseline, write_baseline
from .linter import (LintError, LintResult, Module, Project, Rule,
                     Violation, all_rules, run_lint)
from .markers import (hot_path, lock_free, mutates_planes, requires_lock)
from .reporters import render_json, render_text

__all__ = [
    "LintError", "LintResult", "Module", "Project", "Rule", "Violation",
    "all_rules", "run_lint",
    "load_baseline", "write_baseline", "apply_baseline",
    "render_text", "render_json",
    "requires_lock", "lock_free", "hot_path", "mutates_planes",
]
