"""Baseline files: adopt the linter on a tree with known violations.

A baseline is a JSON ledger of violation fingerprints (path + code +
message — no line numbers, so unrelated edits don't churn it).  At lint
time, findings whose fingerprint appears in the baseline are filtered
out and counted separately; anything *new* still fails the run.

This repo ships ``analysis-baseline.json`` empty on purpose: all
violations the rules can find in ``src/fecam`` have been fixed, and CI
enforces that it stays that way.  The mechanism exists for downstream
forks and for staging future, stricter rules.
"""

from __future__ import annotations

import json

from pathlib import Path
from typing import List, Set, Tuple

from .linter import LintResult, Violation

__all__ = ["load_baseline", "write_baseline", "apply_baseline"]

_VERSION = 1

Fingerprint = Tuple[str, str, str]


def load_baseline(path: Path) -> Set[Fingerprint]:
    """Read a baseline file into a set of fingerprints.

    A missing file is an empty baseline; a malformed one is an error
    (silently ignoring a corrupt ledger would un-suppress or, worse,
    never flag anything again without saying why).
    """
    if not path.exists():
        return set()
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("version") != _VERSION:
        raise ValueError(f"unsupported baseline format in {path}")
    out: Set[Fingerprint] = set()
    for entry in data.get("entries", []):
        out.add((str(entry["path"]), str(entry["code"]),
                 str(entry["message"])))
    return out


def write_baseline(path: Path, violations: List[Violation]) -> None:
    entries = sorted({v.fingerprint for v in violations})
    document = {
        "version": _VERSION,
        "entries": [
            {"path": p, "code": c, "message": m} for p, c, m in entries
        ],
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


def apply_baseline(result: LintResult,
                   baseline: Set[Fingerprint]) -> LintResult:
    """Drop baselined violations from ``result`` (counted, not lost)."""
    if not baseline:
        return result
    kept = [v for v in result.violations if v.fingerprint not in baseline]
    return LintResult(
        violations=kept,
        files_checked=result.files_checked,
        suppressed_noqa=result.suppressed_noqa,
        suppressed_baseline=len(result.violations) - len(kept))
