"""Runtime concurrency sanitizer for the serving stack.

The linter (:mod:`fecam.analysis.rules`) proves lock discipline
*lexically*; this module proves it *dynamically*, catching what static
analysis cannot see — aliased planes objects, dynamic call paths, test
doubles.  It is the ThreadSanitizer idea scaled down to the two
invariants this stack actually depends on:

1. **Lockset discipline** — every planes read happens on a thread that
   holds the service RWLock (read or write mode); every planes
   mutation and generation bump happens under the write lock.
2. **Generation discipline** — any mutation that changed plane content
   advanced the write generation (the snapshot-isolation tag and cache
   invalidator).

Enable with ``FECAM_SANITIZE=1`` (collect violations, inspect with
:func:`violations`) or ``FECAM_SANITIZE=raise`` (raise
:class:`SanitizerError` at the offending call, for pinpoint debugging).
When enabled, :class:`~fecam.service.SearchService` instruments itself
at construction: a :class:`LockMonitor` attaches to its RWLock via the
``_monitor`` seam in :mod:`fecam.service.locks`, and every planes
object reachable from the store backend gets per-instance method
wrappers.  Lock-order hazards that would *deadlock* (read->write
upgrade, re-entrant write) always raise — recording them and then
hanging would help nobody.

Overhead when disabled: one env read at service construction, one
``None`` check per lock operation.  The hot path is untouched.
"""

from __future__ import annotations

import os
import threading

from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional, Tuple

import numpy as np

from .markers import is_planes_mutator

__all__ = ["SanitizerError", "SanitizerViolation", "enabled",
           "raise_mode", "violations", "reset", "LockMonitor",
           "instrument_planes", "sanitize_service",
           "maybe_sanitize_service"]

_ENV_VAR = "FECAM_SANITIZE"
_ON_VALUES = {"1", "true", "on", "yes", "raise"}

#: Planes methods that read derived/stored state (require >= read lock).
_READER_METHODS = ("derived", "step1_index", "build_derived",
                   "stored_word", "stored_words")
#: Canonical mutator names, unioned with ``@mutates_planes`` discovery
#: so an undecorated subclass override (a buggy test double, exactly
#: what the sanitizer exists to catch) is still wrapped.
_MUTATOR_METHODS = ("set_row", "set_rows", "clear_row")


class SanitizerError(RuntimeError):
    """Raised in ``FECAM_SANITIZE=raise`` mode, and always for lock
    misuse that would otherwise deadlock the calling thread."""


@dataclass(frozen=True)
class SanitizerViolation:
    """One observed invariant violation."""

    kind: str     # unlocked-read | unlocked-write | missing-generation-bump
    op: str       # e.g. "fabric.arena.set_row"
    thread: str   # offending thread's name
    message: str


def enabled() -> bool:
    """Is the sanitizer on?  Read from the environment each call so
    tests can flip it with monkeypatch before building a service."""
    return os.environ.get(_ENV_VAR, "").strip().lower() in _ON_VALUES


def raise_mode() -> bool:
    return os.environ.get(_ENV_VAR, "").strip().lower() == "raise"


_collected: List[SanitizerViolation] = []
_collect_lock = threading.Lock()


def violations() -> List[SanitizerViolation]:
    """Snapshot of every violation collected since the last reset."""
    with _collect_lock:
        return list(_collected)


def reset() -> None:
    with _collect_lock:
        _collected.clear()


def _report(kind: str, op: str, message: str) -> None:
    violation = SanitizerViolation(
        kind=kind, op=op, thread=threading.current_thread().name,
        message=message)
    if raise_mode():
        raise SanitizerError(f"[{violation.kind}] {op}: {message}")
    with _collect_lock:
        _collected.append(violation)


class LockMonitor:
    """Per-thread lockset for one RWLock, fed by the ``_monitor`` seam.

    Counts are thread-local: a reader thread knows only its own holds,
    which is exactly the lockset question ("does *this* thread hold the
    lock for *this* access?").
    """

    def __init__(self, lock: Any) -> None:
        self._local = threading.local()
        lock._monitor = self

    def _counts(self) -> List[int]:
        counts = getattr(self._local, "counts", None)
        if counts is None:
            counts = [0, 0]  # [read holds, write holds]
            self._local.counts = counts
        return counts

    def holds_read(self) -> bool:
        counts = self._counts()
        return counts[0] > 0 or counts[1] > 0

    def holds_write(self) -> bool:
        return self._counts()[1] > 0

    # -- RWLock hook interface ---------------------------------------------------

    def before_acquire_read(self) -> None:
        if self._counts()[1]:
            raise SanitizerError(
                "acquire_read() while holding the write lock would "
                "self-deadlock (writer blocks all readers)")

    def acquired_read(self) -> None:
        self._counts()[0] += 1

    def released_read(self) -> None:
        counts = self._counts()
        if counts[0] > 0:
            counts[0] -= 1

    def before_acquire_write(self) -> None:
        counts = self._counts()
        if counts[1]:
            raise SanitizerError(
                "re-entrant acquire_write() would self-deadlock "
                "(the RWLock is not recursive)")
        if counts[0]:
            raise SanitizerError(
                "read->write lock upgrade would self-deadlock "
                "(writer waits for all readers, including this one)")

    def acquired_write(self) -> None:
        self._counts()[1] += 1

    def released_write(self) -> None:
        counts = self._counts()
        if counts[1] > 0:
            counts[1] -= 1


def _snapshot_rows(planes: Any, name: str, args: Tuple[Any, ...],
                   kwargs: dict) -> Optional[Tuple[Any, Any, Any, Any]]:
    """Pre-call content snapshot of the rows a mutator will touch, or
    None when the rows cannot be determined (lock checks still apply)."""
    try:
        if name in ("set_row", "clear_row"):
            rows = np.array([kwargs.get("row", args[0])])
        elif name == "set_rows":
            rows = np.asarray(kwargs.get("rows", args[0]))
        else:
            return None
        if rows.size == 0:
            return None
        return (rows, planes.valid[rows].copy(),
                planes.value[rows].copy(), planes.care[rows].copy())
    except (IndexError, KeyError, TypeError, ValueError):
        return None


def _content_changed(planes: Any,
                     snapshot: Tuple[Any, Any, Any, Any]) -> bool:
    rows, valid, value, care = snapshot
    try:
        return bool((planes.valid[rows] != valid).any()
                    or (planes.value[rows] != value).any()
                    or (planes.care[rows] != care).any())
    except (IndexError, ValueError):
        return True  # shape changed under us; definitely a mutation


def instrument_planes(planes: Any, monitor: LockMonitor, *,
                      label: str = "planes",
                      active: Optional[Callable[[], bool]] = None) -> None:
    """Wrap one planes instance's readers/mutators with lockset checks.

    Per-instance monkeypatching (instance attributes shadow the class
    methods), so only objects owned by a sanitized service pay anything
    and plain stores stay untouched.  ``active`` gates checking — the
    service passes ``not self._closed`` so shutdown drains don't trip.
    """
    is_active = active if active is not None else (lambda: True)
    cls = type(planes)
    mutators = set(_MUTATOR_METHODS) | {
        name for name in dir(cls)
        if is_planes_mutator(getattr(cls, name, None))}

    def wrap_mutator(name: str, orig: Callable[..., Any]) -> None:
        def wrapped(*args: Any, **kwargs: Any) -> Any:
            if not is_active():
                return orig(*args, **kwargs)
            op = f"{label}.{name}"
            if not monitor.holds_write():
                _report("unlocked-write", op,
                        "planes mutation without the write lock")
            generation_before = planes.generation
            snapshot = _snapshot_rows(planes, name, args, kwargs)
            result = orig(*args, **kwargs)
            if (snapshot is not None
                    and _content_changed(planes, snapshot)
                    and planes.generation == generation_before):
                _report("missing-generation-bump", op,
                        "plane content changed but the write "
                        "generation did not advance")
            return result
        setattr(planes, name, wrapped)

    def wrap_reader(name: str, orig: Callable[..., Any]) -> None:
        def wrapped(*args: Any, **kwargs: Any) -> Any:
            if is_active() and not monitor.holds_read():
                _report("unlocked-read", f"{label}.{name}",
                        "planes read without holding the lock")
            return orig(*args, **kwargs)
        setattr(planes, name, wrapped)

    def wrap_bump(orig: Callable[..., Any]) -> None:
        def wrapped(*args: Any, **kwargs: Any) -> Any:
            if is_active() and not monitor.holds_write():
                _report("unlocked-write", f"{label}._bump",
                        "generation bump outside the write lock")
            return orig(*args, **kwargs)
        setattr(planes, "_bump", wrapped)

    for name in sorted(mutators):
        method = getattr(planes, name, None)
        if callable(method):
            wrap_mutator(name, method)
    for name in _READER_METHODS:
        method = getattr(planes, name, None)
        if callable(method):
            wrap_reader(name, method)
    bump = getattr(planes, "_bump", None)
    if callable(bump):
        wrap_bump(bump)


def _discover_planes(backend: Any) -> Iterable[Tuple[str, Any]]:
    """Every planes object reachable from a store backend, duck-typed
    (array backend: the cam's planes; fabric backend: the shared arena
    plus each bank's zero-copy view of it)."""
    cam = getattr(backend, "cam", None)
    if cam is not None and getattr(cam, "planes", None) is not None:
        yield "array.planes", cam.planes
    fabric = getattr(backend, "fabric", None)
    if fabric is not None:
        arena = getattr(fabric, "arena", None)
        if arena is not None:
            yield "fabric.arena", arena
        for i, bank in enumerate(getattr(fabric, "banks", ()) or ()):
            bank_cam = getattr(bank, "cam", None)
            if bank_cam is not None and getattr(
                    bank_cam, "planes", None) is not None:
                yield f"fabric.bank{i}.planes", bank_cam.planes


def sanitize_service(service: Any) -> LockMonitor:
    """Instrument a SearchService: lock monitor + planes wrappers.

    Checks deactivate once the service is closed (``service._closed``
    is a monotonic flag written before the final drain; reading it
    without the mutex can at worst keep checks on for one extra drain
    pass, never turn them on spuriously).
    """
    monitor = LockMonitor(service._rw)

    def active() -> bool:
        return not service._closed

    for label, planes in _discover_planes(service.store.backend):
        instrument_planes(planes, monitor, label=label, active=active)
    return monitor


def maybe_sanitize_service(service: Any) -> Optional[LockMonitor]:
    """Construction hook: instrument iff ``FECAM_SANITIZE`` is on."""
    if not enabled():
        return None
    return sanitize_service(service)
