"""CLI for the fecam correctness tools.

Usage::

    python -m fecam.analysis lint src/fecam            # text report
    python -m fecam.analysis lint src/fecam --format json
    python -m fecam.analysis lint src/fecam --baseline analysis-baseline.json
    python -m fecam.analysis lint src/fecam --write-baseline stale.json
    python -m fecam.analysis lint src/fecam --select FCA002,FCA004
    python -m fecam.analysis rules                     # rule catalogue

Exit codes: 0 clean, 1 violations found, 2 usage/parse error — the
same contract as flake8, so CI and editors can reuse their wiring.
"""

from __future__ import annotations

import argparse
import sys

from pathlib import Path
from typing import List, Optional, Set

from .baseline import apply_baseline, load_baseline, write_baseline
from .linter import LintError, all_rules, run_lint
from .reporters import render_json, render_text

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_ERROR = 2


def _parse_codes(raw: Optional[str]) -> Optional[Set[str]]:
    if not raw:
        return None
    return {code.strip().upper() for code in raw.split(",") if code.strip()}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m fecam.analysis",
        description="Invariant linter for the fecam serving stack.")
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="lint source files/directories")
    lint.add_argument("paths", nargs="+", type=Path,
                      help="files or directories to lint")
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument("--baseline", type=Path, default=None,
                      help="baseline file of accepted violations")
    lint.add_argument("--write-baseline", type=Path, default=None,
                      metavar="PATH",
                      help="write current violations as a new baseline "
                           "and exit 0")
    lint.add_argument("--select", type=str, default=None,
                      help="comma-separated codes to run (only these)")
    lint.add_argument("--ignore", type=str, default=None,
                      help="comma-separated codes to skip")
    lint.add_argument("--root", type=Path, default=Path("."),
                      help="root for display paths (default: cwd; must "
                           "match the root used when the baseline was "
                           "written)")

    sub.add_parser("rules", help="list the rule catalogue")
    return parser


def _cmd_rules() -> int:
    for rule in all_rules():
        print(f"{rule.code}  {rule.name}")
        print(f"        {rule.description}")
    return EXIT_CLEAN


def _cmd_lint(ns: argparse.Namespace) -> int:
    result = run_lint(ns.paths, select=_parse_codes(ns.select),
                      ignore=_parse_codes(ns.ignore), root=ns.root)
    if ns.write_baseline is not None:
        write_baseline(ns.write_baseline, result.violations)
        print(f"wrote {len(result.violations)} baseline entries to "
              f"{ns.write_baseline}")
        return EXIT_CLEAN
    if ns.baseline is not None:
        result = apply_baseline(result, load_baseline(ns.baseline))
    print(render_json(result) if ns.format == "json"
          else render_text(result))
    return EXIT_CLEAN if result.ok else EXIT_VIOLATIONS


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    ns = parser.parse_args(argv)
    try:
        if ns.command == "rules":
            return _cmd_rules()
        return _cmd_lint(ns)
    except (LintError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":
    sys.exit(main())
