"""Violation reporters: human text and machine JSON."""

from __future__ import annotations

import json

from typing import List

from .linter import LintResult, Violation

__all__ = ["render_text", "render_json"]


def render_text(result: LintResult) -> str:
    """flake8-style ``path:line:col: CODE message`` lines + summary."""
    lines: List[str] = [v.render() for v in result.violations]
    suppressed = result.suppressed_noqa + result.suppressed_baseline
    summary = (f"{len(result.violations)} violation"
               f"{'s' if len(result.violations) != 1 else ''} "
               f"({result.files_checked} files checked")
    if suppressed:
        summary += (f", {result.suppressed_noqa} noqa-suppressed, "
                    f"{result.suppressed_baseline} baselined")
    summary += ")"
    lines.append(summary)
    return "\n".join(lines)


def _violation_dict(violation: Violation) -> dict:
    return {
        "code": violation.code,
        "rule": violation.rule,
        "path": violation.path,
        "line": violation.line,
        "col": violation.col,
        "message": violation.message,
    }


def render_json(result: LintResult) -> str:
    """Stable JSON document for CI artifacts and editor integrations."""
    return json.dumps({
        "violations": [_violation_dict(v) for v in result.violations],
        "files_checked": result.files_checked,
        "suppressed_noqa": result.suppressed_noqa,
        "suppressed_baseline": result.suppressed_baseline,
        "ok": result.ok,
    }, indent=2, sort_keys=True)
