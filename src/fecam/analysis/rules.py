"""The repo-specific lint rules (FCA001-FCA006).

Each rule enforces one invariant the serving stack's correctness
depends on.  They are deliberately heuristic AST analyses, not type
systems: tuned so the *shipped tree lints clean* and the known failure
modes (the PR 5 torn-read hazard, a forgotten generation bump, an
unlocked store access) are caught.  Where a rule cannot see through an
indirection (aliasing, dynamic dispatch), it errs on the side of
requiring an explicit marker (:mod:`fecam.analysis.markers`) or an
inline ``# fecam: noqa[FCAxxx]`` with the justification next to it.

Rule catalogue:

========  =====================  ==================================
code      name                   invariant
========  =====================  ==================================
FCA001    generation-discipline  plane-buffer writes bump the write
                                 generation (call ``_bump`` or a
                                 ``@mutates_planes`` method)
FCA002    lock-discipline        store access in RWLock-owning
                                 classes only under the declared
                                 lock mode (``@requires_lock`` /
                                 ``@lock_free`` markers)
FCA003    frozen-mutation        no attribute assignment on frozen
                                 dataclass instances
FCA004    snapshot-escape        no live search results or raw plane
                                 buffers across a public boundary
FCA005    hot-path-hygiene       no wall-clock, copies, or row
                                 append-loops in ``@hot_path`` code
FCA006    obs-hygiene            metric/span names are literals
                                 matching the registry regexes
========  =====================  ==================================
"""

from __future__ import annotations

import ast
import re

from typing import (Dict, Iterator, List, Optional, Sequence, Set, Tuple,
                    Union)

from .linter import Module, Project, Rule, Violation, register

AnyFunc = Union[ast.FunctionDef, ast.AsyncFunctionDef]

# -- shared AST helpers --------------------------------------------------------

def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def decorator_base(dec: ast.expr) -> Optional[str]:
    """Last path component of a decorator, ignoring call parentheses."""
    target = dec.func if isinstance(dec, ast.Call) else dec
    name = dotted_name(target)
    return name.rsplit(".", 1)[-1] if name else None


def iter_functions(
        tree: ast.AST) -> Iterator[Tuple[Optional[ast.ClassDef], AnyFunc]]:
    """Yield (enclosing class, function) for every def in ``tree``."""
    def rec(node: ast.AST, cls: Optional[ast.ClassDef]
            ) -> Iterator[Tuple[Optional[ast.ClassDef], AnyFunc]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from rec(child, child)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield (cls, child)
                yield from rec(child, cls)
            else:
                yield from rec(child, cls)
    yield from rec(tree, None)


def walk_shallow(fn: AnyFunc) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs/classes
    (each nested def is analysed as its own unit by the outer loop)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def mentions(node: ast.AST, names: Set[str]) -> bool:
    return any(isinstance(n, ast.Name) and n.id in names
               for n in ast.walk(node))


def call_targets(node: ast.AST) -> Set[str]:
    """Last path components of every call target inside ``node``."""
    out: Set[str] = set()
    for n in ast.walk(node):
        if isinstance(n, ast.Call):
            base = dotted_name(n.func)
            if base:
                out.add(base.rsplit(".", 1)[-1])
            elif isinstance(n.func, ast.Attribute):
                out.add(n.func.attr)
    return out


_PLANES_WORDS = {"planes", "arena"}
_PLANE_BUFFERS = {"value", "care", "valid"}


def is_planes_class(cls: Optional[ast.ClassDef]) -> bool:
    if cls is None:
        return False
    names = [cls.name] + [dotted_name(base) or "" for base in cls.bases]
    return any("planes" in name.lower() for name in names)


def is_planes_receiver(node: ast.AST, in_planes_class: bool) -> bool:
    """Does ``node`` look like a TernaryPlanes/arena object?"""
    if isinstance(node, ast.Name):
        if node.id == "self":
            return in_planes_class
        return node.id.strip("_") in _PLANES_WORDS
    if isinstance(node, ast.Attribute):
        return node.attr.strip("_") in _PLANES_WORDS
    return False


def _plane_buffer_target(node: ast.AST,
                         in_planes_class: bool) -> Optional[ast.AST]:
    """The offending node if ``node`` writes a plane buffer, else None.

    Matches ``<planes>.value[i] = ...`` (subscript store) and
    ``<planes>.value = ...`` (whole-buffer replacement).
    """
    if isinstance(node, ast.Subscript):
        node = node.value
    if (isinstance(node, ast.Attribute) and node.attr in _PLANE_BUFFERS
            and is_planes_receiver(node.value, in_planes_class)):
        return node
    return None


# -- FCA001: generation discipline ---------------------------------------------

@register
class GenerationDiscipline(Rule):
    code = "FCA001"
    name = "generation-discipline"
    description = ("functions writing TernaryPlanes value/care/valid "
                   "buffers must call the generation-bump path "
                   "(_bump or a @mutates_planes method)")

    def collect(self, module: Module, project: Project) -> None:
        for _cls, fn in iter_functions(module.tree):
            if any(decorator_base(d) == "mutates_planes"
                   for d in fn.decorator_list):
                project.planes_mutators.add(fn.name)

    def check(self, module: Module,
              project: Project) -> Iterator[Violation]:
        bumpers = {"_bump"} | project.planes_mutators
        for cls, fn in iter_functions(module.tree):
            # __init__ allocates the buffers it is "writing"; _bump is
            # the discharge path itself.
            if fn.name in ("__init__", "_bump"):
                continue
            planesy = is_planes_class(cls)
            writes: List[ast.AST] = []
            for node in walk_shallow(fn):
                targets: Sequence[ast.AST] = ()
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = (node.target,)
                for target in targets:
                    elts = (target.elts
                            if isinstance(target, ast.Tuple) else [target])
                    for elt in elts:
                        hit = _plane_buffer_target(elt, planesy)
                        if hit is not None:
                            writes.append(elt)
            if not writes:
                continue
            if call_targets(fn) & bumpers:
                continue
            for write in writes:
                yield self.violation(
                    module, write,
                    f"plane-buffer write in `{fn.name}` without a "
                    f"generation bump; call _bump() or route through a "
                    f"@mutates_planes method")


# -- FCA002: lock discipline ---------------------------------------------------

_MODE_RANK = {"read": 1, "write": 2}
_HELD_NAME = {0: "no lock", 1: "the read lock", 2: "the write lock"}


def _decorated_lock_mode(fn: AnyFunc) -> int:
    for dec in fn.decorator_list:
        if decorator_base(dec) == "requires_lock" and isinstance(
                dec, ast.Call) and dec.args:
            arg = dec.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                return _MODE_RANK.get(arg.value, 0)
    return 0


def collect_lock_owners(module: Module, project: Project) -> None:
    """Record classes whose ``__init__`` builds an RWLock (idempotent —
    called from every rule that needs the fact, so ``--select`` of a
    single rule still sees it)."""
    for cls, fn in iter_functions(module.tree):
        if cls is None or fn.name != "__init__":
            continue
        for node in walk_shallow(fn):
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Attribute)
                    and isinstance(node.targets[0].value, ast.Name)
                    and node.targets[0].value.id == "self"
                    and isinstance(node.value, ast.Call)):
                ctor = dotted_name(node.value.func) or ""
                if ctor.rsplit(".", 1)[-1].endswith("RWLock"):
                    project.lock_owners.setdefault(
                        (module.display_path, cls.name),
                        set()).add(node.targets[0].attr)


@register
class LockDiscipline(Rule):
    code = "FCA002"
    name = "lock-discipline"
    description = ("store access inside RWLock-owning classes must be "
                   "@lock_free, or @requires_lock-marked and performed "
                   "under the declared lock mode")

    def __init__(self) -> None:
        #: (display_path, class) -> {method name: mode rank} for marked
        #: methods *defined on that class* (self-call checking must not
        #: confuse SearchService.insert with CamStore.insert).
        self._class_marked: Dict[Tuple[str, str], Dict[str, int]] = {}

    def collect(self, module: Module, project: Project) -> None:
        collect_lock_owners(module, project)
        for cls, fn in iter_functions(module.tree):
            mode = 0
            for dec in fn.decorator_list:
                base = decorator_base(dec)
                if base == "requires_lock":
                    mode = _decorated_lock_mode(fn)
                elif base == "lock_free":
                    project.lock_free.add(fn.name)
            if mode:
                project.lock_required[fn.name] = (
                    "write" if mode == 2 else "read")
                if cls is not None:
                    self._class_marked.setdefault(
                        (module.display_path, cls.name), {})[fn.name] = mode

    def check(self, module: Module,
              project: Project) -> Iterator[Violation]:
        for node in ast.iter_child_nodes(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            key = (module.display_path, node.name)
            if key not in project.lock_owners:
                continue
            yield from self._check_class(module, project, node, key)

    def _check_class(self, module: Module, project: Project,
                     cls: ast.ClassDef,
                     key: Tuple[str, str]) -> Iterator[Violation]:
        methods = [n for n in cls.body
                   if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]
        # Methods that take the lock themselves and run their callable
        # argument under it (e.g. ``write(txn)``): arguments passed to
        # them are analysed as lock-holding.
        wrapping: Dict[str, int] = {}
        for fn in methods:
            best = 0
            for inner in walk_shallow(fn):
                if isinstance(inner, (ast.With, ast.AsyncWith)):
                    best = max(best, self._with_mode(inner))
            if best:
                wrapping[fn.name] = best
        out: List[Violation] = []

        def report(node: ast.AST, message: str) -> None:
            out.append(self.violation(module, node, message))

        def check_access(attr: ast.Attribute, held: int) -> None:
            recv = attr.value
            guarded = (
                (isinstance(recv, ast.Attribute)
                 and isinstance(recv.value, ast.Name)
                 and recv.value.id == "self" and recv.attr == "store")
                or (isinstance(recv, ast.Name) and recv.id == "store"))
            if guarded:
                name = attr.attr
                if name.startswith("__") or name in project.lock_free:
                    return
                need = _MODE_RANK.get(project.lock_required.get(name, ""), 0)
                if not need:
                    report(attr,
                           f"unannotated shared-state access "
                           f"`store.{name}` in lock-owning class "
                           f"{cls.name}; mark it @requires_lock(...) or "
                           f"@lock_free on the store")
                elif held < need:
                    mode = "write" if need == 2 else "read"
                    report(attr,
                           f"`store.{name}` requires the {mode} lock "
                           f"but {_HELD_NAME[held]} is held here")
            elif isinstance(recv, ast.Name) and recv.id == "self":
                marked = self._class_marked.get(key, {})
                need = marked.get(attr.attr, 0)
                if need and held < need:
                    mode = "write" if need == 2 else "read"
                    report(attr,
                           f"`self.{attr.attr}` requires the {mode} "
                           f"lock but {_HELD_NAME[held]} is held here")

        def scan(node: ast.AST, held: int) -> None:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    scan(item.context_expr, held)
                inner = max(held, self._with_mode(node))
                for stmt in node.body:
                    scan(stmt, inner)
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A nested def runs whenever it is later called; only
                # its own markers say what it may assume.
                inner = _decorated_lock_mode(node)
                for stmt in node.body:
                    scan(stmt, inner)
                return
            if isinstance(node, ast.Lambda):
                scan(node.body, held)
                return
            if isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Name)
                        and func.value.id == "self"
                        and func.attr in wrapping):
                    inner = max(held, wrapping[func.attr])
                    for arg in node.args:
                        scan(arg, inner)
                    for kw in node.keywords:
                        scan(kw.value, inner)
                    return
            if isinstance(node, ast.Attribute):
                check_access(node, held)
            for child in ast.iter_child_nodes(node):
                scan(child, held)

        for fn in methods:
            held = _decorated_lock_mode(fn)
            for stmt in fn.body:
                scan(stmt, held)
        yield from out

    @staticmethod
    def _with_mode(node: Union[ast.With, ast.AsyncWith]) -> int:
        mode = 0
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call) and isinstance(
                    expr.func, ast.Attribute):
                if expr.func.attr == "write_locked":
                    mode = max(mode, 2)
                elif expr.func.attr == "read_locked":
                    mode = max(mode, 1)
        return mode


# -- FCA003: frozen-dataclass mutation -----------------------------------------

def _is_frozen_dataclass(cls: ast.ClassDef) -> bool:
    for dec in cls.decorator_list:
        if not isinstance(dec, ast.Call):
            continue
        if decorator_base(dec) != "dataclass":
            continue
        for kw in dec.keywords:
            if (kw.arg == "frozen" and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True):
                return True
    return False


def _annotation_frozen_class(ann: Optional[ast.expr],
                             frozen: Set[str]) -> Optional[str]:
    if ann is None:
        return None
    for node in ast.walk(ann):
        if isinstance(node, ast.Name) and node.id in frozen:
            return node.id
        if isinstance(node, ast.Attribute) and node.attr in frozen:
            return node.attr
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            tail = node.value.rsplit(".", 1)[-1]
            if tail in frozen:
                return tail
    return None


@register
class FrozenMutation(Rule):
    code = "FCA003"
    name = "frozen-mutation"
    description = ("no attribute assignment (or setattr) on instances "
                   "of frozen dataclasses")

    def collect(self, module: Module, project: Project) -> None:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and _is_frozen_dataclass(node):
                project.frozen_classes.add(node.name)

    def check(self, module: Module,
              project: Project) -> Iterator[Violation]:
        frozen = project.frozen_classes
        if not frozen:
            return
        for cls, fn in iter_functions(module.tree):
            in_frozen_class = cls is not None and cls.name in frozen
            bindings = self._bindings(fn, frozen)
            for node in walk_shallow(fn):
                yield from self._check_node(
                    module, node, fn, bindings, frozen, in_frozen_class)

    def _bindings(self, fn: AnyFunc,
                  frozen: Set[str]) -> Dict[str, str]:
        """Names inferred to hold frozen-dataclass instances, from arg
        annotations, annotated assignments, and direct construction."""
        out: Dict[str, str] = {}
        args = list(fn.args.posonlyargs) + list(fn.args.args) + list(
            fn.args.kwonlyargs)
        for arg in args:
            hit = _annotation_frozen_class(arg.annotation, frozen)
            if hit:
                out[arg.arg] = hit
        for node in walk_shallow(fn):
            if isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name):
                hit = _annotation_frozen_class(node.annotation, frozen)
                if hit:
                    out[node.target.id] = hit
            elif isinstance(node, ast.Assign) and isinstance(
                    node.value, ast.Call):
                ctor = dotted_name(node.value.func) or ""
                tail = ctor.rsplit(".", 1)[-1]
                if tail in frozen:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            out[target.id] = tail
        return out

    def _check_node(self, module: Module, node: ast.AST, fn: AnyFunc,
                    bindings: Dict[str, str], frozen: Set[str],
                    in_frozen_class: bool) -> Iterator[Violation]:
        targets: Sequence[ast.AST] = ()
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = (node.target,)
        elif isinstance(node, ast.Delete):
            targets = node.targets
        for target in targets:
            elts = target.elts if isinstance(target, ast.Tuple) else [target]
            for elt in elts:
                if (isinstance(elt, ast.Attribute)
                        and isinstance(elt.value, ast.Name)):
                    name = elt.value.id
                    if name in bindings:
                        yield self.violation(
                            module, elt,
                            f"attribute assignment on frozen dataclass "
                            f"{bindings[name]} instance `{name}.{elt.attr}`")
                    elif (name == "self" and in_frozen_class
                          and fn.name not in ("__post_init__", "__new__")):
                        yield self.violation(
                            module, elt,
                            f"direct attribute assignment `self."
                            f"{elt.attr}` inside frozen dataclass; use "
                            f"object.__setattr__ in __post_init__ only")
        if isinstance(node, ast.Call):
            func_name = dotted_name(node.func) or ""
            if func_name == "object.__setattr__" and not in_frozen_class:
                yield self.violation(
                    module, node,
                    "object.__setattr__ outside a frozen dataclass's "
                    "own methods defeats the frozen contract")
            elif (isinstance(node.func, ast.Name)
                  and node.func.id == "setattr" and node.args
                  and isinstance(node.args[0], ast.Name)
                  and node.args[0].id in bindings):
                yield self.violation(
                    module, node,
                    f"setattr on frozen dataclass "
                    f"{bindings[node.args[0].id]} instance "
                    f"`{node.args[0].id}`")


# -- FCA004: snapshot escape ---------------------------------------------------

_SEARCH_CALLS = {"search", "search_batch", "search_first", "search_many"}
_LAUNDER_CALLS = {"replace", "copy", "deepcopy", "freeze", "frozen_copy"}


def _calls_search(expr: ast.AST) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Call):
            base = dotted_name(node.func) or ""
            if isinstance(node.func, ast.Attribute):
                base = node.func.attr
            if base.rsplit(".", 1)[-1] in _SEARCH_CALLS:
                return True
    return False


def _launders(expr: ast.AST) -> bool:
    return bool(call_targets(expr) & _LAUNDER_CALLS)


@register
class SnapshotEscape(Rule):
    code = "FCA004"
    name = "snapshot-escape"
    description = ("no live search results or raw plane buffers across "
                   "a public/service boundary without copy/freeze")

    def collect(self, module: Module, project: Project) -> None:
        collect_lock_owners(module, project)

    def check(self, module: Module,
              project: Project) -> Iterator[Violation]:
        # (a) live results escaping the service boundary.
        for node in ast.iter_child_nodes(module.tree):
            if (isinstance(node, ast.ClassDef)
                    and (module.display_path, node.name)
                    in project.lock_owners):
                for fn in node.body:
                    if isinstance(fn, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                        yield from self._check_method(module, fn)
        # (b) raw plane buffers returned from public functions.
        for cls, fn in iter_functions(module.tree):
            if fn.name.startswith("_"):
                continue
            planesy = is_planes_class(cls)
            for node in walk_shallow(fn):
                if isinstance(node, ast.Return) and node.value is not None:
                    hit = _plane_buffer_target(node.value, planesy)
                    if hit is not None:
                        yield self.violation(
                            module, node,
                            f"public `{fn.name}` returns a raw plane "
                            f"buffer view; return a .copy() or wrap it")

    def _check_method(self, module: Module,
                      fn: AnyFunc) -> Iterator[Violation]:
        tainted: Set[str] = set()
        out: List[Violation] = []

        def names_of(target: ast.AST) -> List[str]:
            if isinstance(target, ast.Name):
                return [target.id]
            if isinstance(target, (ast.Tuple, ast.List)):
                names: List[str] = []
                for elt in target.elts:
                    names.extend(names_of(elt))
                return names
            return []

        def flag_exprs(node: ast.AST) -> None:
            # One report per statement: set_result(ServedResult(live))
            # is a single escape, not two.
            for call in ast.walk(node):
                if not isinstance(call, ast.Call):
                    continue
                values = list(call.args) + [kw.value for kw in call.keywords]
                live = [v for v in values
                        if mentions(v, tainted) and not _launders(v)]
                if not live:
                    continue
                if (isinstance(call.func, ast.Name)
                        and call.func.id == "ServedResult"):
                    out.append(self.violation(
                        module, call,
                        "live search result passed into ServedResult; "
                        "freeze with replace()/.copy() before serving"))
                    return
                if (isinstance(call.func, ast.Attribute)
                        and call.func.attr == "set_result"):
                    out.append(self.violation(
                        module, call,
                        "live search result passed to set_result; "
                        "freeze with replace()/.copy() before serving"))
                    return

        def assign(targets: List[str], is_tainted: bool) -> None:
            for name in targets:
                if is_tainted:
                    tainted.add(name)
                else:
                    tainted.discard(name)

        def walk_stmts(body: Sequence[ast.stmt]) -> None:
            for stmt in body:
                if isinstance(stmt, ast.Assign):
                    flag_exprs(stmt.value)
                    taint = (_calls_search(stmt.value)
                             or (mentions(stmt.value, tainted)
                                 and not _launders(stmt.value)))
                    for target in stmt.targets:
                        assign(names_of(target), taint)
                elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                    flag_exprs(stmt.iter)
                    taint = (mentions(stmt.iter, tainted)
                             and not _launders(stmt.iter))
                    assign(names_of(stmt.target), taint)
                    walk_stmts(stmt.body)
                    walk_stmts(stmt.orelse)
                elif isinstance(stmt, (ast.While, ast.If)):
                    flag_exprs(stmt.test)
                    walk_stmts(stmt.body)
                    walk_stmts(stmt.orelse)
                elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                    for item in stmt.items:
                        flag_exprs(item.context_expr)
                    walk_stmts(stmt.body)
                elif isinstance(stmt, ast.Try):
                    walk_stmts(stmt.body)
                    for handler in stmt.handlers:
                        walk_stmts(handler.body)
                    walk_stmts(stmt.orelse)
                    walk_stmts(stmt.finalbody)
                elif isinstance(stmt, ast.Return):
                    if stmt.value is not None:
                        flag_exprs(stmt.value)
                        if (not fn.name.startswith("_")
                                and mentions(stmt.value, tainted)
                                and not _launders(stmt.value)):
                            out.append(self.violation(
                                module, stmt,
                                f"public `{fn.name}` returns live search "
                                f"results; freeze with replace()/.copy()"))
                elif isinstance(stmt, (ast.FunctionDef,
                                       ast.AsyncFunctionDef,
                                       ast.ClassDef)):
                    continue
                else:
                    flag_exprs(stmt)
        walk_stmts(fn.body)
        yield from out


# -- FCA005: hot-path hygiene --------------------------------------------------

_WALL_CLOCK = {"time.time", "datetime.now", "datetime.datetime.now",
               "datetime.utcnow", "datetime.datetime.utcnow"}
_COPY_CALLS = {"np.copy", "numpy.copy", "copy.deepcopy"}


@register
class HotPathHygiene(Rule):
    code = "FCA005"
    name = "hot-path-hygiene"
    description = ("no wall-clock calls, buffer copies, or per-row "
                   "append loops inside @hot_path functions")

    def check(self, module: Module,
              project: Project) -> Iterator[Violation]:
        for _cls, fn in iter_functions(module.tree):
            marks = [d for d in fn.decorator_list
                     if decorator_base(d) == "hot_path"]
            if not marks:
                continue
            if any(self._is_exempt(d) for d in marks):
                continue
            yield from self._check_hot(module, fn)

    @staticmethod
    def _is_exempt(dec: ast.expr) -> bool:
        """True for ``@hot_path(exempt="reason")`` with a non-empty
        literal reason — the declared escape hatch for shims whose
        loops run in compiled code."""
        if not isinstance(dec, ast.Call):
            return False
        for kw in dec.keywords:
            if (kw.arg == "exempt" and isinstance(kw.value, ast.Constant)
                    and isinstance(kw.value.value, str) and kw.value.value):
                return True
        return False

    def _check_hot(self, module: Module,
                   fn: AnyFunc) -> Iterator[Violation]:
        out: List[Violation] = []

        def scan(node: ast.AST, in_loop: bool) -> None:
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                header = (node.iter,) if isinstance(
                    node, (ast.For, ast.AsyncFor)) else (node.test,)
                for expr in header:
                    scan(expr, in_loop)
                for stmt in node.body + node.orelse:
                    scan(stmt, True)
                return
            if isinstance(node, ast.Call):
                name = dotted_name(node.func) or ""
                if name in _WALL_CLOCK:
                    out.append(self.violation(
                        module, node,
                        f"wall-clock call {name}() on the hot path; "
                        f"take timestamps outside @hot_path code"))
                elif name in _COPY_CALLS or name == "deepcopy":
                    out.append(self.violation(
                        module, node,
                        f"buffer copy {name}() on the hot path"))
                elif isinstance(node.func, ast.Attribute):
                    if node.func.attr == "copy":
                        out.append(self.violation(
                            module, node,
                            "allocation via .copy() on the hot path"))
                    elif node.func.attr == "append" and in_loop:
                        out.append(self.violation(
                            module, node,
                            "per-row append loop on the hot path; use "
                            "vectorized/bulk operations"))
            for child in ast.iter_child_nodes(node):
                scan(child, in_loop)

        for stmt in fn.body:
            scan(stmt, False)
        yield from out


# -- FCA006: observability hygiene ---------------------------------------------

# Mirrors fecam.obs.registry._NAME_RE and the span-name convention used
# by the tracer (lowercase dotted identifiers).
_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SPAN_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_.]*$")

_METRIC_METHODS = {"counter", "gauge", "histogram"}
_METRIC_RECEIVERS = {"registry", "metrics"}


@register
class ObsHygiene(Rule):
    code = "FCA006"
    name = "obs-hygiene"
    description = ("metric and span names must be string literals (or "
                   "module constants) matching the registry regexes")

    def __init__(self) -> None:
        self._consts: Dict[str, Dict[str, str]] = {}

    def collect(self, module: Module, project: Project) -> None:
        consts: Dict[str, str] = {}
        for stmt in module.tree.body:
            if (isinstance(stmt, ast.Assign)
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str)):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        consts[target.id] = stmt.value.value
        self._consts[module.display_path] = consts

    def check(self, module: Module,
              project: Project) -> Iterator[Violation]:
        consts = self._consts.get(module.display_path, {})
        for cls, fn in iter_functions(module.tree):
            # The registry's own forwarding methods legitimately take
            # the name as a parameter.
            if cls is not None and "registry" in cls.name.lower():
                continue
            params = {arg.arg for arg in
                      (list(fn.args.posonlyargs) + list(fn.args.args)
                       + list(fn.args.kwonlyargs))}
            for node in walk_shallow(fn):
                if isinstance(node, ast.Call):
                    yield from self._check_call(module, node, consts,
                                                params)

    def _check_call(self, module: Module, call: ast.Call,
                    consts: Dict[str, str],
                    params: Set[str]) -> Iterator[Violation]:
        func = call.func
        kind: Optional[str] = None
        name_arg: Optional[ast.expr] = None
        if isinstance(func, ast.Attribute):
            recv = dotted_name(func.value) or ""
            last = recv.rsplit(".", 1)[-1].strip("_") if recv else ""
            if func.attr in _METRIC_METHODS and last in _METRIC_RECEIVERS:
                kind = "metric"
                name_arg = call.args[0] if call.args else None
                for kw in call.keywords:
                    if kw.arg == "name":
                        name_arg = kw.value
            elif func.attr in ("record", "open") and last == "trace":
                kind = "span"
                name_arg = call.args[0] if call.args else None
            elif func.attr in ("trace_stage", "stage"):
                kind = "span"
                name_arg = call.args[0] if call.args else None
            elif func.attr == "record_span":
                kind = "span"
                name_arg = call.args[1] if len(call.args) > 1 else None
        elif isinstance(func, ast.Name):
            if func.id in ("trace_stage", "stage"):
                kind = "span"
                name_arg = call.args[0] if call.args else None
            elif func.id == "record_span":
                kind = "span"
                name_arg = call.args[1] if len(call.args) > 1 else None
        if kind is None or name_arg is None:
            return
        pattern = _METRIC_NAME_RE if kind == "metric" else _SPAN_NAME_RE
        if isinstance(name_arg, ast.Constant):
            if not isinstance(name_arg.value, str):
                return  # not a name-shaped argument; out of scope
            if not pattern.match(name_arg.value):
                yield self.violation(
                    module, name_arg,
                    f"{kind} name {name_arg.value!r} does not match the "
                    f"registry pattern {pattern.pattern}")
        elif isinstance(name_arg, ast.Name):
            if name_arg.id in params:
                # Forwarding wrapper (record_span/stage plumbing): the
                # literal is enforced at the wrapper's call sites.
                return
            literal = consts.get(name_arg.id)
            if literal is None:
                yield self.violation(
                    module, name_arg,
                    f"{kind} name must be a string literal or a "
                    f"module-level constant; `{name_arg.id}` is neither")
            elif not pattern.match(literal):
                yield self.violation(
                    module, name_arg,
                    f"{kind} name constant {name_arg.id}={literal!r} "
                    f"does not match the registry pattern "
                    f"{pattern.pattern}")
        else:
            yield self.violation(
                module, name_arg,
                f"dynamic {kind} name (f-string/concat/call); use a "
                f"string literal so the registry regex is checkable")
