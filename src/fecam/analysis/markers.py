"""Marker decorators: the contract vocabulary the correctness tools check.

The serving stack's invariants (ROADMAP: snapshot isolation, generation
discipline, hot-path hygiene) live in conventions, not types.  These
decorators turn the conventions into machine-checkable declarations:

* :func:`requires_lock` — "my caller must hold the service RWLock in at
  least this mode."  The lint rule FCA002 verifies every call site in a
  lock-owning class, and the runtime sanitizer verifies the per-thread
  lockset when ``FECAM_SANITIZE=1``.
* :func:`lock_free` — "reading me without the lock is safe" (immutable
  layout/config attributes).  Exempts an access from FCA002.
* :func:`hot_path` — "I am (on) the fused-kernel hot path."  FCA005
  forbids wall-clock calls, arena copies, and per-row append loops
  inside marked functions.
* :func:`mutates_planes` — "I am a sanctioned bitplane mutation path"
  (I bump the write generation myself).  FCA001 treats a call to a
  marked function as discharging the generation-bump obligation, and
  the sanitizer wraps marked methods to verify the bump actually
  happened.

All of them are runtime no-ops: they attach one dunder attribute and
return the function unchanged, so decorating the hot path costs nothing
per call.  They must stay importable from anywhere in ``fecam`` without
dragging the rest of :mod:`fecam.analysis` in — this module therefore
imports nothing from the package.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, TypeVar

__all__ = ["requires_lock", "lock_free", "hot_path", "mutates_planes",
           "lock_mode", "is_lock_free", "is_hot_path", "hot_path_exemption",
           "is_planes_mutator", "LOCK_MODES"]

F = TypeVar("F", bound=Callable[..., Any])

#: Valid lock modes, weakest first ("write" satisfies a "read" need).
LOCK_MODES = ("read", "write")

REQUIRES_LOCK_ATTR = "__fecam_requires_lock__"
LOCK_FREE_ATTR = "__fecam_lock_free__"
HOT_PATH_ATTR = "__fecam_hot_path__"
HOT_PATH_EXEMPT_ATTR = "__fecam_hot_path_exempt__"
MUTATES_PLANES_ATTR = "__fecam_mutates_planes__"


def requires_lock(mode: str) -> Callable[[F], F]:
    """Declare that callers must hold the serving RWLock in ``mode``.

    ``mode`` is ``"read"`` or ``"write"``; holding the write lock
    satisfies a read requirement (a writer excludes every reader, so it
    sees at least as consistent a view).  Apply *below* ``@property``::

        @property
        @requires_lock("read")
        def generation(self) -> int: ...
    """
    if mode not in LOCK_MODES:
        raise ValueError(
            f"lock mode must be one of {LOCK_MODES}, got {mode!r}")

    def mark(fn: F) -> F:
        setattr(fn, REQUIRES_LOCK_ATTR, mode)
        return fn

    return mark


def lock_free(fn: F) -> F:
    """Declare an attribute/method safe to read without the lock.

    Reserve this for immutable layout and config (width, banks,
    capacity): anything that changes under writes needs
    :func:`requires_lock` instead.
    """
    setattr(fn, LOCK_FREE_ATTR, True)
    return fn


def hot_path(fn: Optional[F] = None, *,
             exempt: Optional[str] = None) -> Any:
    """Mark a function as part of the fused-kernel hot path (FCA005).

    Two forms::

        @hot_path                      # checked by FCA005
        @hot_path(exempt="reason")     # marked, but hygiene-exempt

    The called form declares that FCA005's source-level hygiene checks
    do not apply — reserved for thin shims whose loops run in compiled
    code (the ctypes kernel bindings), where Python-level heuristics
    about appends and copies are meaningless.  The reason string is
    mandatory and surfaces in introspection so exemptions stay
    auditable.
    """

    def mark(f: F) -> F:
        setattr(f, HOT_PATH_ATTR, True)
        if exempt is not None:
            setattr(f, HOT_PATH_EXEMPT_ATTR, exempt)
        return f

    if fn is not None:  # bare @hot_path
        return mark(fn)
    if not exempt:
        raise ValueError(
            "hot_path(...) called form requires a non-empty exempt= reason")
    return mark


def mutates_planes(fn: F) -> F:
    """Mark a sanctioned bitplane mutation path (bumps the generation)."""
    setattr(fn, MUTATES_PLANES_ATTR, True)
    return fn


# -- runtime introspection (used by the sanitizer) -----------------------------

def lock_mode(obj: Any) -> Optional[str]:
    """The declared lock mode of a function/property getter, or None."""
    if isinstance(obj, property):
        obj = obj.fget
    return getattr(obj, REQUIRES_LOCK_ATTR, None)


def is_lock_free(obj: Any) -> bool:
    if isinstance(obj, property):
        obj = obj.fget
    return bool(getattr(obj, LOCK_FREE_ATTR, False))


def is_hot_path(obj: Any) -> bool:
    return bool(getattr(obj, HOT_PATH_ATTR, False))


def hot_path_exemption(obj: Any) -> Optional[str]:
    """The FCA005 exemption reason of a hot-path function, or None."""
    return getattr(obj, HOT_PATH_EXEMPT_ATTR, None)


def is_planes_mutator(obj: Any) -> bool:
    return bool(getattr(obj, MUTATES_PLANES_ATTR, False))
