"""LRU query-result cache with generation-based invalidation.

Associative search is read-dominated in every workload the paper
motivates (routing tables mutate rarely; classification rule sets are
near-static), so repeated queries can skip the array entirely — zero
search energy, zero match-line activity.  Correctness is kept by
*generation vectors*: every bank carries a write counter, each cached
result remembers the counters of the banks it consulted, and a hit is
only served while those counters still agree — lazily, with no scan
over the cache.  A write invalidates the cached results that consulted
the written bank; since today's fabric searches broadcast to every
bank, that is every cached result, but the per-bank vector lets
future routed (single-shard) lookups survive writes to other shards.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Optional, Tuple

from ..errors import OperationError

__all__ = ["QueryCache"]


class QueryCache:
    """Bounded LRU mapping (query, mask) -> search result.

    Telemetry counters:

    * ``hits`` / ``misses`` — lookup outcomes (stale entries count as
      misses);
    * ``stale_drops`` — entries discarded because a consulted bank was
      written after the result was cached;
    * ``evictions`` — capacity-pressure LRU drops.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise OperationError("cache capacity must be positive")
        self.capacity = capacity
        self._data: "OrderedDict[Hashable, Tuple[Tuple[int, ...], Any]]" = \
            OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stale_drops = 0
        self.evictions = 0

    def get(self, key: Hashable, generations: Tuple[int, ...]) -> Optional[Any]:
        """Return the cached result, or None on miss/stale."""
        item = self._data.get(key)
        if item is None:
            self.misses += 1
            return None
        cached_generations, result = item
        if cached_generations != generations:
            del self._data[key]
            self.stale_drops += 1
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return result

    def put(self, key: Hashable, generations: Tuple[int, ...],
            result: Any) -> None:
        """Insert/refresh an entry, evicting the LRU one if over capacity."""
        self._data[key] = (generations, result)
        self._data.move_to_end(key)
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1

    def note_hit(self) -> None:
        """Count a hit served without a ``get`` (intra-batch duplicate)."""
        self.hits += 1

    def clear(self) -> None:
        self._data.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<QueryCache {len(self._data)}/{self.capacity}, "
                f"hit_rate={self.hit_rate:.2f}>")
