"""LRU query-result cache with generation-based invalidation.

Associative search is read-dominated in every workload the paper
motivates (routing tables mutate rarely; classification rule sets are
near-static), so repeated queries can skip the array entirely — zero
search energy, zero match-line activity.  Correctness is kept by
*generation vectors*: every bank carries a write counter, each cached
result remembers the counters of the banks it consulted, and a hit is
only served while those counters still agree — lazily, with no scan
over the cache.  A write invalidates the cached results that consulted
the written bank; since today's fabric searches broadcast to every
bank, that is every cached result, but the per-bank vector lets
future routed (single-shard) lookups survive writes to other shards.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import (Any, Callable, Hashable, List, Optional, Sequence,
                    Tuple)

from ..errors import OperationError

__all__ = ["QueryCache", "serve_cached_batch"]


class QueryCache:
    """Bounded LRU mapping (query, mask) -> search result.

    Telemetry counters:

    * ``hits`` / ``misses`` — lookup outcomes (stale entries count as
      misses);
    * ``stale_drops`` — entries discarded because a consulted bank was
      written after the result was cached;
    * ``evictions`` — capacity-pressure LRU drops.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise OperationError("cache capacity must be positive")
        self.capacity = capacity
        self._data: "OrderedDict[Hashable, Tuple[Tuple[int, ...], Any]]" = \
            OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stale_drops = 0
        self.evictions = 0

    def get(self, key: Hashable, generations: Tuple[int, ...]) -> Optional[Any]:
        """Return the cached result, or None on miss/stale."""
        item = self._data.get(key)
        if item is None:
            self.misses += 1
            return None
        cached_generations, result = item
        if cached_generations != generations:
            del self._data[key]
            self.stale_drops += 1
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return result

    def put(self, key: Hashable, generations: Tuple[int, ...],
            result: Any) -> None:
        """Insert/refresh an entry, evicting the LRU one if over capacity."""
        self._data[key] = (generations, result)
        self._data.move_to_end(key)
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1

    def note_hit(self) -> None:
        """Count a hit served without a ``get`` (intra-batch duplicate)."""
        self.hits += 1

    def clear(self) -> None:
        self._data.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<QueryCache {len(self._data)}/{self.capacity}, "
                f"hit_rate={self.hit_rate:.2f}>")


def serve_cached_batch(cache: Optional[QueryCache],
                       generation: Tuple[int, ...],
                       items: Sequence[Any],
                       key_fn: Callable[[Any], Hashable],
                       compute: Callable[[List[Any]], List[Any]],
                       snapshot: Callable[[Any], Any],
                       from_cache: Callable[[Any], Any],
                       count_served: Callable[[], None]) -> List[Any]:
    """Serve a query batch through an optional cache, deduplicated.

    The one implementation of the subtle hit/miss/duplicate accounting
    shared by :meth:`TcamFabric.search_batch` and
    :meth:`fecam.store.CamStore.search_batch`:

    * without a cache, ``compute(items)`` runs verbatim (duplicates
      recompute, exactly like a sequential loop would);
    * with a cache, each distinct item is looked up once, misses are
      computed in one ``compute(unique)`` call, and intra-batch
      duplicates are served as hits (``note_hit``) from the result of
      their first occurrence — the behavior a sequential loop over a
      warm cache converges to.

    ``compute`` owns the accounting of the queries it serves (searches
    fired, energy, latency); ``count_served`` is invoked once per query
    served *from the cache* instead.  ``snapshot`` isolates the stored
    copy from caller mutation; ``from_cache`` builds the zero-cost
    served result.
    """
    if cache is None:
        return compute(list(items))
    results: List[Any] = [None] * len(items)
    pending: "OrderedDict[Any, List[int]]" = OrderedDict()
    for i, item in enumerate(items):
        if item in pending:
            # A duplicate of an item already being computed this batch:
            # a sequential loop would serve it from the cache after the
            # first occurrence, so it is accounted as a hit below, not
            # as another miss here.
            pending[item].append(i)
            continue
        hit = cache.get(key_fn(item), generation)
        if hit is not None:
            count_served()
            results[i] = from_cache(hit)
        else:
            pending.setdefault(item, []).append(i)
    if pending:
        computed = compute(list(pending))
        for item, result in zip(pending, computed):
            cache.put(key_fn(item), generation, snapshot(result))
            indices = pending[item]
            results[indices[0]] = result
            for extra in indices[1:]:
                cache.note_hit()
                count_served()
                results[extra] = from_cache(result)
    return results
