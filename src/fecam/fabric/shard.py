"""Sharding policies: which bank owns a key.

A policy is a pure function of the key, so any fabric replica places the
same key in the same bank — the property that makes routed point lookups
and shard-scoped cache invalidation possible.  Hash sharding balances
arbitrary keys; range sharding keeps numerically adjacent keys together
(useful when queries carry locality, e.g. address ranges).
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from bisect import bisect_right
from typing import Hashable, List

from ..errors import OperationError

__all__ = ["ShardPolicy", "HashSharding", "RangeSharding"]


class ShardPolicy(ABC):
    """Maps every key to the bank that owns it."""

    def __init__(self, num_banks: int):
        if num_banks < 1:
            raise OperationError("a fabric needs at least one bank")
        self.num_banks = num_banks

    @abstractmethod
    def bank_for(self, key: Hashable) -> int:
        """Owning bank index in ``[0, num_banks)``."""

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} over {self.num_banks} banks>"


class HashSharding(ShardPolicy):
    """Stable hash placement (process-independent, unlike ``hash()``).

    Uses blake2b of a canonical key encoding so placement survives
    interpreter restarts and ``PYTHONHASHSEED`` — required for the
    fabric's stats and cache behavior to be reproducible run to run.
    Keys are therefore restricted to value-like types (str, bytes,
    int, float, bool, None, and tuples of those): an arbitrary object's
    default ``repr`` embeds its address, which would silently break the
    stability guarantee.
    """

    @classmethod
    def _canonical(cls, key: Hashable) -> str:
        if key is None or isinstance(key, (str, bytes, int, float)):
            return f"{type(key).__name__}:{key!r}"
        if isinstance(key, tuple):
            return "(" + ",".join(cls._canonical(k) for k in key) + ")"
        raise OperationError(
            f"hash sharding needs value-like keys (str/bytes/int/float/"
            f"tuple) for stable placement, got {type(key).__name__}")

    def bank_for(self, key: Hashable) -> int:
        digest = hashlib.blake2b(self._canonical(key).encode("utf-8"),
                                 digest_size=8).digest()
        return int.from_bytes(digest, "little") % self.num_banks


class RangeSharding(ShardPolicy):
    """Contiguous key ranges per bank over an integer key space.

    Keys may be ints or binary ('0'/'1') strings; the key space
    ``[0, 2**key_bits)`` is split into ``num_banks`` equal slices.
    """

    def __init__(self, num_banks: int, key_bits: int):
        super().__init__(num_banks)
        if key_bits < 1:
            raise OperationError("key_bits must be positive")
        self.key_bits = key_bits
        span = 1 << key_bits
        # Upper (exclusive) boundary of each bank's slice.
        self._bounds: List[int] = [
            (span * (i + 1)) // num_banks for i in range(num_banks)]

    def _key_value(self, key: Hashable) -> int:
        if isinstance(key, bool):
            raise OperationError("boolean keys are not range-shardable")
        if isinstance(key, int):
            value = key
        elif isinstance(key, str) and key and set(key) <= {"0", "1"}:
            value = int(key, 2)
        else:
            raise OperationError(
                f"range sharding needs int or binary-string keys, "
                f"got {key!r}")
        if not 0 <= value < (1 << self.key_bits):
            raise OperationError(
                f"key {value} outside the {self.key_bits}-bit key space")
        return value

    def bank_for(self, key: Hashable) -> int:
        return bisect_right(self._bounds, self._key_value(key))
