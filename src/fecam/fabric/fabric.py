"""`TcamFabric` — a sharded multi-bank associative search engine.

The paper evaluates single arrays; a deployable search engine is many
arrays behind one interface (cf. the capacity-scaled FeCAM / multi-bank
CAM systems in related work).  The fabric owns N :class:`CamBank` banks,
places keys by a :class:`ShardPolicy`, broadcasts searches to every bank
(content queries can match anywhere), and merges matches with
*cross-bank priority-encoder* semantics: every entry carries a global
priority, and results come back lowest-priority-first regardless of
which bank holds them — exactly what a hardware priority encoder over
concatenated match lines would output.

Energy is the sum over banks (all banks fire on a broadcast search);
latency is the worst bank (banks search in parallel, the encoder waits
for the slowest).  Batched searches go through the vectorized kernel in
:mod:`fecam.fabric.batch` and produce bit-identical numbers.
"""

from __future__ import annotations

import time

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from .. import kernels as _kernels
from ..analysis.markers import hot_path
from ..designs import DesignKind
from ..errors import OperationError, TernaryValueError
from ..cam.states import normalize_query, normalize_word
from ..functional.engine import EnergyModel, SearchStats, pack_words
from ..obs.trace import active as trace_active
from ..obs.trace import record_span
from ..obs.trace import stage as trace_stage
from ..planes import TernaryPlanes
from .bank import CamBank
from .batch import fused_count_matches, normalize_queries, pack_queries
from .cache import QueryCache, serve_cached_batch
from .shard import HashSharding, ShardPolicy

__all__ = ["TcamFabric", "FabricEntry", "FabricSearchResult", "FabricStats",
           "BankTelemetry"]


@dataclass
class FabricEntry:
    """One stored word and where the fabric placed it."""

    key: Hashable
    word: str
    priority: float
    bank: int
    row: int
    payload: Any = None
    seq: int = 0  # insertion tiebreak for equal priorities

    @property
    def sort_key(self) -> Tuple[float, int]:
        return (self.priority, self.seq)


@dataclass
class FabricSearchResult:
    """Merged outcome of one fabric-wide search.

    ``energy``/``latency`` are what serving *this* result actually
    cost: a cache hit reports 0.0 for both (no array fired), consistent
    with :attr:`TcamFabric.stats` not growing on hits.

    ``per_bank`` carries the individual :class:`SearchStats` for
    sequential searches; batched searches keep only the (identical)
    aggregates and leave it ``None`` — materializing Q x banks stats
    objects would dominate the vectorized kernel.
    """

    matches: List[FabricEntry]  # global priority order (best first)
    energy: float               # J, summed over all banks
    latency: float              # s, worst bank (banks run in parallel)
    per_bank: Optional[List[SearchStats]] = None
    cached: bool = False

    @property
    def best(self) -> Optional[FabricEntry]:
        return self.matches[0] if self.matches else None

    @property
    def match_keys(self) -> List[Hashable]:
        return [entry.key for entry in self.matches]


@dataclass
class BankTelemetry:
    """Cumulative per-bank counters (step-1 rates drive the paper's
    early-termination energy story at fabric scale)."""

    bank_id: int
    occupancy: int
    searches: int
    energy: float
    rows_examined: int
    step1_eliminated: int

    @property
    def step1_miss_rate(self) -> float:
        if self.rows_examined == 0:
            return 0.0
        return self.step1_eliminated / self.rows_examined


@dataclass
class FabricStats:
    """Aggregate fabric telemetry snapshot."""

    num_banks: int
    rows_per_bank: int
    width: int
    occupancy: int
    searches: int           # queries answered, including cache hits
    array_searches: int     # queries that actually fired the arrays
    energy_total: float
    worst_latency: float
    cache_hits: int
    cache_misses: int
    cache_hit_rate: float
    per_bank: List[BankTelemetry] = field(default_factory=list)


class TcamFabric:
    """Sharded multi-bank TCAM with batch search and optional caching.

    >>> fabric = TcamFabric(banks=4, rows_per_bank=16, width=8)
    >>> entry = fabric.insert("1010XXXX", key="rule-a")
    >>> fabric.search_first("10101111").key
    'rule-a'
    """

    def __init__(self, banks: int = 4, rows_per_bank: int = 1024,
                 width: int = 64, design: DesignKind = DesignKind.DG_1T5, *,
                 sharding: Optional[ShardPolicy] = None,
                 energy_model: Optional[EnergyModel] = None,
                 cache_size: int = 0,
                 arena: Optional[TernaryPlanes] = None):
        if banks < 1:
            raise OperationError("a fabric needs at least one bank")
        self.design = design
        self.width = width
        self.rows_per_bank = rows_per_bank
        # One shared energy model: the circuit tier is evaluated once for
        # the whole fabric, and every bank prices operations identically.
        model = energy_model or EnergyModel(design, width)
        # One contiguous bitplane arena for the whole fabric — banks are
        # zero-copy row-slice views (bank b owns arena rows
        # [b * rows_per_bank, (b + 1) * rows_per_bank)), so the fused
        # batch kernel evaluates every bank in a single pass and the
        # arena's derived-plane cache survives until *any* bank writes.
        # An injected ``arena`` (built with :meth:`TernaryPlanes.over`
        # atop shared memory) lets `fecam.cluster` point many processes
        # at one set of planes; it must match the fabric geometry.
        if arena is not None:
            if arena.rows != banks * rows_per_bank or arena.width != width:
                raise OperationError(
                    f"injected arena is {arena.rows} rows x width "
                    f"{arena.width}, fabric needs {banks * rows_per_bank} "
                    f"rows x width {width}")
            if arena.is_view:
                raise OperationError(
                    "injected arena must own its rows, not be a view")
        self.arena = arena if arena is not None \
            else TernaryPlanes(banks * rows_per_bank, width)
        self.banks: List[CamBank] = [
            CamBank(i, rows_per_bank, width, design, energy_model=model,
                    planes=self.arena.view(i * rows_per_bank,
                                           (i + 1) * rows_per_bank))
            for i in range(banks)]
        self.sharding = sharding or HashSharding(banks)
        if self.sharding.num_banks != banks:
            raise OperationError(
                f"sharding policy covers {self.sharding.num_banks} banks, "
                f"fabric has {banks}")
        self._entries: Dict[Hashable, FabricEntry] = {}
        self._row_entry: List[List[Optional[FabricEntry]]] = [
            [None] * rows_per_bank for _ in range(banks)]
        self._generations: List[int] = [0] * banks
        self._cache: Optional[QueryCache] = (
            QueryCache(cache_size) if cache_size else None)
        self._seq = 0
        self._searches = 0
        self._array_searches = 0
        self._worst_latency = 0.0
        self._step1_eliminated = [0] * banks
        self._rows_examined = [0] * banks

    @classmethod
    def striped(cls, words: Sequence[str], *, banks: int, width: int,
                design: DesignKind = DesignKind.DG_1T5,
                keys: Optional[Sequence[Hashable]] = None,
                payloads: Optional[Sequence[Any]] = None,
                cache_size: int = 0,
                energy_model: Optional[EnergyModel] = None) -> "TcamFabric":
        """Build a fabric sized for ``words``, striped round-robin.

        Priority equals list position, so the cross-bank encoder
        preserves the list's first-match-wins order — the construction
        both the router and classifier rebuild on.
        """
        n = max(len(words), 1)
        fabric = cls(banks=banks, rows_per_bank=(n + banks - 1) // banks,
                     width=width, design=design, cache_size=cache_size,
                     energy_model=energy_model)
        if words:
            fabric.insert_many(words, keys=keys,
                               priorities=list(range(len(words))),
                               payloads=payloads,
                               banks=[i % banks for i in range(len(words))])
        return fabric

    # -- capacity ----------------------------------------------------------------

    @property
    def num_banks(self) -> int:
        return len(self.banks)

    @property
    def capacity(self) -> int:
        return self.num_banks * self.rows_per_bank

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def entry(self, key: Hashable) -> FabricEntry:
        try:
            return self._entries[key]
        except KeyError:
            raise OperationError(f"no entry with key {key!r}") from None

    def entries(self) -> List[FabricEntry]:
        """All entries in global priority order."""
        return sorted(self._entries.values(), key=lambda e: e.sort_key)

    def stored_words(self) -> List[Optional[str]]:
        """Snapshot of every arena row's stored word (None where free).

        One bulk vectorized unpack over the contiguous arena — bank
        ``b``'s row ``r`` sits at index ``b * rows_per_bank + r`` — the
        reader to use for table dumps/replication instead of a per-row
        ``stored_word`` loop over every bank.
        """
        return self.arena.stored_words()

    # -- write lifecycle ---------------------------------------------------------

    def _allocate_key(self, key: Optional[Hashable]) -> Hashable:
        if key is None:
            return ("auto", self._seq)
        return key

    def _resolve_bank(self, key: Hashable, bank: Optional[int]) -> int:
        if bank is None:
            return self.sharding.bank_for(key)
        if not 0 <= bank < self.num_banks:
            raise OperationError(f"bank {bank} out of range")
        return bank

    def insert(self, word: str, key: Optional[Hashable] = None, *,
               priority: Optional[float] = None, payload: Any = None,
               bank: Optional[int] = None) -> FabricEntry:
        """Place a word; returns its :class:`FabricEntry`.

        ``key`` defaults to a unique auto key; ``priority`` defaults to
        insertion order (earlier = higher priority); ``bank`` overrides
        the sharding policy for explicit placement (round-robin loads,
        locality experiments).
        """
        word = normalize_word(word)  # entry.word is always canonical
        key = self._allocate_key(key)
        if key in self._entries:
            raise OperationError(f"duplicate key {key!r}; use update()")
        bank_id = self._resolve_bank(key, bank)
        row = self.banks[bank_id].insert(word)
        entry = FabricEntry(
            key=key, word=word,
            priority=self._seq if priority is None else priority,
            bank=bank_id, row=row, payload=payload, seq=self._seq)
        self._seq += 1
        self._entries[key] = entry
        self._row_entry[bank_id][row] = entry
        self._generations[bank_id] += 1
        return entry

    def insert_many(self, words: Sequence[str],
                    keys: Optional[Sequence[Hashable]] = None, *,
                    priorities: Optional[Sequence[float]] = None,
                    payloads: Optional[Sequence[Any]] = None,
                    banks: Optional[Sequence[int]] = None
                    ) -> List[FabricEntry]:
        """Bulk load through the vectorized packer, one write per bank.

        Orders of magnitude faster than looped :meth:`insert` for large
        tables (rule sets, routing snapshots) — words are grouped by
        owning bank and packed in single NumPy passes.
        """
        n = len(words)
        for name, seq in (("keys", keys), ("priorities", priorities),
                          ("payloads", payloads), ("banks", banks)):
            if seq is not None and len(seq) != n:
                raise OperationError(f"{name} must match words in length")
        # Pack (and thereby validate) every word up front, so the
        # multi-bank insert below cannot fail halfway and leak allocated
        # rows; the planes are sliced per bank to avoid re-packing.
        words = list(words)
        try:
            value, care = pack_words(words, self.width)
        except (TernaryValueError, TypeError):
            # Alias symbols or non-string sequences (insert() accepts
            # both): normalize, then re-pack — reraises real errors.
            words = [normalize_word(w) for w in words]
            value, care = pack_words(words, self.width)
        entries: List[FabricEntry] = []
        batch_keys: set = set()
        by_bank: Dict[int, List[int]] = {}
        for i in range(n):
            key = self._allocate_key(keys[i] if keys else None)
            if key in self._entries or key in batch_keys:
                raise OperationError(f"duplicate key {key!r}; use update()")
            batch_keys.add(key)
            bank_id = self._resolve_bank(
                key, banks[i] if banks is not None else None)
            entry = FabricEntry(
                key=key, word=words[i],
                priority=(self._seq if priorities is None
                          else priorities[i]),
                bank=bank_id, row=-1,
                payload=payloads[i] if payloads is not None else None,
                seq=self._seq)
            self._seq += 1
            entries.append(entry)
            by_bank.setdefault(bank_id, []).append(i)
        for bank_id, indices in by_bank.items():
            if len(indices) > self.banks[bank_id].free_count:
                raise OperationError(
                    f"bank {bank_id} cannot hold {len(indices)} more "
                    f"words ({self.banks[bank_id].free_count} rows free)")
        for bank_id, indices in by_bank.items():
            rows = self.banks[bank_id].insert_many(
                [words[i] for i in indices],
                packed=(value[indices], care[indices]))
            for row, i in zip(rows, indices):
                entries[i].row = row
            self._generations[bank_id] += 1
        for entry in entries:
            self._entries[entry.key] = entry
            self._row_entry[entry.bank][entry.row] = entry
        return entries

    def adopt_entries(self, entries: Sequence[FabricEntry], *,
                      write: bool = True) -> None:
        """Register restored entries at their recorded placements.

        The durable-recovery hook: a fresh fabric adopts a previously
        serialized table without re-running the allocator, so bank/row
        placements come back exactly as recorded.  With ``write=True``
        every word is written through its bank at its fixed row (the
        reshard-record replay path); with ``write=False`` the arena
        content is assumed already restored (the snapshot path loads
        the planes wholesale) and only the bookkeeping — entry maps,
        free pools, sequence counter — is rebuilt.
        """
        if self._entries:
            raise OperationError(
                "adopt_entries needs a fresh (empty) fabric")
        if write:
            words = [entry.word for entry in entries]
            value, care = pack_words(words, self.width)
            by_bank: Dict[int, List[int]] = {}
            for i, entry in enumerate(entries):
                if not 0 <= entry.bank < self.num_banks:
                    raise OperationError(
                        f"entry {entry.key!r} places bank {entry.bank} "
                        f"out of range")
                by_bank.setdefault(entry.bank, []).append(i)
            for bank_id, indices in by_bank.items():
                self.banks[bank_id].place_many(
                    [entries[i].row for i in indices],
                    [words[i] for i in indices],
                    packed=(value[indices], care[indices]))
        else:
            for bank in self.banks:
                bank.sync_free_rows()
        for entry in entries:
            if entry.key in self._entries:
                raise OperationError(
                    f"duplicate key {entry.key!r} in adopted entries")
            self._entries[entry.key] = entry
            self._row_entry[entry.bank][entry.row] = entry
        self._generations = [g + 1 for g in self._generations]
        self._seq = 1 + max((entry.seq for entry in entries), default=-1)

    def delete(self, key: Hashable) -> FabricEntry:
        """Remove an entry; its row returns to the bank's free pool."""
        entry = self.entry(key)
        self.banks[entry.bank].delete(entry.row)
        del self._entries[key]
        self._row_entry[entry.bank][entry.row] = None
        self._generations[entry.bank] += 1
        return entry

    def update(self, key: Hashable, word: str, *,
               payload: Any = None) -> FabricEntry:
        """Rewrite an entry's word in place (bank/row/priority kept)."""
        word = normalize_word(word)
        entry = self.entry(key)
        self.banks[entry.bank].update(entry.row, word)
        entry.word = word
        if payload is not None:
            entry.payload = payload
        self._generations[entry.bank] += 1
        return entry

    # -- search ------------------------------------------------------------------

    def _combine(self, per_bank: List[SearchStats]) -> FabricSearchResult:
        """Merge per-bank stats into one priority-ordered fabric result."""
        energy = 0.0
        latency = 0.0
        matched: List[FabricEntry] = []
        for bank_id, stats in enumerate(per_bank):
            energy += stats.energy
            latency = max(latency, stats.latency)
            self._step1_eliminated[bank_id] += stats.step1_eliminated
            self._rows_examined[bank_id] += stats.rows_searched
            row_entry = self._row_entry[bank_id]
            for row in stats.matches:
                entry = row_entry[row]
                if entry is not None:
                    matched.append(entry)
        matched.sort(key=lambda e: e.sort_key)
        self._searches += 1
        self._array_searches += 1
        self._worst_latency = max(self._worst_latency, latency)
        return FabricSearchResult(matches=matched, energy=energy,
                                  latency=latency, per_bank=per_bank)

    def search(self, query: str, mask: Optional[str] = None, *,
               use_cache: bool = True) -> FabricSearchResult:
        """Broadcast one query to every bank and merge by priority.

        Semantically identical to calling ``bank.cam.search(query, mask)``
        on each bank in order and aggregating — the loop the batched and
        cached paths are tested against — but the query (and mask) are
        packed once and probed into each bank via ``search_packed``
        rather than re-packed per bank.
        """
        query = normalize_query(query)
        if len(query) != self.width:
            raise TernaryValueError(
                f"query length {len(query)} != fabric width {self.width}")
        cache = self._cache if use_cache else None
        generations = tuple(self._generations)
        if cache is not None:
            hit = cache.get((query, mask), generations)
            if hit is not None:
                self._searches += 1
                return self._from_cache(hit)
        q_value = self.banks[0].cam.pack_query(query)
        mask_bits = (self.banks[0].cam.pack_mask(mask)
                     if mask is not None else None)
        per_bank = [bank.cam.search_packed(q_value, mask_bits)
                    for bank in self.banks]
        result = self._combine(per_bank)
        if cache is not None:
            cache.put((query, mask), generations, self._snapshot(result))
        return result

    @staticmethod
    def _snapshot(result: FabricSearchResult) -> FabricSearchResult:
        """Copy stored/served cache entries so a caller mutating a
        result's ``matches`` list cannot corrupt the cached original."""
        return replace(result, matches=list(result.matches))

    @classmethod
    def _from_cache(cls, hit: FabricSearchResult) -> FabricSearchResult:
        # A hit fires no array: report the cost actually paid (none) —
        # including dropping per_bank, whose stats describe work the
        # original search did — so summing result energies agrees with
        # stats.energy_total.
        return replace(hit, matches=list(hit.matches), energy=0.0,
                       latency=0.0, per_bank=None, cached=True)

    def search_first(self, query: str,
                     mask: Optional[str] = None) -> Optional[FabricEntry]:
        """Cross-bank priority-encoder output: the best-priority match."""
        return self.search(query, mask).best

    @hot_path
    def search_batch(self, queries: Sequence[str],
                     mask: Optional[str] = None, *,
                     use_cache: bool = True) -> List[FabricSearchResult]:
        """Vectorized multi-query search over every bank.

        Returns one result per query, in order.  Without a cache this is
        bit-identical (matches, energy, latency, bank counters) to
        ``[self.search(q, mask) for q in queries]``; with a cache,
        duplicate queries inside the batch are served once and counted
        as hits.  Matches are always identical to the loop, but under
        cache *capacity pressure* the batched path can do strictly less
        array work than the loop (which re-fires arrays after LRU
        evictions), so energy/hit telemetry may be lower — it reflects
        the work actually performed.
        """
        queries = normalize_queries(queries, self.width)
        if not queries:
            return []
        mask_bits = (self.banks[0].cam.pack_mask(mask)
                     if mask is not None else None)
        return serve_cached_batch(
            self._cache if use_cache else None, tuple(self._generations),
            queries, key_fn=lambda query: (query, mask),
            compute=lambda unique: self._search_batch_arrays(unique,
                                                             mask_bits),
            snapshot=self._snapshot, from_cache=self._from_cache,
            count_served=self._count_cache_served)

    def _count_cache_served(self) -> None:
        # A cache-served query is still an answered query; only the
        # array-search counter stays put (no bank fired).
        self._searches += 1

    def _search_batch_arrays(self, queries: List[str],
                             mask_bits) -> List[FabricSearchResult]:
        """Fused batch core: one arena-wide kernel + vectorized merge.

        A single :func:`fused_count_matches` pass over the contiguous
        arena replaces the per-bank Python loop of count kernels; the
        per-bank accounting below reproduces exactly the arithmetic of
        ``_combine`` over a loop of per-bank scalar searches — per-query
        energies are elementwise sums in bank order, latencies
        elementwise maxima, and every cam counter accumulates per query
        in sequence — without building a :class:`SearchStats` per
        (query, bank) pair.
        """
        n_q = len(queries)
        q_matrix = pack_queries(queries, self.width)
        # reuse_buffers: the count matrices are fully reduced to
        # per-query scalars before this method returns, so this thread's
        # next batch may recycle them.
        with trace_stage("kernel.fused_count_matches", queries=n_q,
                         banks=self.num_banks,
                         kernel_backend=_kernels.backend_name()):
            counts = fused_count_matches(self.arena, q_matrix, mask_bits,
                                         n_banks=self.num_banks,
                                         rows_per_bank=self.rows_per_bank,
                                         reuse_buffers=True)
        targets = trace_active()
        merge_start = time.perf_counter() if targets else 0.0
        energy = np.zeros(n_q, dtype=np.float64)
        latency = np.zeros(n_q, dtype=np.float64)
        for bank in self.banks:
            cam = bank.cam
            bank_id = bank.bank_id
            rows_searched = int(counts.rows_searched[bank_id])
            step1_eliminated = counts.step1_eliminated[bank_id]
            e1, e2, lat1, lat2, two_step, early = cam._search_constants()
            resolved = (counts.step2_misses[bank_id]
                        + counts.full_matches[bank_id])
            if two_step:
                if early:
                    bank_energy = step1_eliminated * e1 + resolved * e2
                else:
                    bank_energy = np.full(n_q, rows_searched * e2)
                bank_latency = np.where(resolved > 0, lat2, lat1)
            else:
                bank_energy = np.full(n_q, rows_searched * e2)
                bank_latency = np.full(n_q, lat2)
            energy = energy + bank_energy          # bank order == loop order
            np.maximum(latency, bank_latency, out=latency)
            cam.search_count += n_q
            for e in bank_energy.tolist():         # sequential like the loop
                cam.energy_spent += e
            self._step1_eliminated[bank_id] += int(step1_eliminated.sum())
            self._rows_examined[bank_id] += rows_searched * n_q
        # Matches come back grouped by query with global arena rows
        # ascending — bank attribution is a divmod by the bank span.
        matched: List[List[FabricEntry]] = [[] for _ in range(n_q)]
        rows_per_bank = self.rows_per_bank
        row_entry = self._row_entry
        for qi, arena_row in zip(counts.match_q, counts.match_rows):
            bank_id, row = divmod(arena_row, rows_per_bank)
            entry = row_entry[bank_id][row]
            if entry is not None:
                matched[qi].append(entry)
        energy_list = energy.tolist()
        latency_list = latency.tolist()
        results: List[FabricSearchResult] = []
        for i in range(n_q):
            entries = matched[i]
            if len(entries) > 1:
                entries.sort(key=lambda e: e.sort_key)
            results.append(FabricSearchResult(
                matches=entries, energy=energy_list[i],
                latency=latency_list[i]))
        self._searches += n_q
        self._array_searches += n_q
        if latency_list:
            self._worst_latency = max(self._worst_latency,
                                      max(latency_list))
        if targets:
            # Everything after the fused kernel: per-bank accounting,
            # match attribution, and priority-encoder ordering.
            record_span(targets, "fabric.merge", merge_start,
                        time.perf_counter(), queries=n_q)
        return results

    # -- telemetry ---------------------------------------------------------------

    @property
    def stats(self) -> FabricStats:
        per_bank = [
            BankTelemetry(
                bank_id=bank.bank_id, occupancy=bank.occupancy,
                searches=bank.cam.search_count,
                energy=bank.cam.energy_spent,
                rows_examined=self._rows_examined[bank.bank_id],
                step1_eliminated=self._step1_eliminated[bank.bank_id])
            for bank in self.banks]
        return FabricStats(
            num_banks=self.num_banks, rows_per_bank=self.rows_per_bank,
            width=self.width, occupancy=self.occupancy,
            searches=self._searches, array_searches=self._array_searches,
            energy_total=sum(bank.cam.energy_spent for bank in self.banks),
            worst_latency=self._worst_latency,
            # `is not None`, not truthiness: QueryCache has __len__, so
            # an empty-but-consulted cache is falsy yet has counters.
            cache_hits=self._cache.hits if self._cache is not None else 0,
            cache_misses=(self._cache.misses
                          if self._cache is not None else 0),
            cache_hit_rate=(self._cache.hit_rate
                            if self._cache is not None else 0.0),
            per_bank=per_bank)

    def __repr__(self) -> str:
        cache = (f"{len(self._cache)}/{self._cache.capacity}"
                 if self._cache is not None else "off")
        return (f"<TcamFabric banks={self.num_banks} "
                f"rows_per_bank={self.rows_per_bank} width={self.width} "
                f"design={self.design} "
                f"occupancy={self.occupancy}/{self.capacity} "
                f"cache={cache}>")
