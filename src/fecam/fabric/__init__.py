"""Sharded multi-bank TCAM fabric: the system tier above single arrays.

The circuit tier calibrates *one* array; this package turns calibrated
arrays into a search *engine*: banks with row lifecycle
(:mod:`~fecam.fabric.bank`), key-to-bank placement
(:mod:`~fecam.fabric.shard`), the fabric itself with cross-bank
priority-encoder merge (:mod:`~fecam.fabric.fabric`), vectorized
multi-query batch search (:mod:`~fecam.fabric.batch`), and an LRU
query-result cache invalidated by per-bank write generations
(:mod:`~fecam.fabric.cache`).
"""

from .bank import CamBank
from .batch import (BankBatchCounts, FusedBatchCounts, batch_count_matches,
                    fused_count_matches, normalize_queries, pack_queries,
                    search_packed_batch)
from .cache import QueryCache
from .fabric import (BankTelemetry, FabricEntry, FabricSearchResult,
                     FabricStats, TcamFabric)
from .shard import HashSharding, RangeSharding, ShardPolicy

__all__ = [
    "TcamFabric", "FabricEntry", "FabricSearchResult", "FabricStats",
    "BankTelemetry",
    "CamBank",
    "ShardPolicy", "HashSharding", "RangeSharding",
    "QueryCache",
    "normalize_queries", "pack_queries", "search_packed_batch",
    "batch_count_matches", "fused_count_matches",
    "BankBatchCounts", "FusedBatchCounts",
]
