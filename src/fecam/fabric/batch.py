"""The fabric's performance core: the fused cross-bank batch kernel.

A looped ``TernaryCAM.search()`` pays Python-level cost per query
(normalization, packing, small-array dispatch).  Here Q queries are
packed once into a ``(Q, n_chunks)`` uint64 matrix and evaluated
against a whole :class:`~fecam.planes.TernaryPlanes` arena — every bank
of a fabric in one pass, with per-bank attribution recovered from the
global row index — instead of one Python iteration per bank.

The kernel mirrors the paper's two-step search in software and leans on
the arena's *cached derived planes* (:meth:`TernaryPlanes.derived`,
invalidated by the write-generation counter, so a quiescent table never
recompresses anything between batches):

* **Step 1 (even positions)** uses the identity ``(q ^ v) & c == 0 <=>
  q & c == v & c`` on bit-compressed planes: the 32 even bits of each
  64-bit chunk packed into a uint32 (a software ``pext``).  Two
  interchangeable evaluation strategies produce identical counts:

  - ``"table"`` — the memoized 256-entry *candidate index*
    (:meth:`TernaryPlanes.step1_index`) maps each query's low
    compressed byte to the short list of rows consistent with it; the
    kernel gathers only those candidates and finishes the comparison
    exactly.  For typical care densities this touches a few percent of
    the Q x M pairs and never materializes a dense decision matrix.
  - ``"dense"`` — blockwise broadcasted compare over every (query,
    row) pair; the fallback for masked searches (the global masking
    register changes the planes per search, so nothing memoizes),
    index-defeating content (wildcard-heavy low bytes), and tiny
    batches that would not amortize an index build.

* **Step 2 (odd positions)** is only evaluated for pairs that survive
  step 1 — typically a vanishing fraction, the same statistic behind
  the paper's 90 % step-1 miss rate and early-termination energy win.

All counts are integers, per-bank counts segment the same boolean
decisions the per-bank kernels produced, and every energy or latency
figure is derived downstream through the same arithmetic as the scalar
path — so fused batched results are bit-identical to a sequential loop
of per-bank scalar searches (enforced by the equivalence suites).
"""

from __future__ import annotations

import threading

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .. import kernels as _kernels
from ..analysis.markers import hot_path
from ..errors import TernaryValueError
from ..cam.states import normalize_query
from ..functional.engine import SearchStats, TernaryCAM, pack_words
from ..planes import (DerivedPlanes, Step1Index, TernaryPlanes,
                      build_step1_index, compress_even, masked_derived)

__all__ = ["normalize_queries", "pack_queries", "search_packed_batch",
           "batch_count_matches", "fused_count_matches", "BankBatchCounts",
           "FusedBatchCounts"]

_ORD_0, _ORD_1 = ord("0"), ord("1")

#: Queries per broadcast block — bounds the (block, rows) scratch
#: matrices to a few MB so huge batches stay cache-friendly.
DEFAULT_BLOCK = 512

#: Smallest batch for which an uncached step-1 candidate index is worth
#: building; smaller batches reuse a cached index but never build one.
TABLE_MIN_QUERIES = 32

#: Dense-scratch / candidate-gather size bounds (elements / pairs).
_DENSE_MAX_ELEMS = 8 << 20
_SPARSE_MAX_PAIRS = 16 << 20

# Back-compat alias (pre-planes callers imported the compactor from here).
_compress_even = compress_even


def normalize_queries(queries: Sequence[str], width: int) -> List[str]:
    """Validate/canonicalize a batch of binary queries, vectorized.

    Canonical '0'/'1' strings are accepted in one NumPy pass; anything
    else (ints, '*' aliases, lowercase) falls back to the per-query
    :func:`fecam.cam.states.normalize_query`, which raises the same
    errors a sequential loop of ``search()`` calls would.
    """
    queries = list(queries)
    try:
        if all(len(q) == width for q in queries):
            buf = "".join(queries).encode("ascii")
            sym = np.frombuffer(buf, dtype=np.uint8)
            if ((sym == _ORD_0) | (sym == _ORD_1)).all():
                return queries  # already canonical
    except TypeError:
        pass  # non-string entries take the slow path below
    except UnicodeEncodeError:
        pass
    normalized = [normalize_query(q) for q in queries]
    for q in normalized:
        if len(q) != width:
            raise TernaryValueError(
                f"query length {len(q)} != array width {width}")
    return normalized


def pack_queries(queries: Sequence[str], width: int) -> np.ndarray:
    """Pack canonical binary queries into a ``(Q, n_chunks)`` matrix."""
    values, _ = pack_words(list(queries), width)
    return values


@dataclass
class BankBatchCounts:
    """Raw per-query match statistics of one bank for a query batch.

    ``match_q``/``match_rows`` are parallel flat lists of (query index,
    matching row) pairs, grouped by query in ascending row order — the
    order a per-query priority encoder would emit.
    """

    rows_searched: int
    step1_eliminated: np.ndarray  # (Q,) int64
    step2_misses: np.ndarray      # (Q,) int64
    full_matches: np.ndarray      # (Q,) int64
    match_q: List[int]
    match_rows: List[int]


@dataclass
class FusedBatchCounts:
    """Per-(bank, query) match statistics of one arena-wide kernel pass.

    ``match_rows`` holds *global arena* row indices (bank ``row //
    rows_per_bank``, local row ``row % rows_per_bank``), grouped by
    query with rows ascending — which, rows being contiguous per bank,
    is exactly the bank-major order a loop of per-bank kernels emits.
    """

    rows_searched: np.ndarray     # (B,) int64 — valid rows per bank
    step1_eliminated: np.ndarray  # (B, Q) int64
    step2_misses: np.ndarray      # (B, Q) int64
    full_matches: np.ndarray      # (B, Q) int64
    match_q: List[int]
    match_rows: List[int]
    kernel: str                   # "table" | "dense" | "mixed" (telemetry)


@hot_path
def fused_count_matches(planes: TernaryPlanes, q_values: np.ndarray,
                        mask_bits: Optional[np.ndarray] = None, *,
                        n_banks: int = 1,
                        rows_per_bank: Optional[int] = None,
                        block: int = DEFAULT_BLOCK,
                        kernel: str = "auto",
                        reuse_cache: bool = True,
                        reuse_buffers: bool = False) -> FusedBatchCounts:
    """Two-step vectorized match kernel over a whole bitplane arena.

    Produces the exact integer counts per (bank, query) that a loop of
    per-bank ``search_packed`` calls would.  No energy accounting
    happens here — callers feed these counts through the same formulas
    as the scalar path.

    ``kernel`` selects the evaluation strategy: ``"auto"`` (the active
    :mod:`fecam.kernels` backend; under the NumPy backend, candidate
    index when available/worthwhile, dense otherwise), ``"dense"`` or
    ``"table"`` (force the named NumPy step-1 strategy), or
    ``"compiled"`` (force the compiled backend — raises
    :class:`~fecam.errors.KernelUnavailableError` instead of falling
    back when it cannot be built).  ``reuse_cache=False`` recomputes
    every derived plane from scratch — the cache-free reference used by
    the coherence tests and the benchmark's pre-planes baseline.

    ``reuse_buffers=True`` serves the count matrices from a
    thread-local scratch arena instead of fresh allocations; the caller
    must finish consuming the returned counts before its thread's next
    ``reuse_buffers`` call (the dispatcher/fabric serve path does —
    results are reduced to per-query stats before the next batch).
    """
    q_values = np.asarray(q_values, dtype=np.uint64)
    n_chunks = planes.n_chunks
    if q_values.ndim != 2 or q_values.shape[1] != n_chunks:
        raise TernaryValueError(
            f"packed query matrix must have shape (Q, {n_chunks}), "
            f"got {q_values.shape}")
    if mask_bits is not None:
        mask_bits = np.asarray(mask_bits, dtype=np.uint64)
        if mask_bits.shape != (n_chunks,):
            raise TernaryValueError("mask chunk vector has wrong shape")
    if block < 1:
        raise TernaryValueError("block size must be positive")
    if kernel not in ("auto", "dense", "table", "compiled"):
        raise TernaryValueError(
            f"kernel must be 'auto', 'dense', 'table', or 'compiled', "
            f"got {kernel!r}")
    if rows_per_bank is None:
        rows_per_bank = planes.rows // max(n_banks, 1)
    if n_banks < 1 or n_banks * rows_per_bank != planes.rows:
        raise TernaryValueError(
            f"{n_banks} banks x {rows_per_bank} rows do not tile an arena "
            f"of {planes.rows} rows")
    n_queries = q_values.shape[0]

    # Backend dispatch: a forced "compiled" is strict, "auto" defers to
    # the registry (which may resolve to None = NumPy).
    compiled = None
    if kernel == "compiled":
        compiled = _kernels.compiled_kernel()
    elif kernel == "auto":
        compiled = _kernels.active_kernel()

    # Derived planes: memoized on the arena's write generation for the
    # unmasked path, ad hoc for masked searches and cache-free runs.
    # Both backends use the step-1 candidate index when it exists: the
    # compiled kernel has a sparse variant mirroring the NumPy "table"
    # strategy.
    index: Optional[Step1Index] = None
    if mask_bits is not None:
        derived = masked_derived(planes, mask_bits)
    elif reuse_cache:
        derived = planes.derived()
        if kernel != "dense":
            index = planes.step1_index(
                build=(kernel in ("table", "compiled")
                       or n_queries >= TABLE_MIN_QUERIES))
    else:
        derived = planes.build_derived()
        if kernel == "table":
            index = build_step1_index(derived)
    if kernel == "dense":
        index = None

    n_rows = derived.rows_searched
    if n_banks == 1:
        seg_counts = np.array([n_rows], dtype=np.int64)
        bank_of = None
    else:
        # The bank segmentation depends only on (derived generation,
        # bank tiling): memoize it on the derived object so a
        # quiescent serve loop recomputes nothing per batch.
        seg_cache = derived.__dict__.get("_seg_cache")
        if seg_cache is None or seg_cache[0] != (n_banks, rows_per_bank):
            bank_of = derived.valid_rows // rows_per_bank
            seg_counts = np.bincount(bank_of, minlength=n_banks)
            derived.__dict__["_seg_cache"] = \
                ((n_banks, rows_per_bank), bank_of, seg_counts)
        else:
            _, bank_of, seg_counts = seg_cache
    if n_rows == 0 or n_queries == 0:
        return FusedBatchCounts(seg_counts,
                                np.zeros((n_banks, n_queries), np.int64),
                                np.zeros((n_banks, n_queries), np.int64),
                                np.zeros((n_banks, n_queries), np.int64),
                                [], [], kernel="dense")

    if compiled is not None:
        # The compiled backend compresses queries in C and writes every
        # count cell (no zeroing needed).
        step1, step2, full = _count_buffers(n_banks, n_queries,
                                            zero=False, reuse=reuse_buffers)
        qe, qo = compiled.compress_queries(q_values)
        match_q, match_rows = compiled.fused(
            derived, index, bank_of, seg_counts, qe, qo,
            step1, step2, full)
        return FusedBatchCounts(seg_counts, step1, step2, full,
                                match_q, match_rows, kernel="compiled")

    step1, step2, full = _count_buffers(n_banks, n_queries,
                                        zero=True, reuse=reuse_buffers)
    match_q: List[int] = []
    match_rows: List[int] = []
    # Queries compressed once, in both orientations the paths need.
    qe = compress_even(q_values)                        # (Q, C) row-major
    qo = compress_even(q_values >> np.uint64(1))
    qe_cm = np.ascontiguousarray(qe.T)                  # (C, Q) chunk-major
    q8 = ((qe[:, 0] & np.uint32(0xFF)).astype(np.uint8)
          if index is not None else None)

    state = _KernelState(derived=derived, index=index, n_banks=n_banks,
                         bank_of=bank_of, seg_counts=seg_counts,
                         qe=qe, qo=qo, qe_cm=qe_cm, q8=q8,
                         step1=step1, step2=step2, full=full,
                         match_q=match_q, match_rows=match_rows)

    n_block = max(1, min(block, _DENSE_MAX_ELEMS // max(n_rows, 1)))
    used = set()
    dense = _DenseScratch()
    for start in range(0, n_queries, n_block):
        stop = min(start + n_block, n_queries)
        if index is not None:
            xi = q8[start:stop].astype(np.intp)
            pair_counts = index.indptr[xi + 1] - index.indptr[xi]
            if int(pair_counts.sum()) <= _SPARSE_MAX_PAIRS:
                _sparse_block(state, start, stop, xi, pair_counts)
                used.add("table")
                continue
        _dense_block(state, start, stop, dense)
        used.add("dense")
    label = used.pop() if len(used) == 1 else "mixed"
    return FusedBatchCounts(seg_counts, step1, step2, full,
                            match_q, match_rows, kernel=label)


class _CountScratch(threading.local):
    """Thread-local arena backing the (B, Q) count matrices.

    One flat int64 buffer, grown geometrically and sliced into the
    three contiguous (B, Q) views per call — so a steady-state serve
    loop allocates nothing per batch.  Thread-local because the fabric
    read lock admits concurrent searchers; per-thread buffers make
    reuse race-free without any further locking.
    """

    def __init__(self) -> None:
        self.buf = np.empty(0, dtype=np.int64)

    def counts(self, n_banks: int, n_queries: int
               ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        cells = n_banks * n_queries
        if self.buf.size < 3 * cells:
            self.buf = np.empty(max(3 * cells, 2 * self.buf.size),
                                dtype=np.int64)
        shape = (n_banks, n_queries)
        return (self.buf[:cells].reshape(shape),
                self.buf[cells:2 * cells].reshape(shape),
                self.buf[2 * cells:3 * cells].reshape(shape))


_count_scratch = _CountScratch()


@hot_path
def _count_buffers(n_banks: int, n_queries: int, *, zero: bool,
                   reuse: bool) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The (B, Q) step1/step2/full matrices — recycled when allowed."""
    if not reuse:
        alloc = np.zeros if zero else np.empty
        return (alloc((n_banks, n_queries), dtype=np.int64),
                alloc((n_banks, n_queries), dtype=np.int64),
                alloc((n_banks, n_queries), dtype=np.int64))
    step1, step2, full = _count_scratch.counts(n_banks, n_queries)
    if zero:
        step1.fill(0)
        step2.fill(0)
        full.fill(0)
    return step1, step2, full


@dataclass
class _KernelState:
    """Shared inputs/outputs threaded through the per-block passes."""

    derived: DerivedPlanes
    index: Optional[Step1Index]
    n_banks: int
    bank_of: Optional[np.ndarray]   # (M,) bank of each valid row (B > 1)
    seg_counts: np.ndarray          # (B,) valid rows per bank
    qe: np.ndarray                  # (Q, C) compressed even query bits
    qo: np.ndarray                  # (Q, C) compressed odd query bits
    qe_cm: np.ndarray               # (C, Q) chunk-major
    q8: Optional[np.ndarray]        # (Q,) low even byte per query
    step1: np.ndarray               # (B, Q) outputs
    step2: np.ndarray
    full: np.ndarray
    match_q: List[int]
    match_rows: List[int]


class _DenseScratch:
    """Lazily-allocated (block, rows) buffers reused across blocks."""

    def __init__(self) -> None:
        self.and_buf = self.miss_buf = self.chunk_buf = None

    def get(self, n_q: int, n_rows: int, n_chunks: int):
        if self.and_buf is None or self.and_buf.shape[0] < n_q:
            self.and_buf = np.empty((n_q, n_rows), dtype=np.uint32)
            self.miss_buf = np.empty((n_q, n_rows), dtype=bool)
            self.chunk_buf = (np.empty((n_q, n_rows), dtype=bool)
                              if n_chunks > 1 else None)
        return (self.and_buf[:n_q], self.miss_buf[:n_q],
                None if self.chunk_buf is None else self.chunk_buf[:n_q])


@hot_path
def _pair_bincount(state: _KernelState, q_idx: np.ndarray,
                   col_idx: np.ndarray, n_q: int) -> np.ndarray:
    """Histogram survivor pairs into (B, n_q) per-bank counts."""
    if state.n_banks == 1:
        return np.bincount(q_idx, minlength=n_q)[None, :]
    comb = q_idx * state.n_banks + state.bank_of[col_idx]
    return np.bincount(comb, minlength=n_q * state.n_banks) \
        .reshape(n_q, state.n_banks).T


@hot_path
def _finish_step2(state: _KernelState, start: int, stop: int,
                  q_idx: np.ndarray, col_idx: np.ndarray) -> None:
    """Step 2 (odd positions) for step-1 survivor pairs + bookkeeping.

    Shared by both step-1 strategies: identical pair streams in, so
    identical counts and identically-ordered matches out.
    """
    d = state.derived
    n_q = stop - start
    qo_block = state.qo[start:stop]
    if d.co32.shape[1] == 1:
        miss2 = (qo_block[q_idx, 0] & d.co32[col_idx, 0]) \
            != d.vo32[col_idx, 0]
    else:
        miss2 = ((qo_block[q_idx] & d.co32[col_idx])
                 != d.vo32[col_idx]).any(axis=1)
    state.step2[:, start:stop] = _pair_bincount(
        state, q_idx[miss2], col_idx[miss2], n_q)
    hit = ~miss2
    q_hit, col_hit = q_idx[hit], col_idx[hit]
    state.full[:, start:stop] = _pair_bincount(state, q_hit, col_hit, n_q)
    # Pairs stay grouped by query with global rows ascending —
    # bank-major priority-encoder order within each query.
    state.match_q.extend((q_hit + start).tolist())
    state.match_rows.extend(d.valid_rows[col_hit].tolist())


@hot_path
def _sparse_block(state: _KernelState, start: int, stop: int,
                  xi: np.ndarray, pair_counts: np.ndarray) -> None:
    """Step 1 via the candidate index: gather + exact check, no dense
    (query x row) matrix ever materializes."""
    d = state.derived
    index = state.index
    n_q = stop - start
    total = int(pair_counts.sum())
    if total == 0:
        state.step1[:, start:stop] = state.seg_counts[:, None]
        return
    # Expand the ragged candidate lists into flat positions into the
    # index: pos[k] walks each query's contiguous candidate slice.
    ends = np.cumsum(pair_counts)
    pos = np.arange(total, dtype=np.int64) + np.repeat(
        index.indptr[xi] - (ends - pair_counts), pair_counts)
    # Chunk-0 exact step-1 decision on the candidates only, against the
    # pre-gathered index-order planes (near-sequential reads).
    qe_pairs = np.repeat(state.qe[start:stop, 0], pair_counts)
    ok = (qe_pairs & index.ce0_at[pos]) == index.ve0_at[pos]
    q_idx = np.repeat(np.arange(n_q), pair_counts)[ok]
    col_idx = index.indices[pos[ok]]
    if d.ce32.shape[1] > 1:  # finish the remaining chunks (rare pairs)
        ok = ((state.qe[start:stop][q_idx, 1:] & d.ce32[col_idx, 1:])
              == d.ve32[col_idx, 1:]).all(axis=1)
        q_idx, col_idx = q_idx[ok], col_idx[ok]
    survivors = _pair_bincount(state, q_idx, col_idx, n_q)
    state.step1[:, start:stop] = state.seg_counts[:, None] - survivors
    _finish_step2(state, start, stop, q_idx, col_idx)


@hot_path
def _dense_block(state: _KernelState, start: int, stop: int,
                 scratch: _DenseScratch) -> None:
    """Step 1 via blockwise broadcasted compare over every pair."""
    d = state.derived
    n_q = stop - start
    n_rows = d.rows_searched
    n_chunks = d.ce32_cm.shape[0]
    abuf, mbuf, cbuf = scratch.get(n_q, n_rows, n_chunks)
    for c in range(n_chunks):
        np.bitwise_and(state.qe_cm[c, start:stop, None],
                       d.ce32_cm[c][None, :], out=abuf)
        if c == 0:
            np.not_equal(abuf, d.ve32_cm[c][None, :], out=mbuf)
        else:
            np.not_equal(abuf, d.ve32_cm[c][None, :], out=cbuf)
            np.logical_or(mbuf, cbuf, out=mbuf)
    if state.n_banks == 1:
        miss_counts = np.count_nonzero(mbuf, axis=1)
        state.step1[0, start:stop] = miss_counts
    else:
        # Valid rows ascend, so each bank's rows form one contiguous
        # column segment: segment-sum the misses per (query, bank).
        nonempty = np.flatnonzero(state.seg_counts)
        seg_starts = np.searchsorted(state.bank_of, nonempty)
        per_seg = np.add.reduceat(mbuf.view(np.int8), seg_starts,
                                  axis=1, dtype=np.int64)
        state.step1[nonempty[:, None], np.arange(start, stop)[None, :]] = \
            per_seg.T
        miss_counts = per_seg.sum(axis=1)
    # Step 2 only for queries with step-1 survivors (the early-
    # termination win): scan just the rows that stayed live.
    live_q = np.nonzero(miss_counts < n_rows)[0]
    if live_q.size == 0:
        return
    local_q, col_idx = np.nonzero(~mbuf[live_q])
    _finish_step2(state, start, stop, live_q[local_q], col_idx)


@hot_path
def batch_count_matches(cam: TernaryCAM, q_values: np.ndarray,
                        mask_bits: Optional[np.ndarray] = None, *,
                        block: int = DEFAULT_BLOCK,
                        kernel: str = "auto",
                        reuse_cache: bool = True) -> BankBatchCounts:
    """Two-step vectorized match kernel for one array.

    Produces the exact integer counts a loop of ``search_packed`` calls
    would: step-1 eliminations, step-2 misses, and full matches per
    query, plus every matching row.  No energy accounting happens here —
    callers (``search_packed_batch``, ``TcamFabric.search_batch``) feed
    these counts through the same formulas as the scalar path.

    This is the one-bank specialization of :func:`fused_count_matches`;
    ``kernel``/``reuse_cache`` forward to it.
    """
    fused = fused_count_matches(cam.planes, q_values, mask_bits,
                                n_banks=1, block=block, kernel=kernel,
                                reuse_cache=reuse_cache)
    return BankBatchCounts(int(fused.rows_searched[0]),
                           fused.step1_eliminated[0],
                           fused.step2_misses[0], fused.full_matches[0],
                           fused.match_q, fused.match_rows)


def search_packed_batch(cam: TernaryCAM, q_values: np.ndarray,
                        mask_bits: Optional[np.ndarray] = None, *,
                        block: int = DEFAULT_BLOCK) -> List[SearchStats]:
    """Search Q packed queries against one array.

    Returns one :class:`SearchStats` per query, in order, with exactly
    the numbers (matches, energy, latency, counters) a sequential loop
    of ``cam.search_packed(q)`` calls would produce.
    """
    q_values = np.asarray(q_values, dtype=np.uint64)
    counts = batch_count_matches(cam, q_values, mask_bits, block=block)
    step1 = counts.step1_eliminated.tolist()
    step2 = counts.step2_misses.tolist()
    match_q, match_rows = counts.match_q, counts.match_rows
    n_hits = len(match_q)
    finish = cam._finish_search
    results: List[SearchStats] = []
    ptr = 0
    for i in range(q_values.shape[0]):
        rows: List[int] = []
        while ptr < n_hits and match_q[ptr] == i:
            rows.append(match_rows[ptr])
            ptr += 1
        results.append(finish(rows, counts.rows_searched,
                              step1[i], step2[i]))
    return results
