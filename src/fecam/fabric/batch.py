"""The fabric's performance core: vectorized multi-query search.

A looped ``TernaryCAM.search()`` pays Python-level cost per query
(normalization, packing, small-array dispatch).  Here Q queries are
packed once into a ``(Q, n_chunks)`` uint64 matrix and each bank's
Q x M match decisions are evaluated in broadcasted NumPy expressions;
only per-query bookkeeping stays in Python.

The kernel mirrors the paper's two-step search in software:

* **Step 1 (even positions)** runs for every query x row pair — but on
  *bit-compressed* planes: the 32 even bits of each 64-bit chunk are
  packed into a uint32 (a software ``pext``), halving memory traffic
  for the quadratic phase.
* **Step 2 (odd positions)** is only evaluated for pairs that survive
  step 1 — typically a vanishing fraction, the same statistic behind
  the paper's 90 % step-1 miss rate and early-termination energy win.

The step-1 test uses the identity ``(q ^ v) & c == 0  <=>  q & c ==
v & c``: per-row ``v & c`` is precomputed, so the inner loop is one AND
and one compare per pair.  All counts are integers and every energy or
latency figure is derived through the same arithmetic as the scalar
path, so batched results are bit-identical to a sequential loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import TernaryValueError
from ..cam.states import normalize_query
from ..functional.engine import SearchStats, TernaryCAM, pack_words

__all__ = ["normalize_queries", "pack_queries", "search_packed_batch",
           "batch_count_matches", "BankBatchCounts"]

_ORD_0, _ORD_1 = ord("0"), ord("1")

#: Queries per broadcast block — bounds the (block, rows) scratch
#: matrices to a few MB so huge batches stay cache-friendly.
DEFAULT_BLOCK = 512

_EVEN_BITS = np.uint64(0x5555555555555555)


def _compress_even(x: np.ndarray) -> np.ndarray:
    """Software ``pext(x, 0x5555...)``: gather the 32 even bits of each
    uint64 into a uint32 (classic masked-shift bit compaction)."""
    x = x & _EVEN_BITS
    for shift, mask in ((1, 0x3333333333333333), (2, 0x0F0F0F0F0F0F0F0F),
                        (4, 0x00FF00FF00FF00FF), (8, 0x0000FFFF0000FFFF),
                        (16, 0x00000000FFFFFFFF)):
        x = (x | (x >> np.uint64(shift))) & np.uint64(mask)
    return x.astype(np.uint32)


def normalize_queries(queries: Sequence[str], width: int) -> List[str]:
    """Validate/canonicalize a batch of binary queries, vectorized.

    Canonical '0'/'1' strings are accepted in one NumPy pass; anything
    else (ints, '*' aliases, lowercase) falls back to the per-query
    :func:`fecam.cam.states.normalize_query`, which raises the same
    errors a sequential loop of ``search()`` calls would.
    """
    queries = list(queries)
    try:
        if all(len(q) == width for q in queries):
            buf = "".join(queries).encode("ascii")
            sym = np.frombuffer(buf, dtype=np.uint8)
            if ((sym == _ORD_0) | (sym == _ORD_1)).all():
                return queries  # already canonical
    except TypeError:
        pass  # non-string entries take the slow path below
    except UnicodeEncodeError:
        pass
    normalized = [normalize_query(q) for q in queries]
    for q in normalized:
        if len(q) != width:
            raise TernaryValueError(
                f"query length {len(q)} != array width {width}")
    return normalized


def pack_queries(queries: Sequence[str], width: int) -> np.ndarray:
    """Pack canonical binary queries into a ``(Q, n_chunks)`` matrix."""
    values, _ = pack_words(list(queries), width)
    return values


@dataclass
class BankBatchCounts:
    """Raw per-query match statistics of one bank for a query batch.

    ``match_q``/``match_rows`` are parallel flat lists of (query index,
    matching row) pairs, grouped by query in ascending row order — the
    order a per-query priority encoder would emit.
    """

    rows_searched: int
    step1_eliminated: np.ndarray  # (Q,) int64
    step2_misses: np.ndarray      # (Q,) int64
    full_matches: np.ndarray      # (Q,) int64
    match_q: List[int]
    match_rows: List[int]


def batch_count_matches(cam: TernaryCAM, q_values: np.ndarray,
                        mask_bits: Optional[np.ndarray] = None, *,
                        block: int = DEFAULT_BLOCK) -> BankBatchCounts:
    """Two-step vectorized match kernel for one array.

    Produces the exact integer counts a loop of ``search_packed`` calls
    would: step-1 eliminations, step-2 misses, and full matches per
    query, plus every matching row.  No energy accounting happens here —
    callers (``search_packed_batch``, ``TcamFabric.search_batch``) feed
    these counts through the same formulas as the scalar path.
    """
    q_values = np.asarray(q_values, dtype=np.uint64)
    n_chunks = cam._n_chunks
    if q_values.ndim != 2 or q_values.shape[1] != n_chunks:
        raise TernaryValueError(
            f"packed query matrix must have shape (Q, {n_chunks}), "
            f"got {q_values.shape}")
    if mask_bits is not None:
        mask_bits = np.asarray(mask_bits, dtype=np.uint64)
        if mask_bits.shape != (n_chunks,):
            raise TernaryValueError("mask chunk vector has wrong shape")
    if block < 1:
        raise TernaryValueError("block size must be positive")
    n_queries = q_values.shape[0]

    # Compact to valid rows once: erased/never-written rows can neither
    # match nor contribute to step counts (their care planes are zero
    # and the scalar path filters them by the valid vector anyway).
    valid_rows = np.nonzero(cam._valid)[0]
    rows_searched = int(valid_rows.shape[0])
    step1 = np.zeros(n_queries, dtype=np.int64)
    step2 = np.zeros(n_queries, dtype=np.int64)
    full = np.zeros(n_queries, dtype=np.int64)
    match_q: List[int] = []
    match_rows: List[int] = []
    if rows_searched == 0 or n_queries == 0:
        return BankBatchCounts(rows_searched, step1, step2, full,
                               match_q, match_rows)

    value = cam._value[valid_rows]
    care = cam._care[valid_rows]
    care_even = care & cam._even_mask
    care_odd = care & cam._odd_mask
    if mask_bits is not None:
        care_even = care_even & mask_bits
        care_odd = care_odd & mask_bits
    # Compressed step-1 planes: q & ce == v & ce  <=>  step-1 survival.
    # Stored chunk-major ((C, M) / (C, Q), contiguous per chunk) so the
    # block loop below streams 2-D slices.
    ce32 = np.ascontiguousarray(_compress_even(care_even).T)   # (C, M)
    ve32 = np.ascontiguousarray(_compress_even(value & care_even).T)
    co32 = _compress_even(care_odd >> np.uint64(1))            # (M, C)
    vo32 = _compress_even((value & care_odd) >> np.uint64(1))
    qe32 = np.ascontiguousarray(_compress_even(q_values).T)    # (C, Q)
    qo32 = _compress_even(q_values >> np.uint64(1))            # (Q, C)

    single = n_chunks == 1
    # Scratch is fixed 2-D (block, rows) regardless of word width: the
    # step-1 miss plane accumulates chunk by chunk instead of
    # materializing a (block, rows, chunks) broadcast tensor.
    n_block = min(block, n_queries)
    and_buf = np.empty((n_block, rows_searched), dtype=np.uint32)
    miss_buf = np.empty((n_block, rows_searched), dtype=bool)
    chunk_buf = (np.empty((n_block, rows_searched), dtype=bool)
                 if n_chunks > 1 else None)

    for start in range(0, n_queries, block):
        stop = min(start + block, n_queries)
        n_q = stop - start
        abuf = and_buf[:n_q]
        mbuf = miss_buf[:n_q]
        for c in range(n_chunks):
            np.bitwise_and(qe32[c, start:stop, None], ce32[c][None, :],
                           out=abuf)
            if c == 0:
                np.not_equal(abuf, ve32[c][None, :], out=mbuf)
            else:
                cbuf = chunk_buf[:n_q]
                np.not_equal(abuf, ve32[c][None, :], out=cbuf)
                np.logical_or(mbuf, cbuf, out=mbuf)
        miss1_counts = np.count_nonzero(mbuf, axis=1)
        step1[start:stop] = miss1_counts
        # Step 2, only for step-1 survivors (the early-termination win):
        # scan just the queries that still have live rows.
        live_q = np.nonzero(miss1_counts < rows_searched)[0]
        if live_q.size == 0:
            continue  # every row eliminated in step 1 for every query
        local_q, row_idx = np.nonzero(~mbuf[live_q])
        q_idx = live_q[local_q]
        if single:
            miss2 = (qo32[start:stop, 0][q_idx] & co32[row_idx, 0]) \
                != vo32[row_idx, 0]
        else:
            miss2 = ((qo32[start:stop][q_idx] & co32[row_idx])
                     != vo32[row_idx]).any(axis=1)
        step2[start:stop] = np.bincount(q_idx[miss2], minlength=n_q)
        hit = ~miss2
        full[start:stop] = np.bincount(q_idx[hit], minlength=n_q)
        # nonzero is row-major: hits stay grouped by query, rows
        # ascending — priority-encoder order within the bank.
        match_q.extend((q_idx[hit] + start).tolist())
        match_rows.extend(valid_rows[row_idx[hit]].tolist())
    return BankBatchCounts(rows_searched, step1, step2, full,
                           match_q, match_rows)


def search_packed_batch(cam: TernaryCAM, q_values: np.ndarray,
                        mask_bits: Optional[np.ndarray] = None, *,
                        block: int = DEFAULT_BLOCK) -> List[SearchStats]:
    """Search Q packed queries against one array.

    Returns one :class:`SearchStats` per query, in order, with exactly
    the numbers (matches, energy, latency, counters) a sequential loop
    of ``cam.search_packed(q)`` calls would produce.
    """
    q_values = np.asarray(q_values, dtype=np.uint64)
    counts = batch_count_matches(cam, q_values, mask_bits, block=block)
    step1 = counts.step1_eliminated.tolist()
    step2 = counts.step2_misses.tolist()
    match_q, match_rows = counts.match_q, counts.match_rows
    n_hits = len(match_q)
    finish = cam._finish_search
    results: List[SearchStats] = []
    ptr = 0
    for i in range(q_values.shape[0]):
        rows: List[int] = []
        while ptr < n_hits and match_q[ptr] == i:
            rows.append(match_rows[ptr])
            ptr += 1
        results.append(finish(rows, counts.rows_searched,
                              step1[i], step2[i]))
    return results
