"""One TCAM bank: a :class:`TernaryCAM` plus a free-row allocator.

The behavioral engine stores words at caller-chosen row indices; every
application on top of it (router, classifier, cache) had to track which
rows were free by hand.  A bank owns that bookkeeping: ``insert`` returns
the row it allocated (always the lowest free index, so priority-encoder
ordering stays stable under churn), ``delete`` returns the row to the
free pool, and ``update`` rewrites in place.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence

from ..designs import DesignKind
from ..errors import OperationError
from ..functional.engine import EnergyModel, TernaryCAM
from ..planes import TernaryPlanes

__all__ = ["CamBank"]


class CamBank:
    """A :class:`TernaryCAM` with insert/delete/update row lifecycle.

    >>> bank = CamBank(bank_id=0, rows=4, width=8)
    >>> bank.insert("1010XXXX")
    0
    >>> bank.insert("0101XXXX")
    1
    >>> bank.delete(0)
    >>> bank.insert("1111XXXX")  # lowest free row is reused
    0
    """

    def __init__(self, bank_id: int, rows: int, width: int,
                 design: DesignKind = DesignKind.DG_1T5, *,
                 energy_model: Optional[EnergyModel] = None,
                 cam: Optional[TernaryCAM] = None,
                 planes: Optional[TernaryPlanes] = None):
        self.bank_id = bank_id
        if cam is not None and planes is not None:
            raise OperationError(
                "pass either an adopted cam or a planes view, not both")
        if cam is not None:
            # Adopt an existing array: its already-valid rows stay out of
            # the free pool (legacy injection paths hand over pre-loaded
            # engines).
            if cam.rows != rows or cam.width != width:
                raise OperationError(
                    f"adopted cam is {cam.rows}x{cam.width}, bank wants "
                    f"{rows}x{width}")
            self.cam = cam
            self._free: List[int] = [
                row for row in range(rows) if not cam._valid[row]]
        else:
            # ``planes`` injects a row-slice view of a fabric's
            # contiguous arena; standalone banks own private storage.
            self.cam = TernaryCAM(rows=rows, width=width, design=design,
                                  energy_model=energy_model, planes=planes)
            # Min-heap of free rows: allocation is deterministic
            # lowest-first.
            self._free = list(range(rows))
        heapq.heapify(self._free)

    # -- capacity ----------------------------------------------------------------

    @property
    def rows(self) -> int:
        return self.cam.rows

    @property
    def width(self) -> int:
        return self.cam.width

    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def occupancy(self) -> int:
        return self.cam.rows - len(self._free)

    @property
    def is_full(self) -> bool:
        return not self._free

    # -- lifecycle ---------------------------------------------------------------

    def insert(self, word: str) -> int:
        """Store ``word`` in the lowest free row; returns that row."""
        if not self._free:
            raise OperationError(f"bank {self.bank_id} is full "
                                 f"({self.cam.rows} rows)")
        row = heapq.heappop(self._free)
        try:
            self.cam.write(row, word)
        except Exception:
            heapq.heappush(self._free, row)
            raise
        return row

    def insert_many(self, words: Sequence[str], *,
                    packed=None) -> List[int]:
        """Bulk insert via the vectorized packer; returns allocated rows.

        ``packed`` forwards pre-packed (value, care) planes to
        :meth:`TernaryCAM.write_many` so already-validated fabric loads
        don't pack twice.
        """
        if len(words) > len(self._free):
            raise OperationError(
                f"bank {self.bank_id} cannot hold {len(words)} more words "
                f"({len(self._free)} rows free)")
        rows = [heapq.heappop(self._free) for _ in words]
        try:
            self.cam.write_many(rows, words, packed=packed)
        except Exception:
            for row in rows:
                heapq.heappush(self._free, row)
            raise
        return rows

    def place_many(self, rows: Sequence[int], words: Sequence[str], *,
                   packed=None) -> None:
        """Write words at caller-fixed rows (the restore/replay path).

        Unlike :meth:`insert_many`, the rows are chosen by the caller —
        a durable reshard record carries the exact placements the live
        reshard produced, and replaying it must reproduce them
        bit-for-bit rather than re-running the allocator.  Every target
        row must currently be free.
        """
        if len(rows) != len(words):
            raise OperationError("rows and words must have equal length")
        placed = set()
        free = set(self._free)
        for row in rows:
            if not 0 <= row < self.cam.rows:
                raise OperationError(f"row {row} out of range")
            if row not in free or row in placed:
                raise OperationError(
                    f"row {row} of bank {self.bank_id} is not free")
            placed.add(row)
        self.cam.write_many(list(rows), list(words), packed=packed)
        self._free = [row for row in self._free if row not in placed]
        heapq.heapify(self._free)

    def sync_free_rows(self) -> None:
        """Rebuild the free heap from the valid plane.

        Snapshot restore loads arena content underneath the bank
        (planes-level, no per-row inserts); afterwards the allocator's
        free pool is exactly the invalid rows — the same derivation the
        adopted-cam constructor path uses.
        """
        self._free = [row for row in range(self.cam.rows)
                      if not self.cam._valid[row]]
        heapq.heapify(self._free)

    def delete(self, row: int) -> None:
        """Erase an occupied row and return it to the free pool."""
        if not 0 <= row < self.cam.rows:
            raise OperationError(f"row {row} out of range")
        if not self.cam._valid[row]:
            raise OperationError(f"row {row} of bank {self.bank_id} "
                                 "is not occupied")
        self.cam.erase(row)
        heapq.heappush(self._free, row)

    def update(self, row: int, word: str) -> None:
        """Rewrite an occupied row in place (row index is preserved)."""
        if not 0 <= row < self.cam.rows:
            raise OperationError(f"row {row} out of range")
        if not self.cam._valid[row]:
            raise OperationError(f"row {row} of bank {self.bank_id} "
                                 "is not occupied; use insert")
        self.cam.write(row, word)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<CamBank #{self.bank_id} {self.cam.rows}x{self.cam.width}, "
                f"{self.occupancy} occupied>")
