"""Technology calibration: 14 nm-like parameter sets and device factories.

The paper calibrates a 14 nm BSIM-IMG baseline to FDSOI hardware [26] and
builds SG/DG FeFET models on top of it [22].  This module plays that role
for our compact models.  Parameter values are chosen so the *device-level
facts the paper's analysis rests on* hold by construction and are locked in
by tests:

* SG-FeFET: tFE = 10 nm, write at +/-4 V, FG-read memory window ~1.8 V
  (Fig. 1c).
* DG-FeFET: tFE = 5 nm, write at +/-2 V, BG-read memory window ~2.7 V with
  degraded subthreshold slope (Fig. 1d), ON/OFF ~1e4 at the shared 2.0 V
  level (Sec. III-B4).
* Polarization switching charge 2*Pr*A reproduces the Table IV write
  energies (0.41/0.82/0.81/1.63 fJ ladder).
* A 10 ns write pulse fully switches at Vw and *half*-switches at
  Vm = 0.8 * Vw — the intermediate MVT ('X') state of Tab. II/III.

Everything downstream (cells, arrays, benches) pulls parameters from here,
so re-calibration is a one-file change.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..designs import DesignKind
from ..errors import CalibrationError
from .ferroelectric import FerroParams
from .fefet import FeFet, FeFetParams
from .mosfet import Mosfet, MosfetParams

__all__ = [
    "VDD", "nmos_params", "pmos_params", "nmos", "pmos",
    "sg_fefet_params", "dg_fefet_params", "fefet_params_for", "make_fefet",
    "OperatingVoltages", "operating_voltages",
    "CellSizing", "cell_sizing",
]

# ---------------------------------------------------------------------------
# Logic supply (paper: 0.8 V core for the 14 nm node; the 16T CMOS baseline
# in [25] runs 0.9 V — kept separately in the arch layer).
# ---------------------------------------------------------------------------
VDD = 0.8

# 14 nm-ish interconnect/gate constants used to derive parasitics.
_COX_AREA = 0.030  # F/m^2 effective gate capacitance
_C_OVERLAP = 0.25e-9  # F/m of gate width, per edge
_C_JUNCTION = 0.9e-9  # F/m of device width
_L_MIN = 20e-9  # gate length (the FDSOI baseline [26] features 20 nm gates)


def _mos_caps(w: float, l: float):
    c_ox = _COX_AREA * w * l
    c_gs = 0.5 * c_ox + _C_OVERLAP * w
    c_gd = 0.5 * c_ox + _C_OVERLAP * w
    c_gb = 0.1 * c_ox
    c_j = _C_JUNCTION * w
    return c_gs, c_gd, c_gb, c_j


def nmos_params(w: float = 40e-9, l: float = _L_MIN, *, vth: float = 0.35,
                n: float = 1.25) -> MosfetParams:
    """14 nm-like NMOS: ~0.75 mA/um drive at VDD, SS ~ 74 mV/dec."""
    c_gs, c_gd, c_gb, c_j = _mos_caps(w, l)
    return MosfetParams(polarity=+1, vth=vth, n=n, i_spec_sq=3.0e-7,
                        w=w, l=l, lambda_clm=0.05,
                        c_gs=c_gs, c_gd=c_gd, c_gb=c_gb, c_jd=c_j, c_js=c_j)


def pmos_params(w: float = 80e-9, l: float = _L_MIN, *, vth: float = -0.35,
                n: float = 1.25) -> MosfetParams:
    """14 nm-like PMOS (~half the NMOS drive per width)."""
    c_gs, c_gd, c_gb, c_j = _mos_caps(w, l)
    return MosfetParams(polarity=-1, vth=vth, n=n, i_spec_sq=1.4e-7,
                        w=w, l=l, lambda_clm=0.05,
                        c_gs=c_gs, c_gd=c_gd, c_gb=c_gb, c_jd=c_j, c_js=c_j)


def nmos(name: str, d: str, g: str, s: str, b: str = "0", *,
         w: float = 40e-9, l: float = _L_MIN, vth: float = 0.35,
         multiplier: float = 1.0) -> Mosfet:
    return Mosfet(name, d, g, s, b, params=nmos_params(w, l, vth=vth),
                  multiplier=multiplier)


def pmos(name: str, d: str, g: str, s: str, b: str = None, *,
         w: float = 80e-9, l: float = _L_MIN, vth: float = -0.35,
         multiplier: float = 1.0) -> Mosfet:
    # PMOS bulk defaults to its source (n-well tied to the rail it sits on).
    bulk = s if b is None else b
    return Mosfet(name, d, g, s, bulk, params=pmos_params(w, l, vth=vth),
                  multiplier=multiplier)


# ---------------------------------------------------------------------------
# FeFET device flavours (paper Fig. 1).  Device size 20 x 50 nm; Pr chosen
# so 2*Pr*A*Vw lands on the Table IV write-energy ladder.
# ---------------------------------------------------------------------------

# Paper: "The device size of SG-FeFETs and DG-FeFETs is 20 x 50 nm."
_FE_W = 20e-9
_FE_L = 50e-9
_FE_AREA = _FE_W * _FE_L
_PS = 0.102  # C/m^2 (10.2 uC/cm^2)
# KAI kinetics shared by both flavours (same HfO2 physics; both write at
# ~3.4 MV/cm peak field): full switching at Vw in a 10 ns pulse,
# ~two-thirds switching (the MVT target) in a ~15 ns pulse at Vm = 0.8 Vw.
_E_ACT = 4.3e8
_ALPHA = 3.0
_TAU0 = 2.6e-10


def sg_fefet_params() -> FeFetParams:
    """Single-gate FeFET: 10 nm FE, FG write/read (Fig. 1c).

    MW(FG) = 1.8 V around vth_mid = 1.0 V: LVT at 0.1 V (near-off at a
    grounded FG, strongly on at the 0.8 V read level), HVT at 1.9 V.
    Reads pass through the FE stack, so ``read_disturb_delta`` is non-zero.
    """
    ferro = FerroParams(ps=_PS, t_fe=10e-9, area=_FE_AREA,
                        e_activation=_E_ACT, alpha=_ALPHA, tau0=_TAU0)
    return FeFetParams(vth_mid=1.0, mw_fg=1.8, k_bg=0.0, n=1.10,
                       i_spec_sq=1.8e-7, w=_FE_W, l=_FE_L,
                       ferro=ferro, kappa_fe=0.85,
                       c_fg=10e-18, c_bg=0.0, c_bg_well=0.0,
                       c_jd=150e-18, c_js=150e-18, i_leak=1e-10,
                       read_disturb_delta=2e-7)


def dg_fefet_params() -> FeFetParams:
    """Double-gate FeFET: 5 nm FE, FG write at +/-2 V, BG read (Fig. 1d).

    MW(FG) = 0.9 V; with coupling k_bg = 1/3 the BG sees MW = 2.7 V and a
    3x degraded subthreshold slope — both headline numbers of Fig. 1d.
    The BG sits in an isolated P-well (area + capacitance cost,
    ``c_bg_well``); BG reads never stress the FE layer, so
    ``read_disturb_delta = 0``.
    """
    ferro = FerroParams(ps=_PS, t_fe=5e-9, area=_FE_AREA,
                        e_activation=_E_ACT, alpha=_ALPHA, tau0=_TAU0)
    return FeFetParams(vth_mid=0.75, mw_fg=0.9, k_bg=1.0 / 3.0, n=1.05,
                       i_spec_sq=5.0e-7, w=_FE_W, l=_FE_L,
                       ferro=ferro, kappa_fe=0.85,
                       c_fg=15e-18, c_bg=10e-18, c_bg_well=50e-18,
                       c_jd=150e-18, c_js=150e-18, i_leak=1e-10,
                       read_disturb_delta=0.0)


def fefet_params_for(design: DesignKind) -> FeFetParams:
    if not design.is_fefet:
        raise CalibrationError(f"{design} has no FeFET")
    return dg_fefet_params() if design.is_double_gate else sg_fefet_params()


def make_fefet(design: DesignKind, name: str, fg: str, d: str, s: str,
               bg: str = "0", *, initial_s: float = 0.0,
               multiplier: float = 1.0) -> FeFet:
    """Build a FeFET of the flavour used by ``design``."""
    return FeFet(name, fg, d, s, bg, params=fefet_params_for(design),
                 initial_s=initial_s, multiplier=multiplier)


# ---------------------------------------------------------------------------
# Operating voltages (paper Tables I, II, III)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OperatingVoltages:
    """Write/search voltage set for one design family.

    ``t_write`` is the write pulse width; ``t_write_x`` the (possibly
    longer) Vm pulse that places the partial-polarization MVT state — the
    paper's three-step write gives the designer this freedom (Sec. III-B3).
    """

    vdd: float
    vw: float  # full write voltage (+/-)
    vm: float  # intermediate 'X' write voltage
    vsel: float  # search/select voltage (SeL for DG, FG level for SG)
    vb: float  # small BL bias during search-'0' (DG designs, Tab. II)
    t_write: float
    t_write_x: float

    @property
    def shares_hv_level(self) -> bool:
        """True when write and select voltages coincide — the co-optimized
        condition enabling the shared HV driver of Fig. 6."""
        return abs(self.vw - self.vsel) < 1e-9


# Both flavours program the MVT 'X' state with the same Vm = 0.8 Vw pulse:
# the peak FE field (and therefore the KAI time constant) matches because
# field = kappa*Vm/t_fe and Vm scales with t_fe.  The ~15 ns Vm pulse
# leaves the layer about two-thirds switched (s_x below).
_DG_VOLTAGES = OperatingVoltages(vdd=VDD, vw=2.0, vm=1.6, vsel=2.0, vb=0.25,
                                 t_write=10e-9, t_write_x=19.3e-9)
_SG_VOLTAGES = OperatingVoltages(vdd=VDD, vw=4.0, vm=3.2, vsel=0.8, vb=0.0,
                                 t_write=10e-9, t_write_x=21.8e-9)


def operating_voltages(design: DesignKind) -> OperatingVoltages:
    if not design.is_fefet:
        raise CalibrationError("CMOS TCAM has no FeFET operating voltages")
    return _DG_VOLTAGES if design.is_double_gate else _SG_VOLTAGES


# ---------------------------------------------------------------------------
# 1.5T1Fe cell transistor sizing (paper Sec. III-B2: "relatively large TP
# and TN transistors are required", Eq. 1 resistance ordering).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CellSizing:
    """Sizing of the shared control transistors in a 2-cell pair.

    TN/TP are deliberately weak (long channel, shifted VT) so the divider
    lands in the ``R_ON < R_N < R_M < R_P << R_OFF`` window of paper Eq. 1
    — the paper's own 'relatively large TP and TN' cell-area cost.  ``s_x``
    is the MVT domain fraction that centres R_M inside the window; the
    write controller program-verifies to it.
    """

    tn_w: float
    tn_l: float
    tn_vth: float
    #: When non-zero, TN is split into a short switching device of this
    #: length (gate on Wr/SL) in series with a static-gated resistor
    #: device of length (tn_l - tn_split_sw_l).  This isolates the big
    #: long-channel gate from the Wr/SL edge: only the small switch's
    #: gate-drain capacitance couples into SL_bar during step changes.
    tn_split_sw_l: float
    tp_w: float
    tp_l: float
    tp_vth: float
    tml_w: float
    tml_l: float
    tml_vth: float
    s_x: float

    @property
    def control_area(self) -> float:
        """Summed gate area of TN+TP+TML (m^2), used by the area model."""
        return (self.tn_w * self.tn_l + self.tp_w * self.tp_l
                + self.tml_w * self.tml_l)


# Values from the numeric co-optimization in fecam.cam.sizing (margins
# verified by tests/cam/test_sizing.py).
_DG_SIZING = CellSizing(tn_w=40e-9, tn_l=240e-9, tn_vth=0.45,
                        tn_split_sw_l=0.0,
                        tp_w=40e-9, tp_l=240e-9, tp_vth=-0.35,
                        tml_w=240e-9, tml_l=20e-9, tml_vth=0.35,
                        s_x=0.74)
# SG note: tml_vth sits higher (0.40) than the DG variant's 0.35 — the
# long-channel TN's gate-drain capacitance couples the Wr/SL inter-step
# edge into SL_bar, and the extra threshold margin absorbs that blip
# without giving up mismatch overdrive (v10 ~= 0.5 V).
_SG_SIZING = CellSizing(tn_w=40e-9, tn_l=720e-9, tn_vth=0.45,
                        tn_split_sw_l=60e-9,
                        tp_w=40e-9, tp_l=240e-9, tp_vth=-0.30,
                        tml_w=360e-9, tml_l=20e-9, tml_vth=0.40,
                        s_x=0.78)


def cell_sizing(design: DesignKind) -> CellSizing:
    if not design.is_one_fefet:
        raise CalibrationError(f"{design} is not a 1.5T1Fe design")
    return _DG_SIZING if design.is_double_gate else _SG_SIZING
