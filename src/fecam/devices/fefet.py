"""SG- and DG-FeFET compact-model circuit elements.

One element class covers both device flavours of the paper (Fig. 1):

* **SG-FeFET** — 10 nm FE layer in the front-gate stack; write *and* read
  through the FG at ±4 V / 0.8 V; ``k_bg = 0`` (the back side is just the
  body).  Accumulates read disturb because read pulses stress the FE layer.
* **DG-FeFET** — 5 nm FE layer written through the FG at ±2 V, read through
  the dedicated back gate.  The BG couples to the channel with ratio
  ``k_bg < 1``, which (a) *amplifies* the memory window seen from the BG,
  ``MW_bg = MW_fg / k_bg`` (paper: 0.9 V -> 2.7 V), and (b) *degrades* the
  subthreshold slope seen from the BG by the same factor — exactly the
  device trade-off Sec. II-A describes.

Channel model: EKV (see :mod:`fecam.devices.mosfet`) with an effective
pinch-off voltage driven by both gates::

    vth_eff(s) = vth_mid - (s - 0.5) * mw_fg        # polarization shifts VT
    vp         = (v_fg + k_bg * v_bg - vth_eff) / n
    i_ds       = i_spec * [F((vp-vs)/Vt) - F((vp-vd)/Vt)] * clm

Polarization state ``s`` lives in a :class:`FerroelectricLayer`; the write
field is the FG-to-channel voltage scaled by the stack divider ``kappa_fe``.
The polarization displacement current is stamped into the FG so write
energy is observable at the driving source.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Tuple

from ..errors import CalibrationError
from ..spice.netlist import Element, TerminalVoltages
from ..units import thermal_voltage
from .ferroelectric import FerroParams, FerroelectricLayer
from .mosfet import ekv_f, ekv_f_prime

__all__ = ["FeFetParams", "FeFet", "VT_STATES", "state_to_s", "s_to_state"]

#: Canonical threshold states and their ideal domain fractions.  The 'X'
#: (MVT) fraction is design-specific and set by the write controller; 0.5
#: is only the symmetric default.
VT_STATES = ("HVT", "MVT", "LVT")


def state_to_s(state: str, s_mvt: float = 0.5) -> float:
    """Map a named threshold state to a domain fraction."""
    table = {"HVT": 0.0, "MVT": s_mvt, "LVT": 1.0}
    try:
        return table[state]
    except KeyError:
        raise CalibrationError(
            f"unknown FeFET state {state!r}; expected one of {VT_STATES}") from None


def s_to_state(s: float, s_mvt: float = 0.5) -> str:
    """Classify a domain fraction into the nearest named state."""
    candidates = {"HVT": 0.0, "MVT": s_mvt, "LVT": 1.0}
    return min(candidates, key=lambda k: abs(candidates[k] - s))


@dataclass(frozen=True)
class FeFetParams:
    """Complete FeFET parameter set (channel + FE layer + parasitics)."""

    vth_mid: float  # V, FG-referenced threshold at s = 0.5
    mw_fg: float  # V, memory window seen from the FG
    k_bg: float  # back-gate coupling ratio (0 disables the BG)
    n: float = 1.3  # subthreshold slope factor (FG)
    i_spec_sq: float = 3.5e-8  # A at W/L = 1
    w: float = 50e-9
    l: float = 20e-9
    lambda_clm: float = 0.05
    ferro: FerroParams = FerroParams()
    kappa_fe: float = 0.85  # fraction of FG-channel voltage across the FE
    c_fg: float = 35e-18  # F, static FG-to-channel capacitance
    c_bg: float = 15e-18  # F, BG-to-channel capacitance
    c_bg_well: float = 0.0  # F, isolated P-well junction cap on the BG (DG)
    c_jd: float = 40e-18  # F, drain junction
    c_js: float = 40e-18  # F, source junction
    i_leak: float = 1e-10  # A, drain leakage floor (GIDL/junction)
    read_disturb_delta: float = 0.0  # per-read fractional drift (SG only)
    temperature: float = 300.0

    def __post_init__(self):
        if self.mw_fg <= 0:
            raise CalibrationError("memory window must be positive")
        if not 0.0 <= self.k_bg < 1.0:
            raise CalibrationError("k_bg must be in [0, 1)")
        if not 0.0 < self.kappa_fe <= 1.0:
            raise CalibrationError("kappa_fe must be in (0, 1]")
        if self.n < 1.0 or self.i_spec_sq <= 0:
            raise CalibrationError("invalid channel parameters")

    @property
    def is_double_gate(self) -> bool:
        return self.k_bg > 0.0

    @property
    def i_spec(self) -> float:
        return self.i_spec_sq * self.w / self.l

    @property
    def mw_bg(self) -> float:
        """Memory window seen from the back gate (amplified by 1/k_bg)."""
        if self.k_bg == 0.0:
            return float("nan")
        return self.mw_fg / self.k_bg

    @property
    def subthreshold_swing_fg(self) -> float:
        """SS from the front gate, V/decade."""
        return self.n * thermal_voltage(self.temperature) * math.log(10.0)

    @property
    def subthreshold_swing_bg(self) -> float:
        """SS from the back gate — degraded by the coupling ratio."""
        if self.k_bg == 0.0:
            return float("nan")
        return self.subthreshold_swing_fg / self.k_bg

    def vth_eff(self, s: float) -> float:
        """FG-referenced threshold for domain fraction ``s``."""
        return self.vth_mid - (s - 0.5) * self.mw_fg

    def vth_bg(self, s: float, v_fg_bias: float = 0.0) -> float:
        """BG-referenced threshold with the FG held at ``v_fg_bias``."""
        if self.k_bg == 0.0:
            return float("nan")
        return (self.vth_eff(s) - v_fg_bias) / self.k_bg

    def scaled(self, **overrides) -> "FeFetParams":
        return replace(self, **overrides)


class FeFet(Element):
    """Four-terminal FeFET element: (fg, d, s, bg).

    The polarization state is exposed via :attr:`layer`; program it directly
    with :meth:`set_fraction` / :meth:`set_state` (instant, for test setup)
    or electrically through write transients (the paper's write scheme,
    driven by :mod:`fecam.cam.ops`).
    """

    _FD_STEP = 1e-3  # volts, finite-difference step for polarization Jacobian

    def __init__(self, name: str, fg: str, d: str, s: str, bg: str = "0", *,
                 params: FeFetParams, initial_s: float = 0.0,
                 multiplier: float = 1.0):
        super().__init__(name, (fg, d, s, bg))
        if multiplier <= 0:
            raise CalibrationError(f"{name}: multiplier must be positive")
        self.params = params
        self.multiplier = float(multiplier)
        self.layer = FerroelectricLayer(params.ferro, s=initial_s)
        self._vt = thermal_voltage(params.temperature)
        self._cap_pairs: Tuple[Tuple[int, int, float], ...] = (
            (0, 2, params.c_fg / 2.0),  # fg-source (static stack cap, split)
            (0, 1, params.c_fg / 2.0),  # fg-drain
            (3, 2, params.c_bg / 2.0),  # bg-source
            (3, 1, params.c_bg / 2.0),  # bg-drain
            (3, -1, params.c_bg_well),  # isolated P-well junction (DG only)
            (1, -1, params.c_jd),  # drain junction to substrate
            (2, -1, params.c_js),  # source junction to substrate
        )
        self._q_committed: Dict[Tuple[int, int], float] = {
            (a, b): 0.0 for a, b, _ in self._cap_pairs}

    # -- state management --------------------------------------------------------

    @property
    def s(self) -> float:
        return self.layer.s

    def set_fraction(self, s: float) -> None:
        """Directly set the domain fraction (instant programming)."""
        if not 0.0 <= s <= 1.0:
            raise CalibrationError(f"domain fraction must be in [0,1], got {s}")
        self.layer.s = float(s)

    def set_state(self, state: str, s_mvt: float = 0.5) -> None:
        self.set_fraction(state_to_s(state, s_mvt))

    def state(self, s_mvt: float = 0.5) -> str:
        return s_to_state(self.layer.s, s_mvt)

    @property
    def vth(self) -> float:
        """Current FG-referenced threshold voltage."""
        return self.params.vth_eff(self.layer.s)

    # -- electrical model ----------------------------------------------------------

    def fe_field(self, v_fg: float, v_d: float, v_s: float) -> float:
        """Field across the FE layer (V/m); channel potential approximated
        as the source/drain average (exact when both are grounded, as in
        the write configuration of Tab. II)."""
        v_chan = 0.5 * (v_d + v_s)
        return self.params.kappa_fe * (v_fg - v_chan) / self.params.ferro.t_fe

    def channel_current(self, v_fg: float, v_d: float, v_s: float,
                        v_bg: float = 0.0, s: float = None) -> float:
        i, _, _, _, _ = self._ids_and_derivs(v_fg, v_d, v_s, v_bg, s=s)
        return i

    def _ids_and_derivs(self, v_fg, v_d, v_s, v_bg, s=None):
        """Return (ids, d/dvfg, d/dvd, d/dvs, d/dvbg)."""
        p = self.params
        s_val = self.layer.s if s is None else s
        vt = self._vt
        vp = (v_fg + p.k_bg * v_bg - p.vth_eff(s_val)) / p.n
        uf = (vp - v_s) / vt
        ur = (vp - v_d) / vt
        f_f, f_r = ekv_f(uf), ekv_f(ur)
        fp_f, fp_r = ekv_f_prime(uf), ekv_f_prime(ur)
        i_s = p.i_spec * self.multiplier
        vds = v_d - v_s
        vds_smooth = math.sqrt(vds * vds + 1e-6)
        clm = 1.0 + p.lambda_clm * vds_smooth
        dclm = p.lambda_clm * vds / vds_smooth
        core = f_f - f_r
        ids = i_s * core * clm
        dvp = (fp_f - fp_r) / (p.n * vt)  # common factor for gate-side derivs
        d_dvfg = i_s * clm * dvp
        d_dvbg = i_s * clm * dvp * p.k_bg
        d_dvs = i_s * (-clm * fp_f / vt - core * dclm)
        d_dvd = i_s * (clm * fp_r / vt + core * dclm)
        # Drain-leakage floor (GIDL/junction): sets the measurable ON/OFF
        # ratio to ~1e4 as in Fig. 1d instead of the model's ideal cutoff.
        i_leak = p.i_leak * self.multiplier
        if i_leak > 0.0:
            x = vds / (2.0 * vt)
            t = math.tanh(max(-60.0, min(60.0, x)))
            ids += i_leak * t
            g_leak = i_leak * (1.0 - t * t) / (2.0 * vt)
            d_dvd += g_leak
            d_dvs -= g_leak
        return ids, d_dvfg, d_dvd, d_dvs, d_dvbg

    def read_resistance(self, v_fg: float, v_bg: float, v_ds: float = 0.1,
                        s: float = None) -> float:
        """Large-signal drain-source resistance at a read bias (ohms)."""
        i = self.channel_current(v_fg, v_ds, 0.0, v_bg, s=s)
        if i <= 0:
            return float("inf")
        return v_ds / i

    # -- element interface -----------------------------------------------------------

    def init_state(self, v: TerminalVoltages) -> None:
        for (a, b, c) in self._cap_pairs:
            vb = 0.0 if b < 0 else v[b]
            self._q_committed[(a, b)] = c * self.multiplier * (v[a] - vb)

    def _pol_current(self, v_fg: float, v_d: float, v_s: float, h: float) -> float:
        """Polarization displacement current out of the FG for this step."""
        e = self.fe_field(v_fg, v_d, v_s)
        s_new = self.layer.preview(e, h)
        dq = self.layer.params.area * self.layer.params.ps * 2.0 * (s_new - self.layer.s)
        return self.multiplier * dq / h

    def stamp(self, ctx, v: TerminalVoltages) -> None:
        idx = self._node_index
        v_fg, v_d, v_s, v_bg = v[0], v[1], v[2], v[3]
        ids, g_fg, g_d, g_s, g_bg = self._ids_and_derivs(v_fg, v_d, v_s, v_bg)
        i_fg_n, i_d_n, i_s_n, i_bg_n = idx[0], idx[1], idx[2], idx[3]
        ctx.add_f(i_d_n, ids)
        ctx.add_f(i_s_n, -ids)
        for col, g in ((i_fg_n, g_fg), (i_d_n, g_d), (i_s_n, g_s), (i_bg_n, g_bg)):
            ctx.add_j(i_d_n, col, g)
            ctx.add_j(i_s_n, col, -g)

        if ctx.mode != "tran":
            return
        h = ctx.h
        self._commit_dt = h  # commit() integrates polarization over this step
        # Static capacitances (FG/BG stacks, junctions).
        for (a, b, c) in self._cap_pairs:
            c_eff = c * self.multiplier
            if c_eff <= 0:
                continue
            vb = 0.0 if b < 0 else v[b]
            q = c_eff * (v[a] - vb)
            i_cap = (q - self._q_committed[(a, b)]) / h
            geq = c_eff / h
            ia = idx[a]
            ib = -1 if b < 0 else idx[b]
            ctx.add_f(ia, i_cap)
            ctx.add_f(ib, -i_cap)
            ctx.add_j(ia, ia, geq)
            ctx.add_j(ia, ib, -geq)
            ctx.add_j(ib, ia, -geq)
            ctx.add_j(ib, ib, geq)
        # Polarization switching current: leaves the FG node, returns through
        # the channel (split between source and drain).  The Jacobian is a
        # finite difference — tau(E) is doubly exponential in the terminal
        # voltages and an analytic derivative buys nothing here.
        i_pol = self._pol_current(v_fg, v_d, v_s, h)
        if i_pol != 0.0 or self.layer.tau(self.fe_field(v_fg, v_d, v_s)) < 1.0:
            d = self._FD_STEP
            di_dvfg = (self._pol_current(v_fg + d, v_d, v_s, h) - i_pol) / d
            di_dvd = (self._pol_current(v_fg, v_d + d, v_s, h) - i_pol) / d
            di_dvs = (self._pol_current(v_fg, v_d, v_s + d, h) - i_pol) / d
            ctx.add_f(i_fg_n, i_pol)
            ctx.add_f(i_d_n, -0.5 * i_pol)
            ctx.add_f(i_s_n, -0.5 * i_pol)
            for col, di in ((i_fg_n, di_dvfg), (i_d_n, di_dvd), (i_s_n, di_dvs)):
                ctx.add_j(i_fg_n, col, di)
                ctx.add_j(i_d_n, col, -0.5 * di)
                ctx.add_j(i_s_n, col, -0.5 * di)

    # stamp() records the timestep here so commit() (which has no ctx)
    # can integrate the polarization over the accepted step.
    _commit_dt = 0.0

    def commit(self, v: TerminalVoltages) -> None:
        for (a, b, c) in self._cap_pairs:
            vb = 0.0 if b < 0 else v[b]
            self._q_committed[(a, b)] = c * self.multiplier * (v[a] - vb)
        if self._commit_dt > 0.0:
            e = self.fe_field(v[0], v[1], v[2])
            self.layer.advance(e, self._commit_dt)
            self._commit_dt = 0.0

    # -- read disturb (SG-FeFET) --------------------------------------------------------

    def apply_read_disturb(self, n_reads: int = 1, direction: float = +1.0) -> float:
        """Accumulate read-disturb drift from ``n_reads`` FG read pulses.

        SG-FeFETs read through the FG, so every read pulse weakly pushes the
        polarization toward the read-field direction (charge-trapping
        assisted drift, Sec. I/II of the paper).  DG-FeFETs read through the
        BG and have ``read_disturb_delta == 0`` — calling this is a no-op.
        Returns the resulting domain fraction.
        """
        delta = self.params.read_disturb_delta
        if delta <= 0.0 or n_reads <= 0:
            return self.layer.s
        target = 1.0 if direction > 0 else 0.0
        # Each read moves s a fixed small fraction toward the target.
        self.layer.s = target + (self.layer.s - target) * (1.0 - delta) ** n_reads
        self.layer.disturb_events += n_reads
        return self.layer.s

    def __repr__(self) -> str:  # pragma: no cover
        kind = "DG" if self.params.is_double_gate else "SG"
        return (f"<FeFet {self.name} ({kind}, s={self.layer.s:.2f}, "
                f"vth={self.vth:.2f} V)>")
