"""Compact device models: EKV MOSFET, ferroelectric layer, SG/DG FeFET.

See DESIGN.md S2-S4.  The calibration module holds the 14 nm-like
technology constants and all paper operating voltages (Tables I-III).
"""

from .calibration import (VDD, CellSizing, OperatingVoltages, cell_sizing,
                          dg_fefet_params, fefet_params_for, make_fefet,
                          nmos, nmos_params, operating_voltages, pmos,
                          pmos_params, sg_fefet_params)
from .ferroelectric import FerroelectricLayer, FerroParams
from .reliability import EnduranceModel, RetentionModel, reliability_report
from .variability import (MonteCarloResult, VariationParams, divider_yield,
                          sample_vth_shifts)
from .fefet import FeFet, FeFetParams, s_to_state, state_to_s
from .mosfet import Mosfet, MosfetParams, ekv_f, ekv_f_prime, softplus

__all__ = [
    "Mosfet", "MosfetParams", "softplus", "ekv_f", "ekv_f_prime",
    "FerroelectricLayer", "FerroParams",
    "FeFet", "FeFetParams", "state_to_s", "s_to_state",
    "VDD", "nmos", "pmos", "nmos_params", "pmos_params",
    "sg_fefet_params", "dg_fefet_params", "fefet_params_for", "make_fefet",
    "OperatingVoltages", "operating_voltages", "CellSizing", "cell_sizing",
    "VariationParams", "MonteCarloResult", "divider_yield",
    "sample_vth_shifts",
    "EnduranceModel", "RetentionModel", "reliability_report",
]
