"""EKV-style MOSFET compact model.

The paper's evaluation uses a 14 nm BSIM-IMG model calibrated to FDSOI
silicon [26].  BSIM-IMG is not reproducible here, so we use the EKV charge
interpolation model, which shares the properties the TCAM analysis depends
on (see DESIGN.md S2):

* a single expression covering weak, moderate, and strong inversion with
  continuous derivatives (Newton-friendly);
* exponential subthreshold behaviour with slope factor ``n``
  (SS = n * Vt * ln 10 per decade);
* drain-source symmetric conduction (the 1.5T1Fe voltage divider pushes
  current both ways through TN/TP);
* square-law-ish saturation with channel-length modulation.

Drain current (bulk-referenced EKV)::

    i_ds = i_s * [F((vp - vs)/Vt) - F((vp - vd)/Vt)] * clm(vds)
    vp   = (v_gb - vth) / n
    F(u) = ln^2(1 + exp(u / 2))
    i_s  = 2 * n * mu_cox_wl * Vt^2        (specific current)

PMOS devices evaluate the same equations with all terminal voltages and the
current negated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from ..errors import CalibrationError
from ..spice.netlist import Element, TerminalVoltages
from ..units import thermal_voltage

__all__ = ["MosfetParams", "Mosfet", "softplus", "ekv_f", "ekv_f_prime"]


def softplus(x: float) -> float:
    """Numerically safe ``ln(1 + exp(x))``."""
    if x > 40.0:
        return x
    if x < -40.0:
        return math.exp(x)
    return math.log1p(math.exp(x))


def _sigmoid(x: float) -> float:
    if x > 40.0:
        return 1.0
    if x < -40.0:
        return math.exp(x)
    return 1.0 / (1.0 + math.exp(-x))


def ekv_f(u: float) -> float:
    """EKV interpolation function ``F(u) = ln^2(1 + exp(u/2))``."""
    s = softplus(u / 2.0)
    return s * s


def ekv_f_prime(u: float) -> float:
    """dF/du = softplus(u/2) * sigmoid(u/2)."""
    return softplus(u / 2.0) * _sigmoid(u / 2.0)


@dataclass(frozen=True)
class MosfetParams:
    """Parameter set for :class:`Mosfet`.

    ``i_spec_sq`` is the specific current of a *square* device (W == L);
    the element scales it by W/L.  Capacitances are totals per device,
    computed by the technology factories in :mod:`fecam.devices.calibration`.
    """

    polarity: int  # +1 NMOS, -1 PMOS
    vth: float  # V, bulk-referenced threshold
    n: float = 1.2  # subthreshold slope factor
    i_spec_sq: float = 1e-6  # A at W/L = 1
    w: float = 100e-9  # m
    l: float = 20e-9  # m
    lambda_clm: float = 0.05  # 1/V channel-length modulation
    c_gs: float = 20e-18  # F
    c_gd: float = 20e-18  # F
    c_gb: float = 5e-18  # F
    c_jd: float = 30e-18  # F, drain junction
    c_js: float = 30e-18  # F, source junction
    temperature: float = 300.0

    def __post_init__(self):
        if self.polarity not in (1, -1):
            raise CalibrationError("polarity must be +1 (NMOS) or -1 (PMOS)")
        if self.w <= 0 or self.l <= 0:
            raise CalibrationError("W and L must be positive")
        if self.n < 1.0:
            raise CalibrationError("slope factor n must be >= 1")
        if self.i_spec_sq <= 0:
            raise CalibrationError("specific current must be positive")

    @property
    def i_spec(self) -> float:
        """Specific current scaled by geometry (A)."""
        return self.i_spec_sq * self.w / self.l

    @property
    def subthreshold_swing(self) -> float:
        """SS in V/decade."""
        return self.n * thermal_voltage(self.temperature) * math.log(10.0)

    def scaled(self, **overrides) -> "MosfetParams":
        """Copy with overridden fields (dataclasses.replace wrapper)."""
        return replace(self, **overrides)


class Mosfet(Element):
    """Four-terminal MOSFET element: (drain, gate, source, bulk).

    ``multiplier`` models ``m`` identical parallel devices; the TCAM word
    models merge electrically identical cells this way, which keeps the MNA
    system size independent of word length.
    """

    def __init__(self, name: str, d: str, g: str, s: str, b: str = "0", *,
                 params: MosfetParams, multiplier: float = 1.0):
        super().__init__(name, (d, g, s, b))
        if multiplier <= 0:
            raise CalibrationError(f"{name}: multiplier must be positive")
        self.params = params
        self.multiplier = float(multiplier)
        self._vt = thermal_voltage(params.temperature)
        # Committed charges of the four internal capacitors, keyed by
        # (terminal_a, terminal_b) local indices.
        self._cap_pairs: Tuple[Tuple[int, int, float], ...] = (
            (1, 2, params.c_gs),  # gate-source
            (1, 0, params.c_gd),  # gate-drain
            (1, 3, params.c_gb),  # gate-bulk
            (0, 3, params.c_jd),  # drain-bulk junction
            (2, 3, params.c_js),  # source-bulk junction
        )
        self._q_committed: Dict[Tuple[int, int], float] = {
            (a, b): 0.0 for a, b, _ in self._cap_pairs}

    # -- channel current -------------------------------------------------------

    def channel_current(self, vd: float, vg: float, vs: float,
                        vb: float = 0.0) -> float:
        """Drain current (A, positive drain->source) at the given voltages."""
        i, _, _, _ = self._ids_and_derivs(vd, vg, vs, vb)
        return i

    def _ids_and_derivs(self, vd: float, vg: float, vs: float, vb: float):
        """Return (ids, d/dvd, d/dvg, d/dvs), bulk derivative implied.

        PMOS is handled by computing the NMOS equations on negated,
        bulk-referenced voltages and negating the resulting current.
        """
        p = self.params
        sign = p.polarity
        # Bulk-referenced, polarity-normalized voltages.
        vdb = sign * (vd - vb)
        vgb = sign * (vg - vb)
        vsb = sign * (vs - vb)
        vt = self._vt
        # In the polarity-normalized frame the threshold is always positive:
        # a PMOS with vth = -0.35 V behaves as an NMOS with +0.35 V.
        vp = (vgb - sign * p.vth) / p.n
        uf = (vp - vsb) / vt
        ur = (vp - vdb) / vt
        f_f, f_r = ekv_f(uf), ekv_f(ur)
        fp_f, fp_r = ekv_f_prime(uf), ekv_f_prime(ur)
        i_s = p.i_spec * self.multiplier
        vds = vdb - vsb
        vds_smooth = math.sqrt(vds * vds + 1e-6)
        clm = 1.0 + p.lambda_clm * vds_smooth
        dclm_dvds = p.lambda_clm * vds / vds_smooth

        core = f_f - f_r
        ids = i_s * core * clm
        # Derivatives in the normalized frame.
        d_dvg = i_s * clm * (fp_f - fp_r) / (p.n * vt)
        d_dvs = i_s * (-clm * fp_f / vt - core * dclm_dvds)
        d_dvd = i_s * (clm * fp_r / vt + core * dclm_dvds)
        # Chain rule back to physical voltages: each normalized voltage is
        # sign * (v - vb), so d/dv_phys = sign * d/dv_norm, and the current
        # seen at the physical terminals is sign * ids.
        ids_phys = sign * ids
        return (ids_phys,
                sign * d_dvd * sign,
                sign * d_dvg * sign,
                sign * d_dvs * sign)

    # -- element interface -----------------------------------------------------

    def init_state(self, v: TerminalVoltages) -> None:
        for (a, b, c) in self._cap_pairs:
            self._q_committed[(a, b)] = c * self.multiplier * (v[a] - v[b])

    def stamp(self, ctx, v: TerminalVoltages) -> None:
        idx = self._node_index
        vd, vg, vs, vb = v[0], v[1], v[2], v[3]
        ids, g_dd, g_dg, g_ds = self._ids_and_derivs(vd, vg, vs, vb)
        # Bulk conductance balances the row sums (KCL for the linearized
        # model): dI/dvb = -(dI/dvd + dI/dvg + dI/dvs).
        g_db = -(g_dd + g_dg + g_ds)
        i_d, i_g, i_s_node, i_b = idx[0], idx[1], idx[2], idx[3]
        ctx.add_f(i_d, ids)
        ctx.add_f(i_s_node, -ids)
        for col, g in ((i_d, g_dd), (i_g, g_dg), (i_s_node, g_ds), (i_b, g_db)):
            ctx.add_j(i_d, col, g)
            ctx.add_j(i_s_node, col, -g)
        # Intrinsic/junction capacitances (transient only).
        if ctx.mode == "tran":
            h = ctx.h
            for (a, b, c) in self._cap_pairs:
                c_eff = c * self.multiplier
                if c_eff <= 0:
                    continue
                q = c_eff * (v[a] - v[b])
                i_cap = (q - self._q_committed[(a, b)]) / h
                geq = c_eff / h
                ia, ib = idx[a], idx[b]
                ctx.add_f(ia, i_cap)
                ctx.add_f(ib, -i_cap)
                ctx.add_j(ia, ia, geq)
                ctx.add_j(ia, ib, -geq)
                ctx.add_j(ib, ia, -geq)
                ctx.add_j(ib, ib, geq)

    def commit(self, v: TerminalVoltages) -> None:
        for (a, b, c) in self._cap_pairs:
            self._q_committed[(a, b)] = c * self.multiplier * (v[a] - v[b])

    # -- convenience -----------------------------------------------------------

    def on_resistance(self, vgs: float, vds: float = 0.05) -> float:
        """Large-signal ON resistance |vds / ids| with source/bulk at 0."""
        sign = self.params.polarity
        i = self.channel_current(sign * vds, sign * vgs, 0.0, 0.0)
        if i == 0:
            return float("inf")
        return abs(vds / i)

    def __repr__(self) -> str:  # pragma: no cover
        kind = "nmos" if self.params.polarity > 0 else "pmos"
        return f"<Mosfet {self.name} ({kind}, W={self.params.w:.3g}, m={self.multiplier})>"
