"""Ferroelectric-layer polarization model (nucleation-limited switching).

The paper relies on a TCAD-calibrated multi-domain FeFET compact model
[22].  We reproduce the behaviours that the TCAM designs depend on with a
domain-fraction rate model:

* The layer state is the up-polarized domain fraction ``s`` in [0, 1];
  polarization ``P = Ps * (2s - 1)``.
* Under a field ``E`` the fraction relaxes toward the field's preferred
  direction with a Kolmogorov-Avrami-Ishibashi (KAI) / NLS characteristic
  time ``tau(E) = tau0 * exp((Ea/|E|)^alpha)`` — steeply decreasing in
  field, which yields:

  - full switching within a write pulse at the write voltage,
  - *partial* switching at the intermediate voltage Vm (the MVT 'X' state
    of the 1.5T1Fe cell, paper Tab. II/III),
  - effectively frozen polarization at read fields (non-volatility and the
    DG-FeFET's disturb-free read).

* Sweeping the field at a finite rate traces a hysteresis loop whose
  apparent coercive field is where ``tau(E)`` matches the sweep timescale
  — the classic rate-dependent loop of HfO2 ferroelectrics.

The model exposes ``preview``/``advance`` so a circuit element can evaluate
trial states inside Newton iterations and commit once per accepted step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..errors import CalibrationError

__all__ = ["FerroParams", "FerroelectricLayer"]

# Exponent clamp: exp(500) is far beyond any timescale we compare against,
# and math.exp overflows around 709.
_MAX_EXPONENT = 500.0


@dataclass(frozen=True)
class FerroParams:
    """Physical and kinetic parameters of one ferroelectric layer.

    Fields in SI: polarization in C/m^2, thickness/area in m/m^2, fields in
    V/m, times in seconds.
    """

    ps: float = 0.10  # saturation polarization (10 uC/cm^2 = 0.1 C/m^2)
    t_fe: float = 5e-9  # layer thickness
    area: float = 20e-9 * 50e-9  # gate area (paper: 20 x 50 nm devices)
    eps_fe: float = 25.0 * 8.8541878128e-12  # background permittivity
    e_activation: float = 4.3e8  # KAI activation field Ea (V/m)
    alpha: float = 3.0  # KAI steepness exponent
    tau0: float = 2.6e-10  # attempt time (s)
    # Field scale for direction smoothing (V/m).  Chosen far below the
    # smallest field with a finite KAI time, so wherever dynamics are
    # active the target is exactly 0 or 1 (in double precision) and the
    # smoothing only serves Jacobian continuity around E = 0.
    e_smooth: float = 2e6

    def __post_init__(self):
        if self.ps <= 0 or self.t_fe <= 0 or self.area <= 0:
            raise CalibrationError("ps, t_fe and area must be positive")
        if self.tau0 <= 0 or self.e_activation <= 0 or self.alpha <= 0:
            raise CalibrationError("KAI parameters must be positive")

    @property
    def c_static(self) -> float:
        """Linear (background) capacitance of the layer, farads."""
        return self.eps_fe * self.area / self.t_fe

    def with_thickness(self, t_fe: float) -> "FerroParams":
        return replace(self, t_fe=t_fe)


class FerroelectricLayer:
    """Stateful polarization model of a single FE layer.

    The committed state is ``s`` (up-domain fraction).  ``preview`` computes
    the state a timestep *would* reach under a field without mutating
    anything; ``advance`` commits it.
    """

    def __init__(self, params: FerroParams, s: float = 0.0):
        self.params = params
        if not 0.0 <= s <= 1.0:
            raise CalibrationError(f"domain fraction must be in [0,1], got {s}")
        self.s = float(s)
        # Read-disturb bookkeeping (used by SG-FeFETs; see fefet.py).
        self.disturb_events = 0

    # -- kinetics ---------------------------------------------------------------

    def tau(self, e_field: float) -> float:
        """KAI characteristic switching time at field magnitude |E| (s)."""
        e_mag = abs(e_field)
        if e_mag <= 0.0:
            return math.inf
        ratio = self.params.e_activation / e_mag
        # Guard the power itself: tiny fields give astronomically large
        # ratios whose cube would overflow before the exp clamp applies.
        if self.params.alpha * math.log10(ratio) > math.log10(_MAX_EXPONENT):
            return math.inf
        exponent = ratio ** self.params.alpha
        if exponent > _MAX_EXPONENT:
            return math.inf
        return self.params.tau0 * math.exp(exponent)

    def s_target(self, e_field: float) -> float:
        """Equilibrium domain fraction for a sustained field.

        Smoothly interpolates between 0 (negative field) and 1 (positive
        field); the smoothing keeps circuit Jacobians continuous near E=0,
        where ``tau`` is infinite anyway so the target has no effect.
        """
        x = e_field / self.params.e_smooth
        if x > 40.0:
            return 1.0
        if x < -40.0:
            return 0.0
        return 1.0 / (1.0 + math.exp(-x))

    def preview(self, e_field: float, dt: float, s_from: float = None) -> float:
        """Domain fraction after ``dt`` seconds at constant field ``e_field``.

        Exact exponential relaxation step: unconditionally stable and
        bounded in [0, 1] for any dt.
        """
        s0 = self.s if s_from is None else s_from
        if dt <= 0.0:
            return s0
        tau = self.tau(e_field)
        if math.isinf(tau):
            return s0
        target = self.s_target(e_field)
        return target + (s0 - target) * math.exp(-dt / tau)

    def advance(self, e_field: float, dt: float) -> float:
        """Commit a timestep; returns the new domain fraction."""
        self.s = self.preview(e_field, dt)
        return self.s

    # -- observables ------------------------------------------------------------

    @property
    def polarization(self) -> float:
        """Remanent polarization, C/m^2 (signed)."""
        return self.params.ps * (2.0 * self.s - 1.0)

    @property
    def p_normalized(self) -> float:
        """Polarization normalized to [-1, 1]."""
        return 2.0 * self.s - 1.0

    def polarization_of(self, s: float) -> float:
        return self.params.ps * (2.0 * s - 1.0)

    def charge(self, v_fe: float, s: float = None) -> float:
        """Total gate charge of the layer: linear + switched (coulombs)."""
        s_val = self.s if s is None else s
        return (self.params.c_static * v_fe
                + self.params.area * self.polarization_of(s_val))

    def switching_charge(self, s_from: float, s_to: float) -> float:
        """Polarization charge moved between two states (coulombs, >= 0)."""
        return self.params.area * self.params.ps * 2.0 * abs(s_to - s_from)

    # -- characterization helpers -------------------------------------------------

    def effective_coercive_field(self, pulse_width: float) -> float:
        """Field whose KAI time equals ``pulse_width`` — the apparent
        coercive field for that pulse duration (V/m)."""
        if pulse_width <= self.params.tau0:
            return math.inf
        log_ratio = math.log(pulse_width / self.params.tau0)
        return self.params.e_activation / log_ratio ** (1.0 / self.params.alpha)

    def sweep_loop(self, e_peak: float, period: float, points_per_branch: int = 200):
        """Trace a triangular field sweep and return (E, P) arrays.

        Runs two full cycles so the returned (second-cycle) loop is the
        steady-state hysteresis loop; used by characterization tests and
        the Fig. 1 device bench.
        """
        dt = period / (4.0 * points_per_branch)
        fields = []
        # Triangular wave: 0 -> +E -> -E -> +E -> ... two cycles.
        segments = [(0.0, e_peak), (e_peak, -e_peak), (-e_peak, e_peak),
                    (e_peak, -e_peak), (-e_peak, 0.0)]
        for start, stop in segments:
            steps = 2 * points_per_branch if abs(stop - start) > abs(e_peak) else points_per_branch
            for k in range(steps):
                fields.append(start + (stop - start) * (k + 1) / steps)
        e_trace, p_trace = [], []
        for e in fields:
            self.advance(e, dt)
            e_trace.append(e)
            p_trace.append(self.polarization)
        return e_trace, p_trace

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<FerroelectricLayer s={self.s:.3f} "
                f"P={self.polarization * 1e2:.2f} uC/cm^2>")
