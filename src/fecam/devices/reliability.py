"""FeFET reliability models: write endurance and data retention.

The paper's case for the DG flavour leans on reliability claims we make
quantitative here:

* **Endurance** (Sec. I/II): the thick-FE SG-FeFET "suffers severe charge
  trapping which limits the endurance"; the ±2 V DG write "improves the
  endurance to the 1e10 level" [18].  We model per-cycle trap generation
  as exponential in write voltage (trap injection is field-accelerated),
  with the device failing once trapped charge eats a quarter of the
  memory window.  Calibration anchors: ~1e10 cycles at ±2 V [18] and
  ~1e6 at ±4 V (typical thick-stack HZO endurance).
* **Retention**: the polarization relaxes under its own depolarization
  field with an Arrhenius time constant; partially polarized states (the
  1.5T1Fe 'X' level) sit in shallower wells and decay faster — the classic
  multi-level-cell retention penalty.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..designs import DesignKind
from ..devices import fefet_params_for, operating_voltages
from ..errors import CalibrationError, OperationError

__all__ = ["EnduranceModel", "RetentionModel", "reliability_report"]

_SECONDS_PER_YEAR = 365.25 * 24 * 3600.0


@dataclass(frozen=True)
class EnduranceModel:
    """Cycling endurance vs write voltage.

    ``cycles_to_failure = n_ref * exp(-(v - v_ref) / v0)`` — anchored so a
    2 V write survives ~1e10 cycles [18] and a 4 V write ~1e6 (thick-stack
    trapping).  ``v0 = 2 / ln(1e4) ~= 0.217 V``.
    """

    n_ref: float = 1e10  # cycles at the reference voltage
    v_ref: float = 2.0  # volts
    v0: float = 2.0 / math.log(1e4)

    def cycles_to_failure(self, write_voltage: float) -> float:
        v = abs(write_voltage)
        if v <= 0:
            raise OperationError("write voltage must be non-zero")
        return self.n_ref * math.exp(-(v - self.v_ref) / self.v0)

    def mw_degradation(self, cycles: float, write_voltage: float) -> float:
        """Fraction of the memory window lost after ``cycles`` writes.

        Trap build-up is log-linear in cycle count (standard HZO
        behaviour); 25 % loss defines failure, reached at
        ``cycles_to_failure``.
        """
        if cycles < 0:
            raise OperationError("cycle count must be non-negative")
        if cycles < 1.0:
            return 0.0
        n_fail = self.cycles_to_failure(write_voltage)
        loss = 0.25 * math.log1p(cycles) / math.log1p(n_fail)
        return min(loss, 1.0)

    def lifetime_years(self, write_voltage: float,
                       writes_per_second: float) -> float:
        if writes_per_second <= 0:
            raise OperationError("write rate must be positive")
        return (self.cycles_to_failure(write_voltage)
                / writes_per_second / _SECONDS_PER_YEAR)


@dataclass(frozen=True)
class RetentionModel:
    """Polarization retention of a programmed state.

    The domain fraction relaxes toward 0.5 (depolarized) with
    ``tau(s) = tau_full * 4 * s * (1 - s_eff)``-style well-depth scaling:
    fully written states (s = 0 or 1) sit in the deepest wells
    (``tau_full`` ~ 10 years at 85 C), the intermediate MVT state decays
    faster by ``mvt_penalty``.
    """

    tau_full: float = 10.0 * _SECONDS_PER_YEAR
    mvt_penalty: float = 10.0  # MVT decays this much faster

    def tau(self, s: float) -> float:
        if not 0.0 <= s <= 1.0:
            raise CalibrationError("fraction must be in [0,1]")
        depth = abs(2.0 * s - 1.0)  # 1 at full polarization, 0 at MVT
        tau_floor = self.tau_full / self.mvt_penalty
        return tau_floor + (self.tau_full - tau_floor) * depth

    def fraction_after(self, s0: float, seconds: float) -> float:
        """Domain fraction after a bake of ``seconds`` at the rated temp."""
        if seconds < 0:
            raise OperationError("time must be non-negative")
        tau = self.tau(s0)
        return 0.5 + (s0 - 0.5) * math.exp(-seconds / tau)

    def vth_drift_after(self, design: DesignKind, s0: float,
                        seconds: float) -> float:
        """|VT shift| caused by retention loss (volts, FG-referenced)."""
        params = fefet_params_for(design)
        s_t = self.fraction_after(s0, seconds)
        return abs(params.vth_eff(s_t) - params.vth_eff(s0))


def reliability_report(design: DesignKind, *,
                       writes_per_second: float = 1.0,
                       retention_years: float = 10.0) -> dict:
    """Endurance + retention summary for one design's write voltage."""
    if not design.is_fefet:
        raise OperationError("the CMOS TCAM has no FE reliability limits")
    volts = operating_voltages(design)
    endurance = EnduranceModel()
    retention = RetentionModel()
    seconds = retention_years * _SECONDS_PER_YEAR
    from ..devices import cell_sizing

    s_x = (cell_sizing(design).s_x if design.is_one_fefet else 0.5)
    return {
        "design": str(design),
        "write_voltage": volts.vw,
        "cycles_to_failure": endurance.cycles_to_failure(volts.vw),
        "lifetime_years_at_rate": endurance.lifetime_years(
            volts.vw, writes_per_second),
        "mw_loss_at_1e6_cycles": endurance.mw_degradation(1e6, volts.vw),
        "retention_vth_drift_lvt_v": retention.vth_drift_after(
            design, 1.0, seconds),
        "retention_vth_drift_x_v": (retention.vth_drift_after(
            design, s_x, seconds) if design.is_one_fefet else None),
    }
