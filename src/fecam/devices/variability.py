"""Device variability and Monte-Carlo yield analysis (DESIGN.md S12).

The paper's DG-FeFET sources cite a comprehensive variability analysis
([19]: VT sigma from domain granularity and geometry) as a key concern
for multi-level storage — exactly what the 1.5T1Fe cell's three-state
encoding stresses.  This module samples per-device parameter variations
and evaluates the divider's DC sense margins over the population,
reporting the functional-yield statistics a designer would sign off on.

The variation model is the standard compact-model one:

* ``sigma_vth`` — threshold shifts (RDF + work-function granularity),
  amplified for the FE stack by domain-count statistics: the MVT state
  is an *average* over N domains, so its VT sigma carries an extra
  ``sqrt(s*(1-s)/n_domains) * mw_fg`` binomial term.
* ``sigma_pr_rel`` — relative remanent-polarization spread (affects the
  memory window, i.e. the HVT/LVT separation).
* MOSFET ``sigma_vth`` scaled by the Pelgrom area law from a reference
  40 x 20 nm device.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..designs import DesignKind
from ..devices import (VDD, CellSizing, cell_sizing, make_fefet, nmos,
                       operating_voltages, pmos)
from ..errors import CalibrationError, OperationError

__all__ = ["VariationParams", "sample_vth_shifts", "MonteCarloResult",
           "divider_yield"]


@dataclass(frozen=True)
class VariationParams:
    """Sigma set for one Monte-Carlo run."""

    sigma_vth_fefet: float = 0.020  # V, FeFET VT sigma (written state)
    sigma_pr_rel: float = 0.04  # relative Pr spread
    n_domains: int = 80  # FE domains per 20x50 nm device
    sigma_vth_mos_ref: float = 0.020  # V for the 40x20 nm reference MOSFET
    mos_ref_area: float = 40e-9 * 20e-9

    def __post_init__(self):
        if self.n_domains < 1:
            raise CalibrationError("need at least one FE domain")
        if min(self.sigma_vth_fefet, self.sigma_pr_rel,
               self.sigma_vth_mos_ref) < 0:
            raise CalibrationError("sigmas must be non-negative")

    def mos_sigma(self, w: float, l: float) -> float:
        """Pelgrom scaling: sigma ~ 1/sqrt(area)."""
        return self.sigma_vth_mos_ref * math.sqrt(
            self.mos_ref_area / (w * l))

    def fefet_state_sigma(self, s: float, mw_fg: float) -> float:
        """VT sigma of a programmed state at domain fraction ``s``.

        Combines the baseline device sigma with the binomial domain-count
        term — largest for the intermediate MVT state, zero at full
        polarization; this is why multi-level FeFET storage is variation
        sensitive ([19])."""
        binomial = math.sqrt(max(s * (1.0 - s), 0.0) / self.n_domains)
        return math.hypot(self.sigma_vth_fefet, binomial * mw_fg)


def sample_vth_shifts(design: DesignKind, params: VariationParams,
                      rng: random.Random) -> Dict[str, float]:
    """Draw one cell instance's threshold shifts (volts)."""
    sz = cell_sizing(design)
    from ..devices import fefet_params_for
    mw = fefet_params_for(design).mw_fg
    return {
        "fe_hvt": rng.gauss(0.0, params.fefet_state_sigma(0.0, mw)),
        "fe_lvt": rng.gauss(0.0, params.fefet_state_sigma(1.0, mw)),
        "fe_mvt": rng.gauss(0.0, params.fefet_state_sigma(sz.s_x, mw)),
        "tn": rng.gauss(0.0, params.mos_sigma(sz.tn_w, sz.tn_l)),
        "tp": rng.gauss(0.0, params.mos_sigma(sz.tp_w, sz.tp_l)),
        "tml": rng.gauss(0.0, params.mos_sigma(sz.tml_w, sz.tml_l)),
    }


def _slbar_with_shifts(design: DesignKind, stored_s: float, search_bit: str,
                       shifts: Dict[str, float], pr_scale: float) -> float:
    """SL_bar equilibrium with per-instance VT shifts applied."""
    sz = cell_sizing(design)
    volts = operating_voltages(design)
    from ..devices import fefet_params_for

    base = fefet_params_for(design)
    state_key = {0.0: "fe_hvt", 1.0: "fe_lvt"}.get(stored_s, "fe_mvt")
    fef_params = base.scaled(vth_mid=base.vth_mid + shifts[state_key],
                             mw_fg=base.mw_fg * pr_scale)
    from ..devices.fefet import FeFet

    fef = FeFet("F", "f", "d", "s", "b", params=fef_params,
                initial_s=stored_s)
    if design.is_double_gate:
        v_fg = volts.vb if search_bit == "0" else 0.0
        v_bg = volts.vsel
    else:
        v_fg = volts.vsel
        v_bg = 0.0
    lo, hi = 0.0, VDD
    if search_bit == "0":
        tn = nmos("TN", "a", "g", "b", w=sz.tn_w, l=sz.tn_l,
                  vth=sz.tn_vth + shifts["tn"])
        for _ in range(50):
            v = 0.5 * (lo + hi)
            if (fef.channel_current(v_fg, VDD, v, v_bg)
                    > tn.channel_current(v, VDD, 0.0, 0.0)):
                lo = v
            else:
                hi = v
    else:
        tp = pmos("TP", "a", "g", "b", w=sz.tp_w, l=sz.tp_l,
                  vth=sz.tp_vth + shifts["tp"])
        for _ in range(50):
            v = 0.5 * (lo + hi)
            if (-tp.channel_current(v, 0.0, VDD, VDD)
                    > fef.channel_current(v_fg, v, 0.0, v_bg)):
                lo = v
            else:
                hi = v
    return 0.5 * (lo + hi)


@dataclass
class MonteCarloResult:
    """Population statistics of the divider margins."""

    design: DesignKind
    samples: int
    functional: int
    mismatch_margins: List[float] = field(repr=False, default_factory=list)
    match_margins: List[float] = field(repr=False, default_factory=list)

    @property
    def yield_fraction(self) -> float:
        return self.functional / self.samples if self.samples else 0.0

    @property
    def worst_mismatch_margin(self) -> float:
        return min(self.mismatch_margins) if self.mismatch_margins else float("nan")

    @property
    def worst_match_margin(self) -> float:
        return min(self.match_margins) if self.match_margins else float("nan")

    def margin_percentile(self, q: float) -> float:
        """q-quantile (0..1) of the per-sample worst margin."""
        worst = sorted(min(a, b) for a, b in
                       zip(self.mismatch_margins, self.match_margins))
        if not worst:
            return float("nan")
        idx = min(int(q * len(worst)), len(worst) - 1)
        return worst[idx]


def divider_yield(design: DesignKind, *, samples: int = 200,
                  params: Optional[VariationParams] = None,
                  seed: int = 1) -> MonteCarloResult:
    """Monte-Carlo functional yield of the 1.5T1Fe divider.

    A sample is functional when both mismatch levels clear the (shifted)
    TML threshold from above and all four match/don't-care levels from
    below.
    """
    if not design.is_one_fefet:
        raise OperationError(f"{design} has no 1.5T1Fe divider")
    if samples < 1:
        raise OperationError("need at least one sample")
    params = params or VariationParams()
    rng = random.Random(seed)
    sz = cell_sizing(design)
    result = MonteCarloResult(design=design, samples=samples, functional=0)
    for _ in range(samples):
        shifts = sample_vth_shifts(design, params, rng)
        pr_scale = max(0.5, 1.0 + rng.gauss(0.0, params.sigma_pr_rel))
        t = sz.tml_vth + shifts["tml"]
        v10 = _slbar_with_shifts(design, 1.0, "0", shifts, pr_scale)
        v01 = _slbar_with_shifts(design, 0.0, "1", shifts, pr_scale)
        v00 = _slbar_with_shifts(design, 0.0, "0", shifts, pr_scale)
        v11 = _slbar_with_shifts(design, 1.0, "1", shifts, pr_scale)
        vx0 = _slbar_with_shifts(design, sz.s_x, "0", shifts, pr_scale)
        vx1 = _slbar_with_shifts(design, sz.s_x, "1", shifts, pr_scale)
        mis = min(v10, v01) - t
        mat = t - max(v00, v11, vx0, vx1)
        result.mismatch_margins.append(mis)
        result.match_margins.append(mat)
        if mis > 0 and mat > 0:
            result.functional += 1
    return result
