"""Paper-vs-measured reporting helpers shared by all benches.

Every bench prints a table whose rows pair the paper's reported value
with our measured one, plus the ratio — the format EXPERIMENTS.md
records.  Absolute agreement is not the goal (the paper's numbers come
from a proprietary PDK); orderings and approximate factors are.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["format_table", "ratio", "print_experiment"]


def ratio(paper: Optional[float], measured: Optional[float]) -> Optional[float]:
    """measured / paper, or None when either side is unavailable."""
    if paper is None or measured is None or paper == 0:
        return None
    return measured / paper


def _fmt(value, digits=3) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{digits}g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Plain-text aligned table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def print_experiment(title: str, headers: Sequence[str],
                     rows: Iterable[Sequence]) -> str:
    """Print and return a titled experiment table."""
    text = f"\n=== {title} ===\n{format_table(headers, rows)}\n"
    print(text)
    return text
