"""Experiment harness: runners for every paper table/figure + reporting."""

from .experiments import (ablation_divider_margins, ablation_early_termination,
                          fig1_iv_curves, fig4_transient_waveforms,
                          fig6_shared_driver, fig7_wordlength_sweep,
                          table1_operations, table2_operations,
                          table3_operations, table4_fom)
from .report import format_table, print_experiment, ratio

__all__ = [
    "fig1_iv_curves", "fig4_transient_waveforms", "fig6_shared_driver",
    "fig7_wordlength_sweep", "table1_operations", "table2_operations",
    "table3_operations", "table4_fom", "ablation_early_termination",
    "ablation_divider_margins",
    "format_table", "print_experiment", "ratio",
]
