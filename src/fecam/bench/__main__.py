"""``python -m fecam.bench`` — serving-stack analysis entry points.

Subcommands:

``profile-serve``
    Drive a concurrent query workload through a fabric-backed
    :class:`~fecam.service.SearchService` and print a ranked
    trace-stage breakdown (where the serving pipeline says the time
    went) next to a cProfile table (where Python says it went).
"""

from __future__ import annotations

import argparse
import sys

from .profile import run_profile_serve


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m fecam.bench",
        description="Serving-stack analysis tools.")
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser(
        "profile-serve",
        help="profile the concurrent serve path (cProfile + trace "
             "stages)")
    serve.add_argument("--banks", type=int, default=8)
    serve.add_argument("--rows-per-bank", type=int, default=1024)
    serve.add_argument("--width", type=int, default=64)
    serve.add_argument("--fill", type=float, default=0.5,
                       help="fraction of rows populated (default 0.5)")
    serve.add_argument("--threads", type=int, default=8)
    serve.add_argument("--requests-per-thread", type=int, default=200)
    serve.add_argument("--max-batch", type=int, default=256)
    serve.add_argument("--max-wait", type=float, default=0.0)
    serve.add_argument("--sample-every", type=int, default=1,
                       help="trace 1-in-N requests (default: every "
                            "request)")
    serve.add_argument("--top", type=int, default=20,
                       help="cProfile rows to print")
    serve.add_argument("--sort", default="cumulative",
                       choices=("cumulative", "tottime", "ncalls"),
                       help="cProfile sort key")
    serve.add_argument("--seed", type=int, default=1234)
    serve.set_defaults(run=run_profile_serve)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.run(args)


if __name__ == "__main__":
    sys.exit(main())
