"""Experiment runners: one function per paper table/figure.

Each returns plain data (lists/dicts) that the pytest-benchmark files
print and EXPERIMENTS.md records.  Keeping them here lets the example
scripts, the test suite, and the benches share one implementation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..arch import PAPER_TABLE4, SharedDriverMat
from ..cam import (TcamArrayCircuit, WriteController, divider_margins,
                   simulate_word_search, two_step_search_outcome)
from ..cam.states import ternary_match
from ..designs import DesignKind
from ..devices import make_fefet, operating_voltages
from ..functional import TernaryCAM
from ..metrics import DesignPoint, evaluate, sweep
from ..units import FJ, PS

__all__ = [
    "fig1_iv_curves", "fig4_transient_waveforms", "fig6_shared_driver",
    "fig7_wordlength_sweep", "table1_operations", "table2_operations",
    "table3_operations", "table4_fom", "ablation_early_termination",
    "ablation_divider_margins",
]


# ---------------------------------------------------------------------------
# Fig. 1: device I-V characteristics
# ---------------------------------------------------------------------------

def fig1_iv_curves(points: int = 61) -> Dict[str, Dict]:
    """SG FG-read (Fig. 1c) and DG BG-read (Fig. 1d) I-V data + metrics."""
    out: Dict[str, Dict] = {}
    # SG: VFG sweep -1..1, HVT vs LVT, drain at 0.8 V.
    sg_h = make_fefet(DesignKind.SG_1T5, "SGH", "f", "d", "s", "b", initial_s=0.0)
    sg_l = make_fefet(DesignKind.SG_1T5, "SGL", "f", "d", "s", "b", initial_s=1.0)
    v_fg = np.linspace(-1.0, 1.0, points)
    out["sg_fg_read"] = {
        "v": v_fg.tolist(),
        "i_hvt": [sg_h.channel_current(v, 0.8, 0.0, 0.0) for v in v_fg],
        "i_lvt": [sg_l.channel_current(v, 0.8, 0.0, 0.0) for v in v_fg],
        "mw_v": sg_h.params.vth_eff(0.0) - sg_h.params.vth_eff(1.0),
        "paper_mw_v": 1.8,
        "t_fe_nm": sg_h.params.ferro.t_fe * 1e9,
        "write_v": operating_voltages(DesignKind.SG_1T5).vw,
    }
    # DG: VBG sweep -1..4 with FG grounded.
    dg_h = make_fefet(DesignKind.DG_1T5, "DGH", "f", "d", "s", "b", initial_s=0.0)
    dg_l = make_fefet(DesignKind.DG_1T5, "DGL", "f", "d", "s", "b", initial_s=1.0)
    v_bg = np.linspace(-1.0, 4.0, points)
    i_on = dg_l.channel_current(0.0, 0.8, 0.0, 2.0)
    i_off = dg_h.channel_current(0.0, 0.8, 0.0, 2.0)
    out["dg_bg_read"] = {
        "v": v_bg.tolist(),
        "i_hvt": [dg_h.channel_current(0.0, 0.8, 0.0, v) for v in v_bg],
        "i_lvt": [dg_l.channel_current(0.0, 0.8, 0.0, v) for v in v_bg],
        "mw_v": dg_h.params.vth_bg(0.0) - dg_h.params.vth_bg(1.0),
        "paper_mw_v": 2.7,
        "t_fe_nm": dg_h.params.ferro.t_fe * 1e9,
        "write_v": operating_voltages(DesignKind.DG_1T5).vw,
        "on_off_at_2v": i_on / i_off,
        "paper_on_off_at_2v": 1e4,
        "ss_fg_mv_dec": dg_h.params.subthreshold_swing_fg * 1e3,
        "ss_bg_mv_dec": dg_h.params.subthreshold_swing_bg * 1e3,
    }
    return out


# ---------------------------------------------------------------------------
# Fig. 4: 1.5T1DG-Fe transient waveforms
# ---------------------------------------------------------------------------

def fig4_transient_waveforms(n_bits: int = 64) -> Dict[str, Dict]:
    """SeL / ML / SA-out traces for match, step-1 miss, step-2 miss."""
    traces = {}
    for scenario in ("step1_miss", "step2_miss", "match"):
        r = simulate_word_search(DesignKind.DG_1T5, n_bits, scenario)
        res = r.result
        traces[scenario] = {
            "t": res.t.tolist(),
            "sela": res.voltage("sela").tolist(),
            "selb": (res.voltage("selb").tolist()
                     if "selb" in res.voltages else None),
            "ml": res.voltage("ml").tolist(),
            "sa_out": res.voltage("mlp.sa_out").tolist(),
            "latency_ps": None if r.latency is None else r.latency / PS,
            "matched": r.matched,
            "expected": r.expected_match,
            "steps_run": r.steps_run,
        }
    return traces


# ---------------------------------------------------------------------------
# Tables I-III: cell operation truth tables (SPICE-verified)
# ---------------------------------------------------------------------------

_TRUTH_TABLE_WORD = 16  # realistic word width; the probe cell is bit 0


def _operation_rows(design: DesignKind) -> List[Dict]:
    """Exhaustive store x search verification: every ternary state of a
    probe cell against both query bits, inside a realistic 16-bit word
    (padding cells store 'X', so only the probe decides the match).

    Sub-4-bit words are not exercised: with almost no charge on the ML,
    the inter-step coupling blip alone can flip them — real TCAM words
    are 16 bits or wider (cf. the paper's Fig. 7 sweep starting at 16).
    """
    rows = []
    pad = _TRUTH_TABLE_WORD - 1
    for stored_sym in ("0", "1", "X"):
        for query_bit in ("0", "1"):
            stored = stored_sym + "X" * pad
            query = query_bit + "0" * pad
            arr = TcamArrayCircuit(design, rows=1, cols=_TRUTH_TABLE_WORD)
            arr.program(0, stored)
            result = arr.search(query)
            rows.append({
                "stored": stored_sym,
                "search": query_bit,
                "expected_match": ternary_match(stored, query),
                "measured_match": result.matches[0],
                "correct": result.matches[0] == ternary_match(stored, query),
            })
    return rows


def table1_operations() -> List[Dict]:
    """Tab. I — 2DG-FeFET cell operations."""
    return _operation_rows(DesignKind.DG_2FEFET)


def table2_operations() -> List[Dict]:
    """Tab. II — 1.5T1DG-Fe cell operations (write voltages included)."""
    rows = _operation_rows(DesignKind.DG_1T5)
    volts = operating_voltages(DesignKind.DG_1T5)
    for row in rows:
        row["vw"] = volts.vw
        row["vm"] = volts.vm
        row["vsel"] = volts.vsel
        row["vb"] = volts.vb
    return rows


def table3_operations() -> List[Dict]:
    """Tab. III — 1.5T1SG-Fe cell operations."""
    rows = _operation_rows(DesignKind.SG_1T5)
    volts = operating_voltages(DesignKind.SG_1T5)
    for row in rows:
        row["vw"] = volts.vw
        row["vm"] = volts.vm
        row["vsel"] = volts.vsel
    return rows


# ---------------------------------------------------------------------------
# Table IV: the headline FoM comparison
# ---------------------------------------------------------------------------

def table4_fom(rows: int = 64, word_length: int = 64,
               fidelity: str = "spice") -> List[Dict]:
    """Every design's FoM next to the paper's reported value.

    ``fidelity`` selects the metrics tier producing the measured column
    (``"spice"`` reproduces the historical SPICE-backed table;
    ``"analytical"`` regenerates it in microseconds).
    """
    out = []
    for design in (DesignKind.CMOS_16T, DesignKind.SG_2FEFET,
                   DesignKind.DG_2FEFET, DesignKind.SG_1T5,
                   DesignKind.DG_1T5):
        fom = evaluate(DesignPoint(design=design, rows=rows,
                                   word_length=word_length), fidelity)
        measured = fom.as_row()
        paper = PAPER_TABLE4[design]
        out.append({"design": str(design), "paper": paper,
                    "measured": measured})
    return out


# ---------------------------------------------------------------------------
# Fig. 7: word-length sweep
# ---------------------------------------------------------------------------

def fig7_wordlength_sweep(word_lengths: Sequence[int] = (16, 32, 64, 128),
                          fidelity: str = "spice",
                          ) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Search latency and energy/bit vs word length, four FeFET designs.

    Runs on :func:`fecam.metrics.sweep`; ``fidelity="analytical"``
    regenerates the figure in microseconds for quick what-ifs.
    """
    table = sweep(designs=DesignKind.fefet_designs(),
                  word_lengths=tuple(word_lengths), rows=(64,),
                  fidelity=fidelity)
    out: Dict[str, Dict[int, Dict[str, float]]] = {}
    for i, design in enumerate(table["design"]):
        n = int(table["word_length"][i])
        out.setdefault(design, {})[n] = {
            "latency_ps": float(table["latency_total_ps"][i]),
            "latency_1step_ps": float(table["latency_1step_ps"][i]),
            "energy_avg_fj_per_bit": float(table["energy_avg_fj"][i]),
            "energy_1step_fj_per_bit": float(table["energy_1step_fj"][i]),
        }
    return out


# ---------------------------------------------------------------------------
# Fig. 6 / ablations
# ---------------------------------------------------------------------------

def fig6_shared_driver(rows: int = 64, cols: int = 64) -> List[Dict]:
    """Driver count/area/leakage with vs without the shared-driver mat."""
    return [SharedDriverMat(design, rows=rows, cols=cols).savings_summary()
            for design in DesignKind.fefet_designs()]


def ablation_early_termination(miss_rates: Sequence[float] = (
        0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 1.0),
        word_length: int = 64) -> List[Dict]:
    """Average search energy vs step-1 miss rate, with/without early
    termination (Sec. III-B3's energy-saving claim)."""
    out = []
    for design in (DesignKind.SG_1T5, DesignKind.DG_1T5):
        base = evaluate(DesignPoint(design=design,
                                    word_length=word_length), "spice")
        e1 = base.search_energy_1step
        e2 = base.search_energy_total
        for p in miss_rates:
            with_et = p * e1 + (1 - p) * e2
            out.append({
                "design": str(design),
                "step1_miss_rate": p,
                "energy_with_early_term_fj": with_et / FJ,
                "energy_without_fj": e2 / FJ,
                "saving_pct": 100.0 * (1 - with_et / e2),
            })
    return out


def ablation_divider_margins() -> List[Dict]:
    """Worst-case SL_bar margins of the frozen sizing (Eq. 1 health)."""
    out = []
    for design in (DesignKind.SG_1T5, DesignKind.DG_1T5):
        m = divider_margins(design)
        out.append({
            "design": str(design),
            "tml_vth": m.tml_vth,
            "mismatch_margin_v": m.mismatch_margin,
            "match_margin_v": m.match_margin,
            "functional": m.functional,
            "levels": m.levels.__dict__,
        })
    return out
