"""Serve-path profiling: cProfile + trace-stage breakdown in one run.

``python -m fecam.bench profile-serve`` stands up a fabric-backed store
behind a :class:`~fecam.service.SearchService`, drives a concurrent
query workload through it, and prints two ranked views of where the
time went:

1. the sampled per-request *stage* spans (queue, coalesce, lock_wait,
   kernel, freeze, plus the nested store/arena-kernel stages) from the
   PR 6 tracer — what the serving pipeline itself attributes;
2. a cProfile table over the same run — what Python function-level
   accounting attributes.

The two views cross-check each other: a stage that is hot here but
thin in cProfile points at time spent under released-GIL compiled code
or lock waits, and vice versa.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import random
import threading
import time

from typing import Any, Dict, List, Optional

from .. import kernels
from ..obs import Observability, Tracer
from ..service import SearchService
from ..store import CamStore, StoreConfig
from .report import format_table

__all__ = ["profile_serve", "run_profile_serve"]


class _StageCollector:
    """In-memory trace sink aggregating per-stage durations."""

    def __init__(self) -> None:
        self.stats: Dict[str, List[float]] = {}
        self.requests = 0
        self.total_s = 0.0

    def write(self, trace_dict: Dict[str, Any]) -> None:
        self.requests += 1
        self.total_s += trace_dict["duration_s"]
        for span in trace_dict["spans"]:
            if span["parent"] is None:
                continue  # the root "request" span is the denominator
            self.stats.setdefault(span["name"], []).append(
                span["duration_s"])


def _build_store(banks: int, rows_per_bank: int, width: int,
                 fill: float, seed: int) -> CamStore:
    rng = random.Random(seed)
    store = CamStore(StoreConfig(width=width, banks=banks,
                                 rows=banks * rows_per_bank,
                                 fidelity="analytical"))
    n_words = int(banks * rows_per_bank * fill)
    words = ["".join(rng.choice("01X") for _ in range(width))
             for _ in range(n_words)]
    store.insert_many(words, keys=list(range(n_words)))
    return store


def profile_serve(*, banks: int = 8, rows_per_bank: int = 1024,
                  width: int = 64, fill: float = 0.5, threads: int = 8,
                  requests_per_thread: int = 200, max_batch: int = 256,
                  max_wait: float = 0.0, sample_every: int = 1,
                  seed: int = 1234) -> Dict[str, Any]:
    """Run the workload; returns stage stats + a pstats.Stats object."""
    store = _build_store(banks, rows_per_bank, width, fill, seed)
    collector = _StageCollector()
    obs = Observability(tracer=Tracer(sample_every=sample_every,
                                      sink=collector))  # type: ignore[arg-type]
    rng = random.Random(seed + 1)
    per_thread = [
        ["".join(rng.choice("01") for _ in range(width))
         for _ in range(requests_per_thread)]
        for _ in range(threads)]

    service = SearchService(store, max_batch=max_batch,
                            max_wait=max_wait,
                            max_queue=threads * requests_per_thread,
                            obs=obs)

    def worker(queries: List[str]) -> None:
        for future in [service.submit(q) for q in queries]:
            future.result()

    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    try:
        pool = [threading.Thread(target=worker, args=(qs,))
                for qs in per_thread[1:]]
        for thread in pool:
            thread.start()
        worker(per_thread[0])
        for thread in pool:
            thread.join()
    finally:
        profiler.disable()
        service.close()
    elapsed = time.perf_counter() - started
    n_requests = threads * requests_per_thread
    return {
        "collector": collector,
        "profiler": profiler,
        "elapsed_s": elapsed,
        "requests": n_requests,
        "qps": n_requests / elapsed if elapsed > 0 else 0.0,
        "kernel_backend": kernels.backend_name(),
        "service_stats": service.stats,
    }


def _stage_table(collector: _StageCollector) -> str:
    rows = []
    for name, durations in sorted(collector.stats.items(),
                                  key=lambda kv: -sum(kv[1])):
        total = sum(durations)
        share = (100.0 * total / collector.total_s
                 if collector.total_s > 0 else 0.0)
        rows.append([name, len(durations), f"{total * 1e3:.2f}",
                     f"{total / len(durations) * 1e6:.1f}",
                     f"{share:.1f}%"])
    return format_table(
        ["stage", "spans", "total ms", "mean us", "share of e2e"], rows)


def run_profile_serve(args) -> int:
    """CLI driver for ``python -m fecam.bench profile-serve``."""
    outcome = profile_serve(
        banks=args.banks, rows_per_bank=args.rows_per_bank,
        width=args.width, fill=args.fill, threads=args.threads,
        requests_per_thread=args.requests_per_thread,
        max_batch=args.max_batch, max_wait=args.max_wait,
        sample_every=args.sample_every, seed=args.seed)
    collector = outcome["collector"]
    print(f"profile-serve: {outcome['requests']} requests, "
          f"{args.threads} threads, {args.banks}x{args.rows_per_bank}"
          f"x{args.width}, kernel backend = {outcome['kernel_backend']}")
    print(f"wall {outcome['elapsed_s']:.3f} s  ->  "
          f"{outcome['qps'] / 1e3:.1f} kq/s  "
          f"(batches: {outcome['service_stats'].batches})")
    print()
    print(f"Trace stages ({collector.requests} sampled requests; "
          f"sum of per-request e2e = {collector.total_s * 1e3:.1f} ms):")
    print(_stage_table(collector))
    print()
    print(f"cProfile (top {args.top} by cumulative time):")
    stream = io.StringIO()
    stats = pstats.Stats(outcome["profiler"], stream=stream)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    print(stream.getvalue())
    return 0
