"""Exception hierarchy for the fecam library.

Every error raised by fecam derives from :class:`FecamError` so callers can
catch library failures with a single ``except`` clause while still
distinguishing simulator problems (:class:`SimulationError`) from user-input
problems (:class:`NetlistError`, :class:`TernaryValueError`).
"""

from __future__ import annotations


class FecamError(Exception):
    """Base class for all fecam errors."""


class NetlistError(FecamError):
    """Raised when a circuit description is malformed.

    Examples: duplicate element names, references to undeclared nodes,
    non-positive resistances, or a voltage source loop.
    """


class SimulationError(FecamError):
    """Raised when an analysis cannot be completed."""


class ConvergenceError(SimulationError):
    """Raised when Newton-Raphson fails to converge.

    Carries the analysis context so the caller can report which time point
    or sweep value failed.
    """

    def __init__(self, message: str, *, iterations: int = 0, residual: float = float("nan")):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class CalibrationError(FecamError):
    """Raised when a device parameter set violates a physical constraint."""


class TernaryValueError(FecamError):
    """Raised for invalid ternary symbols or malformed ternary words."""


class OperationError(FecamError):
    """Raised when a CAM operation is applied in an invalid state.

    Example: searching a cell that was never written, or issuing step 2 of a
    two-step search before step 1.
    """


class ServiceError(OperationError):
    """Base class for serving-tier (:mod:`fecam.service`) failures."""


class ServiceClosed(ServiceError):
    """Raised when a request reaches a service that has shut down."""


class ServiceOverloaded(ServiceError):
    """Raised when the service's bounded request queue is full.

    Backpressure is explicit: callers see this error immediately rather
    than blocking behind an unbounded queue, and can retry, shed load,
    or route elsewhere.
    """


class ClusterError(ServiceError):
    """Base class for multi-process (:mod:`fecam.cluster`) failures."""


class ClusterWriterFailed(ClusterError):
    """Raised when the cluster's single writer is gone.

    Mutations fail fast from then on; workers keep serving reads from
    the last fully published arena generation (the degrade-gracefully
    half of the seqlock contract).
    """


class WorkerUnavailable(ClusterError):
    """Raised when a cluster worker cannot answer.

    Either its process died and could not be respawned, or its seqlock
    read spun past the timeout because a publish window never closed
    (writer died mid-mutation — the one state where reads must fail
    rather than return a torn view).
    """


class DurabilityError(OperationError):
    """Raised by the :mod:`fecam.durable` persistence layer.

    Examples: a corrupt snapshot with no older valid fallback, a WAL
    generation gap that cannot be explained by a torn tail, or a
    recovery replay that desynchronizes from the recorded generations.
    Torn WAL *tails* are never an error — they are the expected shape
    of a crash and are truncated during recovery.
    """


class SimulatedCrash(FecamError):
    """Raised by an armed :class:`~fecam.durable.CrashPoint` hook.

    Fault-injection tests arm a crash point at a named site (after N
    WAL appends, mid-snapshot, mid-reshard); the raise models the
    process dying at that instant, leaving whatever bytes already
    reached the filesystem as the surviving state to recover from.
    """


class KernelUnavailableError(FecamError):
    """Raised when the compiled match kernel cannot be provided.

    Causes: no C compiler on the host, a compile failure, an unloadable
    or ABI-mismatched cached library, or an explicit request for the
    compiled backend (``FECAM_KERNEL=compiled`` / ``kernel="compiled"``)
    on a host where it cannot be built.  When the backend choice is
    ``auto`` the registry catches this and falls back to NumPy; only a
    *forced* compiled selection surfaces it to callers.
    """


class ObservabilityError(FecamError):
    """Raised for misuse of the :mod:`fecam.obs` telemetry layer.

    Examples: registering two metrics under one name with different
    types or label sets, invalid metric/label names, or histogram
    buckets that are not strictly increasing.  Telemetry *recording*
    never raises this on the hot path — only registration-time
    configuration does.
    """
