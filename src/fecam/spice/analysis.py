"""MNA assembly, Newton-Raphson solver, DC and transient analyses.

The solver follows textbook SPICE practice:

* Unknown vector ``x = [node voltages | branch currents]``.
* Residual ``F(x)``: KCL per node plus one branch equation per voltage
  source; Newton iterates ``J dx = -F`` with per-step voltage limiting.
* DC operating point uses gmin stepping, then source stepping as fallback.
* Transient integrates with backward Euler; every element with state
  exposes a companion model through its ``stamp``/``commit`` methods and the
  step is retried with a halved timestep on non-convergence.

Matrices are dense numpy for small systems and switch to scipy sparse
factorization above a size threshold; TCAM word-level circuits stay well
under a thousand unknowns either way.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ConvergenceError, NetlistError, SimulationError
from .elements import VoltageSource
from .netlist import Circuit, Element, TerminalVoltages
from .results import OperatingPoint, SweepResult, TransientResult

_SPARSE_THRESHOLD = 400


@dataclass
class NewtonOptions:
    """Tolerances and iteration limits for the Newton solver."""

    abstol_v: float = 1e-6  # volts
    abstol_i: float = 1e-12  # amperes (branch unknowns)
    reltol: float = 1e-4
    residual_tol: float = 1e-9  # amperes, max KCL violation
    max_iterations: int = 100
    v_limit: float = 0.6  # max node-voltage change per iteration
    gmin: float = 1e-12  # siemens, every node to ground


class StampContext:
    """Mutable assembly target handed to each element's ``stamp``.

    ``add_j``/``add_f`` silently drop contributions to ground (index -1),
    which keeps element code free of special cases.
    """

    __slots__ = ("mode", "t", "h", "source_scale", "gmin", "_j", "_f", "_n")

    def __init__(self, n_unknowns: int):
        self.mode = "dc"
        self.t = 0.0
        self.h = 1.0
        self.source_scale = 1.0
        self.gmin = 1e-12
        self._n = n_unknowns
        self._j = np.zeros((n_unknowns, n_unknowns))
        self._f = np.zeros(n_unknowns)

    def reset(self) -> None:
        self._j[:, :] = 0.0
        self._f[:] = 0.0

    def add_j(self, row: int, col: int, value: float) -> None:
        if row >= 0 and col >= 0:
            self._j[row, col] += value

    def add_f(self, row: int, value: float) -> None:
        if row >= 0:
            self._f[row] += value


class _System:
    """Bound circuit: index assignment plus assembly/solve helpers."""

    def __init__(self, circuit: Circuit, options: NewtonOptions):
        self.circuit = circuit
        self.options = options
        self.n_nodes = circuit.num_nodes
        n_branches = 0
        self._views: List[TerminalVoltages] = []
        for element in circuit.elements:
            node_index = [circuit.node_index(t) for t in element.terminals]
            branch_index = [self.n_nodes + n_branches + k
                            for k in range(element.num_branches)]
            n_branches += element.num_branches
            element.bind(node_index, branch_index)
        self.n_unknowns = self.n_nodes + n_branches
        if self.n_unknowns == 0:
            raise NetlistError("circuit has no unknowns (empty netlist?)")
        self.ctx = StampContext(self.n_unknowns)
        self.ctx.gmin = options.gmin

    def views_for(self, x: np.ndarray) -> List[TerminalVoltages]:
        return [TerminalVoltages(x, e._node_index, e._branch_index)
                for e in self.circuit.elements]

    def assemble(self, x: np.ndarray, views: Sequence[TerminalVoltages],
                 gmin: float) -> None:
        ctx = self.ctx
        ctx.reset()
        for element, view in zip(self.circuit.elements, views):
            element.stamp(ctx, view)
        # gmin from every node to ground keeps otherwise-floating nodes
        # (capacitor-only or switched-off subnets) solvable.
        for k in range(self.n_nodes):
            ctx._j[k, k] += gmin
            ctx._f[k] += gmin * x[k]

    def solve_newton(self, x0: np.ndarray, *, mode: str, t: float, h: float,
                     gmin: float, source_scale: float = 1.0) -> np.ndarray:
        """Run Newton iterations from ``x0``; returns the solution.

        Raises :class:`ConvergenceError` if tolerances are not met within
        the iteration limit.
        """
        opts = self.options
        ctx = self.ctx
        ctx.mode = mode
        ctx.t = t
        ctx.h = h
        ctx.source_scale = source_scale
        x = x0.copy()
        views = self.views_for(x)
        last_residual = math.inf
        for iteration in range(opts.max_iterations):
            self.assemble(x, views, gmin)
            f = ctx._f
            last_residual = float(np.max(np.abs(f))) if f.size else 0.0
            try:
                if self.n_unknowns >= _SPARSE_THRESHOLD:
                    from scipy.sparse import csc_matrix
                    from scipy.sparse.linalg import spsolve
                    dx = spsolve(csc_matrix(ctx._j), -f)
                else:
                    dx = np.linalg.solve(ctx._j, -f)
            except np.linalg.LinAlgError as exc:
                raise ConvergenceError(
                    f"singular MNA matrix at t={t:.3e}s (iteration {iteration}): {exc}",
                    iterations=iteration, residual=last_residual) from exc
            if not np.all(np.isfinite(dx)):
                raise ConvergenceError(
                    f"non-finite Newton update at t={t:.3e}s",
                    iterations=iteration, residual=last_residual)
            # Voltage limiting on node entries only.
            dv = dx[:self.n_nodes]
            np.clip(dv, -opts.v_limit, opts.v_limit, out=dv)
            x[:self.n_nodes] += dv
            x[self.n_nodes:] += dx[self.n_nodes:]
            tol = (opts.abstol_v + opts.reltol * np.abs(x[:self.n_nodes]))
            dv_ok = bool(np.all(np.abs(dv) <= tol))
            if self.n_unknowns > self.n_nodes:
                dbr = dx[self.n_nodes:]
                tol_i = opts.abstol_i + opts.reltol * np.abs(x[self.n_nodes:])
                di_ok = bool(np.all(np.abs(dbr) <= tol_i))
            else:
                di_ok = True
            if dv_ok and di_ok and last_residual <= opts.residual_tol:
                return x
        raise ConvergenceError(
            f"Newton failed to converge after {opts.max_iterations} iterations "
            f"(t={t:.3e}s, residual={last_residual:.3e}A)",
            iterations=opts.max_iterations, residual=last_residual)


def operating_point(circuit: Circuit, *, t: float = 0.0,
                    options: Optional[NewtonOptions] = None,
                    initial_guess: Optional[Dict[str, float]] = None) -> OperatingPoint:
    """Solve the DC operating point at time ``t`` (sources evaluated there).

    Strategy: plain Newton from the initial guess; on failure, gmin stepping
    (solve with a large gmin, then relax it geometrically); on failure again,
    source stepping (ramp all source levels from 10 % to 100 %).
    """
    options = options or NewtonOptions()
    system = _System(circuit, options)
    x = np.zeros(system.n_unknowns)
    if initial_guess:
        for node, value in initial_guess.items():
            idx = circuit.node_index(node)
            if idx >= 0:
                x[idx] = value

    def finish(x_sol: np.ndarray) -> OperatingPoint:
        return OperatingPoint.from_solution(circuit, x_sol, system.n_nodes)

    try:
        return finish(system.solve_newton(x, mode="dc", t=t, h=1.0,
                                          gmin=options.gmin))
    except ConvergenceError:
        pass
    # gmin stepping
    x_work = x.copy()
    try:
        for gmin in (1e-3, 1e-5, 1e-7, 1e-9, options.gmin):
            x_work = system.solve_newton(x_work, mode="dc", t=t, h=1.0, gmin=gmin)
        return finish(x_work)
    except ConvergenceError:
        pass
    # source stepping
    x_work = np.zeros(system.n_unknowns)
    try:
        for scale in (0.1, 0.3, 0.5, 0.7, 0.85, 1.0):
            x_work = system.solve_newton(x_work, mode="dc", t=t, h=1.0,
                                         gmin=options.gmin, source_scale=scale)
        return finish(x_work)
    except ConvergenceError as exc:
        raise ConvergenceError(
            f"operating point failed for circuit {circuit.title!r} "
            f"after gmin and source stepping: {exc}",
            iterations=exc.iterations, residual=exc.residual) from exc


def dc_sweep(circuit: Circuit, source_name: str, values: Sequence[float], *,
             options: Optional[NewtonOptions] = None) -> SweepResult:
    """Sweep a voltage source's DC level, warm-starting each point.

    The swept source's waveform is replaced by each DC level in turn and
    restored afterwards.
    """
    from .waveforms import DC as DCWave

    source = circuit.element(source_name)
    if not isinstance(source, VoltageSource):
        raise NetlistError(f"{source_name} is not a VoltageSource")
    options = options or NewtonOptions()
    saved = source.waveform
    points: List[OperatingPoint] = []
    guess: Optional[Dict[str, float]] = None
    try:
        for value in values:
            source.waveform = DCWave(float(value))
            op = operating_point(circuit, options=options, initial_guess=guess)
            points.append(op)
            guess = dict(op.voltages)
    finally:
        source.waveform = saved
    return SweepResult(np.asarray(values, dtype=float), points)


@dataclass
class TransientOptions:
    """Transient analysis controls."""

    dt: float = 1e-12  # base timestep, seconds
    dt_min_factor: float = 1.0 / 64.0  # retry floor relative to dt
    newton: NewtonOptions = field(default_factory=NewtonOptions)
    use_initial_conditions: bool = False  # skip DC OP, start from ICs/zero


def transient(circuit: Circuit, t_stop: float, *,
              options: Optional[TransientOptions] = None,
              record_nodes: Optional[Sequence[str]] = None) -> TransientResult:
    """Backward-Euler transient from a DC operating point to ``t_stop``.

    Records every node voltage (or the subset in ``record_nodes``) and every
    voltage-source branch current and instantaneous delivered power at each
    accepted time point.  Non-convergent steps retry with halved timesteps
    down to ``dt * dt_min_factor``.
    """
    options = options or TransientOptions()
    if t_stop <= 0:
        raise SimulationError(f"t_stop must be positive, got {t_stop}")
    system = _System(circuit, options.newton)
    n_nodes = system.n_nodes

    # Initial solution.
    if options.use_initial_conditions:
        x = np.zeros(system.n_unknowns)
    else:
        op = operating_point(circuit, t=0.0, options=options.newton)
        x = op.solution.copy()

    views = system.views_for(x)
    for element, view in zip(circuit.elements, views):
        element.init_state(view)

    node_list = list(record_nodes) if record_nodes else list(circuit.node_names)
    node_idx = {name: circuit.node_index(name) for name in node_list}
    sources = [e for e in circuit.elements if isinstance(e, VoltageSource)]

    times: List[float] = [0.0]
    traces: Dict[str, List[float]] = {name: [0.0 if idx < 0 else float(x[idx])]
                                      for name, idx in node_idx.items()}
    currents: Dict[str, List[float]] = {}
    powers: Dict[str, List[float]] = {}
    for src in sources:
        i0 = float(x[src._branch_index[0]])
        v0 = src.level(0.0)
        currents[src.name] = [i0]
        # Branch current flows pos->neg inside the source; delivered power
        # is -v*i under that convention, negated so "delivered" is positive.
        powers[src.name] = [-(v0 * i0)]

    t = 0.0
    dt_min = options.dt * options.dt_min_factor
    while t < t_stop - 1e-6 * options.dt:
        # Stretch the final step up to 1.5*dt rather than leaving a sliver
        # step whose huge C/h companion conductance amplifies roundoff.
        remaining = t_stop - t
        h = remaining if remaining <= 1.5 * options.dt else options.dt
        while True:
            try:
                x_new = system.solve_newton(x, mode="tran", t=t + h, h=h,
                                            gmin=options.newton.gmin)
                break
            except ConvergenceError:
                h *= 0.5
                if h < dt_min:
                    raise
        x = x_new
        t += h
        new_views = system.views_for(x)
        for element, view in zip(circuit.elements, new_views):
            element.commit(view)
        times.append(t)
        for name, idx in node_idx.items():
            traces[name].append(0.0 if idx < 0 else float(x[idx]))
        for src in sources:
            i_br = float(x[src._branch_index[0]])
            v_src = src.level(t)
            currents[src.name].append(i_br)
            powers[src.name].append(-(v_src * i_br))

    return TransientResult(
        t=np.asarray(times),
        voltages={k: np.asarray(v) for k, v in traces.items()},
        branch_currents={k: np.asarray(v) for k, v in currents.items()},
        source_power={k: np.asarray(v) for k, v in powers.items()},
    )
