"""Circuit-simulation substrate: netlists, elements, DC and transient analyses.

This subpackage is a self-contained, SPICE-like modified-nodal-analysis
engine.  It exists because the paper's evaluation is entirely SPICE-based
and no external simulator is available in this environment; see DESIGN.md
(S1) for the substitution rationale.

Typical usage::

    from fecam.spice import Circuit, Resistor, Capacitor, VoltageSource, Pulse
    from fecam.spice import transient, TransientOptions

    ckt = Circuit("rc")
    ckt.add(VoltageSource("VIN", "in", "0", Pulse(0.0, 1.0, rise=10e-12)))
    ckt.add(Resistor("R1", "in", "out", 1e3))
    ckt.add(Capacitor("C1", "out", "0", 1e-15))
    result = transient(ckt, 10e-9)
    print(result.crossing_time("out", 0.5))
"""

from .ac import ACResult, ac_analysis
from .analysis import (NewtonOptions, StampContext, TransientOptions, dc_sweep,
                       operating_point, transient)
from .elements import (Capacitor, CurrentSource, Diode, Resistor, Switch,
                       VoltageSource)
from .netlist import Circuit, Element, TerminalVoltages, canonical_node
from .results import OperatingPoint, SweepResult, TransientResult
from .waveforms import DC, PWL, Pulse, Shifted, Sine, Waveform, step_sequence

__all__ = [
    "Circuit", "Element", "TerminalVoltages", "canonical_node",
    "Resistor", "Capacitor", "VoltageSource", "CurrentSource", "Switch", "Diode",
    "DC", "Pulse", "PWL", "Sine", "Shifted", "Waveform", "step_sequence",
    "NewtonOptions", "TransientOptions", "StampContext",
    "operating_point", "dc_sweep", "transient", "ac_analysis", "ACResult",
    "OperatingPoint", "SweepResult", "TransientResult",
]
