"""Analysis result containers and waveform measurements.

These classes are the interface between the raw solver and everything
downstream: delay extraction (ML discharge, SA output crossing), energy
integration per source (write energy, search energy by driver), and final
values for functional checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import SimulationError


class OperatingPoint:
    """Converged DC solution: node voltages and source branch currents."""

    def __init__(self, voltages: Dict[str, float], branch_currents: Dict[str, float],
                 solution: np.ndarray):
        self.voltages = voltages
        self.branch_currents = branch_currents
        self.solution = solution

    @classmethod
    def from_solution(cls, circuit, x: np.ndarray, n_nodes: int) -> "OperatingPoint":
        from .elements import VoltageSource

        voltages = {name: float(x[circuit.node_index(name)])
                    for name in circuit.node_names}
        currents = {}
        for element in circuit.elements:
            if isinstance(element, VoltageSource):
                currents[element.name] = float(x[element._branch_index[0]])
        return cls(voltages, currents, x)

    def voltage(self, node: str) -> float:
        if node in ("0", "gnd"):
            return 0.0
        try:
            return self.voltages[node]
        except KeyError:
            raise SimulationError(f"no node {node!r} in operating point") from None

    def current(self, source_name: str) -> float:
        """Branch current of a voltage source (pos -> neg through source)."""
        try:
            return self.branch_currents[source_name]
        except KeyError:
            raise SimulationError(f"no source {source_name!r} in operating point") from None

    def __repr__(self) -> str:  # pragma: no cover
        return f"<OperatingPoint {len(self.voltages)} nodes>"


class SweepResult:
    """Result of a DC sweep: one operating point per swept value."""

    def __init__(self, values: np.ndarray, points: List[OperatingPoint]):
        self.values = values
        self.points = points

    def voltage(self, node: str) -> np.ndarray:
        return np.asarray([p.voltage(node) for p in self.points])

    def current(self, source_name: str) -> np.ndarray:
        return np.asarray([p.current(source_name) for p in self.points])

    def __len__(self) -> int:
        return len(self.points)


@dataclass
class TransientResult:
    """Recorded transient waveforms plus measurement helpers."""

    t: np.ndarray
    voltages: Dict[str, np.ndarray]
    branch_currents: Dict[str, np.ndarray]
    source_power: Dict[str, np.ndarray]

    # -- raw access ----------------------------------------------------------

    def voltage(self, node: str) -> np.ndarray:
        if node in ("0", "gnd"):
            return np.zeros_like(self.t)
        try:
            return self.voltages[node]
        except KeyError:
            raise SimulationError(
                f"node {node!r} was not recorded; available: "
                f"{sorted(self.voltages)[:8]}...") from None

    def current(self, source_name: str) -> np.ndarray:
        try:
            return self.branch_currents[source_name]
        except KeyError:
            raise SimulationError(f"source {source_name!r} was not recorded") from None

    def sample(self, node: str, time: float) -> float:
        """Linearly interpolated node voltage at an arbitrary time."""
        return float(np.interp(time, self.t, self.voltage(node)))

    def final(self, node: str) -> float:
        return float(self.voltage(node)[-1])

    # -- measurements ----------------------------------------------------------

    def crossing_time(self, node: str, level: float, *, rising: bool = True,
                      after: float = 0.0) -> Optional[float]:
        """First time the node crosses ``level`` in the given direction.

        Returns ``None`` if the crossing never happens — callers decide
        whether that is an error (e.g. expected ML discharge) or a result
        (e.g. a match keeps ML high).
        """
        v = self.voltage(node)
        t = self.t
        mask = t >= after
        v = v[mask]
        t = t[mask]
        if len(v) < 2:
            return None
        if rising:
            hits = np.nonzero((v[:-1] < level) & (v[1:] >= level))[0]
        else:
            hits = np.nonzero((v[:-1] > level) & (v[1:] <= level))[0]
        if len(hits) == 0:
            return None
        i = int(hits[0])
        dv = v[i + 1] - v[i]
        frac = 0.0 if dv == 0 else (level - v[i]) / dv
        return float(t[i] + frac * (t[i + 1] - t[i]))

    def delay(self, from_node: str, to_node: str, *, from_level: float,
              to_level: float, from_rising: bool = True, to_rising: bool = True,
              after: float = 0.0) -> Optional[float]:
        """Propagation delay between two level crossings."""
        t0 = self.crossing_time(from_node, from_level, rising=from_rising, after=after)
        if t0 is None:
            return None
        t1 = self.crossing_time(to_node, to_level, rising=to_rising, after=t0)
        if t1 is None:
            return None
        return t1 - t0

    def energy(self, source_name: str, *, t_start: float = 0.0,
               t_stop: Optional[float] = None) -> float:
        """Energy delivered by a source over a window (trapezoid rule).

        Positive values mean the source injected energy into the circuit.
        """
        try:
            p = self.source_power[source_name]
        except KeyError:
            raise SimulationError(f"source {source_name!r} was not recorded") from None
        t = self.t
        t_stop = t_stop if t_stop is not None else float(t[-1])
        mask = (t >= t_start) & (t <= t_stop)
        if np.count_nonzero(mask) < 2:
            return 0.0
        return float(np.trapezoid(p[mask], t[mask]))

    def total_energy(self, prefix: str = "", *, t_start: float = 0.0,
                     t_stop: Optional[float] = None) -> float:
        """Sum of delivered energies over all sources whose name starts with
        ``prefix`` (empty prefix = all sources)."""
        return sum(self.energy(name, t_start=t_start, t_stop=t_stop)
                   for name in self.source_power if name.startswith(prefix))

    def energy_by_source(self, *, t_start: float = 0.0,
                         t_stop: Optional[float] = None) -> Dict[str, float]:
        return {name: self.energy(name, t_start=t_start, t_stop=t_stop)
                for name in self.source_power}

    def slice(self, t_start: float, t_stop: float) -> "TransientResult":
        """Return a copy restricted to a time window."""
        mask = (self.t >= t_start) & (self.t <= t_stop)
        return TransientResult(
            t=self.t[mask],
            voltages={k: v[mask] for k, v in self.voltages.items()},
            branch_currents={k: v[mask] for k, v in self.branch_currents.items()},
            source_power={k: v[mask] for k, v in self.source_power.items()},
        )
