"""Small-signal AC analysis.

Linearizes the circuit at its DC operating point and solves the complex
MNA system ``(G + j*omega*C) x = b`` over a frequency sweep.  Used by the
periphery analyses (sense-amplifier bandwidth, SL_bar divider pole) and
as an independent check on transient time constants.

The conductance matrix ``G`` is the Newton Jacobian at the operating
point — nonlinear devices are linearized exactly as the DC solver sees
them.  The capacitance matrix ``C`` is extracted numerically: each
element stamps its transient companion at two timestep values and the
difference isolates the ``C/h`` term.  This keeps every element's
dynamic model authoritative without a separate AC stamp interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..errors import NetlistError, SimulationError
from .analysis import NewtonOptions, _System, operating_point
from .elements import VoltageSource
from .netlist import Circuit

__all__ = ["ACResult", "ac_analysis"]


@dataclass
class ACResult:
    """Complex node responses over frequency."""

    frequencies: np.ndarray
    responses: Dict[str, np.ndarray]  # node -> complex array

    def transfer(self, node: str) -> np.ndarray:
        try:
            return self.responses[node]
        except KeyError:
            raise SimulationError(f"node {node!r} not recorded") from None

    def magnitude_db(self, node: str) -> np.ndarray:
        mag = np.abs(self.transfer(node))
        return 20.0 * np.log10(np.maximum(mag, 1e-30))

    def phase_deg(self, node: str) -> np.ndarray:
        return np.angle(self.transfer(node), deg=True)

    def corner_frequency(self, node: str, drop_db: float = 3.0) -> Optional[float]:
        """First frequency where the response falls ``drop_db`` below its
        low-frequency value, or None if it never does."""
        mag = self.magnitude_db(node)
        target = mag[0] - drop_db
        below = np.nonzero(mag <= target)[0]
        if len(below) == 0:
            return None
        i = int(below[0])
        if i == 0:
            return float(self.frequencies[0])
        # Log-linear interpolation between the straddling points.
        f0, f1 = self.frequencies[i - 1], self.frequencies[i]
        m0, m1 = mag[i - 1], mag[i]
        frac = (m0 - target) / (m0 - m1) if m1 != m0 else 0.0
        return float(f0 * (f1 / f0) ** frac)


def _matrices_at_op(circuit: Circuit, options: NewtonOptions):
    """Return (G, C, system, x_op): the small-signal matrices at the OP."""
    op = operating_point(circuit, options=options)
    system = _System(circuit, options)
    x = op.solution
    views = system.views_for(x)
    # G: the DC Jacobian.
    system.ctx.mode = "dc"
    system.ctx.t = 0.0
    system.ctx.h = 1.0
    system.assemble(x, views, options.gmin)
    g = system.ctx._j.copy()
    # C: isolate the 1/h companion term by assembling the transient
    # Jacobian at two step sizes: J(h) = G' + C/h  =>  C = (J(h1)-J(h2)) /
    # (1/h1 - 1/h2).  Committed charges must match the OP first.
    for element, view in zip(circuit.elements, views):
        element.init_state(view)
    h1, h2 = 1e-12, 2e-12
    system.ctx.mode = "tran"
    system.ctx.h = h1
    system.assemble(x, views, options.gmin)
    j1 = system.ctx._j.copy()
    system.ctx.h = h2
    system.assemble(x, views, options.gmin)
    j2 = system.ctx._j.copy()
    c = (j1 - j2) / (1.0 / h1 - 1.0 / h2)
    return g, c, system, x


def ac_analysis(circuit: Circuit, source_name: str,
                frequencies: Sequence[float], *,
                options: Optional[NewtonOptions] = None) -> ACResult:
    """Unit-amplitude AC sweep injected at a voltage source.

    The named source's DC level sets the operating point; its small-signal
    amplitude is 1 V, so every node response is directly the transfer
    function from that source.
    """
    options = options or NewtonOptions()
    source = circuit.element(source_name)
    if not isinstance(source, VoltageSource):
        raise NetlistError(f"{source_name} is not a VoltageSource")
    freqs = np.asarray(list(frequencies), dtype=float)
    if len(freqs) == 0 or np.any(freqs <= 0):
        raise SimulationError("frequencies must be positive and non-empty")

    g, c, system, _ = _matrices_at_op(circuit, options)
    n = system.n_unknowns
    b = np.zeros(n, dtype=complex)
    # Excite the source's branch equation (v_pos - v_neg = 1).
    b[source._branch_index[0]] = 1.0

    responses = {name: np.zeros(len(freqs), dtype=complex)
                 for name in circuit.node_names}
    for k, f in enumerate(freqs):
        a = g.astype(complex) + 1j * 2.0 * np.pi * f * c
        try:
            x = np.linalg.solve(a, b)
        except np.linalg.LinAlgError as exc:
            raise SimulationError(f"AC solve failed at {f:.3e} Hz: {exc}")
        for name in circuit.node_names:
            responses[name][k] = x[circuit.node_index(name)]
    return ACResult(frequencies=freqs, responses=responses)
