"""Linear and weakly nonlinear circuit elements.

Device compact models (MOSFET, FeFET) live in :mod:`fecam.devices`; this
module provides the structural elements every netlist needs: resistors,
capacitors, independent sources, a voltage-controlled switch, and a junction
diode (used by engine self-tests to exercise Newton convergence).
"""

from __future__ import annotations

import math

from ..errors import NetlistError
from ..units import thermal_voltage
from .netlist import Element, TerminalVoltages
from .waveforms import DC, Waveform


class Resistor(Element):
    """Two-terminal linear resistor."""

    def __init__(self, name: str, a: str, b: str, resistance: float):
        super().__init__(name, (a, b))
        if resistance <= 0:
            raise NetlistError(f"{name}: resistance must be positive, got {resistance}")
        self.resistance = float(resistance)

    def stamp(self, ctx, v: TerminalVoltages) -> None:
        g = 1.0 / self.resistance
        ia, ib = self._node_index
        current = g * (v[0] - v[1])
        ctx.add_f(ia, current)
        ctx.add_f(ib, -current)
        ctx.add_j(ia, ia, g)
        ctx.add_j(ia, ib, -g)
        ctx.add_j(ib, ia, -g)
        ctx.add_j(ib, ib, g)


class Capacitor(Element):
    """Two-terminal linear capacitor with backward-Euler companion model.

    Open in DC analysis.  The committed charge is the integration state;
    ``ic`` optionally forces the initial voltage regardless of the DC
    operating point (SPICE ``IC=`` semantics with UIC).
    """

    def __init__(self, name: str, a: str, b: str, capacitance: float, ic: float = None):
        super().__init__(name, (a, b))
        if capacitance <= 0:
            raise NetlistError(f"{name}: capacitance must be positive, got {capacitance}")
        self.capacitance = float(capacitance)
        self.ic = ic
        self._q_committed = 0.0

    def init_state(self, v: TerminalVoltages) -> None:
        v_cap = self.ic if self.ic is not None else (v[0] - v[1])
        self._q_committed = self.capacitance * v_cap

    def stamp(self, ctx, v: TerminalVoltages) -> None:
        if ctx.mode != "tran":
            return
        ia, ib = self._node_index
        geq = self.capacitance / ctx.h
        current = (self.capacitance * (v[0] - v[1]) - self._q_committed) / ctx.h
        ctx.add_f(ia, current)
        ctx.add_f(ib, -current)
        ctx.add_j(ia, ia, geq)
        ctx.add_j(ia, ib, -geq)
        ctx.add_j(ib, ia, -geq)
        ctx.add_j(ib, ib, geq)

    def commit(self, v: TerminalVoltages) -> None:
        self._q_committed = self.capacitance * (v[0] - v[1])

    @property
    def voltage_state(self) -> float:
        """Committed capacitor voltage (charge / C)."""
        return self._q_committed / self.capacitance


class VoltageSource(Element):
    """Independent voltage source with an arbitrary waveform.

    Adds one branch-current unknown.  Positive branch current flows from
    ``pos`` through the source to ``neg`` — i.e. the source *delivers* energy
    when ``v * i_branch`` is negative under this convention, so the recorded
    power is negated by the analysis to report delivered energy as positive.
    """

    num_branches = 1

    def __init__(self, name: str, pos: str, neg: str, waveform) -> None:
        super().__init__(name, (pos, neg))
        if isinstance(waveform, (int, float)):
            waveform = DC(waveform)
        if not isinstance(waveform, Waveform):
            raise NetlistError(f"{name}: waveform must be a Waveform or number")
        self.waveform = waveform

    def level(self, t: float, scale: float = 1.0) -> float:
        return scale * self.waveform.value(t)

    def stamp(self, ctx, v: TerminalVoltages) -> None:
        ip, ineg = self._node_index
        ibr = self._branch_index[0]
        i_branch = v.branch(0)
        # KCL rows: branch current leaves pos, enters neg.
        ctx.add_f(ip, i_branch)
        ctx.add_f(ineg, -i_branch)
        ctx.add_j(ip, ibr, 1.0)
        ctx.add_j(ineg, ibr, -1.0)
        # Branch row: v(pos) - v(neg) = level(t).
        ctx.add_f(ibr, (v[0] - v[1]) - self.level(ctx.t, ctx.source_scale))
        ctx.add_j(ibr, ip, 1.0)
        ctx.add_j(ibr, ineg, -1.0)


class CurrentSource(Element):
    """Independent current source; current flows pos -> through source -> neg."""

    def __init__(self, name: str, pos: str, neg: str, waveform) -> None:
        super().__init__(name, (pos, neg))
        if isinstance(waveform, (int, float)):
            waveform = DC(waveform)
        if not isinstance(waveform, Waveform):
            raise NetlistError(f"{name}: waveform must be a Waveform or number")
        self.waveform = waveform

    def stamp(self, ctx, v: TerminalVoltages) -> None:
        ip, ineg = self._node_index
        level = ctx.source_scale * self.waveform.value(ctx.t)
        ctx.add_f(ip, level)
        ctx.add_f(ineg, -level)


class Switch(Element):
    """Voltage-controlled switch with a smooth logistic transition.

    Conductance interpolates between ``1/r_off`` and ``1/r_on`` as the
    control voltage ``v(cp) - v(cn)`` crosses ``v_threshold`` over a
    ``v_transition`` wide window.  The smooth transition keeps the Jacobian
    continuous, which Newton needs; a hard switch is a classic source of
    non-convergence.
    """

    def __init__(self, name: str, a: str, b: str, cp: str, cn: str = "0", *,
                 r_on: float = 10.0, r_off: float = 1e9,
                 v_threshold: float = 0.4, v_transition: float = 0.05):
        super().__init__(name, (a, b, cp, cn))
        if r_on <= 0 or r_off <= r_on:
            raise NetlistError(f"{name}: need 0 < r_on < r_off")
        self.g_on = 1.0 / r_on
        self.g_off = 1.0 / r_off
        self.v_threshold = float(v_threshold)
        self.v_transition = float(v_transition)

    def _conductance(self, vc: float):
        """Return (g, dg/dvc).

        Interpolates in log-conductance space so the OFF tail really is
        ``g_off`` (a linear blend would leak ``g_on * sigma`` even for tiny
        sigma, since g_on is many decades above g_off).
        """
        x = (vc - self.v_threshold) / self.v_transition
        # Clamp to avoid overflow; the tails are flat anyway.
        x = max(-60.0, min(60.0, x))
        sig = 1.0 / (1.0 + math.exp(-x))
        ln_ratio = math.log(self.g_on / self.g_off)
        g = self.g_off * math.exp(sig * ln_ratio)
        dsig = sig * (1.0 - sig) / self.v_transition
        dg = g * ln_ratio * dsig
        return g, dg

    def stamp(self, ctx, v: TerminalVoltages) -> None:
        ia, ib, icp, icn = self._node_index
        vab = v[0] - v[1]
        vc = v[2] - v[3]
        g, dg = self._conductance(vc)
        current = g * vab
        ctx.add_f(ia, current)
        ctx.add_f(ib, -current)
        # d(current)/d(va, vb)
        ctx.add_j(ia, ia, g)
        ctx.add_j(ia, ib, -g)
        ctx.add_j(ib, ia, -g)
        ctx.add_j(ib, ib, g)
        # d(current)/d(vcp, vcn)
        dj = dg * vab
        ctx.add_j(ia, icp, dj)
        ctx.add_j(ia, icn, -dj)
        ctx.add_j(ib, icp, -dj)
        ctx.add_j(ib, icn, dj)


class Diode(Element):
    """Junction diode, ``i = Is * (exp(v/(n*Vt)) - 1)``, with exp limiting.

    Primarily used by the engine's own test-suite to exercise the Newton
    solver on a stiff exponential nonlinearity.
    """

    def __init__(self, name: str, anode: str, cathode: str, *,
                 i_sat: float = 1e-14, ideality: float = 1.0):
        super().__init__(name, (anode, cathode))
        if i_sat <= 0:
            raise NetlistError(f"{name}: saturation current must be positive")
        self.i_sat = float(i_sat)
        self.n_vt = float(ideality) * thermal_voltage()

    def stamp(self, ctx, v: TerminalVoltages) -> None:
        ia, ic = self._node_index
        vd = v[0] - v[1]
        # Linearize the exponential above v_crit to avoid overflow while
        # keeping current and conductance continuous.
        v_crit = 40.0 * self.n_vt
        if vd <= v_crit:
            e = math.exp(vd / self.n_vt)
            current = self.i_sat * (e - 1.0)
            g = self.i_sat * e / self.n_vt
        else:
            e_crit = math.exp(v_crit / self.n_vt)
            g = self.i_sat * e_crit / self.n_vt
            current = self.i_sat * (e_crit - 1.0) + g * (vd - v_crit)
        g = max(g, 1e-15)
        ctx.add_f(ia, current)
        ctx.add_f(ic, -current)
        ctx.add_j(ia, ia, g)
        ctx.add_j(ia, ic, -g)
        ctx.add_j(ic, ia, -g)
        ctx.add_j(ic, ic, g)
