"""Time-dependent source waveforms.

Waveforms are immutable callables evaluated by the analyses at each time
point.  They intentionally mirror the SPICE source primitives the paper's
experiments need: DC levels, trapezoidal pulses (write/search strobes,
precharge clocks), piecewise-linear sequences (the SeLa/SeLb two-step search
timing of Fig. 4), and sinusoids (used only in engine self-tests).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from ..errors import NetlistError


class Waveform:
    """Base class: a scalar function of time in seconds."""

    def value(self, t: float) -> float:
        raise NotImplementedError

    def __call__(self, t: float) -> float:
        return self.value(t)

    def shifted(self, dt: float) -> "Shifted":
        """Return this waveform delayed by ``dt`` seconds."""
        return Shifted(self, dt)


class DC(Waveform):
    """Constant level."""

    def __init__(self, level: float):
        self.level = float(level)

    def value(self, t: float) -> float:
        return self.level

    def __repr__(self) -> str:
        return f"DC({self.level})"


class Pulse(Waveform):
    """Trapezoidal pulse train (SPICE PULSE semantics).

    Starts at ``v1``, after ``delay`` ramps to ``v2`` over ``rise``, holds for
    ``width``, ramps back over ``fall``.  If ``period`` is given the pattern
    repeats; otherwise it is a single pulse.
    """

    def __init__(self, v1: float, v2: float, delay: float = 0.0,
                 rise: float = 1e-12, fall: float = 1e-12,
                 width: float = 1e-9, period: float = 0.0):
        if rise <= 0 or fall <= 0:
            raise NetlistError("pulse rise/fall times must be positive")
        if width < 0:
            raise NetlistError("pulse width must be non-negative")
        self.v1, self.v2 = float(v1), float(v2)
        self.delay, self.rise, self.fall = float(delay), float(rise), float(fall)
        self.width, self.period = float(width), float(period)

    def value(self, t: float) -> float:
        tl = t - self.delay
        if tl < 0:
            return self.v1
        if self.period > 0:
            tl = math.fmod(tl, self.period)
        if tl < self.rise:
            return self.v1 + (self.v2 - self.v1) * tl / self.rise
        tl -= self.rise
        if tl < self.width:
            return self.v2
        tl -= self.width
        if tl < self.fall:
            return self.v2 + (self.v1 - self.v2) * tl / self.fall
        return self.v1

    def __repr__(self) -> str:
        return (f"Pulse(v1={self.v1}, v2={self.v2}, delay={self.delay}, "
                f"rise={self.rise}, fall={self.fall}, width={self.width})")


class PWL(Waveform):
    """Piecewise-linear waveform from ``(time, value)`` points.

    Holds the first value before the first point and the last value after
    the last point.  Points must be strictly increasing in time.
    """

    def __init__(self, points: Sequence[Tuple[float, float]]):
        if len(points) < 1:
            raise NetlistError("PWL needs at least one point")
        times = [float(p[0]) for p in points]
        for a, b in zip(times, times[1:]):
            if b <= a:
                raise NetlistError("PWL time points must be strictly increasing")
        self.times: List[float] = times
        self.values: List[float] = [float(p[1]) for p in points]

    def value(self, t: float) -> float:
        times, values = self.times, self.values
        if t <= times[0]:
            return values[0]
        if t >= times[-1]:
            return values[-1]
        # Linear search is fine: waveforms have a handful of points and the
        # transient walks forward monotonically.
        for i in range(len(times) - 1):
            if times[i] <= t <= times[i + 1]:
                frac = (t - times[i]) / (times[i + 1] - times[i])
                return values[i] + frac * (values[i + 1] - values[i])
        return values[-1]  # pragma: no cover - unreachable

    def __repr__(self) -> str:
        return f"PWL({list(zip(self.times, self.values))!r})"


class Sine(Waveform):
    """``offset + amplitude * sin(2*pi*freq*(t - delay))`` (engine self-tests)."""

    def __init__(self, offset: float, amplitude: float, freq: float, delay: float = 0.0):
        if freq <= 0:
            raise NetlistError("sine frequency must be positive")
        self.offset, self.amplitude = float(offset), float(amplitude)
        self.freq, self.delay = float(freq), float(delay)

    def value(self, t: float) -> float:
        return self.offset + self.amplitude * math.sin(2 * math.pi * self.freq * (t - self.delay))


class Shifted(Waveform):
    """A waveform delayed by a constant offset."""

    def __init__(self, base: Waveform, dt: float):
        self.base, self.dt = base, float(dt)

    def value(self, t: float) -> float:
        return self.base.value(t - self.dt)


def step_sequence(levels: Sequence[Tuple[float, float]], transition: float = 10e-12) -> PWL:
    """Build a PWL from ``(start_time, level)`` steps with finite edges.

    Each entry holds ``level`` from ``start_time`` until the next entry;
    transitions take ``transition`` seconds.  This is the natural way to
    express search-phase sequencing (precharge, step 1, step 2).
    """
    if not levels:
        raise NetlistError("step_sequence needs at least one level")
    points: List[Tuple[float, float]] = []
    for i, (t_start, level) in enumerate(levels):
        if i == 0:
            points.append((t_start, level))
        else:
            prev_level = levels[i - 1][1]
            points.append((t_start, prev_level))
            points.append((t_start + transition, level))
    return PWL(points)
